package repro

import (
	"os"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRepolintClean runs the full analyzer suite (internal/lint) over
// every package in the module, so `go test ./...` fails on the same
// findings `go run ./cmd/repolint ./...` reports: nondeterministic map
// ranges, wall-clock reads, literal-0 event times, allocating
// constructs on annotated hot paths, and unguarded telemetry hooks.
func TestRepolintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module analysis in -short mode")
	}
	fset, diags, err := lint.Run(".", lint.Suite(), "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		t.Errorf("%s:%d:%d: %s (%s)", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
}

// TestHotPathAnnotationsPresent pins that the benchmark-guarded hot
// paths stay annotated: the hotalloc analyzer only inspects functions
// carrying //repro:hotpath, so silently dropping the annotations would
// disable the check without failing it.
func TestHotPathAnnotationsPresent(t *testing.T) {
	files := map[string]int{
		"internal/engine/engine.go":       10, // scheduler heap, resource, lock, barrier
		"internal/cache/cache.go":         10, // L1, block-cache and page-cache probe paths
		"internal/dsm/access.go":          10, // fault paths
		"internal/dsm/pageop.go":          5,  // page-op scratch
		"internal/interconnect/fabric.go": 3,  // traverse/deliver
	}
	for name, min := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		n := strings.Count(string(src), "//repro:hotpath")
		if n < min {
			t.Errorf("%s has %d //repro:hotpath annotations, want at least %d", name, n, min)
		}
	}
}
