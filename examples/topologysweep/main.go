// Topologysweep runs one application on the paper's three main systems
// — plus the registry-grown contention-aware MigRep — across
// interconnect fabrics (ideal crossbar, ring, 2D mesh) and prints each
// run's hot-link table: which physical links carry the traffic, how
// loaded the hottest one is, and how much crosses the cluster
// bisection. Migration/replication's bulk 4-KB page moves concentrate
// load on the links near hot pages' homes in ways fine-grain 64-byte
// caching does not — visible here, invisible in the flat-latency
// model. "migrep-contend" (a dsm-registry policy; no core or protocol
// changes were needed to add it here) defers those moves while their
// route is the fabric's hot spot.
//
//	go run ./examples/topologysweep [-app migratory] [-scale 4] [-hot 5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
)

func main() {
	app := flag.String("app", "migratory", "application to sweep")
	scale := flag.Int("scale", 4, "problem-size divisor")
	hot := flag.Int("hot", 5, "hot links to print per run")
	flag.Parse()

	systems := []core.System{core.SystemCCNUMA, core.SystemMigRep, core.SystemMigRepCont, core.SystemRNUMA}
	fabrics := []config.Network{
		{Topology: config.TopoCrossbar},
		{Topology: config.TopoRing},
		{Topology: config.TopoMesh},
	}

	for _, net := range fabrics {
		fmt.Printf("== %s fabric ==\n", net.Kind())
		opts := core.Defaults()
		opts.Scale = *scale
		opts.Cluster.Net = net
		sess := core.NewSession(opts)
		for _, sys := range systems {
			res, err := sess.Simulate(*app, sys)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s normalized %.3f, max link %d KB\n",
				res.System, res.Normalized, res.Stats.Net.MaxLink().Bytes/1024)
			fmt.Print(res.Stats.Net.NetReport(*hot))
		}
		fmt.Println()
	}
}
