// Latencysweep reproduces the Figure 7 experiment as a curve: how the
// three main systems respond as the network latency grows from the base
// 80 cycles to 8x that (remote:local ratios of 4 to 32). The paper's
// observation — CC-NUMA degrades fastest, R-NUMA is the most latency
// tolerant — appears as the divergence of the rows.
//
//	go run ./examples/latencysweep [-app radix] [-scale 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
)

func main() {
	app := flag.String("app", "radix", "application to sweep")
	scale := flag.Int("scale", 4, "problem-size divisor")
	flag.Parse()

	systems := []core.System{core.SystemCCNUMA, core.SystemMigRep, core.SystemRNUMA}
	factors := []int64{1, 2, 4, 8}

	fmt.Printf("normalized execution time of %s vs network latency\n", *app)
	fmt.Printf("%-8s", "system")
	for _, f := range factors {
		fmt.Printf(" %7dx", f)
	}
	fmt.Println()

	for _, sys := range systems {
		fmt.Printf("%-8s", sys)
		for _, f := range factors {
			opts := core.Defaults()
			opts.Scale = *scale
			opts.Timing = config.Default().ScaleNetwork(f)
			sess := core.NewSession(opts)
			res, err := sess.Simulate(*app, sys)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.3f", res.Normalized)
		}
		fmt.Println()
	}
}
