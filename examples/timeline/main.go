// Timeline runs the migratory microbenchmark on MigRep over a ring
// fabric with time-resolved telemetry enabled and shows what the
// end-of-run aggregates cannot: when the page activity happens. It
// prints a windowed table of the hottest links' bytes over simulated
// time next to the page-operation counts in each window, then writes
// the full page-operation timeline as Chrome trace-event JSON —
// loadable at https://ui.perfetto.dev or chrome://tracing — plus the
// windowed series as CSV.
//
//	go run ./examples/timeline [-scale 4] [-hot 3] [-window 1048576] [-o out/]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	scale := flag.Int("scale", 4, "problem-size divisor")
	hot := flag.Int("hot", 3, "hot links to tabulate")
	window := flag.Int64("window", 0, "window width in simulated cycles (0 = default, 2^20)")
	outDir := flag.String("o", "timeline-out", "directory for the exported artifacts")
	flag.Parse()

	cl := config.DefaultCluster()
	cl.Net = config.Network{Topology: config.TopoRing}
	tm, th := config.Default(), config.DefaultThresholds()

	app, err := apps.ByName("migratory")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := app.Generate(apps.Params{CPUs: cl.TotalCPUs(), Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}

	col := telemetry.New(telemetry.Config{Window: *window, Timeline: true})
	spec, err := dsm.ResolveSpecs([]string{"migrep"}, th)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := dsm.RunWithOptions(tr, spec[0], cl, tm, th, dsm.RunOptions{Telemetry: col})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("migratory on migrep over %s: %d cycles, %d timeline events\n\n",
		cl.Net.Kind(), sim.ExecCycles, len(col.Events()))

	// Windowed hot-link table: the ring's loaded links emerge and fade
	// as the migratory pages' homes move around the cluster.
	links := col.HotLinks(*hot)
	fmt.Printf("%-8s", "window")
	for _, id := range links {
		fmt.Printf(" %12s", col.LinkName(id))
	}
	fmt.Printf(" %9s %9s\n", "migrations", "pageops")
	for w := 0; w < col.Windows(); w++ {
		fmt.Printf("%-8d", w)
		for _, id := range links {
			fmt.Printf(" %10d KB", col.LinkBytesWindow(id, w)/1024)
		}
		var ops int64
		for k := 0; k < stats.NumPageOps; k++ {
			ops += col.PageOpWindow(stats.PageOp(k), w)
		}
		fmt.Printf(" %9d %9d\n", col.PageOpWindow(stats.Migration, w), ops)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	tracePath := filepath.Join(*outDir, "timeline.json")
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := col.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	csvPath := filepath.Join(*outDir, "windows.csv")
	f, err = os.Create(csvPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := col.WriteWindowsCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (open in Perfetto) and %s\n", tracePath, csvPath)
}
