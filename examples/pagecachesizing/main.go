// Pagecachesizing explores the R-NUMA design-cost question behind
// Figure 8: how much S-COMA page cache does a workload actually need?
// It sweeps the per-node page cache from an eighth of the paper's 2.4 MB
// up to unbounded and reports execution time, relocations and
// replacements. Workloads whose primary working set fits show a knee;
// radix (whose footprint exceeds any practical cache) keeps paying
// replacements, exactly the behaviour the paper reports.
//
//	go run ./examples/pagecachesizing [-app radix] [-scale 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
)

func main() {
	app := flag.String("app", "radix", "application to sweep")
	scale := flag.Int("scale", 4, "problem-size divisor")
	flag.Parse()

	cl := config.DefaultCluster()
	tm, th := config.Default(), config.DefaultThresholds()

	info, err := apps.ByName(*app)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := info.Generate(apps.Params{CPUs: cl.TotalCPUs(), Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	base, err := dsm.Run(tr, dsm.PerfectCCNUMA(), cl, tm, th)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %.2f MB shared footprint; page cache sweep\n\n",
		*app, float64(tr.Footprint)/(1<<20))
	fmt.Printf("%-12s %10s %12s %12s %12s\n",
		"page cache", "normalized", "relocations", "replacements", "remote miss")

	sizes := []int{
		config.PageCacheBytes / 8,
		config.PageCacheBytes / 4,
		config.PageCacheBytes / 2,
		config.PageCacheBytes,
		2 * config.PageCacheBytes,
		0, // unbounded
	}
	for _, size := range sizes {
		spec := dsm.RNUMA()
		spec.PageCacheBytes = size
		label := fmt.Sprintf("%.1f MB", float64(size)/(1<<20))
		if size == 0 {
			spec = dsm.RNUMAInf()
			label = "infinite"
		}
		sim, err := dsm.Run(tr, spec, cl, tm, th)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.3f %12d %12d %12d\n",
			label,
			sim.Normalized(base),
			sim.PageOpsByKind(stats.Relocation),
			sim.PageOpsByKind(stats.Replacement),
			sim.TotalRemoteMisses())
	}
}
