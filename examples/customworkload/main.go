// Customworkload shows how to write a new shared-memory workload against
// the apps.World API and evaluate it on the paper's systems. The
// workload is a software pipeline: stage s smooths a buffer and hands it
// to stage s+1, so each buffer migrates from node to node over time —
// the access pattern page migration is built for. The output shows Mig
// beating plain CC-NUMA, and R-NUMA beating both, on this pattern.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/stats"
)

// buildPipeline constructs the trace: `stages` buffers; in each round,
// one node's worth of processors works on one buffer, then the
// assignment rotates.
func buildPipeline(cpus, stages, rounds, bufKB int) (*apps.World, error) {
	w := apps.NewWorld("pipeline", cpus)
	bufs := make([]*apps.F64, stages)
	n := bufKB * 1024 / 8
	for s := range bufs {
		bufs[s] = w.AllocF64(fmt.Sprintf("stage%d", s), n)
	}
	w.Phase()

	// Stage 0's owners initialize every buffer (deliberately bad
	// placement that first-touch alone cannot fix once work rotates).
	w.Parallel(func(c *apps.Ctx) {
		if c.CPU >= 4 {
			return
		}
		for s := range bufs {
			for i := c.CPU * (n / 4); i < (c.CPU+1)*(n/4); i++ {
				c.Store(bufs[s], i, float64(i))
			}
		}
	})
	w.Barrier()

	nodes := cpus / 4
	for r := 0; r < rounds; r++ {
		w.Parallel(func(c *apps.Ctx) {
			node := c.CPU / 4
			stage := (node + r) % stages
			if stage >= len(bufs) {
				return
			}
			buf := bufs[stage]
			lane := c.CPU % 4
			lo, hi := lane*(n/4), (lane+1)*(n/4)
			// several smoothing sweeps: reuse that rewards locality
			for sweep := 0; sweep < 6; sweep++ {
				for i := lo + 1; i < hi-1; i++ {
					v := (c.Load(buf, i-1) + c.Load(buf, i) + c.Load(buf, i+1)) / 3
					c.Store(buf, i, v)
					c.Compute(4)
				}
			}
		})
		w.Barrier()
		_ = nodes
	}
	return w, nil
}

func main() {
	w, err := buildPipeline(32, 8, 16, 64)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := w.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d ops, %.2f MB footprint\n\n", tr.Ops(), float64(tr.Footprint)/(1<<20))

	sess := core.NewSession(core.Defaults())
	for _, sys := range []core.System{core.SystemCCNUMA, core.SystemMig, core.SystemRNUMA} {
		res, err := sess.SimulateTrace(tr, sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s normalized %.3f  remote misses %d  migrations %d  relocations %d\n",
			sys, res.Normalized,
			res.Stats.TotalRemoteMisses(),
			res.Stats.PageOpsByKind(stats.Migration),
			res.Stats.PageOpsByKind(stats.Relocation))
	}
}
