// Quickstart: run one SPLASH-2 workload on the paper's two main systems
// and print the comparison — the minimal use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	opts := core.Defaults()
	opts.Scale = 4 // a quick run; use 1 for the full reproduction size

	sess := core.NewSession(opts)

	fmt.Println("available applications:", sess.Applications())
	fmt.Println()

	for _, sys := range []core.System{core.SystemCCNUMA, core.SystemMigRep, core.SystemRNUMA} {
		res, err := sess.Simulate("lu", sys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s normalized execution time %.3f (vs perfect CC-NUMA)\n",
			res.System, res.Normalized)
		fmt.Print(res.Stats.Summary())
		fmt.Println()
	}
}
