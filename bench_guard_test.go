package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

// benchBaseline mirrors the fields of cmd/benchreport's output that the
// guard needs.
type benchBaseline struct {
	Results []struct {
		Name        string `json:"name"`
		Guarded     bool   `json:"guarded"`
		BytesPerOp  int64  `json:"bytes_per_op"`
		AllocsPerOp int64  `json:"allocs_per_op"`
	} `json:"results"`
}

// latestBaseline returns the committed BENCH_*.json file with the
// highest PR number, so the guard automatically tracks the newest
// committed trajectory point without per-PR edits to this test.
func latestBaseline(t *testing.T) string {
	t.Helper()
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed BENCH_*.json baseline found (glob err: %v)", err)
	}
	best, bestNum := "", -1
	for _, m := range matches {
		numStr := strings.TrimSuffix(strings.TrimPrefix(m, "BENCH_"), ".json")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		if n > bestNum {
			best, bestNum = m, n
		}
	}
	if best == "" {
		t.Fatalf("no numeric BENCH_<pr>.json among %v", matches)
	}
	return best
}

// TestBenchAllocationGuard re-runs the guarded hot-path benchmarks
// (cache probes, fault path per miss class, engine dispatch, trace
// streaming, the Figure 5 macro) and fails if allocs/op OR bytes/op
// regresses more than 20% over the newest committed BENCH_<pr>.json
// baseline. ns/op is deliberately not guarded — wall time varies with
// the host — but allocation counts and sizes are deterministic for a
// fixed code path, so a jump means an allocation crept back into a hot
// loop (or an existing one got fatter, which allocs/op alone misses).
//
// Regenerate the baseline deliberately with:
//
//	go run ./cmd/benchreport -o BENCH_<pr>.json
func TestBenchAllocationGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping benchmark guard in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping benchmark guard under the race detector (instrumentation allocates)")
	}
	path := latestBaseline(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("unreadable benchmark baseline %s: %v", path, err)
	}
	t.Logf("guarding against %s", path)
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("bad baseline: %v", err)
	}
	type limits struct{ allocs, bytes int64 }
	baseline := map[string]limits{}
	for _, r := range base.Results {
		if r.Guarded {
			baseline[r.Name] = limits{allocs: r.AllocsPerOp, bytes: r.BytesPerOp}
		}
	}
	if len(baseline) == 0 {
		t.Fatal("baseline contains no guarded benchmarks")
	}

	for _, c := range bench.Cases() {
		if !c.Guarded {
			continue
		}
		want, ok := baseline[c.Name]
		if !ok {
			t.Errorf("%s: no baseline entry (regenerate the BENCH file)", c.Name)
			continue
		}
		r := testing.Benchmark(c.Bench)
		got := limits{allocs: r.AllocsPerOp(), bytes: r.AllocedBytesPerOp()}
		// 20% headroom plus one absolute alloc, so zero-alloc baselines
		// tolerate nothing but noise-level drift.
		if limit := want.allocs + want.allocs/5 + 1; got.allocs > limit {
			t.Errorf("%s: %d allocs/op, baseline %d (limit %d): an allocation crept into the hot path",
				c.Name, got.allocs, want.allocs, limit)
		} else {
			t.Logf("%s: %d allocs/op (baseline %d)", c.Name, got.allocs, want.allocs)
		}
		// Same 20% tolerance on bytes, with one cache line of absolute
		// headroom: size-class rounding can wobble small baselines by a
		// few bytes without any code change.
		if limit := want.bytes + want.bytes/5 + 64; got.bytes > limit {
			t.Errorf("%s: %d bytes/op, baseline %d (limit %d): hot-path allocations got fatter",
				c.Name, got.bytes, want.bytes, limit)
		} else {
			t.Logf("%s: %d bytes/op (baseline %d)", c.Name, got.bytes, want.bytes)
		}
	}
}
