// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations over the design choices DESIGN.md
// calls out and microbenchmarks of the simulator's hot paths.
//
// Each BenchmarkFigN/BenchmarkTable4 iteration performs the full
// experiment (all systems on a reduced-scale workload set) and reports
// simulated-cycles-per-wall-second style throughput via custom metrics.
// Run the real full-scale reproduction with cmd/experiments.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/apps"
	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchScale keeps one experiment iteration around a second.
const benchScale = 8

func benchOpts() harness.Options {
	return harness.Options{Scale: benchScale, Parallel: 4, Out: io.Discard}
}

// reportMeans attaches each system's mean normalized execution time as a
// benchmark metric, so `go test -bench` output carries the figures'
// headline numbers.
func reportMeans(b *testing.B, r *harness.Result) {
	b.Helper()
	for _, sys := range r.Systems {
		b.ReportMetric(r.MeanNorm(sys), "norm-"+sys)
	}
}

// BenchmarkFig5 regenerates Figure 5: the base comparison of CC-NUMA,
// Rep, Mig, MigRep, R-NUMA and R-NUMA-Inf over the seven applications.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMeans(b, r)
		}
	}
}

// BenchmarkTable4 regenerates Table 4: per-node page operations and
// remote miss breakdowns.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMeans(b, r)
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: fast versus slow page-operation
// support.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMeans(b, r)
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: the 4x network latency study.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMeans(b, r)
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: page-cache halving and the
// R-NUMA+MigRep integration.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMeans(b, r)
		}
	}
}

// ---------------------------------------------------------------------
// Per-application replay benchmarks: simulator throughput on each
// workload (trace generated once outside the timed loop).

func benchReplay(b *testing.B, app string, spec dsm.Spec) {
	info, err := apps.ByName(app)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := info.Generate(apps.Params{CPUs: 32, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	cl := config.DefaultCluster()
	tm, th := config.Default(), config.DefaultThresholds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsm.Run(tr, spec, cl, tm, th); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Ops()), "trace-ops")
}

func BenchmarkReplay(b *testing.B) {
	for _, app := range []string{"barnes", "cholesky", "fmm", "lu", "ocean", "radix", "raytrace"} {
		for _, spec := range []dsm.Spec{dsm.CCNUMA(), dsm.MigRep(), dsm.RNUMA()} {
			b.Run(fmt.Sprintf("%s/%s", app, spec.Name), func(b *testing.B) {
				benchReplay(b, app, spec)
			})
		}
	}
}

// BenchmarkTraceGeneration measures workload generation alone.
func BenchmarkTraceGeneration(b *testing.B) {
	for _, app := range []string{"lu", "radix", "barnes"} {
		b.Run(app, func(b *testing.B) {
			info, err := apps.ByName(app)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := info.Generate(apps.Params{CPUs: 32, Scale: benchScale}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablations: design choices called out in DESIGN.md.

// BenchmarkAblationBlockCacheSize sweeps the CC-NUMA block cache from a
// quarter to 4x the paper's 64 KB: how much SRAM does the cluster cache
// need before R-NUMA's DRAM page cache stops mattering?
func BenchmarkAblationBlockCacheSize(b *testing.B) {
	info, _ := apps.ByName("radix")
	tr, err := info.Generate(apps.Params{CPUs: 32, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	cl := config.DefaultCluster()
	tm, th := config.Default(), config.DefaultThresholds()
	for _, kb := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			spec := dsm.CCNUMA()
			spec.BlockCacheBytes = kb * 1024
			var last *stats.Sim
			for i := 0; i < b.N; i++ {
				sim, err := dsm.Run(tr, spec, cl, tm, th)
				if err != nil {
					b.Fatal(err)
				}
				last = sim
			}
			b.ReportMetric(float64(last.TotalRemoteMisses()), "remote-misses")
		})
	}
}

// BenchmarkAblationPageCacheSize sweeps the R-NUMA page cache (the
// Figure 8 cost question) on the capacity-bound workload.
func BenchmarkAblationPageCacheSize(b *testing.B) {
	info, _ := apps.ByName("radix")
	tr, err := info.Generate(apps.Params{CPUs: 32, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	cl := config.DefaultCluster()
	tm, th := config.Default(), config.DefaultThresholds()
	for _, frac := range []int{8, 4, 2, 1} {
		b.Run(fmt.Sprintf("1_%d", frac), func(b *testing.B) {
			spec := dsm.RNUMA()
			spec.PageCacheBytes = config.PageCacheBytes / frac
			var last *stats.Sim
			for i := 0; i < b.N; i++ {
				sim, err := dsm.Run(tr, spec, cl, tm, th)
				if err != nil {
					b.Fatal(err)
				}
				last = sim
			}
			b.ReportMetric(float64(last.PageOpsByKind(stats.Replacement)), "replacements")
		})
	}
}

// BenchmarkAblationRNUMAThreshold sweeps the relocation threshold: the
// paper's 32 sits between eager thrashing and missed opportunity.
func BenchmarkAblationRNUMAThreshold(b *testing.B) {
	info, _ := apps.ByName("lu")
	tr, err := info.Generate(apps.Params{CPUs: 32, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	cl := config.DefaultCluster()
	tm := config.Default()
	for _, thr := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("T%d", thr), func(b *testing.B) {
			th := config.DefaultThresholds()
			th.RNUMAThreshold = thr
			var last *stats.Sim
			for i := 0; i < b.N; i++ {
				sim, err := dsm.Run(tr, dsm.RNUMA(), cl, tm, th)
				if err != nil {
					b.Fatal(err)
				}
				last = sim
			}
			b.ReportMetric(float64(last.PageOpsByKind(stats.Relocation)), "relocations")
			b.ReportMetric(float64(last.ExecCycles), "cycles")
		})
	}
}

// BenchmarkAblationNetworkLatency sweeps the wire latency (the Figure 7
// axis) on one workload for all three systems.
func BenchmarkAblationNetworkLatency(b *testing.B) {
	info, _ := apps.ByName("ocean")
	tr, err := info.Generate(apps.Params{CPUs: 32, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	cl := config.DefaultCluster()
	th := config.DefaultThresholds()
	for _, f := range []int64{1, 4, 8} {
		for _, spec := range []dsm.Spec{dsm.CCNUMA(), dsm.RNUMA()} {
			b.Run(fmt.Sprintf("%dx/%s", f, spec.Name), func(b *testing.B) {
				tm := config.Default().ScaleNetwork(f)
				var last *stats.Sim
				for i := 0; i < b.N; i++ {
					sim, err := dsm.Run(tr, spec, cl, tm, th)
					if err != nil {
						b.Fatal(err)
					}
					last = sim
				}
				b.ReportMetric(float64(last.ExecCycles), "cycles")
			})
		}
	}
}

// BenchmarkAblationReactiveVsStatic compares R-NUMA's reactive page
// selection against the static S-COMA policy on the page-cache-bound
// workload: the reactive filter admits only pages that earn their frame.
func BenchmarkAblationReactiveVsStatic(b *testing.B) {
	info, _ := apps.ByName("radix")
	tr, err := info.Generate(apps.Params{CPUs: 32, Scale: benchScale})
	if err != nil {
		b.Fatal(err)
	}
	cl := config.DefaultCluster()
	tm, th := config.Default(), config.DefaultThresholds()
	for _, spec := range []dsm.Spec{dsm.RNUMA(), dsm.SCOMA()} {
		b.Run(spec.Name, func(b *testing.B) {
			var last *stats.Sim
			for i := 0; i < b.N; i++ {
				sim, err := dsm.Run(tr, spec, cl, tm, th)
				if err != nil {
					b.Fatal(err)
				}
				last = sim
			}
			b.ReportMetric(float64(last.ExecCycles), "cycles")
			b.ReportMetric(float64(last.PageOpsByKind(stats.Replacement)), "replacements")
		})
	}
}

// ---------------------------------------------------------------------
// Microbenchmarks of the simulator's hot paths.

func BenchmarkResourceAcquire(b *testing.B) {
	r := engine.NewResource("bus")
	var t engine.Time
	for i := 0; i < b.N; i++ {
		t = r.Acquire(t, 24)
	}
}

func BenchmarkSchedulerStep(b *testing.B) {
	s := engine.NewScheduler(32)
	for i := 0; i < b.N; i++ {
		c := s.Next()
		c.Clock += int64(i%7) + 1
		s.Yield(c)
	}
}

func BenchmarkRecorderAccess(b *testing.B) {
	r := trace.NewRecorder()
	for i := 0; i < b.N; i++ {
		r.Access(memory.Addr(i*8), i%5 == 0)
	}
}

// BenchmarkHotPath runs the shared internal/bench suite: cache probes,
// the fault path per miss class, engine dispatch, and the Figure 5
// macrobenchmark. cmd/benchreport runs the same bodies to produce the
// committed BENCH_*.json baselines, and the allocation-regression guard
// in bench_guard_test.go compares the guarded cases against them.
func BenchmarkHotPath(b *testing.B) {
	for _, c := range bench.Cases() {
		b.Run(c.Name, c.Bench)
	}
}
