//go:build !race

package repro

// raceEnabled reports whether the race detector instruments this build.
// The allocation-regression guard skips under race: instrumentation adds
// allocations that the committed baselines do not account for.
const raceEnabled = false
