// Package audit provides the end-of-run conservation and consistency
// checks of the simulator's self-auditing mode.
//
// A simulated DSM run maintains the same quantities in several places:
// every node counts the bytes it puts on the network (stats.Node
// .TrafficBytes), the fabric counts the bytes injected per ordered node
// pair and the bytes carried per link (interconnect.Fabric), and the
// directory tracks which caches hold which blocks. These views are
// redundant by construction, which makes them a free cross-check: if a
// protocol path charges a node counter but skips the fabric (or
// vice versa), injects a message in the simulated past, or leaves the
// directory disagreeing with the caches, the books stop balancing.
//
// Check runs over a finished machine and verifies:
//
//   - event-time discipline: no fabric injection before the event being
//     processed, no page-busy horizon regression, no out-of-order
//     scheduler dispatch (collected online while the machine runs in
//     audit mode — see dsm.Machine.EnableAudit);
//   - traffic conservation: the summed per-node TrafficBytes equal the
//     fabric's per-pair injected bytes plus node-local messages, and
//     the per-link byte totals equal the per-pair bytes weighted by
//     each pair's route hop count;
//   - snapshot consistency: the stats.NetStats view published with the
//     run agrees with the fabric it was taken from;
//   - counter sanity: no negative traffic, stall, sync or page-op
//     counters;
//   - directory/cache agreement, via the machine's Verify.
//
// The harness runs these checks on every simulation when Options.Audit
// is set (the -audit flag of cmd/experiments and cmd/dsmsim), and the
// test suite keeps audit mode on for every harness experiment, so a
// regression in any accounting path fails loudly instead of skewing
// the paper's traffic tables silently.
package audit

import (
	"fmt"
	"strings"

	"repro/internal/interconnect"
	"repro/internal/stats"
)

// Machine is the view of a finished simulation the checks need; it is
// satisfied by *dsm.Machine.
type Machine interface {
	// Stats returns the run's statistics.
	Stats() *stats.Sim
	// Fabric returns the interconnect the run routed messages over.
	Fabric() *interconnect.Fabric
	// Verify checks directory invariants and directory/cache agreement.
	Verify() error
	// AuditViolations returns event-time violations the machine
	// recorded while executing in audit mode.
	AuditViolations() []string
}

// Check runs every end-of-run audit over m and returns an error
// describing all violations, or nil if the books balance.
func Check(m Machine) error {
	var errs []string
	s := m.Stats()
	f := m.Fabric()

	// Event-time discipline, collected online during the run.
	errs = append(errs, f.Violations()...)
	errs = append(errs, m.AuditViolations()...)

	// Traffic conservation against the fabric's ground truth.
	topo := f.Topology()
	var pair, hopWeighted int64
	for src := 0; src < topo.Nodes(); src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			b := f.PairBytes(src, dst)
			pair += b
			hopWeighted += b * int64(len(topo.Route(src, dst)))
		}
	}
	if injected, counted := pair+f.LocalBytes(), s.TotalTrafficBytes(); injected != counted {
		errs = append(errs, fmt.Sprintf(
			"traffic conservation: fabric injected %d bytes (pairs %d + local %d) but node counters total %d",
			injected, pair, f.LocalBytes(), counted))
	}
	if got := f.TotalLinkBytes(); got != hopWeighted {
		errs = append(errs, fmt.Sprintf(
			"link conservation: links carried %d bytes, hop-weighted pair injection is %d",
			got, hopWeighted))
	}

	// The published snapshot must agree with the fabric it mirrors.
	if s.Net != nil {
		if got := s.Net.TotalLinkBytes(); got != f.TotalLinkBytes() {
			errs = append(errs, fmt.Sprintf(
				"snapshot: link bytes %d != fabric %d", got, f.TotalLinkBytes()))
		}
		if got := s.Net.InjectedBytes(); got != pair+f.LocalBytes() {
			errs = append(errs, fmt.Sprintf(
				"snapshot: injected bytes %d != fabric %d", got, pair+f.LocalBytes()))
		}
	}

	// Counter sanity: accumulators only ever add nonnegative amounts.
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.TrafficBytes < 0 || n.StallCycles < 0 || n.SyncCycles < 0 || n.PageOpCycles < 0 {
			errs = append(errs, fmt.Sprintf(
				"node %d: negative counter (traffic %d, stall %d, sync %d, pageop %d)",
				i, n.TrafficBytes, n.StallCycles, n.SyncCycles, n.PageOpCycles))
		}
	}

	// Directory/cache agreement.
	if err := m.Verify(); err != nil {
		errs = append(errs, err.Error())
	}

	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d violation(s):\n  %s", len(errs), strings.Join(errs, "\n  "))
}
