package audit_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/trace"
)

// auditTrace is a read/write sharing workload that exercises fills,
// upgrades, invalidations, writebacks, page faults and — on the MigRep
// and R-NUMA systems — every page-operation path.
func auditTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := apps.GenerateSynthetic(apps.SynMigratory,
		apps.SyntheticParams{CPUs: 32, KBPerNode: 256, Iters: 6})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// runAudited executes a trace on an audited machine and returns it.
func runAudited(t *testing.T, spec dsm.Spec, net config.Network, tr *trace.Trace) *dsm.Machine {
	t.Helper()
	cl := config.DefaultCluster()
	cl.Net = net
	m, err := dsm.NewMachine(spec, cl, config.Default(), config.DefaultThresholds(),
		tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableAudit()
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFigure5SystemsCleanOnAllFabrics is the acceptance matrix of
// ISSUE 2: every Figure-5 system on every fabric must complete with
// zero event-time or conservation violations.
func TestFigure5SystemsCleanOnAllFabrics(t *testing.T) {
	tr := auditTrace(t)
	fabrics := []config.Network{
		{Topology: config.TopoCrossbar},
		{Topology: config.TopoRing},
		{Topology: config.TopoMesh},
		{Topology: config.TopoFatTree},
	}
	for _, net := range fabrics {
		for _, spec := range dsm.AllBaseSystems() {
			m := runAudited(t, spec, net, tr)
			if err := audit.Check(m); err != nil {
				t.Errorf("%s on %s: %v", spec.Name, net.Kind(), err)
			}
		}
	}
}

// TestConservationSemantics locks the semantics of the conservation
// check the audit subsystem runs: for every Figure-5 system on the
// crossbar and the mesh, the summed per-node TrafficBytes equal the
// fabric's per-pair byte totals (plus node-local messages), and the
// per-link totals equal the per-pair bytes weighted by route length.
// audit.Check must agree with the explicit sums, in both directions.
func TestConservationSemantics(t *testing.T) {
	tr := auditTrace(t)
	for _, net := range []config.Network{
		{Topology: config.TopoCrossbar},
		{Topology: config.TopoMesh},
	} {
		for _, spec := range dsm.AllBaseSystems() {
			m := runAudited(t, spec, net, tr)
			f := m.Fabric()
			topo := f.Topology()
			var pair, hopWeighted int64
			for s := 0; s < topo.Nodes(); s++ {
				for d := 0; d < topo.Nodes(); d++ {
					pair += f.PairBytes(s, d)
					hopWeighted += f.PairBytes(s, d) * int64(len(topo.Route(s, d)))
				}
			}
			counted := m.Stats().TotalTrafficBytes()
			if counted == 0 {
				t.Fatalf("%s on %s: workload generated no traffic", spec.Name, net.Kind())
			}
			if got := pair + f.LocalBytes(); got != counted {
				t.Errorf("%s on %s: fabric injected %d bytes, node counters total %d",
					spec.Name, net.Kind(), got, counted)
			}
			if got := f.TotalLinkBytes(); got != hopWeighted {
				t.Errorf("%s on %s: links carried %d bytes, hop-weighted injection %d",
					spec.Name, net.Kind(), got, hopWeighted)
			}
			if err := audit.Check(m); err != nil {
				t.Errorf("%s on %s: audit disagrees with explicit sums: %v",
					spec.Name, net.Kind(), err)
			}
		}
	}
}

// TestCheckRejectsImbalancedBooks drives audit.Check with a machine
// whose node counters were skewed after the run: the conservation check
// must fail, proving the audit has teeth.
func TestCheckRejectsImbalancedBooks(t *testing.T) {
	tr := auditTrace(t)
	m := runAudited(t, dsm.CCNUMA(), config.Network{}, tr)
	if err := audit.Check(m); err != nil {
		t.Fatalf("clean run failed audit: %v", err)
	}
	m.Stats().Nodes[0].TrafficBytes += 64 // cook the books
	if err := audit.Check(m); err == nil {
		t.Error("audit accepted imbalanced traffic counters")
	}
}
