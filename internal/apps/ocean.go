package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// oceanApp implements the core of the SPLASH-2 ocean simulation: a
// red-black Gauss-Seidel multigrid solver for the stream-function Poisson
// equations, driven by a time loop that updates vorticity fields between
// solves. Grids are full two-dimensional row-major arrays partitioned
// into 2D processor subgrids (the "non-contiguous" layout), so subgrid
// boundaries straddle pages — the placement behaviour whose traffic the
// paper measures.
type oceanApp struct {
	n     int // interior points per side (grid is (n+2)^2)
	steps int
	cpus  int

	rowsP, colsP int
	levels       int
}

func newOcean(p Params) *oceanApp {
	p = p.norm()
	n := 258 / p.Scale
	// Round down to 2^k+2-friendly interior so multigrid coarsens
	// evenly.
	k := 2
	for (1<<(k+1)) <= n && k < 16 {
		k++
	}
	n = 1 << k
	a := &oceanApp{n: n, steps: 3, cpus: p.CPUs}
	a.rowsP = 1
	for a.rowsP*a.rowsP < p.CPUs {
		a.rowsP++
	}
	for p.CPUs%a.rowsP != 0 {
		a.rowsP--
	}
	a.colsP = p.CPUs / a.rowsP
	a.levels = 1
	for (n>>a.levels) >= 8 && (n>>a.levels) >= 2*a.rowsP {
		a.levels++
	}
	return a
}

// grid is one (n+2)x(n+2) shared array.
type grid struct {
	a    *F64
	side int
}

func (g *grid) idx(i, j int) int { return i*g.side + j }

// ownerRange returns the interior row/col range of cpu in a side-point
// grid.
func (a *oceanApp) ownerRange(cpu, interior int) (r0, r1, c0, c1 int) {
	pr, pc := cpu/a.colsP, cpu%a.colsP
	rows := interior / a.rowsP
	cols := interior / a.colsP
	if rows == 0 {
		rows = 1
	}
	if cols == 0 {
		cols = 1
	}
	r0 = 1 + pr*rows
	r1 = r0 + rows
	if pr == a.rowsP-1 {
		r1 = interior + 1
	}
	c0 = 1 + pc*cols
	c1 = c0 + cols
	if pc == a.colsP-1 {
		c1 = interior + 1
	}
	if r0 > interior {
		r0, r1 = 1, 0 // empty
	}
	if c0 > interior {
		c0, c1 = 1, 0
	}
	return
}

// relaxColor performs one red-black relaxation half-sweep on u for the
// cpu's subgrid, recording the stencil accesses: sequential row segments
// coalesce; the rows above/below are separate touches.
func (a *oceanApp) relaxColor(c *Ctx, u, rhs *grid, interior int, color int, h2 float64) {
	r0, r1, c0, c1 := a.ownerRange(c.CPU, interior)
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			if (i+j)&1 != color {
				continue
			}
			// 5-point stencil: real Gauss-Seidel update.
			k := u.idx(i, j)
			v := 0.25 * (u.a.Data[k-1] + u.a.Data[k+1] +
				u.a.Data[k-u.side] + u.a.Data[k+u.side] - h2*rhs.a.Data[k])
			c.r.Access(u.a.Addr(k-1), false)
			c.r.Access(u.a.Addr(k+1), false)
			c.r.Access(u.a.Addr(k-u.side), false)
			c.r.Access(u.a.Addr(k+u.side), false)
			c.r.Access(rhs.a.Addr(k), false)
			c.r.Access(u.a.Addr(k), true)
			u.a.Data[k] = v
			c.Compute(6)
		}
	}
}

// restrict transfers the residual to the coarser grid (full weighting).
func (a *oceanApp) restrictTo(c *Ctx, fine, frhs, coarse, crhs *grid, fInterior int) {
	cInterior := fInterior / 2
	r0, r1, c0, c1 := a.ownerRange(c.CPU, cInterior)
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			fi, fj := 2*i, 2*j
			k := fine.idx(fi, fj)
			res := frhs.a.Data[k] - (4*fine.a.Data[k] - fine.a.Data[k-1] -
				fine.a.Data[k+1] - fine.a.Data[k-fine.side] - fine.a.Data[k+fine.side])
			c.r.Access(fine.a.Addr(k), false)
			c.r.Access(fine.a.Addr(k-1), false)
			c.r.Access(fine.a.Addr(k+1), false)
			c.r.Access(frhs.a.Addr(k), false)
			ck := coarse.idx(i, j)
			c.r.Access(crhs.a.Addr(ck), true)
			c.r.Access(coarse.a.Addr(ck), true)
			crhs.a.Data[ck] = res
			coarse.a.Data[ck] = 0
			c.Compute(8)
		}
	}
}

// prolong adds the coarse correction back into the fine grid.
func (a *oceanApp) prolong(c *Ctx, coarse, fine *grid, fInterior int) {
	cInterior := fInterior / 2
	r0, r1, c0, c1 := a.ownerRange(c.CPU, cInterior)
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			v := coarse.a.Data[coarse.idx(i, j)]
			c.r.Access(coarse.a.Addr(coarse.idx(i, j)), false)
			for di := 0; di < 2; di++ {
				for dj := 0; dj < 2; dj++ {
					fk := fine.idx(2*i-di, 2*j-dj)
					c.r.Access(fine.a.Addr(fk), true)
					fine.a.Data[fk] += v
				}
			}
			c.Compute(6)
		}
	}
}

// GenerateOcean builds the trace and returns the final stream-function
// grid for verification.
func GenerateOcean(p Params) (*trace.Trace, []float64, error) {
	a := newOcean(p)
	w := NewWorld("ocean", a.cpus)
	side := a.n + 2

	alloc := func(name string, interior int) *grid {
		s := interior + 2
		return &grid{a: w.AllocF64(name, s*s), side: s}
	}
	psi := alloc("psi", a.n)
	vort := alloc("vort", a.n)
	rhs := alloc("rhs", a.n)
	// Multigrid hierarchy for psi.
	gs := make([]*grid, a.levels)
	rs := make([]*grid, a.levels)
	gs[0], rs[0] = psi, rhs
	for l := 1; l < a.levels; l++ {
		gs[l] = alloc(fmt.Sprintf("mg%d", l), a.n>>l)
		rs[l] = alloc(fmt.Sprintf("mgr%d", l), a.n>>l)
	}

	// Sequential init: a smooth vorticity field.
	w.Serial(func(c *Ctx) {
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				x, y := float64(i)/float64(side), float64(j)/float64(side)
				vort.a.Data[vort.idx(i, j)] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			}
		}
		c.TouchRange(vort.a.Addr(0), side*side*8, true)
		c.TouchRange(psi.a.Addr(0), side*side*8, true)
		c.Compute(side * side / 2)
	})
	w.Phase()

	// Parallel first touch of each subgrid.
	w.Parallel(func(c *Ctx) {
		r0, r1, c0, c1 := a.ownerRange(c.CPU, a.n)
		for i := r0; i < r1; i++ {
			c.TouchRange(psi.a.Addr(psi.idx(i, c0)), (c1-c0)*8, false)
			c.TouchRange(vort.a.Addr(vort.idx(i, c0)), (c1-c0)*8, false)
			c.TouchRange(rhs.a.Addr(rhs.idx(i, c0)), (c1-c0)*8, true)
		}
		c.Compute((r1 - r0) * (c1 - c0) / 4)
	})
	w.Barrier()

	h2 := 1.0 / float64(a.n*a.n)
	for step := 0; step < a.steps; step++ {
		// Advect vorticity into the Poisson right-hand side (Jacobi
		// smoothing of vort plus copy to rhs).
		w.Parallel(func(c *Ctx) {
			r0, r1, c0, c1 := a.ownerRange(c.CPU, a.n)
			for i := r0; i < r1; i++ {
				for j := c0; j < c1; j++ {
					k := vort.idx(i, j)
					v := 0.2 * (vort.a.Data[k] + vort.a.Data[k-1] + vort.a.Data[k+1] +
						vort.a.Data[k-vort.side] + vort.a.Data[k+vort.side])
					c.r.Access(vort.a.Addr(k-1), false)
					c.r.Access(vort.a.Addr(k+1), false)
					c.r.Access(vort.a.Addr(k-vort.side), false)
					c.r.Access(vort.a.Addr(k+vort.side), false)
					c.r.Access(vort.a.Addr(k), true)
					c.r.Access(rhs.a.Addr(rhs.idx(i, j)), true)
					vort.a.Data[k] = v
					rhs.a.Data[rhs.idx(i, j)] = v
					c.Compute(7)
				}
			}
		})
		w.Barrier()

		// One multigrid V-cycle on psi.
		for l := 0; l < a.levels; l++ {
			interior := a.n >> l
			for sweep := 0; sweep < 2; sweep++ {
				for color := 0; color < 2; color++ {
					w.Parallel(func(c *Ctx) {
						a.relaxColor(c, gs[l], rs[l], interior, color, h2*float64(int(1)<<(2*l)))
					})
					w.Barrier()
				}
			}
			if l+1 < a.levels {
				w.Parallel(func(c *Ctx) {
					a.restrictTo(c, gs[l], rs[l], gs[l+1], rs[l+1], interior)
				})
				w.Barrier()
			}
		}
		for l := a.levels - 2; l >= 0; l-- {
			interior := a.n >> l
			w.Parallel(func(c *Ctx) {
				a.prolong(c, gs[l+1], gs[l], interior)
			})
			w.Barrier()
			for color := 0; color < 2; color++ {
				w.Parallel(func(c *Ctx) {
					a.relaxColor(c, gs[l], rs[l], interior, color, h2*float64(int(1)<<(2*l)))
				})
				w.Barrier()
			}
		}
	}

	t, err := w.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("ocean: %w", err)
	}
	return t, psi.a.Data, nil
}

func init() {
	register(Info{
		Name:        "ocean",
		Description: "Ocean simulation (red-black multigrid core)",
		Input:       "258x258 ocean (256 interior), 3 timesteps",
		Generate: func(p Params) (*trace.Trace, error) {
			t, _, err := GenerateOcean(p)
			return t, err
		},
	})
}
