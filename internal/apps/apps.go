package apps

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Params selects the size of a generated workload.
type Params struct {
	// CPUs is the processor count (the cluster's total).
	CPUs int

	// Scale divides the default problem size: 1 reproduces the paper's
	// regime (scaled to our simulation budget); larger values shrink the
	// problem for tests and quick runs. Values below 1 are treated as 1.
	Scale int

	// Seed perturbs the deterministic input generators.
	Seed uint64
}

func (p Params) norm() Params {
	if p.CPUs <= 0 {
		p.CPUs = 32
	}
	if p.Scale < 1 {
		p.Scale = 1
	}
	return p
}

// Info describes one application generator.
type Info struct {
	// Name is the benchmark name used on the command line and in
	// reports.
	Name string

	// Description is a one-line summary.
	Description string

	// Input describes the default (Scale=1) problem size, mirroring
	// Table 2 of the paper.
	Input string

	// Generate produces the trace.
	Generate func(p Params) (*trace.Trace, error)
}

var registry = map[string]Info{}

func register(i Info) {
	if _, dup := registry[i.Name]; dup {
		panic("apps: duplicate app " + i.Name)
	}
	registry[i.Name] = i
}

// All returns every registered application in name order.
func All() []Info {
	out := make([]Info, 0, len(registry))
	for _, i := range registry {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Paper returns the seven SPLASH-2 applications of Table 2 in the
// paper's presentation order.
func Paper() []Info {
	names := []string{"barnes", "cholesky", "fmm", "lu", "ocean", "radix", "raytrace"}
	out := make([]Info, 0, len(names))
	for _, n := range names {
		i, ok := registry[n]
		if !ok {
			panic("apps: paper app missing: " + n)
		}
		out = append(out, i)
	}
	return out
}

// Names returns every registered application name in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns the named application (surrounding whitespace
// ignored, so comma-separated flag values may contain spaces). An
// unknown name fails with an error that lists every registered
// application.
func ByName(name string) (Info, error) {
	i, ok := registry[strings.TrimSpace(name)]
	if !ok {
		return Info{}, fmt.Errorf("apps: unknown application %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return i, nil
}
