package apps

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
)

// TestLUFactorizationCorrect multiplies the computed L and U factors and
// compares against the original matrix.
func TestLUFactorizationCorrect(t *testing.T) {
	_, mat, n, _, err := GenerateLU(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the original matrix with the generator's seed.
	r := newRNG(12345)
	orig := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := r.float64() - 0.5
			if i == j {
				v += float64(n)
			}
			orig[i*n+j] = v
		}
	}
	at := func(i, j int) float64 { return mat.Data[i*n+j] }
	// Check A = L*U on a sample of entries (full check is O(n^3)).
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 5 {
			var s float64
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k <= kmax; k++ {
				l := at(i, k)
				if k == i {
					l = 1 // unit lower triangle
				}
				if k > i {
					l = 0
				}
				u := at(k, j)
				if k > j {
					u = 0
				}
				s += l * u
			}
			// add the remaining product terms: L(i,i)=1 handled above
			if math.Abs(s-orig[i*n+j]) > 1e-6*float64(n) {
				t.Fatalf("LU mismatch at (%d,%d): %g vs %g", i, j, s, orig[i*n+j])
			}
		}
	}
}

// TestCholeskyFactorizationCorrect verifies L*L^T against the original
// band matrix.
func TestCholeskyFactorizationCorrect(t *testing.T) {
	_, mat, nb, bw, b, err := GenerateCholesky(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := nb * b
	rowLen := (bw + 1) * b
	at := func(i, j int) float64 {
		if j > i || i-j > bw*b {
			return 0
		}
		col0 := i - bw*b
		return mat.Data[i*rowLen+(j-col0)]
	}
	// Rebuild the original.
	r := newRNG(2718)
	orig := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		lo := i - bw*b
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j++ {
			v := (r.float64() - 0.5) * 0.1
			if i == j {
				v = float64(bw*b) + 2 + r.float64()
			}
			orig[[2]int{i, j}] = v
		}
	}
	for i := 0; i < n; i += 11 {
		lo := i - bw*b
		if lo < 0 {
			lo = 0
		}
		for j := lo; j <= i; j += 3 {
			var s float64
			for k := 0; k <= j; k++ {
				s += at(i, k) * at(j, k)
			}
			if math.Abs(s-orig[[2]int{i, j}]) > 1e-6*float64(n) {
				t.Fatalf("LL^T mismatch at (%d,%d): %g vs %g", i, j, s, orig[[2]int{i, j}])
			}
		}
	}
}

// TestRadixSorts checks the output is a sorted permutation of the input.
func TestRadixSorts(t *testing.T) {
	_, keys, err := GenerateRadix(Params{CPUs: 32, Scale: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("not sorted at %d: %d > %d", i, keys[i-1], keys[i])
		}
	}
	// Same multiset as a fresh input generation.
	r := newRNG(777)
	want := make([]int32, len(keys))
	for i := range want {
		want[i] = int32(r.intn(1 << 20))
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("element %d = %d, want %d (not a permutation)", i, keys[i], want[i])
		}
	}
}

// TestFMMMatchesDirectSummation verifies the fast potentials against
// brute-force evaluation: the classic FMM acceptance test.
func TestFMMMatchesDirectSummation(t *testing.T) {
	_, pot, pos, q, err := GenerateFMM(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	n := len(pos)
	if n == 0 {
		t.Fatal("no particles")
	}
	// Compare the physical potential (the real part of the complex
	// potential): the imaginary part depends on log branch cuts and is
	// not comparable between summation orders.
	var maxRel float64
	for i := 0; i < n; i += max(1, n/40) {
		var direct complex128
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			direct += complex(q[j], 0) * cmplx.Log(pos[i]-pos[j])
		}
		num := math.Abs(real(pot[i]) - real(direct))
		den := math.Abs(real(direct)) + 1
		if rel := num / den; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.02 {
		t.Errorf("max relative potential error %.4f exceeds 2%%", maxRel)
	}
}

// TestOceanSolverConverges checks that the multigrid solve produced a
// stream function that actually reduces the Poisson residual.
func TestOceanSolverConverges(t *testing.T) {
	_, psi, err := GenerateOcean(Params{CPUs: 32, Scale: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(psi) == 0 {
		t.Fatal("empty grid")
	}
	var nonzero int
	for _, v := range psi {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("solver produced NaN/Inf")
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("solver left the grid identically zero")
	}
}

// TestBarnesConservation checks the N-body step kept bodies in the box
// and produced finite positions.
func TestBarnesConservation(t *testing.T) {
	_, pos, err := GenerateBarnes(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pos {
		for _, v := range []float64{p.x, p.y, p.z} {
			if math.IsNaN(v) || v < -0.01 || v > 1.01 {
				t.Fatalf("body %d escaped or diverged: %+v", i, p)
			}
		}
	}
}

// TestBarnesForcesNontrivial verifies gravity moved the system: the
// final positions differ from a pure drift.
func TestBarnesForcesNontrivial(t *testing.T) {
	_, a, err := GenerateBarnes(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := GenerateBarnes(Params{CPUs: 32, Scale: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical trajectories")
	}
}

// TestRaytraceRendersScene checks the framebuffer covers both sky and
// geometry.
func TestRaytraceRendersScene(t *testing.T) {
	_, fb, err := GenerateRaytrace(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	var mn, mx = math.Inf(1), math.Inf(-1)
	for _, v := range fb {
		if math.IsNaN(v) {
			t.Fatal("NaN pixel")
		}
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	if mx <= mn {
		t.Errorf("flat image: all pixels = %g", mn)
	}
	if mx > 2 || mn < 0 {
		t.Errorf("luminance out of range: [%g, %g]", mn, mx)
	}
}

// TestRaytraceDeterministic: identical params render identical images.
func TestRaytraceDeterministic(t *testing.T) {
	_, a, err := GenerateRaytrace(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := GenerateRaytrace(Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
