package apps

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

func TestWorldBarrierBalance(t *testing.T) {
	w := NewWorld("t", 4)
	w.Phase()
	w.Parallel(func(c *Ctx) { c.Compute(10) })
	w.Barrier()
	w.Barrier()
	tr, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Phase emits a leading barrier, so 3 total.
	if tr.Barriers != 3 {
		t.Errorf("barriers = %d, want 3", tr.Barriers)
	}
}

func TestWorldLockNames(t *testing.T) {
	w := NewWorld("t", 2)
	a := w.LockID("tree")
	b := w.LockID("queue")
	if a == b {
		t.Error("distinct names share a lock id")
	}
	if w.LockID("tree") != a {
		t.Error("lock id not stable")
	}
}

func TestTouchRangeCoversAllBlocks(t *testing.T) {
	w := NewWorld("t", 1)
	arr := w.AllocF64("x", 1024) // 8 KB = 128 blocks
	w.Phase()
	w.Parallel(func(c *Ctx) {
		c.TouchRange(arr.Addr(0), 1024*8, false)
	})
	tr := w.MustFinish()
	mem := 0
	for _, op := range tr.CPUs[0].Ops() {
		if op.Kind == trace.Read {
			mem++
		}
	}
	if mem != 128 {
		t.Errorf("touched %d blocks, want 128", mem)
	}
}

func TestTouchRecMultiBlockField(t *testing.T) {
	w := NewWorld("t", 1)
	rec := w.AllocRec("cells", 4, 128) // two blocks per record
	w.Parallel(func(c *Ctx) {
		c.TouchRec(rec, 1, 0, 128, true)
	})
	tr := w.MustFinish()
	writes := 0
	for _, op := range tr.CPUs[0].Ops() {
		if op.Kind == trace.Write {
			writes++
		}
	}
	if writes != 2 {
		t.Errorf("recorded %d writes, want 2 (128-byte field)", writes)
	}
}

func TestLoadStoreRecordAndCompute(t *testing.T) {
	w := NewWorld("t", 1)
	arr := w.AllocF64("x", 16)
	w.Parallel(func(c *Ctx) {
		c.Store(arr, 0, 4.5)
		if got := c.Load(arr, 0); got != 4.5 {
			t.Errorf("load = %v, want 4.5", got)
		}
		c.Update(arr, 0, func(v float64) float64 { return v * 2 })
	})
	if arr.Data[0] != 9 {
		t.Errorf("data = %v, want 9", arr.Data[0])
	}
}

func TestRegionsArePageDisjoint(t *testing.T) {
	w := NewWorld("t", 1)
	a := w.AllocF64("a", 1)
	b := w.AllocI64("b", 1)
	if a.Addr(0).Page() == b.Addr(0).Page() {
		t.Error("distinct allocations share a page")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng diverged")
		}
	}
	c := newRNG(43)
	diff := false
	for i := 0; i < 10; i++ {
		if newRNG(42).next() != c.next() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produce identical streams")
	}
}

func TestRNGBounds(t *testing.T) {
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.intn(17); v < 0 || v >= 17 {
			t.Fatalf("intn out of range: %d", v)
		}
		if f := r.float64(); f < 0 || f >= 1 {
			t.Fatalf("float64 out of range: %v", f)
		}
	}
}

func TestSyntheticKindsGenerate(t *testing.T) {
	kinds := []SyntheticKind{SynPrivate, SynReadShared, SynMigratory, SynWriteShared, SynStream, SynThrash}
	for _, k := range kinds {
		tr, err := GenerateSynthetic(k, SyntheticParams{CPUs: 32, KBPerNode: 64, Iters: 2})
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
		if tr.Ops() == 0 {
			t.Errorf("%s: empty trace", k)
		}
	}
	if _, err := GenerateSynthetic("nope", SyntheticParams{}); err == nil {
		t.Error("unknown synthetic kind accepted")
	}
}

func TestSyntheticFootprints(t *testing.T) {
	tr, err := GenerateSynthetic(SynThrash, SyntheticParams{CPUs: 32, KBPerNode: 256, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Thrash streams 4x the per-node quota.
	if tr.Footprint < 4*256*1024 {
		t.Errorf("thrash footprint = %d, want >= 1 MB", tr.Footprint)
	}
	_ = config.PageBytes
}
