package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// raytraceApp implements a real recursive ray tracer in the style of the
// SPLASH-2 raytrace benchmark. The paper's "car" model is proprietary, so
// the scene is procedural: thousands of spheres above a ground plane,
// organized in a bounding-volume hierarchy. The BVH and sphere records
// form a large read-shared structure every processor traverses — the
// sharing pattern that makes raytrace a page-replication candidate in the
// paper — while tiles of the image are handed out through a work queue
// whose lock traffic is modeled.
type raytraceApp struct {
	spheres int
	img     int // image side in pixels
	tile    int
	cpus    int
	seed    uint64
}

const (
	sphereBytes  = 64 // center(24) radius(8) color(24) flags(8)
	bvhNodeBytes = 64 // bbox(48) left/right/leaf info(16)
)

type sphere struct {
	center vec3
	radius float64
	color  vec3
	mirror bool
}

type bvhNode struct {
	min, max    vec3
	left, right int // children; leaf if left < 0
	first, num  int // sphere range when leaf
}

func newRaytrace(p Params) *raytraceApp {
	p = p.norm()
	s := 8192 / p.Scale
	if s < 32 {
		s = 32
	}
	img := 128
	if p.Scale > 1 {
		img = 64
	}
	return &raytraceApp{spheres: s, img: img, tile: 8, cpus: p.CPUs, seed: p.Seed}
}

// buildBVH constructs a median-split BVH over the sphere set, returning
// nodes and the leaf-ordered sphere permutation.
func buildBVH(sp []sphere) ([]bvhNode, []int) {
	order := make([]int, len(sp))
	for i := range order {
		order[i] = i
	}
	var nodes []bvhNode
	var build func(lo, hi, axis int) int
	build = func(lo, hi, axis int) int {
		idx := len(nodes)
		nodes = append(nodes, bvhNode{})
		mn := vec3{math.Inf(1), math.Inf(1), math.Inf(1)}
		mx := vec3{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
		for _, i := range order[lo:hi] {
			c, r := sp[i].center, sp[i].radius
			mn.x = math.Min(mn.x, c.x-r)
			mn.y = math.Min(mn.y, c.y-r)
			mn.z = math.Min(mn.z, c.z-r)
			mx.x = math.Max(mx.x, c.x+r)
			mx.y = math.Max(mx.y, c.y+r)
			mx.z = math.Max(mx.z, c.z+r)
		}
		n := bvhNode{min: mn, max: mx}
		if hi-lo <= 4 {
			n.left = -1
			n.first, n.num = lo, hi-lo
			nodes[idx] = n
			return idx
		}
		// median split on axis: nth-element by insertion into halves
		seg := order[lo:hi]
		key := func(i int) float64 {
			switch axis {
			case 0:
				return sp[i].center.x
			case 1:
				return sp[i].center.y
			default:
				return sp[i].center.z
			}
		}
		// simple deterministic sort of the segment by key
		for a := 1; a < len(seg); a++ {
			v := seg[a]
			b := a - 1
			for b >= 0 && key(seg[b]) > key(v) {
				seg[b+1] = seg[b]
				b--
			}
			seg[b+1] = v
		}
		mid := (lo + hi) / 2
		n.left = build(lo, mid, (axis+1)%3)
		n.right = build(mid, hi, (axis+1)%3)
		nodes[idx] = n
		return idx
	}
	build(0, len(sp), 0)
	return nodes, order
}

type ray struct {
	org, dir vec3
}

func dot(a, b vec3) float64 { return a.x*b.x + a.y*b.y + a.z*b.z }

// hitBox tests a ray against an AABB (slab method).
func hitBox(r ray, mn, mx vec3, tmax float64) bool {
	t0, t1 := 1e-4, tmax
	for ax := 0; ax < 3; ax++ {
		var o, d, lo, hi float64
		switch ax {
		case 0:
			o, d, lo, hi = r.org.x, r.dir.x, mn.x, mx.x
		case 1:
			o, d, lo, hi = r.org.y, r.dir.y, mn.y, mx.y
		default:
			o, d, lo, hi = r.org.z, r.dir.z, mn.z, mx.z
		}
		inv := 1 / d
		ta, tb := (lo-o)*inv, (hi-o)*inv
		if inv < 0 {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		if t0 > t1 {
			return false
		}
	}
	return true
}

// hitSphere returns the nearest intersection parameter, or -1.
func hitSphere(r ray, s *sphere) float64 {
	oc := r.org.sub(s.center)
	b := dot(oc, r.dir)
	c := dot(oc, oc) - s.radius*s.radius
	disc := b*b - c
	if disc < 0 {
		return -1
	}
	sq := math.Sqrt(disc)
	t := -b - sq
	if t > 1e-4 {
		return t
	}
	t = -b + sq
	if t > 1e-4 {
		return t
	}
	return -1
}

// GenerateRaytrace builds the trace and returns the framebuffer for
// verification.
func GenerateRaytrace(p Params) (*trace.Trace, []float64, error) {
	a := newRaytrace(p)
	w := NewWorld("raytrace", a.cpus)

	spRec := w.AllocRec("spheres", a.spheres, sphereBytes)
	// generous node bound: 2x leaves
	maxNodes := a.spheres
	if maxNodes < 64 {
		maxNodes = 64
	}
	nodeRec := w.AllocRec("bvh", maxNodes, bvhNodeBytes)
	orderArr := w.AllocI64("sphereorder", a.spheres)
	fb := w.AllocF64("framebuffer", a.img*a.img)

	sp := make([]sphere, a.spheres)
	r := newRNG(99991 + a.seed)
	var nodes []bvhNode
	var order []int

	w.Serial(func(c *Ctx) {
		for i := range sp {
			sp[i] = sphere{
				center: vec3{r.float64() * 10, 0.2 + r.float64()*3, r.float64() * 10},
				radius: 0.05 + r.float64()*0.12,
				color:  vec3{0.3 + r.float64()*0.7, 0.3 + r.float64()*0.7, 0.3 + r.float64()*0.7},
				mirror: i%4 == 0,
			}
			c.TouchRec(spRec, i, 0, sphereBytes, true)
		}
		nodes, order = buildBVH(sp)
		if len(nodes) > maxNodes {
			panic("raytrace: BVH node bound exceeded")
		}
		for i := range nodes {
			c.TouchRec(nodeRec, i, 0, bvhNodeBytes, true)
		}
		for i, o := range order {
			orderArr.Data[i] = int64(o)
			c.r.Access(orderArr.Addr(i), true)
		}
		c.Compute(a.spheres * 24)
	})
	w.Phase()

	light := vec3{5, 12, 5}
	camera := vec3{5, 2.5, -6}

	// traceRay returns the shaded color; depth limits mirror recursion.
	var traceRay func(c *Ctx, rr ray, depth int) vec3
	intersect := func(c *Ctx, rr ray) (int, float64) {
		best, bestT := -1, math.Inf(1)
		stack := []int{0}
		for len(stack) > 0 {
			ni := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := &nodes[ni]
			c.TouchRec(nodeRec, ni, 0, bvhNodeBytes, false)
			c.Compute(18)
			if !hitBox(rr, n.min, n.max, bestT) {
				continue
			}
			if n.left < 0 {
				for k := n.first; k < n.first+n.num; k++ {
					c.r.Access(orderArr.Addr(k), false)
					si := order[k]
					c.TouchRec(spRec, si, 0, 32, false)
					t := hitSphere(rr, &sp[si])
					c.Compute(22)
					if t > 0 && t < bestT {
						best, bestT = si, t
					}
				}
				continue
			}
			stack = append(stack, n.left, n.right)
		}
		return best, bestT
	}
	traceRay = func(c *Ctx, rr ray, depth int) vec3 {
		si, t := intersect(c, rr)
		// ground plane y=0
		if rr.dir.y < 0 {
			tp := -rr.org.y / rr.dir.y
			if tp > 1e-4 && tp < t {
				hitP := rr.org.add(rr.dir.scale(tp))
				// checker albedo
				cx, cz := int(math.Floor(hitP.x)), int(math.Floor(hitP.z))
				alb := 0.3
				if (cx+cz)&1 == 0 {
					alb = 0.9
				}
				// shadow ray
				toL := light.sub(hitP)
				d := math.Sqrt(dot(toL, toL))
				sray := ray{hitP, toL.scale(1 / d)}
				shadowed, _ := intersect(c, sray)
				c.Compute(30)
				if shadowed >= 0 {
					return vec3{alb * 0.1, alb * 0.1, alb * 0.1}
				}
				diff := math.Max(0, sray.dir.y)
				return vec3{alb * diff, alb * diff, alb * diff}
			}
		}
		if si < 0 {
			// sky
			u := 0.5 * (rr.dir.y + 1)
			return vec3{0.6 + 0.2*u, 0.7 + 0.2*u, 1.0}
		}
		hitP := rr.org.add(rr.dir.scale(t))
		norm := hitP.sub(sp[si].center).scale(1 / sp[si].radius)
		toL := light.sub(hitP)
		d := math.Sqrt(dot(toL, toL))
		ldir := toL.scale(1 / d)
		shadowed, _ := intersect(c, ray{hitP, ldir})
		diff := math.Max(0, dot(norm, ldir))
		if shadowed >= 0 {
			diff *= 0.1
		}
		col := sp[si].color.scale(0.15 + 0.85*diff)
		c.Compute(40)
		if sp[si].mirror && depth > 0 {
			rd := rr.dir.sub(norm.scale(2 * dot(rr.dir, norm)))
			rc := traceRay(c, ray{hitP, rd}, depth-1)
			col = col.scale(0.6).add(rc.scale(0.4))
		}
		return col
	}

	// Render: tiles are claimed through per-node work-queue locks in a
	// deterministic round-robin order (the SPLASH-2 distributed work
	// queues with stealing assign tiles dynamically; round-robin keeps
	// the trace deterministic while preserving the queue lock traffic
	// and the all-processors-read-the-scene pattern).
	tiles := (a.img / a.tile) * (a.img / a.tile)
	w.Parallel(func(c *Ctx) {
		qlock := c.w.LockID(fmt.Sprintf("tilequeue%d", c.CPU%8))
		tilesPerRow := a.img / a.tile
		for tIdx := c.CPU; tIdx < tiles; tIdx += c.N {
			c.Lock(qlock)
			c.Compute(30) // claim the tile
			c.Unlock(qlock)
			tx, ty := tIdx%tilesPerRow, tIdx/tilesPerRow
			for py := ty * a.tile; py < (ty+1)*a.tile; py++ {
				for px := tx * a.tile; px < (tx+1)*a.tile; px++ {
					u := (float64(px)/float64(a.img) - 0.5) * 1.6
					v := (0.5 - float64(py)/float64(a.img)) * 1.6
					dir := vec3{u, v + 0.25, 1}
					il := 1 / math.Sqrt(dot(dir, dir))
					col := traceRay(c, ray{camera, dir.scale(il)}, 1)
					lum := 0.2126*col.x + 0.7152*col.y + 0.0722*col.z
					c.Store(fb, py*a.img+px, lum)
					c.Compute(15)
				}
			}
		}
	})
	w.Barrier()

	t, err := w.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("raytrace: %w", err)
	}
	return t, fb.Data, nil
}

func init() {
	register(Info{
		Name:        "raytrace",
		Description: "3-D scene rendering using ray tracing",
		Input:       "8K-sphere procedural scene (substitutes 'car'), 128x128 image",
		Generate: func(p Params) (*trace.Trace, error) {
			t, _, err := GenerateRaytrace(p)
			return t, err
		},
	})
}
