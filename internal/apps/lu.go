package apps

import (
	"fmt"

	"repro/internal/trace"
)

// luApp implements the SPLASH-2 blocked dense LU factorization
// (non-contiguous variant): the matrix is a row-major two-dimensional
// array, so matrix rows run contiguously through the shared pages —
// blocks are assigned to processors in a 2D scatter (cyclic)
// decomposition, and every step factorizes the diagonal block, updates
// the perimeter row and column, then applies rank-B updates to the
// interior. Because a page spans a whole row, every row page is touched
// by many processors at every step below its pivot: the long-term remote
// reuse that distinguishes the paper's lu results. The factorization is
// real: tests verify L*U against the input matrix.
type luApp struct {
	n, b, nb int
	iters    int
	cpus     int

	w    *World
	mat  *F64 // working matrix, row-major
	orig *F64 // original matrix, read-shared by the per-iteration read phase

	rowsP, colsP int // processor grid
}

func newLU(p Params) *luApp {
	p = p.norm()
	n := 384 / p.Scale
	b := 16
	if n < 4*b {
		b = n / 4
		if b < 2 {
			b = 2
		}
	}
	n = (n / b) * b
	a := &luApp{n: n, b: b, nb: n / b, iters: 4, cpus: p.CPUs}
	// processor grid as square as possible
	a.rowsP = 1
	for a.rowsP*a.rowsP < p.CPUs {
		a.rowsP++
	}
	for p.CPUs%a.rowsP != 0 {
		a.rowsP--
	}
	a.colsP = p.CPUs / a.rowsP
	return a
}

// owner returns the processor owning block (I, J) under 2D scatter.
func (a *luApp) owner(I, J int) int {
	return (I%a.rowsP)*a.colsP + J%a.colsP
}

// at returns the matrix element (i, j) storage index (row-major).
func (a *luApp) at(i, j int) int { return i*a.n + j }

// touchBlock records one pass over block (I, J)'s storage: b row
// segments of b elements each.
func (a *luApp) touchBlock(c *Ctx, I, J int, write bool) {
	for r := 0; r < a.b; r++ {
		c.TouchRange(a.mat.Addr(a.at(I*a.b+r, J*a.b)), a.b*8, write)
	}
}

// generate builds the trace and returns the factored matrix for
// verification.
func (a *luApp) generate() (*trace.Trace, *F64, error) {
	w := NewWorld("lu", a.cpus)
	a.w = w
	a.mat = w.AllocF64("matrix", a.n*a.n)
	a.orig = w.AllocF64("original", a.n*a.n)
	b, nb := a.b, a.nb

	// Sequential initialization: a diagonally dominant matrix, written
	// by processor 0 as the original program's main thread does.
	r := newRNG(12345)
	w.Serial(func(c *Ctx) {
		for i := 0; i < a.n; i++ {
			for j := 0; j < a.n; j++ {
				v := r.float64() - 0.5
				if i == j {
					v += float64(a.n)
				}
				a.orig.Data[a.at(i, j)] = v
			}
			c.TouchRange(a.orig.Addr(a.at(i, 0)), a.n*8, true)
			c.Compute(a.n)
		}
	})
	w.Phase()

	// Parallel first-touch pass: every owner touches its working blocks
	// so first-touch placement matches the scatter decomposition.
	w.Parallel(func(c *Ctx) {
		for I := 0; I < nb; I++ {
			for J := 0; J < nb; J++ {
				if a.owner(I, J) != c.CPU {
					continue
				}
				a.touchBlock(c, I, J, true)
				c.Compute(b * b / 4)
			}
		}
	})
	w.Barrier()

	for iter := 0; iter < a.iters; iter++ {
		a.oneFactorization(w)
	}

	t, err := w.Finish()
	return t, a.mat, err
}

// oneFactorization performs the read phase — every owner re-reads its
// blocks of the original matrix, which stays read-shared across all
// nodes — followed by a full in-place factorization of the working
// matrix, as the paper describes for lu ("a read phase of reading the
// matrix to be factorized before the start of computation in each
// iteration").
func (a *luApp) oneFactorization(w *World) {
	b, nb := a.b, a.nb

	// Read phase part 1: two processors per node scan the whole original
	// matrix (checksum/validation pass). The original stays read-shared
	// across every node for the entire run — the page-replication
	// opportunity the paper attributes to lu.
	w.Parallel(func(c *Ctx) {
		if c.CPU%2 != 0 {
			return
		}
		for i := 0; i < a.n; i++ {
			c.TouchRange(a.orig.Addr(a.at(i, 0)), a.n*8, false)
			c.Compute(a.n / 4)
		}
	})
	w.Barrier()

	// Read phase part 2: owners copy their blocks into the working
	// matrix.
	w.Parallel(func(c *Ctx) {
		for I := 0; I < nb; I++ {
			for J := 0; J < nb; J++ {
				if a.owner(I, J) != c.CPU {
					continue
				}
				for rr := 0; rr < b; rr++ {
					src := a.at(I*b+rr, J*b)
					c.TouchRange(a.orig.Addr(src), b*8, false)
					c.TouchRange(a.mat.Addr(src), b*8, true)
					copy(a.mat.Data[src:src+b], a.orig.Data[src:src+b])
				}
				c.Compute(b * b / 2)
			}
		}
	})
	w.Barrier()

	for k := 0; k < nb; k++ {
		// Factor diagonal block (no pivoting; the matrix is diagonally
		// dominant).
		w.Parallel(func(c *Ctx) {
			if a.owner(k, k) != c.CPU {
				return
			}
			a.lu0(c, k)
		})
		w.Barrier()

		// Perimeter: column blocks solve against U11, row blocks
		// against L11.
		w.Parallel(func(c *Ctx) {
			for I := k + 1; I < nb; I++ {
				if a.owner(I, k) == c.CPU {
					a.bdiv(c, I, k)
				}
			}
			for J := k + 1; J < nb; J++ {
				if a.owner(k, J) == c.CPU {
					a.bmodd(c, k, J)
				}
			}
		})
		w.Barrier()

		// Interior rank-B updates.
		w.Parallel(func(c *Ctx) {
			for I := k + 1; I < nb; I++ {
				for J := k + 1; J < nb; J++ {
					if a.owner(I, J) == c.CPU {
						a.bmod(c, I, J, k)
					}
				}
			}
		})
		w.Barrier()
	}
}

// lu0 factorizes diagonal block k in place.
func (a *luApp) lu0(c *Ctx, k int) {
	b := a.b
	d := a.mat.Data
	for kk := 0; kk < b; kk++ {
		pivot := d[a.at(k*b+kk, k*b+kk)]
		for i := kk + 1; i < b; i++ {
			d[a.at(k*b+i, k*b+kk)] /= pivot
			l := d[a.at(k*b+i, k*b+kk)]
			for j := kk + 1; j < b; j++ {
				d[a.at(k*b+i, k*b+j)] -= l * d[a.at(k*b+kk, k*b+j)]
			}
		}
	}
	a.touchBlock(c, k, k, true)
	c.Compute(2 * b * b * b / 3)
}

// bdiv computes L(I,k) = A(I,k) * U(k,k)^-1.
func (a *luApp) bdiv(c *Ctx, I, k int) {
	b := a.b
	d := a.mat.Data
	for jj := 0; jj < b; jj++ {
		for i := 0; i < b; i++ {
			s := d[a.at(I*b+i, k*b+jj)]
			for x := 0; x < jj; x++ {
				s -= d[a.at(I*b+i, k*b+x)] * d[a.at(k*b+x, k*b+jj)]
			}
			d[a.at(I*b+i, k*b+jj)] = s / d[a.at(k*b+jj, k*b+jj)]
		}
	}
	a.touchBlock(c, k, k, false)
	a.touchBlock(c, I, k, true)
	c.Compute(b * b * b)
}

// bmodd computes U(k,J) = L(k,k)^-1 * A(k,J).
func (a *luApp) bmodd(c *Ctx, k, J int) {
	b := a.b
	d := a.mat.Data
	for ii := 0; ii < b; ii++ {
		for j := 0; j < b; j++ {
			s := d[a.at(k*b+ii, J*b+j)]
			for x := 0; x < ii; x++ {
				s -= d[a.at(k*b+ii, k*b+x)] * d[a.at(k*b+x, J*b+j)]
			}
			d[a.at(k*b+ii, J*b+j)] = s
		}
	}
	a.touchBlock(c, k, k, false)
	a.touchBlock(c, k, J, true)
	c.Compute(b * b * b)
}

// bmod applies A(I,J) -= L(I,k) * U(k,J).
func (a *luApp) bmod(c *Ctx, I, J, k int) {
	b := a.b
	d := a.mat.Data
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			s := d[a.at(I*b+i, J*b+j)]
			for x := 0; x < b; x++ {
				s -= d[a.at(I*b+i, k*b+x)] * d[a.at(k*b+x, J*b+j)]
			}
			d[a.at(I*b+i, J*b+j)] = s
		}
	}
	a.touchBlock(c, I, k, false)
	a.touchBlock(c, k, J, false)
	a.touchBlock(c, I, J, true)
	c.Compute(2 * b * b * b)
}

// GenerateLU builds the LU trace and also returns the factored matrix in
// block-contiguous storage along with the geometry, for verification.
func GenerateLU(p Params) (*trace.Trace, *F64, int, int, error) {
	a := newLU(p)
	t, mat, err := a.generate()
	return t, mat, a.n, a.b, err
}

func init() {
	register(Info{
		Name:        "lu",
		Description: "Blocked dense LU factorization",
		Input:       "384x384 matrix, 16x16 blocks, 4 iterations",
		Generate: func(p Params) (*trace.Trace, error) {
			t, _, _, _, err := GenerateLU(p)
			if err != nil {
				return nil, fmt.Errorf("lu: %w", err)
			}
			return t, nil
		},
	})
}
