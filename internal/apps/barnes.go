package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// barnesApp implements the SPLASH-2 Barnes-Hut hierarchical N-body
// simulation: an octree is rebuilt every timestep under hashed cell
// locks, centers of mass propagate bottom-up, and each processor computes
// softened gravitational forces on its bodies by traversing the tree with
// the opening criterion theta, then integrates positions. The octree
// cells are the read-write shared-at-high-degree data the paper's
// analysis centers on.
type barnesApp struct {
	n     int
	steps int
	theta float64
	cpus  int
	seed  uint64
}

const (
	bodyBytes = 96  // pos(24) vel(24) acc(24) mass(8) pad
	cellBytes = 128 // children(64) com(24) mass(8) count(8) pad

	bodyPosOff  = 0
	bodyVelOff  = 24
	bodyAccOff  = 48
	bodyMassOff = 72

	cellChildOff = 0
	cellComOff   = 64 // com + mass together: 32 bytes, one block
)

type vec3 struct{ x, y, z float64 }

func (a vec3) add(b vec3) vec3      { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec3) sub(b vec3) vec3      { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) scale(s float64) vec3 { return vec3{a.x * s, a.y * s, a.z * s} }

// cell is one octree internal node. children >= 0 index cells; values of
// -(b+2) reference body b; empty slots hold -1.
type cell struct {
	children [8]int
	com      vec3
	mass     float64
	count    int
}

func newBarnes(p Params) *barnesApp {
	p = p.norm()
	n := 4096 / p.Scale
	if n < 64 {
		n = 64
	}
	return &barnesApp{n: n, steps: 3, theta: 0.9, cpus: p.CPUs, seed: p.Seed}
}

// GenerateBarnes builds the trace and returns the final body positions
// for verification.
func GenerateBarnes(p Params) (*trace.Trace, []vec3, error) {
	a := newBarnes(p)
	w := NewWorld("barnes", a.cpus)

	bodies := w.AllocRec("bodies", a.n, bodyBytes)
	maxCells := 2 * a.n
	cellsRec := w.AllocRec("cells", maxCells, cellBytes)

	pos := make([]vec3, a.n)
	vel := make([]vec3, a.n)
	acc := make([]vec3, a.n)
	mass := make([]float64, a.n)

	cells := make([]cell, 0, maxCells)
	var root int

	// Plummer-like initial distribution.
	r := newRNG(4242 + a.seed)
	w.Serial(func(c *Ctx) {
		for i := 0; i < a.n; i++ {
			pos[i] = vec3{r.float64(), r.float64(), r.float64()}
			vel[i] = vec3{r.float64() - 0.5, r.float64() - 0.5, r.float64() - 0.5}.scale(0.01)
			mass[i] = 1.0 / float64(a.n)
			c.TouchRec(bodies, i, 0, bodyBytes, true)
		}
		c.Compute(a.n * 8)
	})
	w.Phase()

	per := (a.n + a.cpus - 1) / a.cpus
	partition := func(cpu int) (lo, hi int) {
		lo, hi = cpu*per, (cpu+1)*per
		if hi > a.n {
			hi = a.n
		}
		if lo > hi {
			lo = hi
		}
		return
	}

	// Parallel first touch of body partitions.
	w.Parallel(func(c *Ctx) {
		lo, hi := partition(c.CPU)
		for i := lo; i < hi; i++ {
			c.TouchRec(bodies, i, 0, bodyBytes, false)
		}
		c.Compute(hi - lo)
	})
	w.Barrier()

	const nlocks = 64
	lockFor := func(cellIdx int) int { return cellIdx % nlocks }
	dt := 0.01
	eps2 := 1e-4

	for step := 0; step < a.steps; step++ {
		// --- Tree build: cells reset, then parallel insertion under
		// hashed locks.
		cells = cells[:0]
		cells = append(cells, cell{children: [8]int{-1, -1, -1, -1, -1, -1, -1, -1}})
		root = 0
		w.Serial(func(c *Ctx) {
			c.TouchRec(cellsRec, root, 0, cellBytes, true)
		})
		w.Barrier()

		w.Parallel(func(c *Ctx) {
			lo, hi := partition(c.CPU)
			for i := lo; i < hi; i++ {
				c.TouchRec(bodies, i, bodyPosOff, 24, false)
				a.insert(c, cellsRec, &cells, root, i, pos, vec3{0.5, 0.5, 0.5}, 0.5, lockFor)
			}
		})
		w.Barrier()

		// --- Center-of-mass propagation (processor 0 walks the tree;
		// SPLASH parallelizes this, but it is a small fraction of the
		// work and the sharing pattern — every cell written once more —
		// is preserved).
		w.Serial(func(c *Ctx) {
			a.computeCOM(c, cellsRec, cells, root, pos, mass)
		})
		w.Barrier()

		// --- Force computation: each processor traverses the shared
		// tree for its bodies.
		w.Parallel(func(c *Ctx) {
			lo, hi := partition(c.CPU)
			for i := lo; i < hi; i++ {
				c.TouchRec(bodies, i, bodyPosOff, 24, false)
				f := a.force(c, cellsRec, cells, bodies, root, i, pos, mass, 1.0, eps2)
				acc[i] = f
				c.TouchRec(bodies, i, bodyAccOff, 24, true)
			}
		})
		w.Barrier()

		// --- Integration: leapfrog update of the local partition.
		w.Parallel(func(c *Ctx) {
			lo, hi := partition(c.CPU)
			for i := lo; i < hi; i++ {
				vel[i] = vel[i].add(acc[i].scale(dt))
				pos[i] = pos[i].add(vel[i].scale(dt))
				// keep bodies inside the unit box (reflecting walls)
				if pos[i].x < 0 || pos[i].x > 1 {
					vel[i].x = -vel[i].x
					pos[i].x = math.Min(1, math.Max(0, pos[i].x))
				}
				if pos[i].y < 0 || pos[i].y > 1 {
					vel[i].y = -vel[i].y
					pos[i].y = math.Min(1, math.Max(0, pos[i].y))
				}
				if pos[i].z < 0 || pos[i].z > 1 {
					vel[i].z = -vel[i].z
					pos[i].z = math.Min(1, math.Max(0, pos[i].z))
				}
				c.TouchRec(bodies, i, bodyAccOff, 24, false)
				c.TouchRec(bodies, i, bodyPosOff, 48, true)
				c.Compute(20)
			}
		})
		w.Barrier()
	}

	t, err := w.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("barnes: %w", err)
	}
	return t, pos, nil
}

// octant returns the child slot of p relative to center.
func octant(p, center vec3) int {
	o := 0
	if p.x >= center.x {
		o |= 1
	}
	if p.y >= center.y {
		o |= 2
	}
	if p.z >= center.z {
		o |= 4
	}
	return o
}

func childCenter(center vec3, half float64, o int) vec3 {
	h := half / 2
	c := center
	if o&1 != 0 {
		c.x += h
	} else {
		c.x -= h
	}
	if o&2 != 0 {
		c.y += h
	} else {
		c.y -= h
	}
	if o&4 != 0 {
		c.z += h
	} else {
		c.z -= h
	}
	return c
}

// insert adds body i into the tree under hashed cell locks, splitting
// leaves as needed, recording the cell accesses.
func (a *barnesApp) insert(c *Ctx, rec *Rec, cells *[]cell, node, body int,
	pos []vec3, center vec3, half float64, lockFor func(int) int) {
	for depth := 0; depth < 64; depth++ {
		o := octant(pos[body], center)
		lid := c.w.LockID(fmt.Sprintf("cell%d", lockFor(node)))
		c.Lock(lid)
		c.TouchRec(rec, node, cellChildOff+o*8, 8, false)
		ch := (*cells)[node].children[o]
		switch {
		case ch == -1:
			// empty slot: place the body
			(*cells)[node].children[o] = -(body + 2)
			(*cells)[node].count++
			c.TouchRec(rec, node, cellChildOff+o*8, 8, true)
			c.Unlock(lid)
			return
		case ch <= -2:
			// occupied by a body: split into a new cell
			other := -(ch + 2)
			if len(*cells) >= cap(*cells) {
				c.Unlock(lid)
				return // cell pool exhausted; drop (cannot happen with 2n pool)
			}
			*cells = append(*cells, cell{children: [8]int{-1, -1, -1, -1, -1, -1, -1, -1}})
			nc := len(*cells) - 1
			cc := childCenter(center, half, o)
			oo := octant(pos[other], cc)
			(*cells)[nc].children[oo] = -(other + 2)
			(*cells)[nc].count++
			(*cells)[node].children[o] = nc
			c.TouchRec(rec, nc, 0, cellBytes, true)
			c.TouchRec(rec, node, cellChildOff+o*8, 8, true)
			c.Unlock(lid)
			center, half = cc, half/2
			node = nc
			c.Compute(12)
		default:
			// descend into existing cell
			c.Unlock(lid)
			center, half = childCenter(center, half, o), half/2
			node = ch
			c.Compute(8)
		}
	}
}

// computeCOM fills in each cell's total mass and center of mass.
func (a *barnesApp) computeCOM(c *Ctx, rec *Rec, cells []cell, node int,
	pos []vec3, mass []float64) (vec3, float64) {
	var com vec3
	var m float64
	for o := 0; o < 8; o++ {
		ch := cells[node].children[o]
		if ch == -1 {
			continue
		}
		if ch <= -2 {
			b := -(ch + 2)
			com = com.add(pos[b].scale(mass[b]))
			m += mass[b]
			continue
		}
		cc, cm := a.computeCOM(c, rec, cells, ch, pos, mass)
		com = com.add(cc.scale(cm))
		m += cm
	}
	if m > 0 {
		com = com.scale(1 / m)
	}
	cells[node].com = com
	cells[node].mass = m
	c.TouchRec(rec, node, 0, cellBytes, true)
	c.Compute(30)
	return com, m
}

// force computes the softened gravitational acceleration on body i via
// Barnes-Hut traversal, recording cell and body reads.
func (a *barnesApp) force(c *Ctx, rec *Rec, cells []cell, bodies *Rec,
	node, i int, pos []vec3, mass []float64, size float64, eps2 float64) vec3 {
	var acc vec3
	type frame struct {
		node int
		size float64
	}
	stack := []frame{{node, size}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cl := &cells[f.node]
		c.TouchRec(rec, f.node, cellComOff, 32, false)
		d := cl.com.sub(pos[i])
		dist2 := d.x*d.x + d.y*d.y + d.z*d.z + eps2
		if f.size*f.size < a.theta*a.theta*dist2 {
			// far enough: use the cell's aggregate
			inv := 1 / math.Sqrt(dist2)
			acc = acc.add(d.scale(cl.mass * inv * inv * inv))
			c.Compute(28)
			continue
		}
		for o := 0; o < 8; o++ {
			ch := cl.children[o]
			if ch == -1 {
				continue
			}
			if ch <= -2 {
				b := -(ch + 2)
				if b == i {
					continue
				}
				c.TouchRec(bodies, b, bodyPosOff, 24, false)
				c.TouchRec(bodies, b, bodyMassOff, 8, false)
				db := pos[b].sub(pos[i])
				r2 := db.x*db.x + db.y*db.y + db.z*db.z + eps2
				inv := 1 / math.Sqrt(r2)
				acc = acc.add(db.scale(mass[b] * inv * inv * inv))
				c.Compute(28)
				continue
			}
			stack = append(stack, frame{ch, f.size / 2})
		}
	}
	return acc
}

func init() {
	register(Info{
		Name:        "barnes",
		Description: "Barnes-Hut hierarchical N-body simulation",
		Input:       "4K particles, 3 timesteps, theta=0.9",
		Generate: func(p Params) (*trace.Trace, error) {
			t, _, err := GenerateBarnes(p)
			return t, err
		},
	})
}
