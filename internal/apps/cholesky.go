package apps

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// choleskyApp implements a blocked sparse Cholesky factorization in the
// style of the SPLASH-2 cholesky benchmark. The paper's input (tk16.O) is
// a proprietary matrix file we do not have, so we substitute a synthetic
// block-banded symmetric positive-definite matrix: the band keeps all
// fill inside the stored structure while preserving the kernel's
// characteristics the paper discusses — blocks are written once, read a
// few times shortly after by other processors' updates, and then go dead
// (low page reuse), and column tasks are handed out through a shared
// queue whose lock traffic is modeled.
type choleskyApp struct {
	nb   int // block columns
	bw   int // half bandwidth in blocks
	b    int // block size
	cpus int
}

func newCholesky(p Params) *choleskyApp {
	p = p.norm()
	nb := 80 / p.Scale
	if nb < 8 {
		nb = 8
	}
	bw := 12
	if bw >= nb {
		bw = nb - 1
	}
	return &choleskyApp{nb: nb, bw: bw, b: 16, cpus: p.CPUs}
}

// rowLen is the stored width of one matrix row: the full band.
func (a *choleskyApp) rowLen() int { return (a.bw + 1) * a.b }

// at returns the storage index of element (i, j) in row-major band
// layout: row i stores columns [i-bw*b, i] contiguously. Row-major
// storage means consecutive matrix rows share pages, so a page is
// touched by every factorization step whose band covers those rows —
// the cross-step reuse the paper's cholesky traffic exhibits.
func (a *choleskyApp) at(i, j int) int {
	col0 := i - a.bw*a.b
	return i*a.rowLen() + (j - col0)
}

// GenerateCholesky builds the trace and returns the factor storage plus
// geometry for verification (band layout, L in the lower band).
func GenerateCholesky(p Params) (*trace.Trace, *F64, int, int, int, error) {
	a := newCholesky(p)
	w := NewWorld("cholesky", a.cpus)
	b, nb, bw := a.b, a.nb, a.bw

	mat := w.AllocF64("band", nb*b*a.rowLen())
	// touch records one pass over block (I, J): b row segments.
	touch := func(c *Ctx, I, J int, write bool) {
		for r := 0; r < b; r++ {
			c.TouchRange(mat.Addr(a.at(I*b+r, J*b)), b*8, write)
		}
	}

	// Synthetic SPD band matrix: random off-diagonal entries, strongly
	// dominant diagonal.
	r := newRNG(2718)
	w.Serial(func(c *Ctx) {
		n := nb * b
		for i := 0; i < n; i++ {
			lo := i - bw*b
			if lo < 0 {
				lo = 0
			}
			for j := lo; j <= i; j++ {
				v := (r.float64() - 0.5) * 0.1
				if i == j {
					v = float64(bw*b) + 2 + r.float64()
				}
				mat.Data[a.at(i, j)] = v
			}
			c.TouchRange(mat.Addr(a.at(i, lo)), (i-lo+1)*8, true)
			c.Compute(i - lo + 1)
		}
	})
	w.Phase()

	// owner of block column j (supernode distribution)
	owner := func(j int) int { return j % a.cpus }

	// Parallel first touch: owners touch their block columns.
	w.Parallel(func(c *Ctx) {
		for j := 0; j < nb; j++ {
			if owner(j) != c.CPU {
				continue
			}
			for i := j; i < nb && i-j <= bw; i++ {
				touch(c, i, j, false)
			}
			c.Compute(b * b / 4)
		}
	})
	w.Barrier()

	d := mat.Data
	for k := 0; k < nb; k++ {
		kk := k
		// Factor the diagonal block: dense Cholesky in place.
		w.Parallel(func(c *Ctx) {
			if owner(kk) != c.CPU {
				return
			}
			qlock := c.w.LockID(fmt.Sprintf("queue%d", c.CPU%8))
			c.Lock(qlock)
			c.Compute(40) // dequeue the supernode task
			c.Unlock(qlock)
			o := kk * b // first global row/col of the block
			for p0 := 0; p0 < b; p0++ {
				s := d[a.at(o+p0, o+p0)]
				for x := 0; x < p0; x++ {
					s -= d[a.at(o+p0, o+x)] * d[a.at(o+p0, o+x)]
				}
				d[a.at(o+p0, o+p0)] = math.Sqrt(s)
				for i := p0 + 1; i < b; i++ {
					s := d[a.at(o+i, o+p0)]
					for x := 0; x < p0; x++ {
						s -= d[a.at(o+i, o+x)] * d[a.at(o+p0, o+x)]
					}
					d[a.at(o+i, o+p0)] = s / d[a.at(o+p0, o+p0)]
				}
			}
			// zero the strict upper triangle of the factor block
			for p0 := 0; p0 < b; p0++ {
				for x := p0 + 1; x < b; x++ {
					d[a.at(o+p0, o+x)] = 0
				}
			}
			touch(c, kk, kk, true)
			c.Compute(b * b * b / 3)
		})
		w.Barrier()

		// Triangular solves: L(i,k) = A(i,k) * L(k,k)^-T.
		w.Parallel(func(c *Ctx) {
			for i := kk + 1; i < nb && i-kk <= bw; i++ {
				if owner(i) != c.CPU {
					continue
				}
				ro, co := i*b, kk*b
				for row := 0; row < b; row++ {
					for col := 0; col < b; col++ {
						s := d[a.at(ro+row, co+col)]
						for x := 0; x < col; x++ {
							s -= d[a.at(ro+row, co+x)] * d[a.at(co+col, co+x)]
						}
						d[a.at(ro+row, co+col)] = s / d[a.at(co+col, co+col)]
					}
				}
				touch(c, kk, kk, false)
				touch(c, i, kk, true)
				c.Compute(b * b * b)
			}
		})
		w.Barrier()

		// Trailing updates: A(i,j) -= L(i,k) * L(j,k)^T within the band.
		w.Parallel(func(c *Ctx) {
			for j := kk + 1; j < nb && j-kk <= bw; j++ {
				if owner(j) != c.CPU {
					continue
				}
				for i := j; i < nb && i-kk <= bw && i-j <= bw; i++ {
					io, jo, ko := i*b, j*b, kk*b
					for row := 0; row < b; row++ {
						for col := 0; col < b; col++ {
							s := d[a.at(io+row, jo+col)]
							for x := 0; x < b; x++ {
								s -= d[a.at(io+row, ko+x)] * d[a.at(jo+col, ko+x)]
							}
							d[a.at(io+row, jo+col)] = s
						}
					}
					touch(c, i, kk, false)
					touch(c, j, kk, false)
					touch(c, i, j, true)
					c.Compute(2 * b * b * b)
				}
			}
		})
		w.Barrier()
	}

	t, err := w.Finish()
	if err != nil {
		return nil, nil, 0, 0, 0, fmt.Errorf("cholesky: %w", err)
	}
	return t, mat, nb, bw, b, nil
}

func init() {
	register(Info{
		Name:        "cholesky",
		Description: "Blocked sparse Cholesky factorization",
		Input:       "synthetic SPD band matrix, 80 block cols, bw 12, 16x16 blocks (substitutes tk16.O)",
		Generate: func(p Params) (*trace.Trace, error) {
			t, _, _, _, _, err := GenerateCholesky(p)
			return t, err
		},
	})
}
