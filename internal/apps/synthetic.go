package apps

import (
	"fmt"

	"repro/internal/trace"
)

// SyntheticKind selects a parameterized sharing-pattern microworkload.
// These exist to exercise specific protocol behaviours in isolation:
// unit tests assert that each system reacts to them the way the paper's
// qualitative analysis (Table 1) predicts.
type SyntheticKind string

const (
	// SynPrivate streams over per-processor private regions; after
	// first touch there is no remote traffic.
	SynPrivate SyntheticKind = "private"

	// SynReadShared has every processor repeatedly read one node's
	// region: a page replication candidate.
	SynReadShared SyntheticKind = "readshared"

	// SynMigratory moves a region's exclusive user from node to node in
	// long phases: a page migration candidate.
	SynMigratory SyntheticKind = "migratory"

	// SynWriteShared has all processors read and write one region at
	// fine grain: high-degree read-write sharing that only fine-grain
	// caching helps.
	SynWriteShared SyntheticKind = "writeshared"

	// SynStream has every processor stream repeatedly over a region far
	// larger than the block cache but fitting main memory: the
	// capacity-miss pattern R-NUMA relocations absorb.
	SynStream SyntheticKind = "stream"

	// SynThrash is SynStream with a footprint exceeding the page cache,
	// forcing R-NUMA page replacement.
	SynThrash SyntheticKind = "thrash"
)

// SyntheticParams sizes a synthetic workload.
type SyntheticParams struct {
	CPUs int
	// KBPerNode is the region footprint per owning node in KB.
	KBPerNode int
	// Iters is the number of sweeps.
	Iters int
}

// GenerateSynthetic builds a microworkload trace.
func GenerateSynthetic(kind SyntheticKind, sp SyntheticParams) (*trace.Trace, error) {
	if sp.CPUs <= 0 {
		sp.CPUs = 32
	}
	if sp.KBPerNode <= 0 {
		sp.KBPerNode = 256
	}
	if sp.Iters <= 0 {
		sp.Iters = 8
	}
	w := NewWorld("synthetic-"+string(kind), sp.CPUs)
	bytesPer := sp.KBPerNode * 1024

	switch kind {
	case SynPrivate:
		regs := make([]*F64, sp.CPUs)
		for i := range regs {
			regs[i] = w.AllocF64(fmt.Sprintf("priv%d", i), bytesPer/8)
		}
		w.Phase()
		w.ParallelIndep(func(c *Ctx) {
			c.TouchRange(regs[c.CPU].Addr(0), bytesPer, true)
		})
		w.Barrier()
		for it := 0; it < sp.Iters; it++ {
			w.ParallelIndep(func(c *Ctx) {
				c.TouchRange(regs[c.CPU].Addr(0), bytesPer, false)
				c.TouchRange(regs[c.CPU].Addr(0), bytesPer, true)
				c.Compute(bytesPer / 16)
			})
			w.Barrier()
		}

	case SynReadShared:
		shared := w.AllocF64("hot", bytesPer/8)
		w.Phase()
		// cpu 0's node owns the region
		w.ParallelIndep(func(c *Ctx) {
			if c.CPU == 0 {
				c.TouchRange(shared.Addr(0), bytesPer, true)
			}
		})
		w.Barrier()
		for it := 0; it < sp.Iters; it++ {
			w.ParallelIndep(func(c *Ctx) {
				c.TouchRange(shared.Addr(0), bytesPer, false)
				c.Compute(bytesPer / 32)
			})
			w.Barrier()
		}

	case SynMigratory:
		shared := w.AllocF64("mig", bytesPer/8)
		w.Phase()
		w.ParallelIndep(func(c *Ctx) {
			if c.CPU == 0 {
				c.TouchRange(shared.Addr(0), bytesPer, true)
			}
		})
		w.Barrier()
		// Each phase, a single processor on a different node owns the
		// region exclusively and sweeps it many times.
		for ph := 0; ph < sp.Iters; ph++ {
			ownerCPU := (ph % (sp.CPUs / 4)) * 4 // one CPU per node in turn
			w.ParallelIndep(func(c *Ctx) {
				if c.CPU != ownerCPU {
					return
				}
				for s := 0; s < 12; s++ {
					c.TouchRange(shared.Addr(0), bytesPer, false)
					c.TouchRange(shared.Addr(0), bytesPer, true)
					c.Compute(bytesPer / 16)
				}
			})
			w.Barrier()
		}

	case SynWriteShared:
		shared := w.AllocF64("ws", bytesPer/8)
		n := bytesPer / 8
		w.Phase()
		w.ParallelIndep(func(c *Ctx) {
			if c.CPU == 0 {
				c.TouchRange(shared.Addr(0), bytesPer, true)
			}
		})
		w.Barrier()
		r := newRNG(5)
		for it := 0; it < sp.Iters; it++ {
			seeds := make([]uint64, sp.CPUs)
			for i := range seeds {
				seeds[i] = r.next()
			}
			w.Parallel(func(c *Ctx) {
				lr := newRNG(seeds[c.CPU])
				for k := 0; k < n/sp.CPUs; k++ {
					i := lr.intn(n)
					if k%4 == 0 {
						c.Store(shared, i, float64(k))
					} else {
						c.Load(shared, i)
					}
					c.Compute(4)
				}
			})
			w.Barrier()
		}

	case SynStream, SynThrash:
		// Region owned by node 0; all other nodes stream it.
		mult := 1
		if kind == SynThrash {
			mult = 4
		}
		total := bytesPer * mult
		shared := w.AllocF64("big", total/8)
		w.Phase()
		w.ParallelIndep(func(c *Ctx) {
			if c.CPU == 0 {
				c.TouchRange(shared.Addr(0), total, true)
			}
		})
		w.Barrier()
		for it := 0; it < sp.Iters; it++ {
			w.ParallelIndep(func(c *Ctx) {
				if c.CPU%4 != 0 || c.CPU == 0 {
					return
				}
				c.TouchRange(shared.Addr(0), total, false)
				c.Compute(total / 32)
			})
			w.Barrier()
		}

	default:
		return nil, fmt.Errorf("apps: unknown synthetic kind %q", kind)
	}

	return w.Finish()
}

func init() {
	register(Info{
		Name:        "synthetic",
		Description: "Parameterized sharing-pattern microworkload (writeshared variant)",
		Input:       "256 KB/node, 8 sweeps",
		Generate: func(p Params) (*trace.Trace, error) {
			p = p.norm()
			return GenerateSynthetic(SynWriteShared, SyntheticParams{CPUs: p.CPUs, KBPerNode: 256 / p.Scale * 4, Iters: 8})
		},
	})
	register(Info{
		Name:        "migratory",
		Description: "Migratory-sharing microworkload (region ownership ping-pongs between nodes)",
		Input:       "1 MB/node, 8 phases",
		Generate: func(p Params) (*trace.Trace, error) {
			p = p.norm()
			kb := 1024 / p.Scale
			if kb < 32 {
				kb = 32
			}
			return GenerateSynthetic(SynMigratory, SyntheticParams{CPUs: p.CPUs, KBPerNode: kb, Iters: 8})
		},
	})
}
