// Package apps contains the shared-memory application generators: Go
// implementations of the seven SPLASH-2 codes the paper evaluates
// (barnes, cholesky, fmm, lu, ocean, radix, raytrace), plus synthetic
// microworkloads used by tests and ablations. Each application actually
// computes its result while recording the shared-memory accesses of every
// simulated processor into a dependence-preserving trace.
//
// Applications are written in a fork-join SPMD style against a World: a
// sequence of Parallel segments separated by Barriers. Within one segment
// the per-processor bodies either touch disjoint shared data or serialize
// through Locks, so generating them sequentially (CPU 0, then CPU 1, ...)
// produces one legal parallel interleaving. This mirrors how the paper's
// applications are structured and keeps trace generation deterministic.
// Segments whose bodies are fully independent in Go data (record-only
// sweeps: TouchRange plus Compute) may use ParallelIndep instead, which
// fans the per-processor bodies out over goroutines — recorders are
// per-processor, so the resulting trace is byte-identical to the
// sequential schedule and only generation wall-clock changes.
package apps

import (
	"fmt"
	"sync"

	"repro/internal/memory"
	"repro/internal/trace"
)

// World owns the simulated shared address space and the per-processor
// trace recorders of one application run.
type World struct {
	name  string
	ncpu  int
	alloc *memory.Allocator
	recs  []*trace.Recorder

	nextBarrier int
	nextLock    int
	lockIDs     map[string]int
}

// NewWorld creates a world for an application running on ncpus
// processors.
func NewWorld(name string, ncpus int) *World {
	if ncpus <= 0 {
		panic("apps: world needs at least one cpu")
	}
	w := &World{
		name:    name,
		ncpu:    ncpus,
		alloc:   memory.NewAllocator(),
		recs:    make([]*trace.Recorder, ncpus),
		lockIDs: make(map[string]int),
	}
	for i := range w.recs {
		w.recs[i] = trace.NewRecorder()
	}
	return w
}

// NumCPUs returns the processor count.
func (w *World) NumCPUs() int { return w.ncpu }

// Ctx is the per-processor view of the world inside a Parallel segment.
type Ctx struct {
	// CPU is this processor's id in [0, N).
	CPU int
	// N is the total processor count.
	N int

	w *World
	r *trace.Recorder
}

// Parallel runs body once per processor. Bodies must confine themselves
// to their data partition or serialize through locks; they must not call
// Barrier (use World.Barrier between segments).
func (w *World) Parallel(body func(c *Ctx)) {
	for i := 0; i < w.ncpu; i++ {
		body(&Ctx{CPU: i, N: w.ncpu, w: w, r: w.recs[i]})
	}
}

// ParallelIndep is Parallel for bodies whose per-processor work is fully
// independent in Go data: each body may record (recorders are
// per-processor), charge compute, and read data no concurrent body
// writes, but must not mutate shared Go state or allocate/name locks.
// Such segments fan out over real goroutines — the trace is byte-
// identical to the sequential schedule, only generation wall-clock
// changes. Generators whose bodies carry real data dependences (the
// SPLASH kernels compute actual results) must keep using Parallel.
func (w *World) ParallelIndep(body func(c *Ctx)) {
	if w.ncpu == 1 {
		w.Parallel(body)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w.ncpu)
	for i := 0; i < w.ncpu; i++ {
		go func(i int) {
			defer wg.Done()
			body(&Ctx{CPU: i, N: w.ncpu, w: w, r: w.recs[i]})
		}(i)
	}
	wg.Wait()
}

// Serial runs body on processor 0 only (sequential sections).
func (w *World) Serial(body func(c *Ctx)) {
	body(&Ctx{CPU: 0, N: w.ncpu, w: w, r: w.recs[0]})
}

// Barrier emits a global barrier on every processor.
func (w *World) Barrier() {
	id := w.nextBarrier
	w.nextBarrier++
	for _, r := range w.recs {
		r.Barrier(id)
	}
}

// Phase emits the start-of-parallel-phase marker on every processor;
// first-touch placement applies from here on. A barrier precedes the
// markers so that sequential initialization is complete — in both data
// and simulated time — before any processor enters the parallel phase.
func (w *World) Phase() {
	w.Barrier()
	for _, r := range w.recs {
		r.Phase()
	}
}

// LockID names a lock, creating it on first use.
func (w *World) LockID(name string) int {
	id, ok := w.lockIDs[name]
	if !ok {
		id = w.nextLock
		w.nextLock++
		w.lockIDs[name] = id
	}
	return id
}

// Finish validates and returns the completed trace.
func (w *World) Finish() (*trace.Trace, error) {
	t := &trace.Trace{
		Name:      w.name,
		CPUs:      make([]trace.Stream, w.ncpu),
		Barriers:  w.nextBarrier,
		Locks:     w.nextLock,
		Footprint: w.alloc.Bytes(),
	}
	for i, r := range w.recs {
		t.CPUs[i] = r.Finish()
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustFinish is Finish for generators with static structure.
func (w *World) MustFinish() *trace.Trace {
	t, err := w.Finish()
	if err != nil {
		panic(fmt.Sprintf("apps: %v", err))
	}
	return t
}

// Compute charges cycles of pure computation to this processor.
func (c *Ctx) Compute(cycles int) { c.r.Compute(cycles) }

// Lock acquires the named global lock.
func (c *Ctx) Lock(id int) { c.r.Lock(id) }

// Unlock releases the named global lock.
func (c *Ctx) Unlock(id int) { c.r.Unlock(id) }

// Access records a raw shared-memory access (for AoS data structures).
func (c *Ctx) Access(addr memory.Addr, write bool) { c.r.Access(addr, write) }

// F64 is a shared array of float64 backed by real data.
type F64 struct {
	Reg  memory.Region
	Data []float64
}

// AllocF64 allocates a shared float64 array.
func (w *World) AllocF64(name string, n int) *F64 {
	return &F64{
		Reg:  w.alloc.Alloc(name, uint64(n)*8),
		Data: make([]float64, n),
	}
}

// Len returns the element count.
func (a *F64) Len() int { return len(a.Data) }

// Addr returns the address of element i.
func (a *F64) Addr(i int) memory.Addr { return a.Reg.Start + memory.Addr(i*8) }

// Load reads element i through the memory system.
func (c *Ctx) Load(a *F64, i int) float64 {
	c.r.Access(a.Addr(i), false)
	return a.Data[i]
}

// Store writes element i through the memory system.
func (c *Ctx) Store(a *F64, i int, v float64) {
	c.r.Access(a.Addr(i), true)
	a.Data[i] = v
}

// Update reads and writes element i (one exclusive access).
func (c *Ctx) Update(a *F64, i int, f func(float64) float64) {
	c.r.Access(a.Addr(i), true)
	a.Data[i] = f(a.Data[i])
}

// I64 is a shared array of int64 backed by real data.
type I64 struct {
	Reg  memory.Region
	Data []int64
}

// AllocI64 allocates a shared int64 array.
func (w *World) AllocI64(name string, n int) *I64 {
	return &I64{
		Reg:  w.alloc.Alloc(name, uint64(n)*8),
		Data: make([]int64, n),
	}
}

// Len returns the element count.
func (a *I64) Len() int { return len(a.Data) }

// Addr returns the address of element i.
func (a *I64) Addr(i int) memory.Addr { return a.Reg.Start + memory.Addr(i*8) }

// LoadI reads element i through the memory system.
func (c *Ctx) LoadI(a *I64, i int) int64 {
	c.r.Access(a.Addr(i), false)
	return a.Data[i]
}

// StoreI writes element i through the memory system.
func (c *Ctx) StoreI(a *I64, i int, v int64) {
	c.r.Access(a.Addr(i), true)
	a.Data[i] = v
}

// I32 is a shared array of int32 backed by real data (radix keys).
type I32 struct {
	Reg  memory.Region
	Data []int32
}

// AllocI32 allocates a shared int32 array.
func (w *World) AllocI32(name string, n int) *I32 {
	return &I32{
		Reg:  w.alloc.Alloc(name, uint64(n)*4),
		Data: make([]int32, n),
	}
}

// Len returns the element count.
func (a *I32) Len() int { return len(a.Data) }

// Addr returns the address of element i.
func (a *I32) Addr(i int) memory.Addr { return a.Reg.Start + memory.Addr(i*4) }

// LoadI32 reads element i through the memory system.
func (c *Ctx) LoadI32(a *I32, i int) int32 {
	c.r.Access(a.Addr(i), false)
	return a.Data[i]
}

// StoreI32 writes element i through the memory system.
func (c *Ctx) StoreI32(a *I32, i int, v int32) {
	c.r.Access(a.Addr(i), true)
	a.Data[i] = v
}

// Rec is a shared array-of-structures region with a fixed element size;
// applications keep the actual field data in Go slices and record
// accesses per field through At.
type Rec struct {
	Reg       memory.Region
	ElemBytes int
	N         int
}

// AllocRec allocates an AoS region of n records of elemBytes each,
// rounded up so records do not straddle blocks unnecessarily.
func (w *World) AllocRec(name string, n, elemBytes int) *Rec {
	return &Rec{
		Reg:       w.alloc.Alloc(name, uint64(n)*uint64(elemBytes)),
		ElemBytes: elemBytes,
		N:         n,
	}
}

// At returns the address of byte offset off inside record i.
func (r *Rec) At(i, off int) memory.Addr {
	return r.Reg.Start + memory.Addr(i*r.ElemBytes+off)
}

// TouchRec records an access to a field range of record i. width is the
// field size in bytes; multi-block fields record one access per block.
func (c *Ctx) TouchRec(r *Rec, i, off, width int, write bool) {
	c.TouchRange(r.At(i, off), width, write)
}

// TouchRange records one access per coherence block over [start,
// start+bytes). It models a kernel that walks a range whose blocks each
// miss at most once and then stay L1-resident (the kernel's working set
// fits the processor cache), which is how blocked dense kernels behave.
func (c *Ctx) TouchRange(start memory.Addr, bytes int, write bool) {
	if bytes <= 0 {
		return
	}
	end := start + memory.Addr(bytes-1)
	for a := start; ; a += 64 {
		c.r.Access(a, write)
		if a.Block() == end.Block() {
			break
		}
	}
}

// rng is a small deterministic linear congruential generator so traces
// are reproducible across runs and platforms.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

// intn returns a deterministic value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("apps: intn on non-positive n")
	}
	return int((r.next() >> 17) % uint64(n))
}

// float64 returns a deterministic value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
