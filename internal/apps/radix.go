package apps

import (
	"fmt"

	"repro/internal/trace"
)

// radixApp implements the SPLASH-2 parallel integer radix sort. Each pass
// over one digit builds per-processor histograms of the local key
// partition, combines them into global rank offsets with a prefix step,
// and permutes keys into a destination array at the computed positions.
// The scattered remote writes of the permutation phase are the traffic
// the paper studies: every node writes all over the destination array,
// so pages are write-shared at high degree and only fine-grain caching
// of a footprint larger than the page cache can help.
type radixApp struct {
	n     int // keys
	radix int // buckets per digit
	bits  int // key width in bits
	cpus  int
}

func newRadix(p Params) *radixApp {
	p = p.norm()
	n := 1 << 20 / p.Scale
	if n < 1024 {
		n = 1024
	}
	return &radixApp{n: n, radix: 1024, bits: 20, cpus: p.CPUs}
}

// GenerateRadix builds the radix trace and returns the sorted keys for
// verification.
func GenerateRadix(p Params) (*trace.Trace, []int32, error) {
	a := newRadix(p)
	w := NewWorld("radix", a.cpus)
	n, cpus := a.n, a.cpus
	digits := (a.bits + 9) / 10

	src := w.AllocI32("keys", n)
	dst := w.AllocI32("keys2", n)
	// Per-processor histogram/rank arrays, shared because the prefix
	// step reads them all.
	hist := w.AllocI64("histograms", cpus*a.radix)
	rank := w.AllocI64("ranks", cpus*a.radix)

	// Sequential init of random keys.
	r := newRNG(777 + p.Seed)
	w.Serial(func(c *Ctx) {
		for i := 0; i < n; i++ {
			src.Data[i] = int32(r.intn(1 << a.bits))
		}
		c.TouchRange(src.Addr(0), n*4, true)
		c.Compute(n / 4)
	})
	w.Phase()

	per := (n + cpus - 1) / cpus
	// Parallel first touch of each partition of both key arrays.
	w.Parallel(func(c *Ctx) {
		lo, hi := c.CPU*per, (c.CPU+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return
		}
		c.TouchRange(src.Addr(lo), (hi-lo)*4, false)
		c.TouchRange(dst.Addr(lo), (hi-lo)*4, true)
		c.Compute((hi - lo) / 8)
	})
	w.Barrier()

	from, to := src, dst
	for d := 0; d < digits; d++ {
		shift := uint(10 * d)
		// Local histogram over the processor's partition.
		w.Parallel(func(c *Ctx) {
			lo, hi := c.CPU*per, (c.CPU+1)*per
			if hi > n {
				hi = n
			}
			base := c.CPU * a.radix
			for i := base; i < base+a.radix; i++ {
				hist.Data[i] = 0
			}
			c.TouchRange(hist.Addr(base), a.radix*8, true)
			for i := lo; i < hi; i++ {
				k := c.LoadI32(from, i)
				dig := int(uint32(k)>>shift) & (a.radix - 1)
				hist.Data[base+dig]++
				c.Compute(3)
			}
			// The histogram bins stay L1-resident through the scan;
			// account one write pass at the end.
			c.TouchRange(hist.Addr(base), a.radix*8, true)
		})
		w.Barrier()

		// Prefix: processor 0 computes global rank offsets by reading
		// every processor's histogram (the SPLASH-2 tree reduction is
		// logically equivalent; the sequential scan preserves the
		// all-histograms-read sharing pattern).
		w.Serial(func(c *Ctx) {
			pos := int64(0)
			for dig := 0; dig < a.radix; dig++ {
				for cp := 0; cp < cpus; cp++ {
					c.r.Access(hist.Addr(cp*a.radix+dig), false)
					c.r.Access(rank.Addr(cp*a.radix+dig), true)
					rank.Data[cp*a.radix+dig] = pos
					pos += hist.Data[cp*a.radix+dig]
					c.Compute(2)
				}
			}
		})
		w.Barrier()

		// Permutation: scatter keys to their ranked positions.
		w.Parallel(func(c *Ctx) {
			lo, hi := c.CPU*per, (c.CPU+1)*per
			if hi > n {
				hi = n
			}
			base := c.CPU * a.radix
			c.TouchRange(rank.Addr(base), a.radix*8, false)
			for i := lo; i < hi; i++ {
				k := c.LoadI32(from, i)
				dig := int(uint32(k)>>shift) & (a.radix - 1)
				p := rank.Data[base+dig]
				rank.Data[base+dig]++
				c.StoreI32(to, int(p), k)
				c.Compute(4)
			}
		})
		w.Barrier()
		from, to = to, from
	}

	t, err := w.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("radix: %w", err)
	}
	return t, from.Data, nil
}

func init() {
	register(Info{
		Name:        "radix",
		Description: "Parallel integer radix sort",
		Input:       "1M integers, radix 1024",
		Generate: func(p Params) (*trace.Trace, error) {
			t, _, err := GenerateRadix(p)
			return t, err
		},
	})
}
