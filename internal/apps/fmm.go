package apps

import (
	"fmt"
	"math/cmplx"

	"repro/internal/trace"
)

// fmmApp implements a two-dimensional fast multipole method for the
// Laplace (log) kernel, the algorithm of the SPLASH-2 fmm benchmark: a
// uniform quadtree over the unit square, upward multipole pass (P2M,
// M2M), interaction-list translations (M2L), downward local pass (L2L,
// L2P), and direct near-field interactions (P2P). The math is real —
// tests verify the fast potentials against direct summation.
type fmmApp struct {
	n      int // particles
	levels int // quadtree depth; leaves at level levels-1
	p      int // multipole terms
	steps  int
	cpus   int
	seed   uint64
}

const (
	fmmPartBytes = 64  // pos(16) vel(16) q(8) pot(16) pad
	fmmExpBytes  = 160 // p complex coefficients (16B each) for p=10
)

func newFMM(p Params) *fmmApp {
	p = p.norm()
	n := 4096 / p.Scale
	if n < 64 {
		n = 64
	}
	levels := 5 // 256 leaf boxes
	for (1<<(2*(levels-1)))*8 > n && levels > 2 {
		levels--
	}
	return &fmmApp{n: n, levels: levels, p: 10, steps: 2, cpus: p.CPUs, seed: p.Seed}
}

// boxesAt returns the box count per side and total at a level.
func boxesAt(level int) (side, total int) {
	side = 1 << uint(level)
	return side, side * side
}

// level describes the shared expansion arrays of one quadtree level.
type fmmLevel struct {
	side  int
	mpole *Rec // multipole expansions, one per box
	local *Rec // local expansions, one per box
	mvals [][]complex128
	lvals [][]complex128
}

// GenerateFMM builds the trace and returns the computed particle
// potentials for verification.
func GenerateFMM(p Params) (*trace.Trace, []complex128, []complex128, []float64, error) {
	a := newFMM(p)
	w := NewWorld("fmm", a.cpus)

	parts := w.AllocRec("particles", a.n, fmmPartBytes)
	pos := make([]complex128, a.n)
	q := make([]float64, a.n)
	pot := make([]complex128, a.n)

	lv := make([]*fmmLevel, a.levels)
	for l := 0; l < a.levels; l++ {
		side, total := boxesAt(l)
		lv[l] = &fmmLevel{
			side:  side,
			mpole: w.AllocRec(fmt.Sprintf("mpole%d", l), total, fmmExpBytes),
			local: w.AllocRec(fmt.Sprintf("local%d", l), total, fmmExpBytes),
			mvals: make([][]complex128, total),
			lvals: make([][]complex128, total),
		}
		for b := 0; b < total; b++ {
			lv[l].mvals[b] = make([]complex128, a.p+1)
			lv[l].lvals[b] = make([]complex128, a.p+1)
		}
	}

	r := newRNG(31415 + a.seed)
	w.Serial(func(c *Ctx) {
		for i := 0; i < a.n; i++ {
			pos[i] = complex(r.float64(), r.float64())
			q[i] = r.float64() + 0.1
			c.TouchRec(parts, i, 0, fmmPartBytes, true)
		}
		c.Compute(a.n * 4)
	})
	w.Phase()

	leafLevel := a.levels - 1
	leafSide, leafTotal := boxesAt(leafLevel)

	// ownership: Morton-contiguous chunks of boxes per level
	owner := func(l, box int) int {
		_, total := boxesAt(l)
		per := (total + a.cpus - 1) / a.cpus
		o := box / per
		if o >= a.cpus {
			o = a.cpus - 1
		}
		return o
	}
	boxOf := func(z complex128) int {
		x := int(real(z) * float64(leafSide))
		y := int(imag(z) * float64(leafSide))
		if x >= leafSide {
			x = leafSide - 1
		}
		if y >= leafSide {
			y = leafSide - 1
		}
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		return y*leafSide + x
	}
	centerOf := func(l, box int) complex128 {
		side, _ := boxesAt(l)
		x, y := box%side, box/side
		h := 1.0 / float64(side)
		return complex((float64(x)+0.5)*h, (float64(y)+0.5)*h)
	}

	// Parallel first touch: each owner touches its leaf boxes'
	// expansions and (approximately) its particle range.
	w.Parallel(func(c *Ctx) {
		for l := 0; l < a.levels; l++ {
			_, total := boxesAt(l)
			for b := 0; b < total; b++ {
				if owner(l, b) != c.CPU {
					continue
				}
				c.TouchRec(lv[l].mpole, b, 0, fmmExpBytes, true)
				c.TouchRec(lv[l].local, b, 0, fmmExpBytes, true)
			}
		}
		per := (a.n + a.cpus - 1) / a.cpus
		lo, hi := c.CPU*per, (c.CPU+1)*per
		if hi > a.n {
			hi = a.n
		}
		for i := lo; i < hi; i++ {
			c.TouchRec(parts, i, 0, fmmPartBytes, false)
		}
		c.Compute(64)
	})
	w.Barrier()

	// boxParts[b] lists particle indices in leaf box b (host-side; the
	// indices themselves model the box particle lists of the original,
	// whose traffic is dominated by the particle records).
	binParticles := func() [][]int {
		bp := make([][]int, leafTotal)
		for i := 0; i < a.n; i++ {
			b := boxOf(pos[i])
			bp[b] = append(bp[b], i)
		}
		return bp
	}

	for step := 0; step < a.steps; step++ {
		boxParts := binParticles()

		// Reset expansions.
		for l := 0; l < a.levels; l++ {
			for b := range lv[l].mvals {
				for k := range lv[l].mvals[b] {
					lv[l].mvals[b][k] = 0
					lv[l].lvals[b][k] = 0
				}
			}
		}

		// --- P2M: leaf multipoles from their particles.
		w.Parallel(func(c *Ctx) {
			for b := 0; b < leafTotal; b++ {
				if owner(leafLevel, b) != c.CPU {
					continue
				}
				zc := centerOf(leafLevel, b)
				m := lv[leafLevel].mvals[b]
				for _, i := range boxParts[b] {
					c.TouchRec(parts, i, 0, 24, false)
					d := pos[i] - zc
					m[0] += complex(q[i], 0)
					pw := complex(1, 0)
					for k := 1; k <= a.p; k++ {
						pw *= d
						m[k] -= complex(q[i], 0) * pw / complex(float64(k), 0)
					}
					c.Compute(4 * a.p)
				}
				c.TouchRec(lv[leafLevel].mpole, b, 0, fmmExpBytes, true)
			}
		})
		w.Barrier()

		// --- M2M: upward pass.
		for l := leafLevel - 1; l >= 0; l-- {
			ll := l
			w.Parallel(func(c *Ctx) {
				side, total := boxesAt(ll)
				for b := 0; b < total; b++ {
					if owner(ll, b) != c.CPU {
						continue
					}
					x, y := b%side, b/side
					pc := centerOf(ll, b)
					acc := lv[ll].mvals[b]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							cb := (2*y+dy)*(side*2) + (2*x + dx)
							c.TouchRec(lv[ll+1].mpole, cb, 0, fmmExpBytes, false)
							shiftM2M(lv[ll+1].mvals[cb], acc, centerOf(ll+1, cb)-pc, a.p)
							c.Compute(3 * a.p * a.p)
						}
					}
					c.TouchRec(lv[ll].mpole, b, 0, fmmExpBytes, true)
				}
			})
			w.Barrier()
		}

		// --- M2L: interaction lists at every level below the root.
		for l := 1; l <= leafLevel; l++ {
			ll := l
			w.Parallel(func(c *Ctx) {
				side, total := boxesAt(ll)
				for b := 0; b < total; b++ {
					if owner(ll, b) != c.CPU {
						continue
					}
					x, y := b%side, b/side
					px, py := x/2, y/2
					zc := centerOf(ll, b)
					acc := lv[ll].lvals[b]
					for ny := (py - 1) * 2; ny < (py+2)*2; ny++ {
						for nx := (px - 1) * 2; nx < (px+2)*2; nx++ {
							if nx < 0 || ny < 0 || nx >= side || ny >= side {
								continue
							}
							if nx >= x-1 && nx <= x+1 && ny >= y-1 && ny <= y+1 {
								continue // adjacent: near field
							}
							sb := ny*side + nx
							c.TouchRec(lv[ll].mpole, sb, 0, fmmExpBytes, false)
							shiftM2L(lv[ll].mvals[sb], acc, centerOf(ll, sb), zc, a.p)
							c.Compute(4 * a.p * a.p)
						}
					}
					c.TouchRec(lv[ll].local, b, 0, fmmExpBytes, true)
				}
			})
			w.Barrier()
		}

		// --- L2L: downward pass.
		for l := 1; l <= leafLevel; l++ {
			ll := l
			w.Parallel(func(c *Ctx) {
				side, total := boxesAt(ll)
				for b := 0; b < total; b++ {
					if owner(ll, b) != c.CPU {
						continue
					}
					x, y := b%side, b/side
					pb := (y/2)*(side/2) + x/2
					c.TouchRec(lv[ll-1].local, pb, 0, fmmExpBytes, false)
					shiftL2L(lv[ll-1].lvals[pb], lv[ll].lvals[b],
						centerOf(ll, b)-centerOf(ll-1, pb), a.p)
					c.TouchRec(lv[ll].local, b, 0, fmmExpBytes, true)
					c.Compute(2 * a.p * a.p)
				}
			})
			w.Barrier()
		}

		// --- L2P + P2P: evaluate local expansions and near field.
		w.Parallel(func(c *Ctx) {
			for b := 0; b < leafTotal; b++ {
				if owner(leafLevel, b) != c.CPU {
					continue
				}
				x, y := b%leafSide, b/leafSide
				zc := centerOf(leafLevel, b)
				loc := lv[leafLevel].lvals[b]
				c.TouchRec(lv[leafLevel].local, b, 0, fmmExpBytes, false)
				for _, i := range boxParts[b] {
					c.TouchRec(parts, i, 0, 24, false)
					t := pos[i] - zc
					var phi complex128
					pw := complex(1, 0)
					for k := 0; k <= a.p; k++ {
						phi += loc[k] * pw
						pw *= t
					}
					c.Compute(4 * a.p)
					// near field: the 3x3 neighborhood of leaf boxes
					for ny := y - 1; ny <= y+1; ny++ {
						for nx := x - 1; nx <= x+1; nx++ {
							if nx < 0 || ny < 0 || nx >= leafSide || ny >= leafSide {
								continue
							}
							for _, jp := range boxParts[ny*leafSide+nx] {
								if jp == i {
									continue
								}
								c.TouchRec(parts, jp, 0, 24, false)
								d := pos[i] - pos[jp]
								phi += complex(q[jp], 0) * cmplx.Log(d)
								c.Compute(24)
							}
						}
					}
					pot[i] = phi
					c.TouchRec(parts, i, 32, 16, true)
				}
			}
		})
		w.Barrier()

		// --- Jiggle particle positions for the next step (local).
		if step+1 < a.steps {
			w.Parallel(func(c *Ctx) {
				per := (a.n + a.cpus - 1) / a.cpus
				lo, hi := c.CPU*per, (c.CPU+1)*per
				if hi > a.n {
					hi = a.n
				}
				jr := newRNG(uint64(step)*977 + uint64(c.CPU) + 1)
				for i := lo; i < hi; i++ {
					dx := (jr.float64() - 0.5) * 0.01
					dy := (jr.float64() - 0.5) * 0.01
					z := pos[i] + complex(dx, dy)
					if real(z) < 0 || real(z) >= 1 {
						z = complex(real(pos[i]), imag(z))
					}
					if imag(z) < 0 || imag(z) >= 1 {
						z = complex(real(z), imag(pos[i]))
					}
					pos[i] = z
					c.TouchRec(parts, i, 0, 16, true)
					c.Compute(8)
				}
			})
			w.Barrier()
		}
	}

	t, err := w.Finish()
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("fmm: %w", err)
	}
	return t, pot, pos, q, nil
}

// shiftM2M translates a child multipole (about its center) into the
// parent's accumulator; s is child center minus parent center.
func shiftM2M(child, parent []complex128, s complex128, p int) {
	parent[0] += child[0]
	// precompute s powers
	sp := make([]complex128, p+1)
	sp[0] = 1
	for i := 1; i <= p; i++ {
		sp[i] = sp[i-1] * s
	}
	for l := 1; l <= p; l++ {
		v := -child[0] * sp[l] / complex(float64(l), 0)
		for k := 1; k <= l; k++ {
			v += child[k] * sp[l-k] * complex(binom(l-1, k-1), 0)
		}
		parent[l] += v
	}
}

// shiftM2L converts a multipole about c into a local expansion about z0.
func shiftM2L(m, local []complex128, c, z0 complex128, p int) {
	d := c - z0
	id := 1 / d
	// b0
	v0 := m[0] * cmplx.Log(-d)
	ip := id
	for k := 1; k <= p; k++ {
		sign := 1.0
		if k&1 == 1 {
			sign = -1
		}
		v0 += m[k] * ip * complex(sign, 0)
		ip *= id
	}
	local[0] += v0
	// bl for l >= 1: the log term contributes -a0/(l d^l); each a_k
	// contributes (-1)^k C(l+k-1, k-1) / d^(l+k).
	ipl := complex(1, 0)
	for l := 1; l <= p; l++ {
		ipl *= id
		v := -m[0] * ipl / complex(float64(l), 0)
		ipk := ipl
		for k := 1; k <= p; k++ {
			ipk *= id
			sign := 1.0
			if k&1 == 1 {
				sign = -1
			}
			v += m[k] * ipk * complex(sign*binom(l+k-1, k-1), 0)
		}
		local[l] += v
	}
}

// shiftL2L translates a parent local expansion to a child center; s is
// child center minus parent center.
func shiftL2L(parent, child []complex128, s complex128, p int) {
	sp := make([]complex128, p+1)
	sp[0] = 1
	for i := 1; i <= p; i++ {
		sp[i] = sp[i-1] * s
	}
	for j := 0; j <= p; j++ {
		var v complex128
		for l := j; l <= p; l++ {
			v += parent[l] * complex(binom(l, j), 0) * sp[l-j]
		}
		child[j] += v
	}
}

// binom returns the binomial coefficient C(n, k) as a float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	v := 1.0
	for i := 0; i < k; i++ {
		v = v * float64(n-i) / float64(i+1)
	}
	return v
}

func init() {
	register(Info{
		Name:        "fmm",
		Description: "Fast Multipole N-body simulation (2D Laplace)",
		Input:       "4K particles, 2 steps, p=10",
		Generate: func(p Params) (*trace.Trace, error) {
			t, _, _, _, err := GenerateFMM(p)
			return t, err
		},
	})
}
