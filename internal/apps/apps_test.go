package apps

import (
	"testing"

	"repro/internal/trace"
)

func TestRegistryHasPaperApps(t *testing.T) {
	paper := Paper()
	if len(paper) != 7 {
		t.Fatalf("paper app count = %d, want 7", len(paper))
	}
	want := []string{"barnes", "cholesky", "fmm", "lu", "ocean", "radix", "raytrace"}
	for i, app := range paper {
		if app.Name != want[i] {
			t.Errorf("paper[%d] = %s, want %s", i, app.Name, want[i])
		}
		if app.Description == "" || app.Input == "" {
			t.Errorf("%s: missing metadata", app.Name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown app resolved")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All() not sorted at %d: %s >= %s", i, all[i-1].Name, all[i].Name)
		}
	}
}

// generateAll builds every paper app at test scale.
func generateAll(t *testing.T, scale int) map[string]*trace.Trace {
	t.Helper()
	out := map[string]*trace.Trace{}
	for _, app := range Paper() {
		tr, err := app.Generate(Params{CPUs: 32, Scale: scale})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		out[app.Name] = tr
	}
	return out
}

func TestAllTracesValidate(t *testing.T) {
	for name, tr := range generateAll(t, 8) {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tr.NumCPUs() != 32 {
			t.Errorf("%s: %d cpus", name, tr.NumCPUs())
		}
		if tr.Footprint == 0 {
			t.Errorf("%s: zero footprint", name)
		}
		if tr.Ops() == 0 {
			t.Errorf("%s: empty trace", name)
		}
	}
}

func TestAllTracesHavePhaseMarker(t *testing.T) {
	for name, tr := range generateAll(t, 8) {
		for cpu, ops := range tr.CPUs {
			found := false
			for _, k := range ops.Kinds {
				if k == trace.Phase {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: cpu %d has no phase marker", name, cpu)
			}
		}
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	for _, app := range Paper() {
		a, err := app.Generate(Params{CPUs: 32, Scale: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := app.Generate(Params{CPUs: 32, Scale: 8})
		if err != nil {
			t.Fatal(err)
		}
		if a.Ops() != b.Ops() {
			t.Errorf("%s: op counts differ: %d vs %d", app.Name, a.Ops(), b.Ops())
			continue
		}
		for cpu := range a.CPUs {
			for i := 0; i < a.CPUs[cpu].Len(); i++ {
				if a.CPUs[cpu].Op(i) != b.CPUs[cpu].Op(i) {
					t.Errorf("%s: cpu %d op %d differs", app.Name, cpu, i)
					break
				}
			}
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for name, tr := range generateAll(t, 8) {
		blocks := tr.Footprint / 64
		for cpu, ops := range tr.CPUs {
			for i, k := range ops.Kinds {
				if k != trace.Read && k != trace.Write {
					continue
				}
				if ops.Args[i] >= blocks {
					t.Fatalf("%s: cpu %d op %d touches block %d beyond footprint (%d blocks)",
						name, cpu, i, ops.Args[i], blocks)
				}
			}
		}
	}
}

func TestMostCPUsDoWork(t *testing.T) {
	// The decompositions must spread memory operations over the
	// processors. At reduced test scales some block decompositions
	// legitimately leave processors idle (e.g. a 6x6-block LU cannot
	// occupy 32 owners), so require at least half the machine working;
	// full-scale inputs cover all 32.
	for name, tr := range generateAll(t, 4) {
		active := 0
		for _, ops := range tr.CPUs {
			for _, k := range ops.Kinds {
				if k == trace.Read || k == trace.Write {
					active++
					break
				}
			}
		}
		if active < tr.NumCPUs()/2 {
			t.Errorf("%s: only %d of %d cpus issue memory ops", name, active, tr.NumCPUs())
		}
	}
}

func TestScaleShrinksWork(t *testing.T) {
	for _, app := range Paper() {
		big, err := app.Generate(Params{CPUs: 32, Scale: 4})
		if err != nil {
			t.Fatal(err)
		}
		small, err := app.Generate(Params{CPUs: 32, Scale: 8})
		if err != nil {
			t.Fatal(err)
		}
		if small.Ops() >= big.Ops() {
			t.Errorf("%s: scale 8 (%d ops) not smaller than scale 4 (%d ops)",
				app.Name, small.Ops(), big.Ops())
		}
	}
}
