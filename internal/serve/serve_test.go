package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
)

// testQuery returns a distinct valid query per seed.
func testQuery(seed uint64) harness.Query {
	return harness.Query{
		Experiment: "fig5",
		Apps:       []string{"radix"},
		Systems:    []string{"ccnuma"},
		Scale:      64,
		Seed:       seed,
	}.Normalize()
}

// blockingRunner counts invocations and blocks each one until release
// is closed, so tests can hold a flight open.
type blockingRunner struct {
	calls   atomic.Int64
	release chan struct{}
	body    []byte
	err     error
}

func (r *blockingRunner) run(ctx context.Context, q harness.Query) ([]byte, error) {
	r.calls.Add(1)
	if r.release != nil {
		<-r.release
	}
	return r.body, r.err
}

// TestCoalescing is the tentpole invariant: 32 concurrent identical
// cold queries execute exactly one simulation; one caller leads the
// flight, the rest coalesce onto it, and everyone gets the same bytes.
func TestCoalescing(t *testing.T) {
	run := &blockingRunner{release: make(chan struct{}), body: []byte("records\n")}
	s := newServer(Config{Commit: "test"}, run.run)
	defer s.Drain()

	const callers = 32
	q := testQuery(1)
	started := make(chan struct{}, callers)
	type res struct {
		body []byte
		src  Source
		err  error
	}
	results := make([]res, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			body, src, err := s.Answer(context.Background(), q)
			results[i] = res{body, src, err}
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	// All callers are in Answer; let the single flight finish.
	close(run.release)
	wg.Wait()

	if got := run.calls.Load(); got != 1 {
		t.Fatalf("simulations executed = %d, want exactly 1", got)
	}
	var misses, coalesced int
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if !bytes.Equal(r.body, run.body) {
			t.Fatalf("caller %d: body %q, want %q", i, r.body, run.body)
		}
		switch r.src {
		case SourceMiss:
			misses++
		case SourceCoalesced, SourceHit:
			// A caller that arrives after the flight completes is a
			// cache hit; both mean "did not simulate".
			coalesced++
		default:
			t.Fatalf("caller %d: unexpected source %q", i, r.src)
		}
	}
	if misses != 1 {
		t.Fatalf("leaders = %d, want 1 (coalesced+hits = %d)", misses, coalesced)
	}
	if st := s.StatusNow(); st.Queries.Misses != 1 {
		t.Fatalf("statusz misses = %d, want 1", st.Queries.Misses)
	}
}

// TestErrorDoesNotPoisonKey: a failed flight must release its key so
// the next identical query retries instead of replaying the failure.
func TestErrorDoesNotPoisonKey(t *testing.T) {
	var calls atomic.Int64
	fail := errors.New("generator exploded")
	s := newServer(Config{Commit: "test"}, func(ctx context.Context, q harness.Query) ([]byte, error) {
		if calls.Add(1) == 1 {
			return nil, fail
		}
		return []byte("ok\n"), nil
	})
	defer s.Drain()

	q := testQuery(1)
	if _, _, err := s.Answer(context.Background(), q); !errors.Is(err, fail) {
		t.Fatalf("first answer error = %v, want %v", err, fail)
	}
	body, src, err := s.Answer(context.Background(), q)
	if err != nil {
		t.Fatalf("second answer after failed flight: %v", err)
	}
	if src != SourceMiss {
		t.Fatalf("second answer source = %q, want %q (a fresh simulation)", src, SourceMiss)
	}
	if string(body) != "ok\n" {
		t.Fatalf("second answer body = %q", body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("runner calls = %d, want 2", got)
	}
	if s.InFlight() != 0 {
		t.Fatalf("flights left open: %d", s.InFlight())
	}
}

// TestLRUEvictionAndDiskReadThrough: an entry evicted from the
// in-memory LRU is re-served from the on-disk store (SourceDisk), not
// re-simulated.
func TestLRUEvictionAndDiskReadThrough(t *testing.T) {
	store, err := OpenResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	s := newServer(Config{Store: store, CacheEntries: 1, Commit: "test"},
		func(ctx context.Context, q harness.Query) ([]byte, error) {
			calls.Add(1)
			return []byte(fmt.Sprintf("body-seed-%d\n", q.Seed)), nil
		})
	defer s.Drain()

	ctx := context.Background()
	qa, qb := testQuery(1), testQuery(2)
	if _, src, err := s.Answer(ctx, qa); err != nil || src != SourceMiss {
		t.Fatalf("cold A: src=%q err=%v", src, err)
	}
	if _, src, err := s.Answer(ctx, qb); err != nil || src != SourceMiss {
		t.Fatalf("cold B: src=%q err=%v", src, err)
	}
	// CacheEntries=1: B evicted A from memory; A must read through disk.
	body, src, err := s.Answer(ctx, qa)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceDisk {
		t.Fatalf("evicted A answered from %q, want %q", src, SourceDisk)
	}
	if string(body) != "body-seed-1\n" {
		t.Fatalf("disk read-through body = %q", body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("simulations = %d, want 2 (disk hit must not re-simulate)", got)
	}
	// And the disk hit re-warms memory: the next ask is a memory hit.
	if _, src, _ := s.Answer(ctx, qa); src != SourceHit {
		t.Fatalf("post-read-through source = %q, want %q", src, SourceHit)
	}
}

// TestBackpressure: with one worker held busy and a full queue, a third
// distinct cold query is refused with ErrOverloaded, and the HTTP layer
// maps it to 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	run := &blockingRunner{release: make(chan struct{}), body: []byte("x\n")}
	s := newServer(Config{Workers: 1, QueueDepth: 1, Commit: "test"}, run.run)

	// Fill the worker and the queue with two distinct cold flights —
	// strictly in that order. Submitting both concurrently can bounce
	// the second off the still-occupied queue slot (TrySubmit never
	// blocks), leaving the Queued spin below waiting forever.
	errc := make(chan error, 2)
	submit := func(seed uint64) {
		go func() {
			_, _, err := s.Answer(context.Background(), testQuery(seed))
			errc <- err
		}()
	}
	submit(1)
	// The runner's first call means the worker dequeued the job, so the
	// queue slot is free for the second flight.
	for run.calls.Load() == 0 {
		runtime.Gosched()
	}
	submit(2)
	for s.pool.Queued() == 0 {
		runtime.Gosched()
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/query?experiment=fig5&apps=radix&systems=ccnuma&scale=64&seed=3", nil)
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusTooManyRequests)
	}
	// No cold run has completed yet (both flights are still blocked),
	// so the latency-derived hint falls back to its 1-second floor.
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q before any cold-run observation", got, "1")
	}
	if st := s.StatusNow(); st.Queries.Rejected != 1 {
		t.Fatalf("statusz rejected = %d, want 1", st.Queries.Rejected)
	}

	close(run.release)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("accepted flight failed: %v", err)
		}
	}
	s.Drain()
}

// TestRetryAfterScalesWithBacklog: the 429 hint is (backlog / workers)
// x observed mean cold-run latency, rounded up and clamped to [1, 60]
// — not a hard-coded constant.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	run := &blockingRunner{release: make(chan struct{}), body: []byte("x\n")}
	s := newServer(Config{Workers: 1, QueueDepth: 1, Commit: "test"}, run.run)

	// Seed the latency observation directly: one completed cold run
	// that took 4 seconds of wall time.
	s.coldRuns.Store(1)
	s.coldNanos.Store(int64(4 * time.Second))

	// Hold the worker busy and fill the queue: backlog = 2 over 1
	// worker, so the estimate is 2 x 4s = 8s. Worker first, queue slot
	// second — concurrent submission can bounce the second flight off
	// the still-occupied queue slot and deadlock the Queued spin.
	errc := make(chan error, 2)
	submit := func(seed uint64) {
		go func() {
			_, _, err := s.Answer(context.Background(), testQuery(seed))
			errc <- err
		}()
	}
	submit(1)
	for run.calls.Load() == 0 {
		runtime.Gosched()
	}
	submit(2)
	for s.pool.Queued() == 0 {
		runtime.Gosched()
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/query?experiment=fig5&apps=radix&systems=ccnuma&scale=64&seed=3", nil)
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want %d", rec.Code, http.StatusTooManyRequests)
	}
	if got := rec.Header().Get("Retry-After"); got != "8" {
		t.Fatalf("Retry-After = %q, want %q (2 jobs x 4s mean / 1 worker)", got, "8")
	}

	// A pathological mean clamps at the 60-second ceiling instead of
	// telling clients to go away for hours.
	s.coldNanos.Store(int64(2 * time.Hour))
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("retryAfterSeconds = %d, want clamp at 60", got)
	}

	close(run.release)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("accepted flight failed: %v", err)
		}
	}
	s.Drain()
}

// TestDrainWaitsForAcceptedWork: Drain returns only after accepted
// simulations finish, and their results are still cached.
func TestDrainWaitsForAcceptedWork(t *testing.T) {
	run := &blockingRunner{release: make(chan struct{}), body: []byte("late\n")}
	s := newServer(Config{Workers: 1, Commit: "test"}, run.run)

	q := testQuery(1)
	go func() { s.Answer(context.Background(), q) }()
	for run.calls.Load() == 0 {
		runtime.Gosched()
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a simulation was still running")
	default:
	}
	close(run.release)
	<-drained

	// The drained flight's result landed in the cache.
	body, src, err := s.Answer(context.Background(), q)
	if err != nil || src != SourceHit || string(body) != "late\n" {
		t.Fatalf("post-drain answer: body=%q src=%q err=%v", body, src, err)
	}
}

// TestHTTPBadQuery: malformed and unknown inputs are 400s, unknown
// paths 404, wrong methods 405.
func TestHTTPBadQuery(t *testing.T) {
	s := newServer(Config{Commit: "test"}, func(ctx context.Context, q harness.Query) ([]byte, error) {
		return []byte("ok\n"), nil
	})
	defer s.Drain()

	cases := []struct {
		method, target, body string
		want                 int
	}{
		{http.MethodGet, "/query?experiment=nope", "", http.StatusBadRequest},
		{http.MethodGet, "/query?apps=notanapp", "", http.StatusBadRequest},
		{http.MethodGet, "/query?bogus=1", "", http.StatusBadRequest},
		{http.MethodGet, "/query?scale=abc", "", http.StatusBadRequest},
		{http.MethodGet, "/query?shards=abc", "", http.StatusBadRequest},
		{http.MethodGet, "/query?shards=3", "", http.StatusBadRequest}, // 3 does not divide the 8-node cluster
		{http.MethodGet, "/query?experiment=toposweep&fabric=ring", "", http.StatusBadRequest},
		{http.MethodPost, "/query", `{"experiment":"fig5","bogus":1}`, http.StatusBadRequest},
		{http.MethodPost, "/query", `not json`, http.StatusBadRequest},
		{http.MethodDelete, "/query", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/nosuch", "", http.StatusNotFound},
	}
	for _, c := range cases {
		var body io.Reader
		if c.body != "" {
			body = bytes.NewReader([]byte(c.body))
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(c.method, c.target, body))
		if rec.Code != c.want {
			t.Errorf("%s %s: status = %d, want %d", c.method, c.target, rec.Code, c.want)
		}
	}
}

// TestHTTPEquivalentQueriesShareKey: GET and POST spellings of the same
// query (including normalization aliases) answer from one cache entry.
func TestHTTPEquivalentQueriesShareKey(t *testing.T) {
	var calls atomic.Int64
	s := newServer(Config{Commit: "test"}, func(ctx context.Context, q harness.Query) ([]byte, error) {
		calls.Add(1)
		return []byte("shared\n"), nil
	})
	defer s.Drain()

	get := httptest.NewRequest(http.MethodGet, "/query?experiment=fig5&apps=radix&systems=CCNUMA&scale=64&seed=7", nil)
	post := httptest.NewRequest(http.MethodPost, "/query",
		bytes.NewReader([]byte(`{"experiment":"FIG5","apps":["radix"],"systems":[" ccnuma "],"scale":64,"seed":7}`)))

	recGet := httptest.NewRecorder()
	s.ServeHTTP(recGet, get)
	recPost := httptest.NewRecorder()
	s.ServeHTTP(recPost, post)

	for _, rec := range []*httptest.ResponseRecorder{recGet, recPost} {
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("simulations = %d, want 1 (normalization should alias the spellings)", calls.Load())
	}
	if gk, pk := recGet.Header().Get("X-Dsm-Key"), recPost.Header().Get("X-Dsm-Key"); gk != pk || gk == "" {
		t.Fatalf("keys differ: GET %q, POST %q", gk, pk)
	}
	if recPost.Header().Get("X-Dsm-Cache") != string(SourceHit) {
		t.Fatalf("second spelling source = %q, want %q", recPost.Header().Get("X-Dsm-Cache"), SourceHit)
	}
	if !bytes.Equal(recGet.Body.Bytes(), recPost.Body.Bytes()) {
		t.Fatal("GET and POST bodies differ")
	}

	// Shards is an execution knob, not an identity field: the sharded
	// engine is byte-identical to the sequential one, so a query that
	// differs only in shards= answers from the same cache entry.
	sharded := httptest.NewRequest(http.MethodGet,
		"/query?experiment=fig5&apps=radix&systems=CCNUMA&scale=64&seed=7&shards=4", nil)
	recSharded := httptest.NewRecorder()
	s.ServeHTTP(recSharded, sharded)
	if recSharded.Code != http.StatusOK {
		t.Fatalf("sharded spelling status = %d: %s", recSharded.Code, recSharded.Body)
	}
	if calls.Load() != 1 {
		t.Fatalf("simulations = %d, want 1 (shards must not fork the cache key)", calls.Load())
	}
	if sk := recSharded.Header().Get("X-Dsm-Key"); sk != recGet.Header().Get("X-Dsm-Key") {
		t.Fatalf("shards=4 key %q differs from sequential key %q", sk, recGet.Header().Get("X-Dsm-Key"))
	}
}

// TestServerMatchesHarnessJSON runs the real simulation path end to end
// over HTTP and requires the response to be byte-identical to the JSON
// cmd/experiments -json constructs for the same flags — the contract
// that makes the server a drop-in for the CLI. The warm repeat must be
// a memory hit with the same bytes.
func TestServerMatchesHarnessJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	q := testQuery(0)

	// The reference bytes, constructed the way cmd/experiments -json
	// does: run the experiment, flatten records, MarshalIndent.
	r, err := harness.RunByName("fig5", q.Options(harness.Options{
		Parallel: 1, Audit: true, Traces: harness.NewTraceCache(), Out: io.Discard,
	}))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(r.Records(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := append(buf, '\n')

	s := New(Config{Commit: "test", Parallel: 1})
	defer s.Drain()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := []byte(`{"experiment":"fig5","apps":["radix"],"systems":["ccnuma"],"scale":64}`)
	fetch := func() ([]byte, string) {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, got)
		}
		return got, resp.Header.Get("X-Dsm-Cache")
	}

	cold, coldSrc := fetch()
	if coldSrc != string(SourceMiss) {
		t.Fatalf("cold query source = %q, want %q", coldSrc, SourceMiss)
	}
	if !bytes.Equal(cold, want) {
		t.Fatalf("server response is not byte-identical to the harness JSON\nserver %d bytes, harness %d bytes", len(cold), len(want))
	}
	warm, warmSrc := fetch()
	if warmSrc != string(SourceHit) {
		t.Fatalf("warm query source = %q, want %q", warmSrc, SourceHit)
	}
	if !bytes.Equal(warm, cold) {
		t.Fatal("warm response differs from cold response")
	}
}

// TestStatusz: the counters document is well-formed JSON with the
// pinned schema and live pool/cache numbers.
func TestStatusz(t *testing.T) {
	store, err := OpenResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(Config{Store: store, Workers: 3, QueueDepth: 7, Commit: "abc123"},
		func(ctx context.Context, q harness.Query) ([]byte, error) { return []byte("x\n"), nil })
	defer s.Drain()

	if _, _, err := s.Answer(context.Background(), testQuery(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Answer(context.Background(), testQuery(1)); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statusz status = %d", rec.Code)
	}
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("statusz is not valid JSON: %v", err)
	}
	if st.Schema != StatusSchema {
		t.Fatalf("schema = %q, want %q", st.Schema, StatusSchema)
	}
	if st.Commit != "abc123" {
		t.Fatalf("commit = %q", st.Commit)
	}
	if st.Queries.Misses != 1 || st.Queries.Hits != 1 {
		t.Fatalf("counters: misses=%d hits=%d, want 1/1", st.Queries.Misses, st.Queries.Hits)
	}
	if st.Pool.Workers != 3 || st.Pool.QueueDepth != 7 {
		t.Fatalf("pool: workers=%d depth=%d, want 3/7", st.Pool.Workers, st.Pool.QueueDepth)
	}
	if st.ResultCache.Entries != 1 || st.ResultCache.DiskLen != 1 {
		t.Fatalf("result cache: entries=%d disk=%d, want 1/1", st.ResultCache.Entries, st.ResultCache.DiskLen)
	}
}

// TestResultStoreRoundTrip: save/load round-trips exact bytes; corrupt,
// truncated and foreign files are silent misses that self-delete.
func TestResultStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := ResultKey(testQuery(1), "test")
	body := []byte(`[{"schema":"repro-record/v1"}]` + "\n")
	if err := store.Save(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Load(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("round trip: ok=%v got=%q", ok, got)
	}

	// Flip a byte: the load must miss and remove the file.
	path := filepath.Join(dir, key+".result")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(key); ok {
		t.Fatal("corrupt file served as a result")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not deleted: %v", err)
	}

	// Hostile keys never touch the filesystem.
	if _, ok := store.Load("../../etc/passwd"); ok {
		t.Fatal("path-traversal key loaded")
	}
	if err := store.Save("ABC", body); err == nil {
		t.Fatal("non-hex key saved")
	}

	// A nil store is a functioning no-op.
	var nilStore *ResultStore
	if _, ok := nilStore.Load(key); ok {
		t.Fatal("nil store load hit")
	}
	if err := nilStore.Save(key, body); err != nil {
		t.Fatal(err)
	}
}

// TestResultKeySensitivity: the key moves with every identity input and
// holds still across normalization aliases.
func TestResultKeySensitivity(t *testing.T) {
	base := ResultKey(testQuery(1), "commit-a")
	if k := ResultKey(testQuery(2), "commit-a"); k == base {
		t.Fatal("seed change did not change the key")
	}
	if k := ResultKey(testQuery(1), "commit-b"); k == base {
		t.Fatal("commit change did not change the key")
	}
	alias := harness.Query{Experiment: "FIG5", Apps: []string{" radix "}, Systems: []string{"CCNUMA"}, Scale: 64, Seed: 1}
	if k := ResultKey(alias.Normalize(), "commit-a"); k != base {
		t.Fatal("normalization alias produced a different key")
	}
	if !validKey(base) {
		t.Fatalf("ResultKey emitted an invalid key %q", base)
	}
}

// TestResultLRU: recency-ordered eviction at the entry bound.
func TestResultLRU(t *testing.T) {
	c := newResultLRU(2)
	c.add("a", []byte("A"))
	c.add("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.add("c", []byte("C")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being refreshed")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestResultLRUDefensiveCopies: the cache owns its bytes. Neither
// mutating the buffer after add nor scribbling on a body returned by
// get may change what a later get serves.
func TestResultLRUDefensiveCopies(t *testing.T) {
	c := newResultLRU(2)
	orig := []byte("pristine")
	c.add("k", orig)

	orig[0] = 'X' // caller reuses its buffer after insertion
	got, ok := c.get("k")
	if !ok {
		t.Fatal("k missing")
	}
	if string(got) != "pristine" {
		t.Fatalf("body = %q, corrupted by post-add mutation of the inserted buffer", got)
	}

	got[0] = 'Y' // caller scribbles on the body it was handed
	again, ok := c.get("k")
	if !ok {
		t.Fatal("k missing on second get")
	}
	if string(again) != "pristine" {
		t.Fatalf("body = %q, corrupted by mutation of a returned body", again)
	}
}
