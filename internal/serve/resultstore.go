package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/harness"
	"repro/internal/trace/store"
)

// ResultFormatVersion identifies the on-disk result encoding. Bump it
// on any change to the file layout below; old files are then ignored
// (their names hash the old version) and recomputed.
const ResultFormatVersion = 1

// resultMagic brands result files, so a trace file (or garbage)
// dropped into the result directory can never be served as a response.
var resultMagic = [4]byte{'D', 'R', 'S', 'R'}

// castagnoli is the CRC-32C table, the same checksum discipline the
// trace store uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ResultKey content-addresses a query's response: the hex SHA-256
// (first 16 bytes) over the query's canonical encoding plus everything
// else that determines the bytes — the result and trace-store format
// versions, the Record schema, and the build commit. Two processes of
// the same build that receive the same query compute the same key with
// no coordination; a new build (or schema/format bump) orphans old
// entries rather than serving stale bytes.
func ResultKey(q harness.Query, commit string) string {
	h := sha256.New()
	fmt.Fprintf(h, "dsm-result\x00v%d\x00trace-v%d\x00%s\x00%s\x00%s",
		ResultFormatVersion, store.FormatVersion, harness.RecordSchema, commit, q.Canonical())
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// ResultStore is a directory of memoized query responses, one file per
// result key, named <key>.result. The payload is framed the same way
// the trace store frames traces — magic, version byte, body, CRC-32C
// trailer — written to a temp file and renamed into place so a
// concurrent reader sees either nothing or a complete file. Any decode
// failure is a silent miss that deletes the offender: corrupt entries
// recompute, they never surface as errors. A nil *ResultStore disables
// persistence (Load always misses, Save does nothing).
type ResultStore struct {
	dir string
}

// OpenResultStore returns a store rooted at dir, creating it if needed.
func OpenResultStore(dir string) (*ResultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return &ResultStore{dir: dir}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *ResultStore) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// path returns the file a key materializes at. Keys are produced by
// ResultKey and are plain hex; anything else is rejected by Load/Save
// before touching the filesystem.
func (s *ResultStore) path(key string) string {
	return filepath.Join(s.dir, key+".result")
}

// validKey accepts exactly the shape ResultKey emits: non-empty, all
// lowercase hex. It is the guard that keeps a hostile key ("../...")
// from escaping the store directory.
func validKey(key string) bool {
	if len(key) == 0 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Load returns the stored response body for key, or ok=false on any
// miss — including a corrupt, truncated or mis-branded file, which it
// deletes so the slot recomputes cleanly.
func (s *ResultStore) Load(key string) ([]byte, bool) {
	if s == nil || !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	body, err := decodeResult(data)
	if err != nil {
		os.Remove(s.path(key))
		return nil, false
	}
	return body, true
}

// Save frames the response body and atomically installs it under key.
func (s *ResultStore) Save(key string, body []byte) error {
	if s == nil {
		return nil
	}
	if !validKey(key) {
		return fmt.Errorf("serve: invalid result key %q", key)
	}
	data := encodeResult(body)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// Len counts the complete result files currently in the store (0 for a
// nil store); a /statusz convenience, not a hot path.
func (s *ResultStore) Len() int {
	if s == nil {
		return 0
	}
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.result"))
	if err != nil {
		return 0
	}
	return len(matches)
}

// encodeResult frames a body: magic | version | body | crc32c(all).
func encodeResult(body []byte) []byte {
	buf := make([]byte, 0, len(resultMagic)+1+len(body)+4)
	buf = append(buf, resultMagic[:]...)
	buf = append(buf, ResultFormatVersion)
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeResult unframes a file, rejecting truncation, bit rot, foreign
// magic and version skew.
func decodeResult(data []byte) ([]byte, error) {
	if len(data) < len(resultMagic)+1+4 {
		return nil, fmt.Errorf("serve: truncated result file")
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("serve: result checksum mismatch")
	}
	if [4]byte(payload[:4]) != resultMagic {
		return nil, fmt.Errorf("serve: bad result magic")
	}
	if payload[4] != ResultFormatVersion {
		return nil, fmt.Errorf("serve: result format version mismatch")
	}
	return payload[5:], nil
}
