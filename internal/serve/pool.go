package serve

import (
	"sync"
	"sync/atomic"
)

// workPool is the bounded execution stage behind the server's cold
// path: a fixed number of workers draining a fixed-depth queue. The
// bound is the backpressure mechanism — TrySubmit refuses instead of
// queueing without limit, and the HTTP layer turns that refusal into
// 429 + Retry-After. Simulations are CPU-bound, so more concurrency
// than cores buys queueing delay, not throughput.
type workPool struct {
	queue chan func()
	wg    sync.WaitGroup

	queued  atomic.Int64 // jobs accepted but not yet started
	running atomic.Int64 // jobs currently executing

	mu     sync.Mutex
	closed bool
}

// newWorkPool starts workers goroutines draining a queue of the given
// depth (minimums of 1 apply to both).
func newWorkPool(workers, depth int) *workPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	p := &workPool{queue: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				p.queued.Add(-1)
				p.running.Add(1)
				job()
				p.running.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit enqueues job if the queue has room, reporting whether it
// was accepted. It never blocks: a full queue (or a draining pool) is
// an immediate refusal, which is what lets the server bound its
// admission latency under overload.
func (p *workPool) TrySubmit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- job:
		p.queued.Add(1)
		return true
	default:
		return false
	}
}

// Drain stops admission and waits for every accepted job to finish.
// Safe to call once; submissions after Drain are refused.
func (p *workPool) Drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Queued returns the number of accepted-but-unstarted jobs.
func (p *workPool) Queued() int64 { return p.queued.Load() }

// Running returns the number of executing jobs.
func (p *workPool) Running() int64 { return p.running.Load() }
