// Package loadtest is the load-generator harness for the query server:
// it drives an already-running server with thousands of concurrent
// mixed hot/cold queries and reports throughput, latency percentiles
// and cache effectiveness. cmd/dsmload is the CLI wrapper; the bench
// suite's ServeLoad case runs the same harness against an in-process
// server to land the numbers in the committed BENCH_*.json trajectory.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/serve"
)

// ReportSchema identifies the load-test report format.
const ReportSchema = "repro-loadtest/v1"

// Options configures one load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string

	// Queries is the pool the generator cycles through. Distinct
	// queries are cold on their first arrival and hot after; a pool
	// smaller than Requests therefore exercises the memoization and
	// coalescing layers, which is the point.
	Queries []harness.Query

	// Requests is the total number of queries to issue.
	Requests int

	// Concurrency is the number of in-flight requests to sustain.
	Concurrency int

	// Client overrides the HTTP client (nil builds one with a
	// connection pool sized to Concurrency).
	Client *http.Client
}

// Report is the run summary cmd/dsmload emits as JSON.
type Report struct {
	Schema      string `json:"schema"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	Pool        int    `json:"query_pool"`

	DurationSeconds float64 `json:"duration_seconds"`
	QPS             float64 `json:"qps"`

	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`

	// Per-source counts, straight from the X-Dsm-Cache response header.
	Hits      int `json:"hits"`
	DiskHits  int `json:"disk_hits"`
	Misses    int `json:"misses"`
	Coalesced int `json:"coalesced"`

	// Rejected counts 429 responses: correct backpressure behavior, so
	// tracked apart from Errors.
	Rejected int `json:"rejected"`

	// Errors counts transport failures and non-200/429 statuses.
	Errors int `json:"errors"`

	// HitRate is the fraction of successful responses served without a
	// fresh simulation (memory + disk + coalesced).
	HitRate float64 `json:"hit_rate"`
}

// outcome is one request's result; each slot of the results array is
// written by exactly one worker, so no locking is needed.
type outcome struct {
	ms     float64
	source serve.Source
	status int // 0 = transport error
	ok     bool
}

// Run drives the server and summarizes the outcomes. The context bounds
// the whole run; a cancelled context fails the remaining requests.
func Run(ctx context.Context, o Options) (Report, error) {
	if o.BaseURL == "" {
		return Report{}, fmt.Errorf("loadtest: BaseURL required")
	}
	if len(o.Queries) == 0 {
		return Report{}, fmt.Errorf("loadtest: at least one query required")
	}
	if o.Requests < 1 {
		return Report{}, fmt.Errorf("loadtest: Requests must be >= 1")
	}
	if o.Concurrency < 1 {
		return Report{}, fmt.Errorf("loadtest: Concurrency must be >= 1")
	}
	client := o.Client
	if client == nil {
		// The default transport caps idle conns per host at 2, which
		// would serialize a thousand-way load through fresh dials.
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConns = o.Concurrency
		t.MaxIdleConnsPerHost = o.Concurrency
		client = &http.Client{Transport: t}
	}

	// Pre-encode the pool once; workers share the read-only slices.
	bodies := make([][]byte, len(o.Queries))
	for i, q := range o.Queries {
		buf, err := json.Marshal(q)
		if err != nil {
			return Report{}, fmt.Errorf("loadtest: encoding query %d: %w", i, err)
		}
		bodies[i] = buf
	}

	url := o.BaseURL + "/query"
	results := make([]outcome, o.Requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := o.Concurrency
	if workers > o.Requests {
		workers = o.Requests
	}
	start := time.Now()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(o.Requests) {
					return
				}
				results[i] = issue(ctx, client, url, bodies[i%int64(len(bodies))])
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	return summarize(o, results, elapsed), nil
}

// issue sends one query and classifies the response.
func issue(ctx context.Context, client *http.Client, url string, body []byte) outcome {
	t0 := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return outcome{ms: ms(t0)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return outcome{ms: ms(t0)}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return outcome{
		ms:     ms(t0),
		source: serve.Source(resp.Header.Get("X-Dsm-Cache")),
		status: resp.StatusCode,
		ok:     resp.StatusCode == http.StatusOK,
	}
}

// ms returns the elapsed milliseconds since t0.
func ms(t0 time.Time) float64 { return float64(time.Since(t0)) / float64(time.Millisecond) }

// summarize folds the outcomes into a Report.
func summarize(o Options, results []outcome, elapsed time.Duration) Report {
	r := Report{
		Schema:          ReportSchema,
		Requests:        len(results),
		Concurrency:     o.Concurrency,
		Pool:            len(o.Queries),
		DurationSeconds: elapsed.Seconds(),
	}
	if elapsed > 0 {
		r.QPS = float64(len(results)) / elapsed.Seconds()
	}
	lat := make([]float64, 0, len(results))
	for _, out := range results {
		switch {
		case out.ok:
			lat = append(lat, out.ms)
			switch out.source {
			case serve.SourceHit:
				r.Hits++
			case serve.SourceDisk:
				r.DiskHits++
			case serve.SourceMiss:
				r.Misses++
			case serve.SourceCoalesced:
				r.Coalesced++
			}
		case out.status == http.StatusTooManyRequests:
			r.Rejected++
		default:
			r.Errors++
		}
	}
	sort.Float64s(lat)
	r.P50ms = percentile(lat, 50)
	r.P95ms = percentile(lat, 95)
	r.P99ms = percentile(lat, 99)
	if ok := len(lat); ok > 0 {
		r.HitRate = float64(r.Hits+r.DiskHits+r.Coalesced) / float64(ok)
	}
	return r
}

// percentile returns the p-th percentile of a sorted sample (nearest-
// rank method); 0 for an empty sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
