package loadtest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/harness"
)

// TestRunCountsOutcomes drives the generator against a stub endpoint
// that behaves like the server (first arrival per body is a miss,
// repeats are hits, every Nth request is shed with 429) and checks the
// report's accounting.
func TestRunCountsOutcomes(t *testing.T) {
	var n atomic.Int64
	var handler http.HandlerFunc = func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%10 == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "full", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("X-Dsm-Cache", "hit")
		w.Write([]byte("body\n"))
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	queries := []harness.Query{
		{Experiment: "fig5", Apps: []string{"radix"}, Scale: 64, Seed: 1},
		{Experiment: "fig5", Apps: []string{"radix"}, Scale: 64, Seed: 2},
	}
	const requests = 100
	rep, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Queries:     queries,
		Requests:    requests,
		Concurrency: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != requests {
		t.Fatalf("requests = %d, want %d", rep.Requests, requests)
	}
	if rep.Rejected != requests/10 {
		t.Fatalf("rejected = %d, want %d", rep.Rejected, requests/10)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d, want 0", rep.Errors)
	}
	if got := rep.Hits + rep.DiskHits + rep.Misses + rep.Coalesced; got != requests-rep.Rejected {
		t.Fatalf("classified %d outcomes, want %d", got, requests-rep.Rejected)
	}
	if rep.HitRate != 1 {
		t.Fatalf("hit rate = %v, want 1 (every 200 was a hit)", rep.HitRate)
	}
	if rep.QPS <= 0 || rep.DurationSeconds <= 0 {
		t.Fatalf("qps=%v duration=%v", rep.QPS, rep.DurationSeconds)
	}
	if rep.P50ms < 0 || rep.P50ms > rep.P95ms || rep.P95ms > rep.P99ms {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v", rep.P50ms, rep.P95ms, rep.P99ms)
	}
}

// TestPercentile pins the nearest-rank arithmetic.
func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {1, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
}

// TestRunRejectsBadOptions: option validation fails fast.
func TestRunRejectsBadOptions(t *testing.T) {
	q := []harness.Query{{}}
	for _, o := range []Options{
		{Queries: q, Requests: 1, Concurrency: 1},                      // no URL
		{BaseURL: "http://x", Requests: 1, Concurrency: 1},             // no queries
		{BaseURL: "http://x", Queries: q, Concurrency: 1},              // no requests
		{BaseURL: "http://x", Queries: q, Requests: 1, Concurrency: 0}, // no workers
	} {
		if _, err := Run(context.Background(), o); err == nil {
			t.Errorf("Run(%+v) succeeded, want error", o)
		}
	}
}
