// Package serve turns the simulator into a long-running service:
// capacity-planning queries over HTTP/JSON, answered with exactly the
// Record documents cmd/experiments -json emits, from a three-layer
// stack built for heavy concurrent traffic.
//
// # Layers
//
// Result memoization: every response is content-addressed by ResultKey
// — the SHA-256 of the query's canonical encoding (harness.Query
// .Canonical), the result and trace-store format versions, the Record
// schema, and the build commit — and cached in a bounded in-memory LRU
// backed by an on-disk ResultStore with the trace store's atomic
// temp+rename and CRC-32C discipline. A repeated query is a map lookup;
// a server restart warms from disk; a new build computes fresh results
// instead of replaying a stale schema.
//
// Single-flight coalescing: N concurrent identical cold queries
// trigger exactly one simulation — the first request leads the flight,
// the rest block on its completion, and an error releases the key
// instead of poisoning it. This generalizes harness.TraceCache's
// single-flight pattern from traces to whole results.
//
// Bounded execution with backpressure: cold work runs on a fixed-size
// worker pool behind a fixed-depth queue. When the queue is full the
// server answers 429 with a Retry-After hint rather than accepting
// unbounded work; SIGTERM drains accepted work before exit
// (cmd/dsmserve wires the signal).
//
// The load-generator harness in the loadtest subpackage (cmd/dsmload)
// drives the stack with thousands of concurrent mixed hot/cold queries
// and reports QPS, latency percentiles and hit/coalesce/cold counts;
// internal/bench's ServeLoad case lands those numbers in the committed
// BENCH_*.json trajectory.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// StatusSchema identifies the /statusz document format.
const StatusSchema = "repro-serve-status/v1"

// ErrOverloaded is returned when the cold-path queue is full; the HTTP
// layer maps it to 429 Too Many Requests with a Retry-After hint.
var ErrOverloaded = errors.New("serve: worker queue full")

// Source says which layer satisfied a query.
type Source string

const (
	// SourceHit: the in-memory result LRU.
	SourceHit Source = "hit"
	// SourceDisk: the on-disk result store, read through by this
	// request's flight.
	SourceDisk Source = "disk"
	// SourceMiss: a fresh simulation led by this request.
	SourceMiss Source = "miss"
	// SourceCoalesced: another request's in-flight computation.
	SourceCoalesced Source = "coalesced"
)

// Config assembles a Server.
type Config struct {
	// Store is the persistent result tier (nil = memory only).
	Store *ResultStore

	// CacheEntries bounds the in-memory result LRU (<= 0 selects 128).
	CacheEntries int

	// Workers is the cold-path worker count (<= 0 selects GOMAXPROCS).
	Workers int

	// QueueDepth bounds the cold-path queue; submissions beyond it are
	// refused with ErrOverloaded (<= 0 selects 4x Workers).
	QueueDepth int

	// Parallel is the per-simulation worker count passed to the
	// harness (<= 0 selects 1: the pool provides the concurrency, and
	// one core per simulation keeps tail latency predictable).
	Parallel int

	// Traces shares generated workloads across queries (nil creates a
	// fresh in-memory TraceCache; pass NewTraceCacheWithStore to add
	// the persistent trace tier).
	Traces *harness.TraceCache

	// Commit pins result keys to a build ("" reads the running
	// binary's VCS stamp via telemetry.BuildCommit; tests inject a
	// fixed value).
	Commit string
}

// flight is one in-flight computation of a result key. done closes
// when body/err are final.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// runner computes the response body for a normalized query; the
// production runner simulates via the harness, tests substitute fakes.
type runner func(ctx context.Context, q harness.Query) ([]byte, error)

// Server answers simulation queries from the memoization stack. It
// implements http.Handler; use New and mount it (cmd/dsmserve serves
// it standalone).
type Server struct {
	store  *ResultStore
	cache  *resultLRU
	pool   *workPool
	traces *harness.TraceCache
	commit string
	run    runner

	parallel int
	workers  int
	depth    int

	// baseCtx governs the simulations themselves (not individual
	// requests: a flight outlives the request that led it). Abort
	// cancels it for a forced shutdown.
	baseCtx context.Context
	abort   context.CancelFunc

	started time.Time

	mu      sync.Mutex
	flights map[string]*flight

	hits      atomic.Int64
	diskHits  atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
	failed    atomic.Int64

	// coldRuns/coldNanos accumulate completed cold simulations and
	// their total wall time, so the 429 path can size its Retry-After
	// hint to the observed mean cold-run latency instead of a constant.
	coldRuns  atomic.Int64
	coldNanos atomic.Int64
}

// New builds a Server that computes cold results by running the
// harness experiments (audited, like the CLI default) and rendering
// the flat records exactly as cmd/experiments -json does.
func New(cfg Config) *Server {
	s := newServer(cfg, nil)
	s.run = s.simulate
	return s
}

// newServer is New with an injectable runner (the test seam).
func newServer(cfg Config, run runner) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 1
	}
	if cfg.Traces == nil {
		cfg.Traces = harness.NewTraceCache()
	}
	if cfg.Commit == "" {
		cfg.Commit = telemetry.BuildCommit()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		store:    cfg.Store,
		cache:    newResultLRU(cfg.CacheEntries),
		pool:     newWorkPool(cfg.Workers, cfg.QueueDepth),
		traces:   cfg.Traces,
		commit:   cfg.Commit,
		run:      run,
		parallel: cfg.Parallel,
		workers:  cfg.Workers,
		depth:    cfg.QueueDepth,
		baseCtx:  ctx,
		abort:    cancel,
		started:  time.Now(),
		flights:  map[string]*flight{},
	}
}

// simulate is the production cold path: run the query's experiments
// through the harness and render the records as indented JSON — the
// same construction, and therefore the same bytes, as cmd/experiments
// -json for the equivalent flags.
func (s *Server) simulate(ctx context.Context, q harness.Query) ([]byte, error) {
	var records []harness.Record
	for _, name := range q.ExperimentNames() {
		r, err := harness.RunByNameContext(ctx, name, q.Options(harness.Options{
			Parallel: s.parallel,
			Audit:    true,
			Traces:   s.traces,
			Out:      io.Discard,
		}))
		if err != nil {
			return nil, err
		}
		records = append(records, r.Records()...)
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Answer resolves one validated query through the stack: LRU, then
// (single-flight per key) disk, then a pooled simulation. ctx bounds
// this caller's wait, not the computation — an abandoned flight still
// completes and lands in the caches for the next asker. The returned
// Source reports which layer answered.
func (s *Server) Answer(ctx context.Context, q harness.Query) ([]byte, Source, error) {
	q = q.Normalize()
	key := ResultKey(q, s.commit)

	if body, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		return body, SourceHit, nil
	}

	s.mu.Lock()
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		select {
		case <-fl.done:
			return fl.body, SourceCoalesced, fl.err
		case <-ctx.Done():
			return nil, SourceCoalesced, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	s.mu.Unlock()

	// This request leads the flight. Disk is cheap enough to try
	// inline; only a true cold miss needs a pool slot.
	if body, ok := s.store.Load(key); ok {
		s.diskHits.Add(1)
		s.cache.add(key, body)
		s.complete(key, fl, body, nil)
		return body, SourceDisk, nil
	}
	if !s.pool.TrySubmit(func() { s.compute(key, fl, q) }) {
		s.rejected.Add(1)
		s.complete(key, fl, nil, ErrOverloaded)
		return nil, SourceMiss, ErrOverloaded
	}
	select {
	case <-fl.done:
		return fl.body, SourceMiss, fl.err
	case <-ctx.Done():
		return nil, SourceMiss, ctx.Err()
	}
}

// compute runs a cold query on a pool worker and lands the result in
// both cache tiers before releasing the flight's waiters.
func (s *Server) compute(key string, fl *flight, q harness.Query) {
	start := time.Now()
	body, err := s.run(s.baseCtx, q)
	if err == nil {
		s.coldRuns.Add(1)
		s.coldNanos.Add(int64(time.Since(start)))
		s.misses.Add(1)
		_ = s.store.Save(key, body) // best effort; the result is valid either way
		s.cache.add(key, body)
	} else {
		s.failed.Add(1)
	}
	s.complete(key, fl, body, err)
}

// retryAfterSeconds sizes the 429 Retry-After hint to the work ahead
// of a retrying client: the current backlog (queued + running jobs)
// divided across the workers, times the observed mean cold-run wall
// time, rounded up to whole seconds and clamped to [1, 60]. Before the
// first cold run completes there is no latency observation, so the
// hint falls back to 1 second.
func (s *Server) retryAfterSeconds() int {
	runs := s.coldRuns.Load()
	if runs == 0 {
		return 1
	}
	mean := time.Duration(s.coldNanos.Load() / runs)
	backlog := s.pool.Queued() + s.pool.Running()
	est := mean * time.Duration(backlog) / time.Duration(s.workers)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// complete finalizes a flight: publish the outcome, release the key so
// a later identical query starts fresh (successful bodies live on in
// the caches; errors must not poison the key), then wake the waiters.
func (s *Server) complete(key string, fl *flight, body []byte, err error) {
	fl.body, fl.err = body, err
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(fl.done)
}

// Drain stops cold-path admission and waits for accepted simulations
// to finish. Call after the HTTP listener has shut down; in-flight
// requests complete, new ones were already refused at the listener.
func (s *Server) Drain() { s.pool.Drain() }

// Abort cancels running simulations (they stop at the next experiment
// boundary) and then drains. The forced-shutdown path.
func (s *Server) Abort() {
	s.abort()
	s.pool.Drain()
}

// InFlight returns the number of open flights (cold or disk loads in
// progress).
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flights)
}

// Status is the /statusz document.
type Status struct {
	Schema        string  `json:"schema"`
	Commit        string  `json:"commit,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	Queries struct {
		Hits      int64 `json:"hits"`
		DiskHits  int64 `json:"disk_hits"`
		Misses    int64 `json:"misses"`
		Coalesced int64 `json:"coalesced"`
		Rejected  int64 `json:"rejected"`
		Failed    int64 `json:"failed"`
		InFlight  int   `json:"in_flight"`
	} `json:"queries"`

	Pool struct {
		Workers    int   `json:"workers"`
		QueueDepth int   `json:"queue_depth"`
		Queued     int64 `json:"queued"`
		Running    int64 `json:"running"`
	} `json:"pool"`

	ResultCache struct {
		Entries  int    `json:"entries"`
		Capacity int    `json:"capacity"`
		DiskDir  string `json:"disk_dir,omitempty"`
		DiskLen  int    `json:"disk_entries"`
	} `json:"result_cache"`

	TraceCache harness.TraceCacheStats `json:"trace_cache"`
}

// StatusNow snapshots the server's counters.
func (s *Server) StatusNow() Status {
	var st Status
	st.Schema = StatusSchema
	st.Commit = s.commit
	st.UptimeSeconds = time.Since(s.started).Seconds()
	st.Queries.Hits = s.hits.Load()
	st.Queries.DiskHits = s.diskHits.Load()
	st.Queries.Misses = s.misses.Load()
	st.Queries.Coalesced = s.coalesced.Load()
	st.Queries.Rejected = s.rejected.Load()
	st.Queries.Failed = s.failed.Load()
	st.Queries.InFlight = s.InFlight()
	st.Pool.Workers = s.workers
	st.Pool.QueueDepth = s.depth
	st.Pool.Queued = s.pool.Queued()
	st.Pool.Running = s.pool.Running()
	st.ResultCache.Entries = s.cache.len()
	st.ResultCache.Capacity = s.cache.max
	st.ResultCache.DiskDir = s.store.Dir()
	st.ResultCache.DiskLen = s.store.Len()
	st.TraceCache = s.traces.Stats()
	return st
}

// ServeHTTP routes the server's three endpoints: /query (GET or POST),
// /statusz, /healthz.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/query":
		s.handleQuery(w, r)
	case "/statusz":
		s.handleStatus(w, r)
	case "/healthz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

// handleQuery answers one query: 200 with the Record JSON (and an
// X-Dsm-Cache header naming the layer that answered), 400 on a
// malformed or unknown query, 429 + Retry-After under backpressure,
// 500 on a simulation failure.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q harness.Query
	var err error
	switch r.Method {
	case http.MethodGet:
		q, err = queryFromURL(r)
	case http.MethodPost:
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		err = dec.Decode(&q)
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "use GET with query parameters or POST a JSON query", http.StatusMethodNotAllowed)
		return
	}
	if err == nil {
		q = q.Normalize()
		err = q.Validate()
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	body, src, err := s.Answer(r.Context(), q)
	switch {
	case errors.Is(err, ErrOverloaded):
		// Retry-After sizes the hint to the actual backlog: how long,
		// at the observed mean cold-run latency, until the pool drains
		// a slot for the retry.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away (or the server is aborting); 503 tells
		// a proxy the request may be retried elsewhere.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Dsm-Cache", string(src))
	w.Header().Set("X-Dsm-Key", ResultKey(q, s.commit))
	w.Write(body)
}

// handleStatus renders the counter snapshot.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	buf, err := json.MarshalIndent(s.StatusNow(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

// queryFromURL decodes a GET query: ?experiment=fig5&apps=radix,lu&
// systems=ccnuma&fabric=ring&scale=8&scales=8,16&seed=7&shards=4.
func queryFromURL(r *http.Request) (harness.Query, error) {
	var q harness.Query
	v := r.URL.Query()
	for name := range v {
		switch name {
		case "experiment", "apps", "systems", "fabric", "scale", "scales", "seed", "shards":
		default:
			return q, fmt.Errorf("serve: unknown query parameter %q", name)
		}
	}
	q.Experiment = v.Get("experiment")
	q.Fabric = v.Get("fabric")
	if s := v.Get("apps"); s != "" {
		q.Apps = strings.Split(s, ",")
	}
	if s := v.Get("systems"); s != "" {
		q.Systems = strings.Split(s, ",")
	}
	if s := v.Get("scale"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return q, fmt.Errorf("serve: bad scale %q: %w", s, err)
		}
		q.Scale = n
	}
	if s := v.Get("scales"); s != "" {
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return q, fmt.Errorf("serve: bad scales entry %q: %w", f, err)
			}
			q.Scales = append(q.Scales, n)
		}
	}
	if s := v.Get("seed"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return q, fmt.Errorf("serve: bad seed %q: %w", s, err)
		}
		q.Seed = n
	}
	if s := v.Get("shards"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return q, fmt.Errorf("serve: bad shards %q: %w", s, err)
		}
		q.Shards = n
	}
	return q, nil
}
