package serve

import (
	"container/list"
	"sync"
)

// resultLRU is the in-memory tier in front of the on-disk ResultStore:
// a bounded, mutex-guarded LRU of complete response bodies keyed by
// result key. Eviction is by entry count — responses for one build are
// all within a small constant factor of each other, so a byte budget
// would buy complexity without changing behavior much. Both add and
// get copy: the cache owns its bytes, so neither a caller reusing the
// buffer it inserted nor one scribbling on a body it was handed can
// corrupt what the next request is served.
type resultLRU struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

// lruEntry is one cached response.
type lruEntry struct {
	key  string
	body []byte
}

// newResultLRU returns an LRU holding at most max entries (max < 1 is
// treated as 1: a cache the server's warm-path test can still observe).
func newResultLRU(max int) *resultLRU {
	if max < 1 {
		max = 1
	}
	return &resultLRU{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns a copy of the cached body for key, refreshing its
// recency.
func (c *resultLRU) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return append([]byte(nil), el.Value.(*lruEntry).body...), true
}

// add installs (or refreshes) a body under key, evicting the least
// recently used entry when the cache is over budget.
func (c *resultLRU) add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body = append([]byte(nil), body...)
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// len returns the current entry count.
func (c *resultLRU) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
