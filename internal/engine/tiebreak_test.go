package engine

import (
	"math/rand"
	"testing"
)

// TestDispatchOrderIsTotalUnderHeapChurn pins the deterministic
// tie-break: the scheduler must always surface the unique (Clock, ID)
// minimum of the runnable set, no matter how Park/Unblock/Retire churn
// reshapes the heap. Equal-clock events with an undefined order would
// pass the simple two-CPU tie test but reorder under a different heap
// layout — exactly the hazard a sharded engine introduces, since every
// shard rebuilds its own heap over a subset of the CPUs.
func TestDispatchOrderIsTotalUnderHeapChurn(t *testing.T) {
	const cpus = 24
	rng := rand.New(rand.NewSource(41))
	s := NewScheduler(cpus)
	var parked []*CPU
	runnable := func() []*CPU {
		var out []*CPU
		for id := 0; id < cpus; id++ {
			if c := s.CPUByID(id); c.Runnable() {
				out = append(out, c)
			}
		}
		return out
	}
	for step := 0; step < 5000 && !s.Done(); step++ {
		// Unblock a parked CPU at a clock that collides with live ones.
		if len(parked) > 0 && rng.Intn(4) == 0 {
			c := parked[len(parked)-1]
			parked = parked[:len(parked)-1]
			s.Unblock(c, c.Clock+Time(rng.Intn(3)))
		}
		c := s.Peek()
		if c == nil {
			break
		}
		// The peeked CPU must be the (Clock, ID) minimum of the
		// runnable set, computed independently of the heap.
		for _, o := range runnable() {
			if o.Clock < c.Clock || (o.Clock == c.Clock && o.ID < c.ID) {
				t.Fatalf("step %d: dispatched cpu %d at %d, but cpu %d at %d is earlier",
					step, c.ID, c.Clock, o.ID, o.Clock)
			}
		}
		switch rng.Intn(8) {
		case 0:
			s.Park(c)
			parked = append(parked, c)
		case 1:
			s.Retire(c)
		default:
			// Zero-gap advances keep equal-clock collisions frequent.
			c.Clock += Time(rng.Intn(3))
			s.Requeue(c)
		}
	}
	for _, c := range parked {
		s.Unblock(c, c.Clock)
		s.Retire(c)
	}
}

// TestSchedulerRange pins the sharded construction: a scheduler over an
// ID range [lo, hi) manages exactly those IDs, resolves CPUByID against
// the range base, and dispatches in the same (Clock, ID) order a full
// scheduler would restrict to that subset.
func TestSchedulerRange(t *testing.T) {
	s := NewSchedulerRange(8, 12)
	if got := s.NumCPUs(); got != 4 {
		t.Fatalf("NumCPUs() = %d, want 4", got)
	}
	for id := 8; id < 12; id++ {
		c := s.CPUByID(id)
		if c.ID != id {
			t.Fatalf("CPUByID(%d).ID = %d", id, c.ID)
		}
		if !c.Runnable() {
			t.Fatalf("cpu %d not runnable at start", id)
		}
	}
	// All clocks equal: dispatch order must be ascending ID.
	for want := 8; want < 12; want++ {
		c := s.Peek()
		if c.ID != want {
			t.Fatalf("dispatch %d: got cpu %d", want-8, c.ID)
		}
		s.Retire(c)
	}
	if !s.Done() {
		t.Fatal("range scheduler not done after retiring all CPUs")
	}
}

// TestTopDoesNotCountDispatches pins the coordinator probe contract:
// Top returns the same CPU Peek would, without advancing the dispatch
// counter — so merging shard heaps through Top leaves the per-run
// dispatch total equal to the sequential engine's.
func TestTopDoesNotCountDispatches(t *testing.T) {
	s := NewScheduler(3)
	for i := 0; i < 10; i++ {
		if s.Top() != s.heap[0] {
			t.Fatal("Top disagrees with heap minimum")
		}
	}
	if got := s.Dispatches(); got != 0 {
		t.Fatalf("Dispatches() = %d after Top-only probes, want 0", got)
	}
	c := s.Peek()
	if c == nil || s.Dispatches() != 1 {
		t.Fatalf("Peek did not count a dispatch")
	}
	c.Clock += 5
	s.Requeue(c)
	if s.Top().ID != 1 {
		t.Fatalf("Top() = cpu %d after requeue, want 1", s.Top().ID)
	}
	if got := s.Dispatches(); got != 1 {
		t.Fatalf("Dispatches() = %d, want 1", got)
	}
}
