package engine

import (
	"testing"
	"testing/quick"
)

func TestResourceQueuing(t *testing.T) {
	r := NewResource("bus")
	if end := r.Acquire(100, 10); end != 110 {
		t.Fatalf("first acquire ends at %d, want 110", end)
	}
	// A request arriving during service queues behind it.
	if end := r.Acquire(105, 10); end != 120 {
		t.Fatalf("queued acquire ends at %d, want 120", end)
	}
	// A request arriving after the resource is free starts immediately.
	if end := r.Acquire(500, 10); end != 510 {
		t.Fatalf("idle acquire ends at %d, want 510", end)
	}
	if r.Busy() != 30 {
		t.Errorf("busy = %d, want 30", r.Busy())
	}
	if r.Uses() != 3 {
		t.Errorf("uses = %d, want 3", r.Uses())
	}
}

func TestResourceNeverOverlaps(t *testing.T) {
	// Property: service intervals never overlap and never start before
	// the request time.
	f := func(arrivals []uint16, occ uint8) bool {
		r := NewResource("x")
		o := Time(occ%50) + 1
		var now, lastEnd Time
		for _, a := range arrivals {
			now += Time(a % 100)
			end := r.Acquire(now, o)
			start := end - o
			if start < now || start < lastEnd {
				return false
			}
			lastEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler(3)
	a := s.Next()
	a.Clock = 50
	s.Yield(a)
	b := s.Next()
	b.Clock = 10
	s.Yield(b)
	c := s.Next()
	c.Clock = 30
	s.Yield(c)
	// Expect pops in clock order: 10, 30, 50.
	var got []Time
	for i := 0; i < 3; i++ {
		c := s.Next()
		got = append(got, c.Clock)
		s.Finish(c)
	}
	want := []Time{10, 30, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d at time %d, want %d", i, got[i], want[i])
		}
	}
	if !s.Done() {
		t.Error("scheduler not done after finishing all cpus")
	}
}

func TestSchedulerTieBreaksByID(t *testing.T) {
	s := NewScheduler(4)
	// All clocks equal: pops must come in id order.
	for want := 0; want < 4; want++ {
		c := s.Next()
		if c.ID != want {
			t.Fatalf("pop id %d, want %d", c.ID, want)
		}
		s.Finish(c)
	}
}

func TestSchedulerBlockUnblock(t *testing.T) {
	s := NewScheduler(2)
	a := s.Next() // id 0
	s.Block(a)
	b := s.Next() // id 1
	b.Clock = 42
	s.Unblock(a, 42)
	s.Yield(b)
	// Both runnable at 42: id order applies.
	if c := s.Next(); c.ID != 0 || c.Clock != 42 {
		t.Fatalf("got cpu %d at %d, want cpu 0 at 42", c.ID, c.Clock)
	}
}

func TestUnblockNeverRewindsClock(t *testing.T) {
	s := NewScheduler(1)
	c := s.Next()
	c.Clock = 100
	s.Block(c)
	s.Unblock(c, 50) // release time before the cpu's own clock
	if c.Clock != 100 {
		t.Errorf("clock rewound to %d", c.Clock)
	}
}

func TestBarrierReleasesAtMaxPlusOverhead(t *testing.T) {
	b := NewBarrier(3, 7)
	s := NewScheduler(3)
	c0 := s.Next()
	c0.Clock = 10
	if _, _, ok := b.Arrive(c0); ok {
		t.Fatal("barrier released early")
	}
	s.Block(c0)
	c1 := s.Next()
	c1.Clock = 90
	if _, _, ok := b.Arrive(c1); ok {
		t.Fatal("barrier released early")
	}
	s.Block(c1)
	c2 := s.Next()
	c2.Clock = 40
	release, waiters, ok := b.Arrive(c2)
	if !ok {
		t.Fatal("last arriver did not release")
	}
	if release != 97 {
		t.Errorf("release at %d, want 97 (max 90 + overhead 7)", release)
	}
	if len(waiters) != 2 {
		t.Errorf("%d waiters, want 2", len(waiters))
	}
	if c2.Clock != 97 {
		t.Errorf("releaser clock %d, want 97", c2.Clock)
	}
	if b.Epochs() != 1 {
		t.Errorf("epochs = %d, want 1", b.Epochs())
	}
}

func TestBarrierReuse(t *testing.T) {
	b := NewBarrier(2, 0)
	s := NewScheduler(2)
	x, y := s.Next(), s.Next()
	for epoch := 1; epoch <= 5; epoch++ {
		x.Clock = Time(epoch * 100)
		if _, _, ok := b.Arrive(x); ok {
			t.Fatal("released with one arrival")
		}
		y.Clock = Time(epoch*100 + 50)
		release, waiters, ok := b.Arrive(y)
		if !ok || len(waiters) != 1 || release != Time(epoch*100+50) {
			t.Fatalf("epoch %d: release=%d ok=%v waiters=%d", epoch, release, ok, len(waiters))
		}
		x.Clock = release
	}
	if b.Epochs() != 5 {
		t.Errorf("epochs = %d, want 5", b.Epochs())
	}
}

func TestLockSerializes(t *testing.T) {
	l := NewLock()
	s := NewScheduler(3)
	a := s.Next()
	a.Clock = 10
	if !l.Acquire(a) {
		t.Fatal("free lock refused acquisition")
	}
	if l.Holder() != a.ID {
		t.Fatalf("holder = %d, want %d", l.Holder(), a.ID)
	}
	b := s.Next()
	b.Clock = 15
	if l.Acquire(b) {
		t.Fatal("held lock granted twice")
	}
	next := l.Release(60)
	if next != b {
		t.Fatal("release did not hand off to waiter")
	}
	if next2 := l.Release(80); next2 != nil {
		t.Fatal("empty queue release returned a cpu")
	}
	if l.Holder() != -1 {
		t.Errorf("holder = %d after final release", l.Holder())
	}
	if l.Acquisitions() != 2 {
		t.Errorf("acquisitions = %d, want 2", l.Acquisitions())
	}
}

func TestLockFreeTimeCarries(t *testing.T) {
	l := NewLock()
	s := NewScheduler(2)
	a := s.Next()
	a.Clock = 10
	l.Acquire(a)
	l.Release(100)
	// A later uncontended acquire at t=20 must not begin before the
	// lock was actually free.
	b := s.Next()
	b.Clock = 20
	if !l.Acquire(b) {
		t.Fatal("free lock refused")
	}
	if b.Clock != 100 {
		t.Errorf("acquire advanced clock to %d, want 100", b.Clock)
	}
}

func TestLockFIFO(t *testing.T) {
	l := NewLock()
	s := NewScheduler(4)
	holder := s.Next()
	l.Acquire(holder)
	var waiters []*CPU
	for i := 0; i < 3; i++ {
		c := s.Next()
		if l.Acquire(c) {
			t.Fatal("held lock granted")
		}
		waiters = append(waiters, c)
	}
	for i := 0; i < 3; i++ {
		next := l.Release(Time(100 * (i + 1)))
		if next != waiters[i] {
			t.Fatalf("handoff %d went to cpu %d, want %d", i, next.ID, waiters[i].ID)
		}
	}
	if l.MaxQueue() != 3 {
		t.Errorf("max queue = %d, want 3", l.MaxQueue())
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("release of unheld lock did not panic")
		}
	}()
	NewLock().Release(0)
}

func TestSchedulerDeterminism(t *testing.T) {
	// Property: interleaving a fixed workload twice yields identical pop
	// sequences.
	run := func() []int {
		s := NewScheduler(4)
		var order []int
		steps := map[int]int{}
		for !s.Done() {
			c := s.Next()
			order = append(order, c.ID)
			steps[c.ID]++
			if steps[c.ID] >= 5 {
				s.Finish(c)
				continue
			}
			c.Clock += Time((c.ID*7+steps[c.ID]*13)%29 + 1)
			s.Yield(c)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}
