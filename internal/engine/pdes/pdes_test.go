package pdes

import (
	"errors"
	"sync"
	"testing"
)

// fakeShard models a shard as a sorted list of events, each either
// local (committable in parallel) or global (must flow through Step).
type fakeShard struct {
	mu     sync.Mutex
	events []fakeEvent // sorted by key
	log    *commitLog
}

type fakeEvent struct {
	key   Key
	local bool
}

// commitLog records the order constraint the coordinator must enforce:
// no local event may commit after a global event with a larger key has
// already executed... and vice versa. It tracks the maximum global key
// executed so far and fails on any local commit below it that was
// still pending when the global ran.
type commitLog struct {
	mu        sync.Mutex
	globalMax Key
	violation bool
}

func (s *fakeShard) Prepare() Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.events {
		if !e.local {
			return e.key
		}
	}
	return Inf
}

func (s *fakeShard) Advance(limit Key) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for len(s.events) > 0 {
		e := s.events[0]
		if !e.local || !e.key.Less(limit) {
			break
		}
		s.log.mu.Lock()
		// A local event committing below an already-executed global
		// event's key means the coordinator let a shard run behind the
		// serial frontier.
		if e.key.Less(s.log.globalMax) {
			s.log.violation = true
		}
		s.log.mu.Unlock()
		s.events = s.events[1:]
		n++
	}
	return n
}

func (s *fakeShard) next() (Key, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) == 0 {
		return Inf, false
	}
	return s.events[0].key, true
}

func (s *fakeShard) pop() fakeEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.events[0]
	s.events = s.events[1:]
	return e
}

// buildShards lays out interleaved local/global events across shards
// with deliberate key collisions (many events share At values).
func buildShards(nShards, perShard int, log *commitLog) []*fakeShard {
	shards := make([]*fakeShard, nShards)
	for si := range shards {
		sh := &fakeShard{log: log}
		at := int64(0)
		for i := 0; i < perShard; i++ {
			// Deterministic pseudo-random mix; every 5th event global.
			at += int64((si*7 + i*3) % 4)
			sh.events = append(sh.events, fakeEvent{
				key:   Key{At: at, ID: int32(si*perShard + i)},
				local: (si+i)%5 != 0,
			})
		}
		shards[si] = sh
	}
	return shards
}

func TestRunExecutesEverythingInOrder(t *testing.T) {
	log := &commitLog{}
	shards := buildShards(4, 200, log)
	cfg := Config{
		Shards:      []Shard{shards[0], shards[1], shards[2], shards[3]},
		SerialBatch: 8,
	}
	cfg.Done = func() bool {
		for _, s := range shards {
			if _, ok := s.next(); ok {
				return false
			}
		}
		return true
	}
	cfg.Step = func() (Key, error) {
		best := -1
		bestKey := Inf
		for i, s := range shards {
			if k, ok := s.next(); ok && k.Less(bestKey) {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return Key{}, errors.New("deadlock: no events left")
		}
		e := shards[best].pop()
		log.mu.Lock()
		if log.globalMax.Less(e.key) {
			log.globalMax = e.key
		}
		log.mu.Unlock()
		return e.key, nil
	}
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if log.violation {
		t.Fatal("a shard committed a local event below the executed serial frontier")
	}
	total := st.Committed + st.Serial
	if total != 4*200 {
		t.Fatalf("executed %d events (committed %d, serial %d), want %d", total, st.Committed, st.Serial, 4*200)
	}
	if st.Committed == 0 {
		t.Fatal("no events committed in parallel; the commit phase never engaged")
	}
	if st.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

// TestRunSingleShardAllGlobal degenerates to a purely serial run.
func TestRunSingleShardAllGlobal(t *testing.T) {
	log := &commitLog{}
	sh := &fakeShard{log: log}
	for i := 0; i < 50; i++ {
		sh.events = append(sh.events, fakeEvent{key: Key{At: int64(i), ID: 0}, local: false})
	}
	cfg := Config{Shards: []Shard{sh}}
	cfg.Done = func() bool { _, ok := sh.next(); return !ok }
	cfg.Step = func() (Key, error) {
		e := sh.pop()
		return e.key, nil
	}
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Serial != 50 || st.Committed != 0 {
		t.Fatalf("serial=%d committed=%d, want 50/0", st.Serial, st.Committed)
	}
}

// TestRunPropagatesStepError pins that a Step failure aborts the run
// and shuts the workers down (Run returning is the proof).
func TestRunPropagatesStepError(t *testing.T) {
	sh := &fakeShard{log: &commitLog{}}
	sh.events = []fakeEvent{{key: Key{At: 1}, local: false}}
	boom := errors.New("boom")
	cfg := Config{
		Shards: []Shard{sh},
		Done:   func() bool { return false },
		Step:   func() (Key, error) { return Key{}, boom },
	}
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
}

// TestRunRejectsKeyRegression pins the coordinator-level audit: serial
// keys must be non-decreasing.
func TestRunRejectsKeyRegression(t *testing.T) {
	sh := &fakeShard{log: &commitLog{}}
	cfg := Config{Shards: []Shard{sh}}
	keys := []Key{{At: 10}, {At: 5}}
	i := 0
	cfg.Done = func() bool { return i >= len(keys) }
	cfg.Step = func() (Key, error) { k := keys[i]; i++; return k, nil }
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted a regressing serial key sequence")
	}
}

func TestKeyOrdering(t *testing.T) {
	a := Key{At: 5, ID: 3}
	b := Key{At: 5, ID: 4}
	c := Key{At: 6, ID: 0}
	if !a.Less(b) || !b.Less(c) || b.Less(a) || c.Less(a) {
		t.Fatal("Key.Less is not the (At, ID) lexicographic order")
	}
	if a.Less(a) {
		t.Fatal("Key.Less is not strict")
	}
	if !a.Less(Inf) {
		t.Fatal("Inf does not dominate")
	}
	if got := b.Min(a); got != a {
		t.Fatalf("Min = %v, want %v", got, a)
	}
}
