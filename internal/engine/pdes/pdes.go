// Package pdes coordinates a sharded, conservative parallel
// discrete-event simulation over goroutine-owned shards.
//
// The model is classic conservative PDES with a twist forced by the
// simulator it drives. In textbook Chandy–Misra–Bryant, a shard may
// advance to min(neighbor horizons) + lookahead, where the lookahead is
// the minimum latency of a cross-shard message (here: one fabric hop).
// That rule is sound for simulators whose only cross-shard coupling is
// messages. The DSM machine's coupling is stronger: a dispatched event
// mutates globally visible state (directory entries, page tables,
// remote cache lines) at dispatch time, with zero latency — an
// invalidation issued by shard A at time t changes what shard B's very
// next event at time t+1 observes. The effective lookahead of such
// events is zero, so a hop-latency window cannot order them.
//
// The coordinator therefore splits each round into three phases:
//
//   - a parallel prepare phase, in which every shard concurrently
//     refreshes whatever conservative state the serial phase staled and
//     publishes its horizon — a lower bound on the key of its earliest
//     event that might have non-local effects. Preparing in parallel,
//     after the serial phase, is load-bearing: the serial phase always
//     ends having just touched the globally earliest processor, so a
//     horizon computed from stale state would forever equal the global
//     minimum key and admit no parallelism at all;
//   - a parallel commit phase, in which every shard concurrently
//     executes only events it can prove are shard-local and commuting
//     (the shard's Advance method encodes the proof), strictly below
//     the global horizon key M = min over shards of the published
//     horizons;
//   - a serial phase, in which the coordinator executes a batch of the
//     globally earliest remaining events — the ones with cross-shard
//     effects — in exact (time, ID) order through the Step callback.
//
// Because every committed event has a key below M and provably commutes
// with every other committed event, while every ordering-sensitive
// event executes serially in global key order, the interleaving is
// equivalent to the sequential simulation — the parallel engine's
// results are byte-identical by construction, not by tolerance. The
// published horizon doubles as the null message of CMB: a shard with
// nothing to commit still publishes a bound, so no round deadlocks
// waiting for a quiet shard.
package pdes

import (
	"fmt"
	"math"
)

// Key is a global event-dispatch key: simulated time, tie-broken by CPU
// ID. The engine scheduler dispatches the unique (Clock, ID) minimum,
// so Keys totally order events exactly as the sequential engine does.
type Key struct {
	At int64
	ID int32
}

// Inf is the key past every event: the horizon of a shard whose
// remaining work is entirely local.
var Inf = Key{At: math.MaxInt64, ID: math.MaxInt32}

// Less reports whether k orders strictly before o.
func (k Key) Less(o Key) bool {
	if k.At != o.At {
		return k.At < o.At
	}
	return k.ID < o.ID
}

// Min returns the smaller of k and o.
func (k Key) Min(o Key) Key {
	if o.Less(k) {
		return o
	}
	return k
}

// Shard is one goroutine-owned partition of the simulation.
//
// The coordinator calls Step only while every worker is parked at a
// phase barrier; Prepare runs concurrently with other shards' Prepare
// calls and Advance with other shards' Advance calls — so both may
// freely mutate shard-owned state and read shared state, but must not
// write anything another shard could read.
type Shard interface {
	// Prepare refreshes whatever conservative per-shard state the last
	// serial phase invalidated, and returns the shard's horizon: a
	// lower bound on the key of its earliest event that might have
	// effects outside the shard. Events the shard has already proven
	// local may lie below the horizon; everything unproven must not.
	// Inf means the shard's remaining work is all local (or it has
	// none).
	Prepare() Key

	// Advance executes as many provably shard-local, commuting events
	// with keys strictly below limit as the shard can, and returns how
	// many it committed.
	Advance(limit Key) int
}

// Config wires a simulation into the coordinator.
type Config struct {
	// Shards is the partition; len(Shards) == 1 degenerates to an
	// almost-sequential run (every event flows through Step).
	Shards []Shard

	// Step executes the globally earliest remaining event — across all
	// shards — and returns its key. It is called only between parallel
	// phases, so it may touch any state. Returning an error (deadlock,
	// corrupt trace) aborts the run.
	Step func() (Key, error)

	// Done reports whether the simulation has finished.
	Done func() bool

	// SerialBatch is the initial number of Step calls per serial phase;
	// zero selects a default. The coordinator adapts it between rounds:
	// when commit phases find little parallel work the batch grows to
	// amortize barrier costs, and shrinks again when parallelism
	// returns.
	SerialBatch int
}

// Stats describes one coordinated run.
type Stats struct {
	// Rounds is the number of commit-phase/serial-phase cycles.
	Rounds int64
	// Committed counts events executed inside parallel commit phases.
	Committed int64
	// Serial counts events executed by Step.
	Serial int64
}

const (
	defaultSerialBatch = 256
	minSerialBatch     = 64
	maxSerialBatch     = 1 << 16
)

// Run drives the simulation to completion: rounds of a parallel
// prepare phase (each shard refreshes its conservative state and
// publishes its horizon), a parallel commit phase below the global
// minimum of those horizons, and a serial batch of globally-ordered
// steps, until Done. Workers are persistent goroutines parked on
// channels between phases; Run returns only after every worker has
// exited.
func Run(cfg Config) (Stats, error) {
	var st Stats
	if cfg.Done() {
		return st, nil
	}
	batch := cfg.SerialBatch
	if batch <= 0 {
		batch = defaultSerialBatch
	}

	// Persistent workers: one per shard, parked on reqs between phases.
	// Buffered channels let the coordinator fan out and gather without
	// handshakes. A prepare request answers with the shard's horizon, a
	// commit request with how many events it committed.
	type req struct {
		prepare bool
		limit   Key
	}
	type resp struct {
		horizon Key
		count   int
	}
	reqs := make([]chan req, len(cfg.Shards))
	resps := make([]chan resp, len(cfg.Shards))
	for i, sh := range cfg.Shards {
		reqs[i] = make(chan req, 1)
		resps[i] = make(chan resp, 1)
		go func(sh Shard, in <-chan req, out chan<- resp) {
			for r := range in {
				if r.prepare {
					out <- resp{horizon: sh.Prepare()}
				} else {
					out <- resp{count: sh.Advance(r.limit)}
				}
			}
		}(sh, reqs[i], resps[i])
	}
	defer func() {
		for _, ch := range reqs {
			close(ch)
		}
	}()

	lastKey := Key{At: math.MinInt64, ID: math.MinInt32}
	for !cfg.Done() {
		st.Rounds++

		// Parallel prepare + null-message exchange: every shard
		// refreshes its conservative state and publishes its horizon;
		// the minimum bounds what any shard may commit.
		horizon := Inf
		for i := range cfg.Shards {
			reqs[i] <- req{prepare: true}
		}
		for i := range cfg.Shards {
			horizon = horizon.Min((<-resps[i]).horizon)
		}

		// Parallel commit phase.
		committed := 0
		for i := range cfg.Shards {
			reqs[i] <- req{limit: horizon}
		}
		for i := range cfg.Shards {
			committed += (<-resps[i]).count
		}
		st.Committed += int64(committed)
		if cfg.Done() {
			break
		}

		// Serial phase: the globally earliest events, in exact key
		// order. Keys must be non-decreasing — a regression means a
		// commit phase ran an event it could not prove local, which
		// would break byte-identity silently if left undetected.
		for i := 0; i < batch && !cfg.Done(); i++ {
			k, err := cfg.Step()
			if err != nil {
				return st, err
			}
			if k.Less(lastKey) {
				return st, fmt.Errorf("pdes: serial event key (%d,%d) regressed below (%d,%d)",
					k.At, k.ID, lastKey.At, lastKey.ID)
			}
			lastKey = k
			st.Serial++
		}

		// Adapt the serial batch to the observed parallelism: barriers
		// are pure overhead while the workload is serial-dominated.
		if committed < batch/4 {
			if batch < maxSerialBatch {
				batch *= 2
			}
		} else if batch > minSerialBatch {
			batch /= 2
		}
	}
	return st, nil
}
