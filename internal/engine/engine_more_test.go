package engine

import (
	"testing"
	"testing/quick"
)

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	r.Reset()
	if r.Busy() != 0 || r.Uses() != 0 || r.Peek() != 0 {
		t.Errorf("reset left state: busy=%d uses=%d peek=%d", r.Busy(), r.Uses(), r.Peek())
	}
	if end := r.Acquire(5, 10); end != 15 {
		t.Errorf("post-reset acquire = %d, want 15", end)
	}
	if r.Name() != "x" {
		t.Errorf("name = %q", r.Name())
	}
}

func TestResourceUtilizationAccounting(t *testing.T) {
	// Property: total busy time equals the sum of occupancies.
	f := func(occs []uint8) bool {
		r := NewResource("u")
		var want Time
		var now Time
		for _, o := range occs {
			d := Time(o%20) + 1
			want += d
			now = r.Acquire(now, d)
		}
		return r.Busy() == want && r.Uses() == int64(len(occs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBarrierPopulationValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-population barrier did not panic")
		}
	}()
	NewBarrier(0, 0)
}

func TestYieldNonRunnablePanics(t *testing.T) {
	s := NewScheduler(1)
	c := s.Next()
	s.Block(c)
	defer func() {
		if recover() == nil {
			t.Error("yield of blocked cpu did not panic")
		}
	}()
	s.Yield(c)
}

func TestUnblockRunnablePanics(t *testing.T) {
	s := NewScheduler(1)
	c := s.Next()
	defer func() {
		if recover() == nil {
			t.Error("unblock of runnable cpu did not panic")
		}
	}()
	s.Unblock(c, 10)
}

func TestMaxClock(t *testing.T) {
	s := NewScheduler(3)
	for i := 0; i < 3; i++ {
		c := s.Next()
		c.Clock = Time(100 * (i + 1))
		s.Finish(c)
	}
	if got := s.MaxClock(); got != 300 {
		t.Errorf("max clock = %d, want 300", got)
	}
}

func TestBarrierWaitingCount(t *testing.T) {
	b := NewBarrier(3, 0)
	s := NewScheduler(3)
	c := s.Next()
	b.Arrive(c)
	if b.Waiting() != 1 {
		t.Errorf("waiting = %d, want 1", b.Waiting())
	}
}

// TestManyCPUsFairness: under identical per-step advances every CPU
// executes the same number of steps.
func TestManyCPUsFairness(t *testing.T) {
	const n = 32
	s := NewScheduler(n)
	steps := make([]int, n)
	for i := 0; i < n*100; i++ {
		c := s.Next()
		steps[c.ID]++
		c.Clock += 10
		s.Yield(c)
	}
	for id, got := range steps {
		if got != 100 {
			t.Errorf("cpu %d ran %d steps, want 100", id, got)
		}
	}
}
