// Package engine provides the discrete-event core of the simulator: a set
// of processor clocks advanced in global time order, queued resources that
// model contention (memory buses, network interfaces, home controllers),
// and synchronization objects (barriers and locks) whose waiting time is
// charged in simulated cycles.
//
// The engine is deterministic: when several processors are eligible at the
// same simulated time, the lowest-numbered processor runs first.
package engine

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in processor cycles.
type Time = int64

// Resource models a unit-capacity server with FIFO queuing: a request
// arriving at time t begins service at max(t, nextFree) and holds the
// resource for its occupancy. This is the standard analytic contention
// model for split-transaction buses and network interfaces.
type Resource struct {
	name     string
	nextFree Time
	busy     Time // accumulated busy cycles, for utilization reports
	uses     int64
}

// NewResource returns a named, initially idle resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Acquire occupies the resource for occ cycles starting no earlier than
// now, and returns the time at which service completes. The differences
// between the return value and now is the total delay (queuing plus
// service) experienced by the request.
func (r *Resource) Acquire(now Time, occ Time) Time {
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	end := start + occ
	r.nextFree = end
	r.busy += occ
	r.uses++
	return end
}

// Peek returns the earliest time a new request could begin service.
func (r *Resource) Peek() Time { return r.nextFree }

// Busy returns the total cycles the resource has been occupied.
func (r *Resource) Busy() Time { return r.busy }

// Uses returns the number of acquisitions.
func (r *Resource) Uses() int64 { return r.uses }

// Name returns the resource's label.
func (r *Resource) Name() string { return r.name }

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() {
	r.nextFree = 0
	r.busy = 0
	r.uses = 0
}

// cpuState is the scheduling state of one simulated processor.
type cpuState int

const (
	cpuRunnable cpuState = iota
	cpuBlocked           // waiting at a barrier or on a lock
	cpuDone
)

// CPU is one simulated processor context managed by the Scheduler.
type CPU struct {
	ID    int
	Clock Time

	state cpuState
	index int // position in the runnable heap, -1 if not queued
}

// Scheduler advances a fixed set of CPUs in global simulated-time order.
// The caller repeatedly calls Next to obtain the earliest runnable CPU,
// performs one unit of that CPU's work (advancing its Clock), and calls
// Yield to requeue it.
type Scheduler struct {
	cpus []*CPU
	heap cpuHeap
	done int
}

// NewScheduler creates a scheduler over n CPUs, all runnable at time 0.
func NewScheduler(n int) *Scheduler {
	s := &Scheduler{cpus: make([]*CPU, n)}
	s.heap = make(cpuHeap, 0, n)
	for i := 0; i < n; i++ {
		c := &CPU{ID: i, index: -1}
		s.cpus[i] = c
		heap.Push(&s.heap, c)
	}
	return s
}

// NumCPUs returns the number of processors under management.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// CPUByID returns the processor with the given id.
func (s *Scheduler) CPUByID(id int) *CPU { return s.cpus[id] }

// Next pops the runnable CPU with the smallest clock (ties broken by id).
// It returns nil when no CPU is runnable: either all are done, or the
// system has deadlocked on synchronization (which Done distinguishes).
func (s *Scheduler) Next() *CPU {
	if s.heap.Len() == 0 {
		return nil
	}
	return heap.Pop(&s.heap).(*CPU)
}

// Yield requeues a CPU obtained from Next so it can run again.
func (s *Scheduler) Yield(c *CPU) {
	if c.state != cpuRunnable {
		panic(fmt.Sprintf("engine: yield of non-runnable cpu %d", c.ID))
	}
	heap.Push(&s.heap, c)
}

// Block marks a CPU (obtained from Next) as waiting on synchronization.
// It must later be released with Unblock.
func (s *Scheduler) Block(c *CPU) { c.state = cpuBlocked }

// Unblock makes a blocked CPU runnable at the given time and requeues it.
func (s *Scheduler) Unblock(c *CPU, at Time) {
	if c.state != cpuBlocked {
		panic(fmt.Sprintf("engine: unblock of non-blocked cpu %d", c.ID))
	}
	if at > c.Clock {
		c.Clock = at
	}
	c.state = cpuRunnable
	heap.Push(&s.heap, c)
}

// Finish retires a CPU obtained from Next.
func (s *Scheduler) Finish(c *CPU) {
	c.state = cpuDone
	s.done++
}

// Done reports whether every CPU has finished.
func (s *Scheduler) Done() bool { return s.done == len(s.cpus) }

// MaxClock returns the maximum clock over all CPUs — the simulated
// execution time once Done.
func (s *Scheduler) MaxClock() Time {
	var m Time
	for _, c := range s.cpus {
		if c.Clock > m {
			m = c.Clock
		}
	}
	return m
}

// cpuHeap orders CPUs by (Clock, ID).
type cpuHeap []*CPU

func (h cpuHeap) Len() int { return len(h) }
func (h cpuHeap) Less(i, j int) bool {
	if h[i].Clock != h[j].Clock {
		return h[i].Clock < h[j].Clock
	}
	return h[i].ID < h[j].ID
}
func (h cpuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *cpuHeap) Push(x any) {
	c := x.(*CPU)
	c.index = len(*h)
	*h = append(*h, c)
}
func (h *cpuHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	c.index = -1
	*h = old[:n-1]
	return c
}

// Barrier synchronizes a fixed population of CPUs: the last arriver
// releases everyone at max(arrival times) plus the release overhead.
type Barrier struct {
	population int
	overhead   Time

	waiting []*CPU
	maxTime Time
	epochs  int64
}

// NewBarrier creates a barrier for the given population. overhead is
// added to the release time to account for the barrier implementation's
// own communication.
func NewBarrier(population int, overhead Time) *Barrier {
	if population <= 0 {
		panic("engine: barrier population must be positive")
	}
	return &Barrier{population: population, overhead: overhead}
}

// Arrive registers c at the barrier. If c is the last arriver, Arrive
// returns the release time and the slice of previously waiting CPUs that
// the caller must Unblock at that time; c itself remains runnable and its
// clock is advanced to the release time. Otherwise Arrive returns ok =
// false and the caller must Block c.
func (b *Barrier) Arrive(c *CPU) (release Time, waiters []*CPU, ok bool) {
	if c.Clock > b.maxTime {
		b.maxTime = c.Clock
	}
	if len(b.waiting)+1 == b.population {
		release = b.maxTime + b.overhead
		waiters = b.waiting
		b.waiting = nil
		b.maxTime = 0
		b.epochs++
		c.Clock = release
		return release, waiters, true
	}
	b.waiting = append(b.waiting, c)
	return 0, nil, false
}

// Epochs returns how many times the barrier has released.
func (b *Barrier) Epochs() int64 { return b.epochs }

// Waiting returns how many CPUs are currently parked at the barrier.
func (b *Barrier) Waiting() int { return len(b.waiting) }

// Lock models a mutex acquired in simulated-time order. Acquisition is
// serialized: a CPU that requests the lock while it is held is parked and
// released when the holder unlocks. The memory-system cost of the lock
// operation itself (the remote access to the lock word) is charged by the
// caller, not the Lock.
type Lock struct {
	held    bool
	holder  int
	freeAt  Time
	waiters []*CPU
	acqs    int64
	maxQ    int
}

// NewLock returns an unlocked lock.
func NewLock() *Lock { return &Lock{holder: -1} }

// Acquire attempts to take the lock for c at its current clock. On
// success it returns ok = true (the caller keeps c runnable; c.Clock may
// have been advanced to the time the lock became free). On failure the
// caller must Block c; the CPU will be handed back by a later Release.
func (l *Lock) Acquire(c *CPU) (ok bool) {
	if !l.held {
		l.held = true
		l.holder = c.ID
		if l.freeAt > c.Clock {
			c.Clock = l.freeAt
		}
		l.acqs++
		return true
	}
	l.waiters = append(l.waiters, c)
	if len(l.waiters) > l.maxQ {
		l.maxQ = len(l.waiters)
	}
	return false
}

// Release frees the lock at time now. If CPUs are waiting, the first
// waiter becomes the new holder and is returned so the caller can
// Unblock it at now; otherwise next is nil.
func (l *Lock) Release(now Time) (next *CPU) {
	if !l.held {
		panic("engine: release of unheld lock")
	}
	l.freeAt = now
	if len(l.waiters) == 0 {
		l.held = false
		l.holder = -1
		return nil
	}
	next = l.waiters[0]
	copy(l.waiters, l.waiters[1:])
	l.waiters = l.waiters[:len(l.waiters)-1]
	l.holder = next.ID
	l.acqs++
	return next
}

// Holder returns the id of the current holder, or -1.
func (l *Lock) Holder() int {
	if !l.held {
		return -1
	}
	return l.holder
}

// Acquisitions returns how many times the lock has been taken.
func (l *Lock) Acquisitions() int64 { return l.acqs }

// MaxQueue returns the longest waiter queue observed.
func (l *Lock) MaxQueue() int { return l.maxQ }
