// Package engine provides the discrete-event core of the simulator: a set
// of processor clocks advanced in global time order, queued resources that
// model contention (memory buses, network interfaces, home controllers),
// and synchronization objects (barriers and locks) whose waiting time is
// charged in simulated cycles.
//
// The engine is deterministic: when several processors are eligible at the
// same simulated time, the lowest-numbered processor runs first.
package engine

import (
	"fmt"
	"strconv"
)

// Time is simulated time in processor cycles.
type Time = int64

// Resource models a unit-capacity server with FIFO queuing: a request
// arriving at time t begins service at max(t, nextFree) and holds the
// resource for its occupancy. This is the standard analytic contention
// model for split-transaction buses and network interfaces.
type Resource struct {
	// name is the explicit label; when empty the label is prefix+id,
	// formatted lazily so constructing a resource never allocates a
	// string (machines build dozens per run, reports read few).
	name   string
	prefix string
	id     int

	nextFree Time
	busy     Time // accumulated busy cycles, for utilization reports
	uses     int64
}

// NewResource returns a named, initially idle resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// NewResourceBank returns n resources labeled prefix0..prefix{n-1},
// allocated in one block. Labels are formatted on demand by Name, so
// building a bank costs two allocations regardless of n.
func NewResourceBank(prefix string, n int) []*Resource {
	backing := make([]Resource, n)
	out := make([]*Resource, n)
	for i := range backing {
		backing[i].prefix = prefix
		backing[i].id = i
		out[i] = &backing[i]
	}
	return out
}

// Acquire occupies the resource for occ cycles starting no earlier than
// now, and returns the time at which service completes. The differences
// between the return value and now is the total delay (queuing plus
// service) experienced by the request.
//
//repro:hotpath
func (r *Resource) Acquire(now Time, occ Time) Time {
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	end := start + occ
	r.nextFree = end
	r.busy += occ
	r.uses++
	return end
}

// Peek returns the earliest time a new request could begin service.
//
//repro:hotpath
func (r *Resource) Peek() Time { return r.nextFree }

// Busy returns the total cycles the resource has been occupied.
func (r *Resource) Busy() Time { return r.busy }

// Uses returns the number of acquisitions.
func (r *Resource) Uses() int64 { return r.uses }

// Name returns the resource's label.
func (r *Resource) Name() string {
	if r.name != "" || r.prefix == "" {
		return r.name
	}
	return r.prefix + strconv.Itoa(r.id)
}

// Reset returns the resource to its initial idle state.
func (r *Resource) Reset() {
	r.nextFree = 0
	r.busy = 0
	r.uses = 0
}

// cpuState is the scheduling state of one simulated processor.
type cpuState int

const (
	cpuRunnable cpuState = iota
	cpuBlocked           // waiting at a barrier or on a lock
	cpuDone
)

// CPU is one simulated processor context managed by the Scheduler.
type CPU struct {
	ID    int
	Clock Time

	state cpuState
	index int // position in the runnable heap, -1 if not queued
}

// Runnable reports whether the CPU is neither blocked on synchronization
// nor done — i.e. it currently sits in its scheduler's heap. A sharded
// executor uses it to skip parked and retired CPUs when scanning its
// shard for committable work.
func (c *CPU) Runnable() bool { return c.state == cpuRunnable }

// Scheduler advances a fixed set of CPUs in global simulated-time order.
//
// Two usage styles are supported. The classic pop/push cycle: Next pops
// the earliest runnable CPU, the caller performs one unit of its work
// (advancing its Clock), and Yield requeues it. And the cheaper in-place
// cycle used by the replay hot loop: Peek returns the earliest runnable
// CPU without removing it, the caller advances its Clock (and may push
// other CPUs via Unblock), then Requeue restores heap order, or Park /
// Retire removes the CPU when it blocks or finishes. The in-place cycle
// performs one sift per dispatched event instead of two and never moves
// the other elements twice; dispatch order is identical, since the heap
// always pops the unique (Clock, ID) minimum either way.
//
// The heap is hand-rolled rather than container/heap: the comparison and
// swap run inline on the concrete slice, which matters because the replay
// loop dispatches one heap operation per trace op.
type Scheduler struct {
	cpus []*CPU
	heap []*CPU
	done int
	base int // ID of cpus[0]; nonzero for shard schedulers over an ID range

	// dispatches counts scheduling decisions: every Peek or Next that
	// handed the earliest runnable CPU to the caller. Run introspection
	// reads it as the event-dispatch total of the replay loop.
	dispatches int64
}

// NewScheduler creates a scheduler over n CPUs, all runnable at time 0.
func NewScheduler(n int) *Scheduler { return NewSchedulerRange(0, n) }

// NewSchedulerRange creates a scheduler over the CPUs with IDs [lo, hi),
// all runnable at time 0. A sharded simulation partitions its processor
// population into disjoint ranges, one scheduler per shard, so that CPU
// IDs — and with them the (Clock, ID) dispatch order — stay globally
// unique across shards.
func NewSchedulerRange(lo, hi int) *Scheduler {
	n := hi - lo
	s := &Scheduler{cpus: make([]*CPU, n), heap: make([]*CPU, n), base: lo}
	backing := make([]CPU, n)
	for i := 0; i < n; i++ {
		c := &backing[i]
		c.ID = lo + i
		c.index = i
		s.cpus[i] = c
		s.heap[i] = c // equal clocks in ID order is already a valid heap
	}
	return s
}

// NumCPUs returns the number of processors under management.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// CPUByID returns the processor with the given id, which must lie in the
// scheduler's ID range.
func (s *Scheduler) CPUByID(id int) *CPU { return s.cpus[id-s.base] }

// less orders CPUs by (Clock, ID); IDs are unique, so the order is total
// and the dispatch sequence does not depend on heap layout.
func less(a, b *CPU) bool {
	if a.Clock != b.Clock {
		return a.Clock < b.Clock
	}
	return a.ID < b.ID
}

// up restores the heap property from position i toward the root.
//
//repro:hotpath
func (s *Scheduler) up(i int) {
	h := s.heap
	c := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !less(c, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = i
		i = parent
	}
	h[i] = c
	c.index = i
}

// down restores the heap property from position i toward the leaves.
//
//repro:hotpath
func (s *Scheduler) down(i int) {
	h := s.heap
	n := len(h)
	c := h[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && less(h[r], h[child]) {
			child = r
		}
		if !less(h[child], c) {
			break
		}
		h[i] = h[child]
		h[i].index = i
		i = child
	}
	h[i] = c
	c.index = i
}

// push appends a CPU and sifts it up.
//
//repro:hotpath
func (s *Scheduler) push(c *CPU) {
	c.index = len(s.heap)
	s.heap = append(s.heap, c)
	s.up(c.index)
}

// removeAt deletes the CPU at heap position i.
//
//repro:hotpath
func (s *Scheduler) removeAt(i int) {
	h := s.heap
	last := len(h) - 1
	c := h[i]
	if i != last {
		h[i] = h[last]
		h[i].index = i
	}
	h[last] = nil
	s.heap = h[:last]
	if i != last {
		s.down(i)
		s.up(i)
	}
	c.index = -1
}

// Peek returns the runnable CPU with the smallest clock (ties broken by
// id) without removing it, or nil when no CPU is runnable. The caller
// advances the CPU's clock and then calls Requeue, Park or Retire; until
// then the heap is suspended around that CPU, and only Unblock may touch
// it.
//
//repro:hotpath
func (s *Scheduler) Peek() *CPU {
	if len(s.heap) == 0 {
		return nil
	}
	s.dispatches++
	return s.heap[0]
}

// Top returns the runnable CPU with the smallest (Clock, ID) without
// removing it and without counting a scheduling decision, or nil when no
// CPU is runnable. It is the read-only probe a parallel coordinator uses
// to merge several shard heaps: only the scheduler that actually
// dispatches the event should count it, via Peek.
//
//repro:hotpath
func (s *Scheduler) Top() *CPU {
	if len(s.heap) == 0 {
		return nil
	}
	return s.heap[0]
}

// Requeue restores heap order around a peeked CPU whose clock advanced.
// Clocks are monotonic — simulated work only moves a CPU later in time —
// so a single downward sift suffices (the CPU can only have grown
// relative to its children; its parent relation is untouched).
//
//repro:hotpath
func (s *Scheduler) Requeue(c *CPU) {
	if c.state != cpuRunnable || c.index < 0 {
		panic(fmt.Sprintf("engine: requeue of non-queued cpu %d", c.ID))
	}
	s.down(c.index)
}

// Park removes a peeked CPU from the runnable heap and marks it blocked
// on synchronization. It must later be released with Unblock.
//
//repro:hotpath
func (s *Scheduler) Park(c *CPU) {
	if c.index < 0 {
		panic(fmt.Sprintf("engine: park of non-queued cpu %d", c.ID))
	}
	c.state = cpuBlocked
	s.removeAt(c.index)
}

// Retire removes a peeked CPU from the runnable heap and marks it done.
//
//repro:hotpath
func (s *Scheduler) Retire(c *CPU) {
	if c.index < 0 {
		panic(fmt.Sprintf("engine: retire of non-queued cpu %d", c.ID))
	}
	c.state = cpuDone
	s.removeAt(c.index)
	s.done++
}

// Next pops the runnable CPU with the smallest clock (ties broken by id).
// It returns nil when no CPU is runnable: either all are done, or the
// system has deadlocked on synchronization (which Done distinguishes).
//
//repro:hotpath
func (s *Scheduler) Next() *CPU {
	if len(s.heap) == 0 {
		return nil
	}
	s.dispatches++
	c := s.heap[0]
	s.removeAt(0)
	return c
}

// Yield requeues a CPU obtained from Next so it can run again.
//
//repro:hotpath
func (s *Scheduler) Yield(c *CPU) {
	if c.state != cpuRunnable {
		panic(fmt.Sprintf("engine: yield of non-runnable cpu %d", c.ID))
	}
	s.push(c)
}

// Block marks a CPU (obtained from Next) as waiting on synchronization.
// It must later be released with Unblock.
//
//repro:hotpath
func (s *Scheduler) Block(c *CPU) { c.state = cpuBlocked }

// Unblock makes a blocked CPU runnable at the given time and requeues it.
//
//repro:hotpath
func (s *Scheduler) Unblock(c *CPU, at Time) {
	if c.state != cpuBlocked {
		panic(fmt.Sprintf("engine: unblock of non-blocked cpu %d", c.ID))
	}
	if at > c.Clock {
		c.Clock = at
	}
	c.state = cpuRunnable
	s.push(c)
}

// Finish retires a CPU obtained from Next.
func (s *Scheduler) Finish(c *CPU) {
	c.state = cpuDone
	s.done++
}

// Done reports whether every CPU has finished.
func (s *Scheduler) Done() bool { return s.done == len(s.cpus) }

// Dispatches returns the number of scheduling decisions made so far.
func (s *Scheduler) Dispatches() int64 { return s.dispatches }

// MaxClock returns the maximum clock over all CPUs — the simulated
// execution time once Done.
func (s *Scheduler) MaxClock() Time {
	var m Time
	for _, c := range s.cpus {
		if c.Clock > m {
			m = c.Clock
		}
	}
	return m
}

// Barrier synchronizes a fixed population of CPUs: the last arriver
// releases everyone at max(arrival times) plus the release overhead.
type Barrier struct {
	population int
	overhead   Time

	waiting []*CPU
	// spare is the previous epoch's waiter slice, recycled so steady-
	// state barrier episodes allocate nothing.
	spare   []*CPU
	maxTime Time
	epochs  int64
}

// NewBarrier creates a barrier for the given population. overhead is
// added to the release time to account for the barrier implementation's
// own communication.
func NewBarrier(population int, overhead Time) *Barrier {
	if population <= 0 {
		panic("engine: barrier population must be positive")
	}
	return &Barrier{population: population, overhead: overhead}
}

// Arrive registers c at the barrier. If c is the last arriver, Arrive
// returns the release time and the slice of previously waiting CPUs that
// the caller must Unblock at that time; c itself remains runnable and its
// clock is advanced to the release time. Otherwise Arrive returns ok =
// false and the caller must Block (or Park) c.
//
// The returned waiters slice is only valid until the barrier next
// releases: its backing array is recycled for a later epoch's waiter
// list.
//
//repro:hotpath
func (b *Barrier) Arrive(c *CPU) (release Time, waiters []*CPU, ok bool) {
	if c.Clock > b.maxTime {
		b.maxTime = c.Clock
	}
	if len(b.waiting)+1 == b.population {
		release = b.maxTime + b.overhead
		waiters = b.waiting
		b.waiting = b.spare[:0]
		b.spare = waiters
		b.maxTime = 0
		b.epochs++
		c.Clock = release
		return release, waiters, true
	}
	b.waiting = append(b.waiting, c)
	return 0, nil, false
}

// Epochs returns how many times the barrier has released.
func (b *Barrier) Epochs() int64 { return b.epochs }

// Waiting returns how many CPUs are currently parked at the barrier.
func (b *Barrier) Waiting() int { return len(b.waiting) }

// Lock models a mutex acquired in simulated-time order. Acquisition is
// serialized: a CPU that requests the lock while it is held is parked and
// released when the holder unlocks. The memory-system cost of the lock
// operation itself (the remote access to the lock word) is charged by the
// caller, not the Lock.
type Lock struct {
	held    bool
	holder  int
	freeAt  Time
	waiters []*CPU
	acqs    int64
	maxQ    int
}

// NewLock returns an unlocked lock.
func NewLock() *Lock { return &Lock{holder: -1} }

// Acquire attempts to take the lock for c at its current clock. On
// success it returns ok = true (the caller keeps c runnable; c.Clock may
// have been advanced to the time the lock became free). On failure the
// caller must Block c; the CPU will be handed back by a later Release.
//
//repro:hotpath
func (l *Lock) Acquire(c *CPU) (ok bool) {
	if !l.held {
		l.held = true
		l.holder = c.ID
		if l.freeAt > c.Clock {
			c.Clock = l.freeAt
		}
		l.acqs++
		return true
	}
	l.waiters = append(l.waiters, c)
	if len(l.waiters) > l.maxQ {
		l.maxQ = len(l.waiters)
	}
	return false
}

// Release frees the lock at time now. If CPUs are waiting, the first
// waiter becomes the new holder and is returned so the caller can
// Unblock it at now; otherwise next is nil.
//
//repro:hotpath
func (l *Lock) Release(now Time) (next *CPU) {
	if !l.held {
		panic("engine: release of unheld lock")
	}
	l.freeAt = now
	if len(l.waiters) == 0 {
		l.held = false
		l.holder = -1
		return nil
	}
	next = l.waiters[0]
	copy(l.waiters, l.waiters[1:])
	l.waiters = l.waiters[:len(l.waiters)-1]
	l.holder = next.ID
	l.acqs++
	return next
}

// Holder returns the id of the current holder, or -1.
func (l *Lock) Holder() int {
	if !l.held {
		return -1
	}
	return l.holder
}

// Acquisitions returns how many times the lock has been taken.
func (l *Lock) Acquisitions() int64 { return l.acqs }

// MaxQueue returns the longest waiter queue observed.
func (l *Lock) MaxQueue() int { return l.maxQ }
