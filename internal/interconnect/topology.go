// Package interconnect models the cluster fabric as an explicit graph
// of nodes, switches and unidirectional links with pluggable topologies
// and deterministic routing. A Fabric wraps a Topology with per-link latency,
// bandwidth occupancy (via engine.Resource FIFO queuing) and per-link
// byte/message counters, so that every protocol message the DSM machines
// exchange can be attributed to the physical links it crosses.
//
// The ideal crossbar — one dedicated single-hop link per ordered node
// pair, infinite bandwidth — reproduces the paper's original flat
// network-latency model exactly while still attributing traffic per
// link; the ring, 2D mesh and fat-tree fabrics open the topology axis
// the paper holds fixed.
package interconnect

import (
	"fmt"

	"repro/internal/config"
)

// Link is one unidirectional channel of the fabric graph. Endpoints are
// node ids in [0, Nodes) or switch ids at Nodes and above.
type Link struct {
	ID   int
	Src  int
	Dst  int
	Name string
}

// Topology is a static fabric graph with deterministic routing.
type Topology interface {
	// Name identifies the topology ("crossbar", "ring", ...).
	Name() string

	// Nodes returns the number of end nodes (switches excluded).
	Nodes() int

	// Links returns every link in id order.
	Links() []Link

	// Route returns the ids of the links a message from src to dst
	// traverses, in order. It is empty exactly when src == dst. The
	// returned slice is owned by the topology and must not be mutated:
	// routes are precomputed at construction so the per-message hot
	// path allocates nothing.
	Route(src, dst int) []int
}

// precomputeRoutes tabulates every (src, dst) route of an n-node
// topology so Route becomes an allocation-free table lookup.
func precomputeRoutes(n int, route func(src, dst int) []int) [][][]int {
	routes := make([][][]int, n)
	for s := 0; s < n; s++ {
		routes[s] = make([][]int, n)
		for d := 0; d < n; d++ {
			routes[s][d] = route(s, d)
		}
	}
	return routes
}

// Crossbar is the ideal fabric: a dedicated link for every ordered node
// pair, so every route is a single hop and no two flows share a link.
type Crossbar struct {
	nodes  int
	links  []Link
	routes [][][]int
}

// NewCrossbar builds an n-node crossbar.
func NewCrossbar(n int) *Crossbar {
	c := &Crossbar{nodes: n}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			c.links = append(c.links, Link{
				ID: len(c.links), Src: s, Dst: d,
				Name: fmt.Sprintf("xbar:%d->%d", s, d),
			})
		}
	}
	c.routes = precomputeRoutes(n, c.computeRoute)
	return c
}

// Name implements Topology.
func (c *Crossbar) Name() string { return "crossbar" }

// Nodes implements Topology.
func (c *Crossbar) Nodes() int { return c.nodes }

// Links implements Topology.
func (c *Crossbar) Links() []Link { return c.links }

// Route implements Topology: the single dedicated link.
func (c *Crossbar) Route(src, dst int) []int { return c.routes[src][dst] }

func (c *Crossbar) computeRoute(src, dst int) []int {
	if src == dst {
		return nil
	}
	// Links are laid out src-major with the diagonal removed.
	i := src*(c.nodes-1) + dst
	if dst > src {
		i--
	}
	return []int{i}
}

// Ring is a bidirectional ring: each node has one clockwise and one
// counter-clockwise link, and messages take the shorter direction
// (clockwise on ties).
type Ring struct {
	nodes  int
	links  []Link
	routes [][][]int
}

// NewRing builds an n-node bidirectional ring.
func NewRing(n int) *Ring {
	r := &Ring{nodes: n}
	for i := 0; i < n; i++ { // clockwise: i -> i+1
		r.links = append(r.links, Link{
			ID: i, Src: i, Dst: (i + 1) % n,
			Name: fmt.Sprintf("ring:%d->%d", i, (i+1)%n),
		})
	}
	for i := 0; i < n; i++ { // counter-clockwise: i -> i-1
		d := (i - 1 + n) % n
		r.links = append(r.links, Link{
			ID: n + i, Src: i, Dst: d,
			Name: fmt.Sprintf("ring:%d->%d", i, d),
		})
	}
	r.routes = precomputeRoutes(n, r.computeRoute)
	return r
}

// Name implements Topology.
func (r *Ring) Name() string { return "ring" }

// Nodes implements Topology.
func (r *Ring) Nodes() int { return r.nodes }

// Links implements Topology.
func (r *Ring) Links() []Link { return r.links }

// Route implements Topology: shortest direction, clockwise on ties.
func (r *Ring) Route(src, dst int) []int { return r.routes[src][dst] }

func (r *Ring) computeRoute(src, dst int) []int {
	if src == dst {
		return nil
	}
	n := r.nodes
	cw := (dst - src + n) % n
	if cw <= n-cw {
		route := make([]int, 0, cw)
		for i, at := 0, src; i < cw; i++ {
			route = append(route, at) // clockwise link id == src node id
			at = (at + 1) % n
		}
		return route
	}
	ccw := n - cw
	route := make([]int, 0, ccw)
	for i, at := 0, src; i < ccw; i++ {
		route = append(route, n+at) // ccw link id == n + src node id
		at = (at - 1 + n) % n
	}
	return route
}

// Mesh is a 2D mesh of width x height nodes (node id = y*width + x) with
// unidirectional links between grid neighbours and deterministic
// dimension-order (X then Y) routing.
type Mesh struct {
	nodes         int
	width, height int
	links         []Link
	// linkAt[from][to] is the link id of the direct channel from one
	// grid neighbour to another, keyed by node ids.
	linkAt map[[2]int]int
	routes [][][]int
}

// MeshDims returns the most nearly square factorization w*h == n with
// w >= h.
func MeshDims(n int) (w, h int) {
	h = 1
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			h = f
		}
	}
	return n / h, h
}

// NewMesh builds a mesh over n nodes. width 0 picks the most nearly
// square factorization; otherwise width must divide n.
func NewMesh(n, width int) (*Mesh, error) {
	var w, h int
	if width == 0 {
		w, h = MeshDims(n)
	} else {
		if width < 1 || n%width != 0 {
			return nil, fmt.Errorf("interconnect: mesh width %d does not tile %d nodes", width, n)
		}
		w, h = width, n/width
	}
	m := &Mesh{nodes: n, width: w, height: h, linkAt: make(map[[2]int]int)}
	add := func(from, to int) {
		m.linkAt[[2]int{from, to}] = len(m.links)
		m.links = append(m.links, Link{
			ID: len(m.links), Src: from, Dst: to,
			Name: fmt.Sprintf("mesh:%d->%d", from, to),
		})
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			if x+1 < w {
				add(id, id+1)
				add(id+1, id)
			}
			if y+1 < h {
				add(id, id+w)
				add(id+w, id)
			}
		}
	}
	m.routes = precomputeRoutes(n, m.computeRoute)
	return m, nil
}

// Name implements Topology.
func (m *Mesh) Name() string { return "mesh" }

// Nodes implements Topology.
func (m *Mesh) Nodes() int { return m.nodes }

// Links implements Topology.
func (m *Mesh) Links() []Link { return m.links }

// Dims returns the mesh width and height.
func (m *Mesh) Dims() (w, h int) { return m.width, m.height }

// Route implements Topology with dimension-order routing: correct the X
// coordinate first, then Y.
func (m *Mesh) Route(src, dst int) []int { return m.routes[src][dst] }

func (m *Mesh) computeRoute(src, dst int) []int {
	if src == dst {
		return nil
	}
	sx, sy := src%m.width, src/m.width
	dx, dy := dst%m.width, dst/m.width
	var route []int
	at := src
	for sx != dx {
		next := at + 1
		if dx < sx {
			next = at - 1
		}
		route = append(route, m.linkAt[[2]int{at, next}])
		at = next
		sx = at % m.width
	}
	for sy != dy {
		next := at + m.width
		if dy < sy {
			next = at - m.width
		}
		route = append(route, m.linkAt[[2]int{at, next}])
		at = next
		sy = at / m.width
	}
	return route
}

// FatTree is a two-level tree: leaf switches each serving arity nodes,
// all joined by one root switch, with up-down routing. Switch ids follow
// the node ids: leaves at Nodes()..Nodes()+leaves-1, root last.
type FatTree struct {
	nodes  int
	arity  int
	leaves int
	links  []Link
	routes [][][]int
	// per node: up link to its leaf, down link from its leaf.
	nodeUp, nodeDown []int
	// per leaf: up link to the root, down link from the root.
	leafUp, leafDown []int
}

// NewFatTree builds a fat-tree over n nodes with the given leaf arity
// (0 means config.DefaultFatTreeArity). arity must divide n.
func NewFatTree(n, arity int) (*FatTree, error) {
	if arity == 0 {
		arity = config.DefaultFatTreeArity
	}
	if arity < 1 || n%arity != 0 {
		return nil, fmt.Errorf("interconnect: fat-tree arity %d does not divide %d nodes", arity, n)
	}
	f := &FatTree{
		nodes: n, arity: arity, leaves: n / arity,
		nodeUp: make([]int, n), nodeDown: make([]int, n),
		leafUp: make([]int, n/arity), leafDown: make([]int, n/arity),
	}
	root := n + f.leaves
	add := func(src, dst int, name string) int {
		id := len(f.links)
		f.links = append(f.links, Link{ID: id, Src: src, Dst: dst, Name: name})
		return id
	}
	for i := 0; i < n; i++ {
		leaf := n + i/arity
		f.nodeUp[i] = add(i, leaf, fmt.Sprintf("ftree:n%d->l%d", i, i/arity))
		f.nodeDown[i] = add(leaf, i, fmt.Sprintf("ftree:l%d->n%d", i/arity, i))
	}
	for l := 0; l < f.leaves; l++ {
		f.leafUp[l] = add(n+l, root, fmt.Sprintf("ftree:l%d->root", l))
		f.leafDown[l] = add(root, n+l, fmt.Sprintf("ftree:root->l%d", l))
	}
	f.routes = precomputeRoutes(n, f.computeRoute)
	return f, nil
}

// Name implements Topology.
func (f *FatTree) Name() string { return "fattree" }

// Nodes implements Topology.
func (f *FatTree) Nodes() int { return f.nodes }

// Links implements Topology.
func (f *FatTree) Links() []Link { return f.links }

// Route implements Topology with up-down routing: up to the common
// ancestor (leaf or root), then down.
func (f *FatTree) Route(src, dst int) []int { return f.routes[src][dst] }

func (f *FatTree) computeRoute(src, dst int) []int {
	if src == dst {
		return nil
	}
	sl, dl := src/f.arity, dst/f.arity
	if sl == dl {
		return []int{f.nodeUp[src], f.nodeDown[dst]}
	}
	return []int{f.nodeUp[src], f.leafUp[sl], f.leafDown[dl], f.nodeDown[dst]}
}
