package interconnect

import (
	"testing"

	"repro/internal/config"
)

// topologies under test, with the hop count each promises for a route.
func testTopologies(t *testing.T, n int) []Topology {
	t.Helper()
	mesh, err := NewMesh(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFatTree(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Topology{NewCrossbar(n), NewRing(n), mesh, ft}
}

// TestRoutesAreConnectedPaths checks the structural invariant every
// topology must satisfy: Route(src, dst) is a chain of links leading
// from src to dst, and is empty exactly when src == dst.
func TestRoutesAreConnectedPaths(t *testing.T) {
	for _, topo := range testTopologies(t, 8) {
		links := topo.Links()
		for src := 0; src < topo.Nodes(); src++ {
			for dst := 0; dst < topo.Nodes(); dst++ {
				route := topo.Route(src, dst)
				if src == dst {
					if len(route) != 0 {
						t.Errorf("%s: route %d->%d not empty", topo.Name(), src, dst)
					}
					continue
				}
				if len(route) == 0 {
					t.Fatalf("%s: no route %d->%d", topo.Name(), src, dst)
				}
				at := src
				for _, id := range route {
					l := links[id]
					if l.Src != at {
						t.Fatalf("%s: route %d->%d: link %s does not start at %d",
							topo.Name(), src, dst, l.Name, at)
					}
					at = l.Dst
				}
				if at != dst {
					t.Errorf("%s: route %d->%d ends at %d", topo.Name(), src, dst, at)
				}
			}
		}
	}
}

func TestCrossbarSingleHop(t *testing.T) {
	c := NewCrossbar(8)
	if got := len(c.Links()); got != 8*7 {
		t.Errorf("crossbar links = %d, want 56", got)
	}
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if src == dst {
				continue
			}
			r := c.Route(src, dst)
			if len(r) != 1 {
				t.Fatalf("crossbar route %d->%d has %d hops", src, dst, len(r))
			}
			l := c.Links()[r[0]]
			if l.Src != src || l.Dst != dst {
				t.Errorf("crossbar route %d->%d uses link %s", src, dst, l.Name)
			}
		}
	}
}

func TestRingShortestPath(t *testing.T) {
	r := NewRing(8)
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if src == dst {
				continue
			}
			cw := (dst - src + 8) % 8
			want := cw
			if 8-cw < cw {
				want = 8 - cw
			}
			if got := len(r.Route(src, dst)); got != want {
				t.Errorf("ring route %d->%d has %d hops, want %d", src, dst, got, want)
			}
		}
	}
	// The tie (distance 4) goes clockwise: first link is src's cw link.
	if route := r.Route(0, 4); route[0] != 0 {
		t.Errorf("ring tie route 0->4 starts with link %d, want clockwise 0", route[0])
	}
}

func TestMeshDimensionOrder(t *testing.T) {
	m, err := NewMesh(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w, h := m.Dims(); w != 4 || h != 2 {
		t.Fatalf("mesh dims = %dx%d", w, h)
	}
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if src == dst {
				continue
			}
			dx := dst%4 - src%4
			if dx < 0 {
				dx = -dx
			}
			dy := dst/4 - src/4
			if dy < 0 {
				dy = -dy
			}
			route := m.Route(src, dst)
			if len(route) != dx+dy {
				t.Fatalf("mesh route %d->%d has %d hops, want %d", src, dst, len(route), dx+dy)
			}
			// Dimension order: every X-direction link precedes any
			// Y-direction link.
			sawY := false
			for _, id := range route {
				l := m.Links()[id]
				dYlink := l.Dst-l.Src == 4 || l.Src-l.Dst == 4
				if dYlink {
					sawY = true
				} else if sawY {
					t.Errorf("mesh route %d->%d corrects X after Y", src, dst)
				}
			}
		}
	}
}

func TestFatTreeUpDown(t *testing.T) {
	f, err := NewFatTree(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Route(0, 1)); got != 2 {
		t.Errorf("same-leaf route has %d hops, want 2", got)
	}
	if got := len(f.Route(0, 7)); got != 4 {
		t.Errorf("cross-leaf route has %d hops, want 4", got)
	}
	if _, err := NewFatTree(8, 3); err == nil {
		t.Error("arity 3 over 8 nodes should fail")
	}
}

func TestMeshDims(t *testing.T) {
	cases := map[int][2]int{8: {4, 2}, 16: {4, 4}, 12: {4, 3}, 7: {7, 1}, 1: {1, 1}}
	for n, want := range cases {
		if w, h := MeshDims(n); w != want[0] || h != want[1] {
			t.Errorf("MeshDims(%d) = %dx%d, want %dx%d", n, w, h, want[0], want[1])
		}
	}
}

// TestCrossbarTraverseMatchesFlatLatency pins the compatibility contract:
// on the default crossbar a traversal costs exactly the flat network
// latency, with no queuing.
func TestCrossbarTraverseMatchesFlatLatency(t *testing.T) {
	tm := config.Default()
	f, err := New(config.Network{}, 8, tm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := f.Traverse(0, 5, 4608, 1000); got != 1000+tm.NetworkLatency {
			t.Fatalf("crossbar traverse = %d, want %d", got, 1000+tm.NetworkLatency)
		}
	}
	if got := f.Traverse(3, 3, 64, 500); got != 500 {
		t.Errorf("self traverse = %d, want 500 (no network)", got)
	}
	if f.LocalBytes() != 64 {
		t.Errorf("local bytes = %d, want 64", f.LocalBytes())
	}
}

// TestTraverseConservation checks byte conservation on every topology:
// the per-link totals must equal the per-pair injected bytes multiplied
// by each pair's route hop count.
func TestTraverseConservation(t *testing.T) {
	for _, topo := range testTopologies(t, 8) {
		f := NewFabric(topo, 80, 0)
		var injected int64
		for src := 0; src < 8; src++ {
			for dst := 0; dst < 8; dst++ {
				b := int64(64 + 8*src + dst)
				f.Traverse(src, dst, b, 0)
				if src != dst {
					injected += b
				}
			}
		}
		var want int64
		for src := 0; src < 8; src++ {
			for dst := 0; dst < 8; dst++ {
				want += f.PairBytes(src, dst) * int64(len(topo.Route(src, dst)))
			}
		}
		if got := f.TotalLinkBytes(); got != want {
			t.Errorf("%s: link bytes %d, want %d", topo.Name(), got, want)
		}
		ns := f.Snapshot()
		if got := ns.TotalLinkBytes(); got != want {
			t.Errorf("%s: snapshot link bytes %d, want %d", topo.Name(), got, want)
		}
	}
}

// TestFiniteBandwidthQueues checks the contention model: two messages
// injected at the same time on the same link serialize.
func TestFiniteBandwidthQueues(t *testing.T) {
	f := NewFabric(NewRing(4), 10, 8) // 8 bytes/cycle
	// 64-byte message occupies each link for 8 cycles.
	t1 := f.Traverse(0, 1, 64, 0)
	t2 := f.Traverse(0, 1, 64, 0)
	if t1 != 8+10 {
		t.Errorf("first traverse = %d, want 18", t1)
	}
	if t2 != 16+10 {
		t.Errorf("queued traverse = %d, want 26", t2)
	}
}

func TestBisectionBytes(t *testing.T) {
	f := NewFabric(NewRing(8), 80, 0)
	f.Traverse(0, 7, 100, 0) // crosses the 0..3 | 4..7 cut
	f.Traverse(1, 2, 50, 0)  // stays in the lower half
	ns := f.Snapshot()
	if ns.BisectionBytes != 100 {
		t.Errorf("bisection bytes = %d, want 100", ns.BisectionBytes)
	}
}

func TestExtraHopLatency(t *testing.T) {
	xbar := NewFabric(NewCrossbar(8), 80, 0)
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if got := xbar.ExtraHopLatency(s, d); got != 0 {
				t.Fatalf("crossbar extra hop latency %d->%d = %d, want 0", s, d, got)
			}
		}
	}
	ring := NewFabric(NewRing(8), 80, 0)
	if got := ring.ExtraHopLatency(0, 4); got != 3*80 {
		t.Errorf("ring extra 0->4 = %d, want 240", got)
	}
	if got := ring.ExtraHopLatency(0, 1); got != 0 {
		t.Errorf("ring extra 0->1 = %d, want 0", got)
	}
	if got := ring.ExtraHopLatency(3, 3); got != 0 {
		t.Errorf("ring extra 3->3 = %d, want 0", got)
	}
}

// TestMinHopLatencyIsLookahead pins the conservative-PDES lookahead
// contract: no cross-node traversal may complete in fewer cycles than
// MinHopLatency reports.
func TestMinHopLatencyIsLookahead(t *testing.T) {
	for _, topo := range []Topology{NewCrossbar(8), NewRing(8)} {
		f := NewFabric(topo, 80, 0)
		if got := f.MinHopLatency(); got != 80 {
			t.Fatalf("%s: MinHopLatency() = %d, want 80", topo.Name(), got)
		}
		for s := 0; s < 8; s++ {
			for d := 0; d < 8; d++ {
				if s == d {
					continue
				}
				if arrive := f.Traverse(s, d, 8, 0); arrive < f.MinHopLatency() {
					t.Fatalf("%s: traverse %d->%d arrived at %d, before lookahead %d",
						topo.Name(), s, d, arrive, f.MinHopLatency())
				}
			}
		}
	}
}

func TestRouteDoesNotAllocate(t *testing.T) {
	topos := testTopologies(t, 8)
	for _, topo := range topos {
		allocs := testing.AllocsPerRun(100, func() {
			for s := 0; s < 8; s++ {
				for d := 0; d < 8; d++ {
					topo.Route(s, d)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Route allocates %.1f per sweep, want 0", topo.Name(), allocs)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	tm := config.Default()
	if _, err := New(config.Network{Topology: "torus"}, 8, tm); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := New(config.Network{Topology: config.TopoMesh, MeshWidth: 3}, 8, tm); err == nil {
		t.Error("mesh width 3 over 8 nodes accepted")
	}
}

// TestAuditFlagsPastInjection pins the fabric's audit-mode contract:
// with auditing on, a message injected at a time earlier than the
// current event floor (i.e. in the simulated past) is recorded as a
// violation, while injections at or after the floor — including ones at
// an earlier absolute time after the floor moved back — are clean.
func TestAuditFlagsPastInjection(t *testing.T) {
	f := NewFabric(NewRing(8), 10, 0)
	f.EnableAudit()
	f.SetAuditFloor(1000)
	f.Traverse(0, 1, 64, 1000) // at the floor: fine
	f.Traverse(1, 2, 64, 5000) // after the floor: fine
	if got := f.Violations(); len(got) != 0 {
		t.Fatalf("clean traffic flagged: %v", got)
	}
	f.Traverse(2, 3, 64, 999) // in the simulated past
	if got := f.Violations(); len(got) != 1 {
		t.Fatalf("violations = %v, want exactly one", got)
	}
	// A new, earlier floor (the scheduler dispatched an earlier event)
	// legitimizes earlier injections again.
	f.SetAuditFloor(500)
	f.Traverse(3, 4, 64, 500)
	if got := f.Violations(); len(got) != 1 {
		t.Fatalf("violations after floor reset = %v, want still one", got)
	}
	// Byte accounting is unaffected by auditing and by violations.
	if got := f.PairBytes(2, 3); got != 64 {
		t.Errorf("flagged message not counted: pair bytes = %d, want 64", got)
	}
}

// TestAuditOffRecordsNothing checks audit mode is strictly opt-in.
func TestAuditOffRecordsNothing(t *testing.T) {
	f := NewFabric(NewRing(8), 10, 0)
	f.SetAuditFloor(1000)
	f.Traverse(0, 1, 64, 0)
	if got := f.Violations(); len(got) != 0 {
		t.Fatalf("audit-off fabric recorded %v", got)
	}
}

// TestSnapshotPairsMatchFabric checks the published NetStats pair
// matrix is a faithful copy of the fabric's injection ground truth.
func TestSnapshotPairsMatchFabric(t *testing.T) {
	f := NewFabric(NewRing(4), 10, 0)
	f.Traverse(0, 2, 100, 0)
	f.Traverse(3, 1, 50, 0)
	f.Traverse(1, 1, 8, 0) // local
	snap := f.Snapshot()
	if got := snap.Pairs[0][2]; got != 100 {
		t.Errorf("Pairs[0][2] = %d, want 100", got)
	}
	if got := snap.InjectedBytes(); got != 158 {
		t.Errorf("InjectedBytes = %d, want 158", got)
	}
}
