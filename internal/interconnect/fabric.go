package interconnect

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Fabric is a Topology instantiated with timing: per-hop latency, an
// engine.Resource per link modeling finite bandwidth with FIFO queuing,
// and per-link byte/message counters. All methods are deterministic.
type Fabric struct {
	topo          Topology
	hopLatency    int64
	bytesPerCycle int64 // 0 = infinite bandwidth (no link occupancy)

	res       []*engine.Resource
	linkBytes []int64
	linkMsgs  []int64

	// pairBytes[src][dst] accumulates the bytes injected for each
	// ordered node pair, the ground truth for conservation checks
	// (sum over links == sum over pairs of bytes x route hops).
	pairBytes [][]int64

	localBytes int64
	localMsgs  int64

	// Audit mode. When enabled, every injection is checked against the
	// event-time floor the simulation advances as it dispatches events:
	// a message injected at a time before the floor was emitted in the
	// simulated past, which silently mis-times link occupancy and hides
	// traffic from time-windowed views. Violations are recorded rather
	// than panicking so a whole run can be audited in one pass.
	auditing   bool
	auditFloor int64
	violations stats.ViolationLog

	// obs, when non-nil, receives every link traversal on its windowed
	// per-link series, keyed by the injection time at that hop. Purely
	// observational; the nil default costs one nil check per hop.
	obs *telemetry.Collector
}

// New builds the fabric described by a config.Network for the given node
// count. The zero-value Network yields the ideal crossbar with hop
// latency tm.NetworkLatency and infinite bandwidth — the paper's
// original flat network model.
func New(net config.Network, nodes int, tm config.Timing) (*Fabric, error) {
	if err := net.Validate(nodes); err != nil {
		return nil, err
	}
	var topo Topology
	var err error
	switch net.Kind() {
	case config.TopoCrossbar:
		topo = NewCrossbar(nodes)
	case config.TopoRing:
		topo = NewRing(nodes)
	case config.TopoMesh:
		topo, err = NewMesh(nodes, net.MeshWidth)
	case config.TopoFatTree:
		topo, err = NewFatTree(nodes, net.FatTreeArity)
	default:
		err = fmt.Errorf("interconnect: unknown topology %q", net.Topology)
	}
	if err != nil {
		return nil, err
	}
	hop := net.HopLatency
	if hop == 0 {
		hop = tm.NetworkLatency
	}
	return NewFabric(topo, hop, net.LinkBytesPerCycle), nil
}

// NewFabric wraps a topology with timing parameters directly.
func NewFabric(topo Topology, hopLatency, bytesPerCycle int64) *Fabric {
	links := topo.Links()
	f := &Fabric{
		topo:          topo,
		hopLatency:    hopLatency,
		bytesPerCycle: bytesPerCycle,
		res:           make([]*engine.Resource, len(links)),
		linkBytes:     make([]int64, len(links)),
		linkMsgs:      make([]int64, len(links)),
		pairBytes:     make([][]int64, topo.Nodes()),
	}
	for i, l := range links {
		f.res[i] = engine.NewResource(l.Name)
	}
	for i := range f.pairBytes {
		f.pairBytes[i] = make([]int64, topo.Nodes())
	}
	return f
}

// Topology returns the underlying fabric graph.
func (f *Fabric) Topology() Topology { return f.topo }

// HopLatency returns the per-hop latency in cycles.
func (f *Fabric) HopLatency() int64 { return f.hopLatency }

// MinHopLatency returns the minimum latency any cross-node message pays
// on this fabric — the classic conservative-PDES lookahead window: no
// message injected at time t can be observed by another node before
// t + MinHopLatency. Note that the sharded engine cannot use it as a
// commit horizon, because dispatched events mutate globally visible
// machine state (directory entries, page tables) instantly at dispatch,
// not after a fabric traversal; it is the lookahead a future optimistic
// core would roll back against.
func (f *Fabric) MinHopLatency() int64 { return f.hopLatency }

// ExtraHopLatency returns the latency a src->dst traversal costs beyond
// the single hop the flat network model already charges: zero on the
// crossbar (and for node-local messages), (hops-1) x hop latency on
// multi-hop fabrics. It lets protocol legs whose base cost is a flat
// timing constant (3-hop forwards, invalidation ack waves) scale with
// distance without disturbing the crossbar-compatible baseline.
//
//repro:hotpath
func (f *Fabric) ExtraHopLatency(src, dst int) int64 {
	hops := len(f.topo.Route(src, dst))
	if hops <= 1 {
		return 0
	}
	return int64(hops-1) * f.hopLatency
}

// EnableAudit switches the fabric into audit mode: injections whose
// timestamp precedes the current audit floor (see SetAuditFloor) are
// recorded as event-time violations. Counting and routing behaviour is
// unchanged, so an audited run produces byte-identical results.
func (f *Fabric) EnableAudit() { f.auditing = true }

// SetAuditFloor advances the event-time floor to t: the simulation
// calls it as each event is dispatched, so that any message injected at
// an earlier time is known to have been emitted in the simulated past.
// The floor is set, not maxed — overlapping transactions from different
// processors legitimately inject at non-monotone times, and only the
// currently dispatched event bounds what "now" may mean.
func (f *Fabric) SetAuditFloor(t int64) { f.auditFloor = t }

// Violations returns the event-time violations observed since the
// fabric was built (empty when auditing is off or the run was clean).
func (f *Fabric) Violations() []string { return f.violations.All() }

// SetObserver attaches a telemetry collector: every message charges its
// bytes to the crossed link's windowed series at the simulated time the
// message reaches that hop, alongside the existing aggregate counters.
// The windowed totals therefore reconcile exactly with LinkBytes.
func (f *Fabric) SetObserver(o *telemetry.Collector) { f.obs = o }

// occupancy is how long a message of the given size holds each link.
//
//repro:hotpath
func (f *Fabric) occupancy(bytes int64) int64 {
	if f.bytesPerCycle <= 0 {
		return 0
	}
	return (bytes + f.bytesPerCycle - 1) / f.bytesPerCycle
}

// Traverse routes one message of the given size from src to dst starting
// at time now: every link on the route is charged the message's bytes
// and, under finite bandwidth, occupied in sequence with FIFO queuing.
// It returns the arrival time at dst. A message to the sending node
// itself crosses no link and arrives immediately; its bytes are
// accounted as local.
//
//repro:hotpath
func (f *Fabric) Traverse(src, dst int, bytes int64, now int64) int64 {
	if f.auditing && now < f.auditFloor {
		f.violations.Addf("interconnect: message %d->%d (%d bytes) injected at t=%d, before event floor %d",
			src, dst, bytes, now, f.auditFloor)
	}
	route := f.topo.Route(src, dst)
	if len(route) == 0 {
		f.localBytes += bytes
		f.localMsgs++
		return now
	}
	f.pairBytes[src][dst] += bytes
	occ := f.occupancy(bytes)
	t := now
	for _, id := range route {
		f.linkBytes[id] += bytes
		f.linkMsgs[id]++
		if f.obs != nil {
			f.obs.Link(id, bytes, t)
		}
		if occ > 0 {
			t = f.res[id].Acquire(t, occ)
		}
		t += f.hopLatency
	}
	return t
}

// Deliver is Traverse for messages nothing waits on (asynchronous
// writebacks, invalidation fan-out, bulk page copies overlapped with
// their fixed cost): links are charged and occupied, the arrival time is
// discarded.
//
//repro:hotpath
func (f *Fabric) Deliver(src, dst int, bytes int64, now int64) {
	f.Traverse(src, dst, bytes, now)
}

// LinkBytes returns the byte counter of one link.
func (f *Fabric) LinkBytes(id int) int64 { return f.linkBytes[id] }

// TotalLinkBytes sums the byte counters over all links.
func (f *Fabric) TotalLinkBytes() int64 {
	var t int64
	for _, b := range f.linkBytes {
		t += b
	}
	return t
}

// LocalBytes returns the bytes of messages whose source and destination
// node coincided.
func (f *Fabric) LocalBytes() int64 { return f.localBytes }

// RouteMaxLinkBytes returns the byte counter of the most-loaded link on
// the src->dst route (zero for node-local routes). Contention-aware
// policies use it to ask whether the path a bulk transfer would take is
// currently the fabric's hot spot.
func (f *Fabric) RouteMaxLinkBytes(src, dst int) int64 {
	var max int64
	for _, id := range f.topo.Route(src, dst) {
		if f.linkBytes[id] > max {
			max = f.linkBytes[id]
		}
	}
	return max
}

// MeanLinkBytes returns the mean per-link byte counter over every link
// of the fabric (zero on a linkless single-node topology).
func (f *Fabric) MeanLinkBytes() int64 {
	if len(f.linkBytes) == 0 {
		return 0
	}
	return f.TotalLinkBytes() / int64(len(f.linkBytes))
}

// PairBytes returns the injected bytes for one ordered node pair.
func (f *Fabric) PairBytes(src, dst int) int64 { return f.pairBytes[src][dst] }

// Snapshot renders the fabric counters as a stats.NetStats view.
func (f *Fabric) Snapshot() *stats.NetStats {
	n := f.topo.Nodes()
	out := &stats.NetStats{
		Topology:   f.topo.Name(),
		Links:      make([]stats.LinkStat, len(f.linkBytes)),
		LocalBytes: f.localBytes,
		LocalMsgs:  f.localMsgs,
		Pairs:      make([][]int64, n),
	}
	for s := 0; s < n; s++ {
		out.Pairs[s] = append([]int64(nil), f.pairBytes[s]...)
	}
	for i, l := range f.topo.Links() {
		out.Links[i] = stats.LinkStat{Name: l.Name, Bytes: f.linkBytes[i], Msgs: f.linkMsgs[i]}
	}
	half := n / 2
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if (s < half) != (d < half) {
				out.BisectionBytes += f.pairBytes[s][d]
			}
		}
	}
	return out
}
