package stats

import (
	"strings"
	"testing"
)

func newSim() *Sim {
	s := New("CC-NUMA", "lu", 4)
	s.Nodes[0].RemoteMisses[Cold] = 10
	s.Nodes[0].RemoteMisses[CapacityConflict] = 30
	s.Nodes[1].RemoteMisses[Coherence] = 5
	s.Nodes[2].LocalMisses[Cold] = 7
	s.Nodes[0].PageOps[Migration] = 2
	s.Nodes[3].PageOps[Migration] = 4
	s.Nodes[1].PageOps[Relocation] = 8
	s.Nodes[0].TrafficBytes = 100
	s.Nodes[2].TrafficBytes = 50
	s.ExecCycles = 1000
	return s
}

func TestTotals(t *testing.T) {
	s := newSim()
	if got := s.TotalRemoteMisses(); got != 45 {
		t.Errorf("remote misses = %d, want 45", got)
	}
	if got := s.TotalMisses(); got != 52 {
		t.Errorf("total misses = %d, want 52", got)
	}
	if got := s.RemoteMissesByClass(CapacityConflict); got != 30 {
		t.Errorf("cap/conf = %d, want 30", got)
	}
	if got := s.TotalTrafficBytes(); got != 150 {
		t.Errorf("traffic = %d, want 150", got)
	}
}

func TestPerNodeAverages(t *testing.T) {
	s := newSim()
	if got := s.PerNodeRemoteMisses(); got != 45.0/4 {
		t.Errorf("per-node misses = %v", got)
	}
	if got := s.PerNodePageOps(Migration); got != 6.0/4 {
		t.Errorf("per-node migrations = %v", got)
	}
	if got := s.PerNodePageOps(Relocation); got != 2 {
		t.Errorf("per-node relocations = %v", got)
	}
}

func TestNormalized(t *testing.T) {
	s := newSim()
	base := New("Perfect", "lu", 4)
	base.ExecCycles = 500
	if got := s.Normalized(base); got != 2.0 {
		t.Errorf("normalized = %v, want 2", got)
	}
	if got := s.Normalized(nil); got != 0 {
		t.Errorf("normalized vs nil = %v, want 0", got)
	}
	zero := New("z", "lu", 4)
	if got := s.Normalized(zero); got != 0 {
		t.Errorf("normalized vs zero = %v, want 0", got)
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	out := newSim().Summary()
	for _, want := range []string{"lu", "CC-NUMA", "1000", "cap/conf 30", "mig 6", "reloc 8", "150 bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestMissClassStrings(t *testing.T) {
	if Cold.String() != "cold" || Coherence.String() != "coherence" ||
		CapacityConflict.String() != "capacity/conflict" {
		t.Error("miss class strings wrong")
	}
}

func TestPageOpStrings(t *testing.T) {
	want := map[PageOp]string{
		Migration: "migration", Replication: "replication", Collapse: "collapse",
		Relocation: "relocation", Replacement: "replacement",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestTableSortedAndAligned(t *testing.T) {
	out := Table(map[string]float64{"zeta": 1.5, "alpha": 2.25})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "alpha") || !strings.Contains(lines[1], "zeta") {
		t.Errorf("rows not sorted:\n%s", out)
	}
	if !strings.Contains(lines[0], "2.250") {
		t.Errorf("value not formatted:\n%s", out)
	}
}
