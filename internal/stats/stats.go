// Package stats collects simulation metrics: misses broken down by class,
// page operations by kind, network traffic, synchronization time, and
// execution time, with per-node and cluster-wide views plus the
// normalization helpers the paper's figures use.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// MissClass classifies an L1/remote miss the way the paper's counters
// need it.
type MissClass int

const (
	// Cold is the first reference to a block by a node.
	Cold MissClass = iota
	// Coherence misses re-fetch a block that was invalidated by another
	// processor's write.
	Coherence
	// CapacityConflict misses re-fetch a block that was evicted for
	// space reasons; these are the misses both techniques target.
	CapacityConflict

	numMissClasses
)

// NumMissClasses is the number of miss classes, for packages that build
// per-class tables (internal/telemetry's windowed series).
const NumMissClasses = int(numMissClasses)

// String returns the miss-class name.
func (c MissClass) String() string {
	switch c {
	case Cold:
		return "cold"
	case Coherence:
		return "coherence"
	case CapacityConflict:
		return "capacity/conflict"
	default:
		return fmt.Sprintf("MissClass(%d)", int(c))
	}
}

// PageOp classifies a page operation.
type PageOp int

const (
	// Migration moves a page to a new home node.
	Migration PageOp = iota
	// Replication creates a read-only copy of a page on a sharer.
	Replication
	// Collapse switches a replicated page back to a single read-write
	// home copy after a write fault.
	Collapse
	// Relocation remaps a CC-NUMA page into a node's S-COMA page cache.
	Relocation
	// Replacement evicts a page from a full page cache.
	Replacement

	numPageOps
)

// NumPageOps is the number of page-operation kinds, for packages that
// build per-kind tables (internal/telemetry's windowed series).
const NumPageOps = int(numPageOps)

// String returns the page-operation name.
func (p PageOp) String() string {
	switch p {
	case Migration:
		return "migration"
	case Replication:
		return "replication"
	case Collapse:
		return "collapse"
	case Relocation:
		return "relocation"
	case Replacement:
		return "replacement"
	default:
		return fmt.Sprintf("PageOp(%d)", int(p))
	}
}

// Node accumulates the per-node counters.
type Node struct {
	// RemoteMisses counts remote misses by class: requests the node had
	// to send off-node (or, for R-NUMA, satisfy from its page cache
	// after a relocation — those count as page-cache hits instead).
	RemoteMisses [numMissClasses]int64

	// LocalMisses counts L1 misses satisfied on the node, by class.
	LocalMisses [numMissClasses]int64

	// BlockCacheHits counts remote-data fills satisfied by the node's
	// block cache.
	BlockCacheHits int64

	// PageCacheHits counts remote-data fills satisfied by the node's
	// S-COMA page cache.
	PageCacheHits int64

	// PageOps counts page operations initiated by (or on behalf of)
	// this node, by kind.
	PageOps [numPageOps]int64

	// Upgrades counts remote write-upgrade transactions (exclusivity
	// requests that move no data).
	Upgrades int64

	// PageFaults counts soft page faults taken to map remote pages.
	PageFaults int64

	// TrafficBytes is the number of bytes this node put on the network,
	// including protocol headers, data blocks and page moves.
	TrafficBytes int64

	// StallCycles is time CPUs on this node spent stalled on memory.
	StallCycles int64

	// SyncCycles is time CPUs on this node spent in barriers and locks.
	SyncCycles int64

	// PageOpCycles is time spent performing page operations.
	PageOpCycles int64
}

// Sim accumulates a full run.
type Sim struct {
	// System and App label the run.
	System string
	App    string

	// ExecCycles is the simulated execution time: the maximum terminal
	// clock over all processors.
	ExecCycles int64

	Nodes []Node

	// Net is the interconnect view of the run: per-link traffic, hot
	// links and bisection bytes. Populated by the dsm machine at the end
	// of execution.
	Net *NetStats
}

// New returns a Sim with the given number of node slots.
func New(system, app string, nodes int) *Sim {
	return &Sim{System: system, App: app, Nodes: make([]Node, nodes)}
}

// TotalRemoteMisses sums remote misses over all nodes and classes.
func (s *Sim) TotalRemoteMisses() int64 {
	var t int64
	for i := range s.Nodes {
		for _, v := range s.Nodes[i].RemoteMisses {
			t += v
		}
	}
	return t
}

// TotalMisses returns overall misses (local + remote) over all nodes.
func (s *Sim) TotalMisses() int64 {
	t := s.TotalRemoteMisses()
	for i := range s.Nodes {
		for _, v := range s.Nodes[i].LocalMisses {
			t += v
		}
	}
	return t
}

// RemoteMissesByClass sums remote misses of one class over all nodes.
func (s *Sim) RemoteMissesByClass(c MissClass) int64 {
	var t int64
	for i := range s.Nodes {
		t += s.Nodes[i].RemoteMisses[c]
	}
	return t
}

// PageOpsByKind sums page operations of one kind over all nodes.
func (s *Sim) PageOpsByKind(p PageOp) int64 {
	var t int64
	for i := range s.Nodes {
		t += s.Nodes[i].PageOps[p]
	}
	return t
}

// PerNodeRemoteMisses returns average remote misses per node.
func (s *Sim) PerNodeRemoteMisses() float64 {
	if len(s.Nodes) == 0 {
		return 0
	}
	return float64(s.TotalRemoteMisses()) / float64(len(s.Nodes))
}

// PerNodeRemoteMissesByClass returns average per-node remote misses of a
// class.
func (s *Sim) PerNodeRemoteMissesByClass(c MissClass) float64 {
	if len(s.Nodes) == 0 {
		return 0
	}
	return float64(s.RemoteMissesByClass(c)) / float64(len(s.Nodes))
}

// PerNodePageOps returns average per-node page operations of a kind.
func (s *Sim) PerNodePageOps(p PageOp) float64 {
	if len(s.Nodes) == 0 {
		return 0
	}
	return float64(s.PageOpsByKind(p)) / float64(len(s.Nodes))
}

// TotalTrafficBytes sums network traffic over all nodes.
func (s *Sim) TotalTrafficBytes() int64 {
	var t int64
	for i := range s.Nodes {
		t += s.Nodes[i].TrafficBytes
	}
	return t
}

// Normalized returns s.ExecCycles / base.ExecCycles.
func (s *Sim) Normalized(base *Sim) float64 {
	if base == nil || base.ExecCycles == 0 {
		return 0
	}
	return float64(s.ExecCycles) / float64(base.ExecCycles)
}

// Summary renders a human-readable block of the headline counters.
func (s *Sim) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s\n", s.App, s.System)
	fmt.Fprintf(&b, "  execution time: %d cycles\n", s.ExecCycles)
	fmt.Fprintf(&b, "  remote misses:  %d (cold %d, coherence %d, cap/conf %d)\n",
		s.TotalRemoteMisses(), s.RemoteMissesByClass(Cold),
		s.RemoteMissesByClass(Coherence), s.RemoteMissesByClass(CapacityConflict))
	fmt.Fprintf(&b, "  page ops:       mig %d, rep %d, collapse %d, reloc %d, repl %d\n",
		s.PageOpsByKind(Migration), s.PageOpsByKind(Replication),
		s.PageOpsByKind(Collapse), s.PageOpsByKind(Relocation),
		s.PageOpsByKind(Replacement))
	fmt.Fprintf(&b, "  traffic:        %d bytes\n", s.TotalTrafficBytes())
	return b.String()
}

// Table formats a series of labeled values as an aligned two-column
// table, sorted by label. It is used by harness reports.
func Table(rows map[string]float64) string {
	labels := make([]string, 0, len(rows))
	w := 0
	//lint:unordered label collection is sorted below
	for k := range rows {
		labels = append(labels, k)
		if len(k) > w {
			w = len(k)
		}
	}
	sort.Strings(labels)
	var b strings.Builder
	for _, k := range labels {
		fmt.Fprintf(&b, "  %-*s %8.3f\n", w, k, rows[k])
	}
	return b.String()
}
