package stats

import (
	"strings"
	"testing"
)

func testNet() *NetStats {
	return &NetStats{
		Topology: "ring",
		Links: []LinkStat{
			{Name: "ring:1->2", Bytes: 500, Msgs: 5},
			{Name: "ring:0->1", Bytes: 500, Msgs: 7},
			{Name: "ring:2->3", Bytes: 900, Msgs: 3},
			{Name: "ring:3->0", Bytes: 100, Msgs: 1},
		},
		LocalBytes:     64,
		BisectionBytes: 600,
	}
}

func TestHotLinksDeterministicOrder(t *testing.T) {
	n := testNet()
	hot := n.HotLinks(0)
	want := []string{"ring:2->3", "ring:0->1", "ring:1->2", "ring:3->0"}
	for i, name := range want {
		if hot[i].Name != name {
			t.Fatalf("hot[%d] = %s, want %s (equal bytes must tie-break by name)", i, hot[i].Name, name)
		}
	}
	if got := n.HotLinks(2); len(got) != 2 || got[0].Name != "ring:2->3" {
		t.Errorf("HotLinks(2) = %v", got)
	}
	if max := n.MaxLink(); max.Name != "ring:2->3" || max.Bytes != 900 {
		t.Errorf("MaxLink = %+v", max)
	}
}

func TestMaxLinkTieBreaksByName(t *testing.T) {
	n := &NetStats{Links: []LinkStat{
		{Name: "b", Bytes: 10}, {Name: "a", Bytes: 10}, {Name: "c", Bytes: 10},
	}}
	if max := n.MaxLink(); max.Name != "a" {
		t.Errorf("MaxLink tie = %q, want a", max.Name)
	}
}

func TestNetReportStable(t *testing.T) {
	n := testNet()
	r1, r2 := n.NetReport(3), n.NetReport(3)
	if r1 != r2 {
		t.Error("NetReport not reproducible")
	}
	for _, want := range []string{"ring fabric", "ring:2->3", "across bisection", "share"} {
		if !strings.Contains(r1, want) {
			t.Errorf("report missing %q:\n%s", want, r1)
		}
	}
	if got := n.TotalLinkBytes(); got != 2000 {
		t.Errorf("total link bytes = %d, want 2000", got)
	}
}
