package stats

import (
	"fmt"
	"strings"
)

// PerNodeReport renders a table with one row per node: misses by class,
// cache hit counts, page operations and traffic. It is the detailed view
// behind Summary.
func (s *Sim) PerNodeReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %9s %9s %9s %9s %8s %8s %6s %6s %6s %10s\n",
		"node", "cold", "coher", "cap/conf", "local", "bc-hit", "pc-hit",
		"mig", "rep", "reloc", "traffic")
	for i := range s.Nodes {
		n := &s.Nodes[i]
		var local int64
		for _, v := range n.LocalMisses {
			local += v
		}
		fmt.Fprintf(&b, "%-5d %9d %9d %9d %9d %8d %8d %6d %6d %6d %10d\n",
			i,
			n.RemoteMisses[Cold], n.RemoteMisses[Coherence], n.RemoteMisses[CapacityConflict],
			local, n.BlockCacheHits, n.PageCacheHits,
			n.PageOps[Migration], n.PageOps[Replication], n.PageOps[Relocation],
			n.TrafficBytes)
	}
	return b.String()
}

// CSV rendering of experiment results lives in internal/harness
// (Result.WriteCSV / WriteJSON), which flattens each run — including
// its fabric and interconnect stats — into one Record per row.
