package stats

import (
	"fmt"
	"io"
	"strings"
)

// PerNodeReport renders a table with one row per node: misses by class,
// cache hit counts, page operations and traffic. It is the detailed view
// behind Summary.
func (s *Sim) PerNodeReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %9s %9s %9s %9s %8s %8s %6s %6s %6s %10s\n",
		"node", "cold", "coher", "cap/conf", "local", "bc-hit", "pc-hit",
		"mig", "rep", "reloc", "traffic")
	for i := range s.Nodes {
		n := &s.Nodes[i]
		var local int64
		for _, v := range n.LocalMisses {
			local += v
		}
		fmt.Fprintf(&b, "%-5d %9d %9d %9d %9d %8d %8d %6d %6d %6d %10d\n",
			i,
			n.RemoteMisses[Cold], n.RemoteMisses[Coherence], n.RemoteMisses[CapacityConflict],
			local, n.BlockCacheHits, n.PageCacheHits,
			n.PageOps[Migration], n.PageOps[Replication], n.PageOps[Relocation],
			n.TrafficBytes)
	}
	return b.String()
}

// WriteCSVHeader emits the column header matching WriteCSVRow.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "experiment,app,system,normalized,exec_cycles,"+
		"remote_misses,cold,coherence,capacity_conflict,"+
		"migrations,replications,collapses,relocations,replacements,"+
		"upgrades,page_faults,traffic_bytes")
	return err
}

// WriteCSVRow emits one machine-readable result row for downstream
// plotting.
func (s *Sim) WriteCSVRow(w io.Writer, experiment string, normalized float64) error {
	var upgrades, faults int64
	for i := range s.Nodes {
		upgrades += s.Nodes[i].Upgrades
		faults += s.Nodes[i].PageFaults
	}
	_, err := fmt.Fprintf(w, "%s,%s,%s,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
		experiment, s.App, s.System, normalized, s.ExecCycles,
		s.TotalRemoteMisses(),
		s.RemoteMissesByClass(Cold),
		s.RemoteMissesByClass(Coherence),
		s.RemoteMissesByClass(CapacityConflict),
		s.PageOpsByKind(Migration),
		s.PageOpsByKind(Replication),
		s.PageOpsByKind(Collapse),
		s.PageOpsByKind(Relocation),
		s.PageOpsByKind(Replacement),
		upgrades, faults,
		s.TotalTrafficBytes())
	return err
}
