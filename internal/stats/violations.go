package stats

import "fmt"

// maxViolations bounds the violation strings a log retains; the count
// beyond it is still tracked.
const maxViolations = 16

// ViolationLog accumulates audit-violation descriptions with a bounded
// memory footprint: the machine and the interconnect fabric record
// event-time violations into one while running in audit mode, and the
// end-of-run checks of internal/audit read them back.
type ViolationLog struct {
	kept  []string
	extra int64 // violations beyond the recording cap
}

// Addf records one violation, capping the retained strings.
func (l *ViolationLog) Addf(format string, args ...any) {
	if len(l.kept) < maxViolations {
		l.kept = append(l.kept, fmt.Sprintf(format, args...))
		return
	}
	l.extra++
}

// All returns the recorded violations, with a trailing summary line
// when the cap was exceeded. Empty means a clean run.
func (l *ViolationLog) All() []string {
	out := append([]string(nil), l.kept...)
	if l.extra > 0 {
		out = append(out, fmt.Sprintf("... and %d further violations", l.extra))
	}
	return out
}
