package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestPerNodeReport(t *testing.T) {
	s := newSim()
	out := s.PerNodeReport()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 nodes
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "cap/conf") || !strings.Contains(lines[0], "traffic") {
		t.Errorf("header missing columns: %s", lines[0])
	}
	if !strings.Contains(lines[1], "30") { // node 0 cap/conf
		t.Errorf("node 0 row missing cap/conf count: %s", lines[1])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSVHeader(&buf); err != nil {
		t.Fatal(err)
	}
	s := newSim()
	if err := s.WriteCSVRow(&buf, "fig5", 1.5); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Fatalf("header has %d fields, row has %d", len(header), len(row))
	}
	if row[0] != "fig5" || row[1] != "lu" || row[2] != "CC-NUMA" {
		t.Errorf("row prefix = %v", row[:3])
	}
	if row[3] != "1.500000" {
		t.Errorf("normalized = %s", row[3])
	}
}
