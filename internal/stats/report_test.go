package stats

import (
	"strings"
	"testing"
)

func TestPerNodeReport(t *testing.T) {
	s := newSim()
	out := s.PerNodeReport()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 nodes
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "cap/conf") || !strings.Contains(lines[0], "traffic") {
		t.Errorf("header missing columns: %s", lines[0])
	}
	if !strings.Contains(lines[1], "30") { // node 0 cap/conf
		t.Errorf("node 0 row missing cap/conf count: %s", lines[1])
	}
}
