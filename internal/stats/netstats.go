package stats

import (
	"fmt"
	"sort"
	"strings"
)

// LinkStat is the traffic observed on one fabric link.
type LinkStat struct {
	Name  string
	Bytes int64
	Msgs  int64
}

// NetStats is the interconnect view of a run: per-link traffic, traffic
// that never left a node (messages between co-located protocol agents),
// and the bytes crossing the cluster bisection (lower node half to upper
// half and back).
type NetStats struct {
	// Topology names the fabric the run used.
	Topology string

	// Links holds one entry per fabric link, in link-id order.
	Links []LinkStat

	// LocalBytes and LocalMsgs count protocol messages whose source and
	// destination node coincide; they appear in the node traffic
	// counters but cross no link.
	LocalBytes int64
	LocalMsgs  int64

	// BisectionBytes is the number of message bytes whose source and
	// destination lie in different halves of the node id space,
	// independent of the route taken.
	BisectionBytes int64

	// Pairs[src][dst] is the bytes injected for each ordered node pair
	// with src != dst — the route-independent ground truth the audit
	// subsystem checks the per-node traffic counters against.
	Pairs [][]int64
}

// InjectedBytes sums the per-pair injections plus node-local messages:
// every byte a node's traffic counter recorded, counted once regardless
// of route length. Conservation requires it to equal the summed
// per-node TrafficBytes of the run.
func (n *NetStats) InjectedBytes() int64 {
	t := n.LocalBytes
	for _, row := range n.Pairs {
		for _, b := range row {
			t += b
		}
	}
	return t
}

// TotalLinkBytes sums bytes over every link. A message on an h-hop route
// contributes h times, so this measures fabric load, not injected
// traffic.
func (n *NetStats) TotalLinkBytes() int64 {
	var t int64
	for _, l := range n.Links {
		t += l.Bytes
	}
	return t
}

// MaxLink returns the most loaded link (ties broken by name, so the
// result is deterministic).
func (n *NetStats) MaxLink() LinkStat {
	var max LinkStat
	for _, l := range n.Links {
		if l.Bytes > max.Bytes || (l.Bytes == max.Bytes && max.Name != "" && l.Name < max.Name) {
			max = l
		}
	}
	return max
}

// HotLinks returns the k most loaded links, sorted by descending bytes
// with name as the deterministic tie-break. k <= 0 returns all links.
func (n *NetStats) HotLinks(k int) []LinkStat {
	out := append([]LinkStat(nil), n.Links...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Name < out[j].Name
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// NetReport renders the hot-link table: the k most loaded links with
// their share of the total fabric load, plus the local and bisection
// summaries.
func (n *NetStats) NetReport(k int) string {
	var b strings.Builder
	total := n.TotalLinkBytes()
	fmt.Fprintf(&b, "%s fabric: %d links, %d bytes on links, %d local, %d across bisection\n",
		n.Topology, len(n.Links), total, n.LocalBytes, n.BisectionBytes)
	fmt.Fprintf(&b, "  %-18s %12s %10s %7s\n", "link", "bytes", "msgs", "share")
	for _, l := range n.HotLinks(k) {
		share := 0.0
		if total > 0 {
			share = float64(l.Bytes) / float64(total)
		}
		fmt.Fprintf(&b, "  %-18s %12d %10d %6.1f%%\n", l.Name, l.Bytes, l.Msgs, 100*share)
	}
	return b.String()
}
