package core

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/stats"
)

func session(t *testing.T) *Session {
	t.Helper()
	o := Defaults()
	o.Scale = 8
	return NewSession(o)
}

func TestSimulateNormalizes(t *testing.T) {
	s := session(t)
	r, err := s.Simulate("lu", SystemCCNUMA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Normalized <= 0 {
		t.Errorf("normalized = %v", r.Normalized)
	}
	if r.Stats.ExecCycles <= 0 || r.Baseline.ExecCycles <= 0 {
		t.Error("missing execution times")
	}
	// Perfect normalizes to exactly 1.
	p, err := s.Simulate("lu", SystemPerfect)
	if err != nil {
		t.Fatal(err)
	}
	if p.Normalized != 1.0 {
		t.Errorf("perfect normalized = %v, want 1", p.Normalized)
	}
}

func TestTraceCaching(t *testing.T) {
	s := session(t)
	a, err := s.Trace("radix")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Trace("radix")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace not cached")
	}
}

func TestCompare(t *testing.T) {
	s := session(t)
	rs, err := s.Compare("radix", SystemCCNUMA, SystemRNUMA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].System != SystemCCNUMA || rs[1].System != SystemRNUMA {
		t.Error("results out of order")
	}
}

func TestUnknownSystemAndApp(t *testing.T) {
	s := session(t)
	if _, err := s.Simulate("lu", "warp-drive"); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := s.Simulate("nosuch", SystemCCNUMA); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSystemsCoverSpecs(t *testing.T) {
	s := session(t)
	for _, sys := range Systems() {
		if _, err := s.Spec(sys); err != nil {
			t.Errorf("%s: %v", sys, err)
		}
	}
}

func TestApplicationsListed(t *testing.T) {
	s := session(t)
	names := s.Applications()
	if len(names) < 8 { // seven paper apps + synthetic
		t.Errorf("only %d applications", len(names))
	}
}

func TestSimulateTrace(t *testing.T) {
	s := session(t)
	tr, err := apps.GenerateSynthetic(apps.SynStream, apps.SyntheticParams{CPUs: 32, KBPerNode: 128, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.SimulateTrace(tr, SystemRNUMA)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.PageOpsByKind(stats.Relocation) == 0 {
		t.Error("custom streaming trace triggered no relocations")
	}
}
