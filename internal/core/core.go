// Package core is the library's high-level API: it ties together the
// workload generators (internal/apps), the simulated DSM machines
// (internal/dsm) and the timing model (internal/config) behind a small
// surface suitable for tools and examples.
//
// The typical flow is three lines:
//
//	sess := core.NewSession(core.Defaults())
//	res, err := sess.Simulate("lu", core.SystemRNUMA)
//	fmt.Println(res.Normalized, res.Stats.Summary())
//
// Simulate generates (and caches) the application trace, runs it on the
// requested system and on the perfect-CC-NUMA baseline, and reports
// execution time normalized the way every figure in the paper is.
package core

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// System names one of the simulated machine configurations. Any name
// in the dsm registry is valid; the constants below cover the paper's
// systems and the repo's extensions.
type System string

// The paper's nine systems plus the registered extensions.
const (
	SystemPerfect     System = "perfect"
	SystemCCNUMA      System = "ccnuma"
	SystemRep         System = "rep"
	SystemMig         System = "mig"
	SystemMigRep      System = "migrep"
	SystemRNUMA       System = "rnuma"
	SystemRNUMAInf    System = "rnuma-inf"
	SystemRNUMAHalf   System = "rnuma-half"
	SystemRNUMAHalfMR System = "rnuma-half-migrep"

	// SystemSCOMA is the static fine-grain caching ablation (every
	// remote page placed in the page cache on first touch).
	SystemSCOMA System = "scoma"

	// SystemMigRepCont is MigRep with contention-aware page moves:
	// moves are deferred while the route they would take has carried a
	// disproportionate (cumulative) share of fabric traffic. The gate
	// reads per-link byte counters, so it engages on every topology —
	// including the ideal crossbar, whose dedicated per-pair links
	// count traffic even though they model no contention.
	SystemMigRepCont System = "migrep-contend"
)

// Systems returns every registered system name in presentation order.
func Systems() []System {
	var out []System
	for _, name := range dsm.SystemNames() {
		out = append(out, System(name))
	}
	return out
}

// Options configures a session.
type Options struct {
	// Cluster is the machine shape (defaults to the paper's 8x4).
	Cluster config.Cluster

	// Timing is the cost model (defaults to Table 3).
	Timing config.Timing

	// Thresholds are the policy parameters.
	Thresholds config.Thresholds

	// Scale divides application problem sizes; 1 is the full
	// reproduction size.
	Scale int

	// RelocDelay configures the R-NUMA+MigRep integration's relocation
	// delay in misses per page (0 uses 8x the R-NUMA threshold).
	RelocDelay int
}

// Defaults returns the paper's base configuration.
func Defaults() Options {
	return Options{
		Cluster:    config.DefaultCluster(),
		Timing:     config.Default(),
		Thresholds: config.DefaultThresholds(),
		Scale:      1,
	}
}

// Result is the outcome of one simulation.
type Result struct {
	App    string
	System System

	// Stats holds the full counter set of the run.
	Stats *stats.Sim

	// Baseline holds the perfect-CC-NUMA run of the same trace.
	Baseline *stats.Sim

	// Normalized is Stats.ExecCycles / Baseline.ExecCycles — the y-axis
	// of every figure in the paper.
	Normalized float64
}

// Session caches generated traces so that comparing many systems on one
// application generates the workload once.
type Session struct {
	opts   Options
	traces map[string]*trace.Trace
	bases  map[string]*stats.Sim
}

// NewSession creates a session with the given options.
func NewSession(opts Options) *Session {
	if opts.Scale < 1 {
		opts.Scale = 1
	}
	if opts.Cluster.Nodes == 0 {
		opts.Cluster = config.DefaultCluster()
	}
	if opts.Timing == (config.Timing{}) {
		opts.Timing = config.Default()
	}
	if opts.Thresholds == (config.Thresholds{}) {
		opts.Thresholds = config.DefaultThresholds()
	}
	if opts.RelocDelay == 0 {
		opts.RelocDelay = 8 * opts.Thresholds.RNUMAThreshold
	}
	return &Session{
		opts:   opts,
		traces: make(map[string]*trace.Trace),
		bases:  make(map[string]*stats.Sim),
	}
}

// Applications lists the available workload names.
func (s *Session) Applications() []string {
	var out []string
	for _, i := range apps.All() {
		out = append(out, i.Name)
	}
	return out
}

// Spec resolves a system name to its machine specification through the
// dsm registry, so every registered system — including ones added
// after this package was written — is available to sessions by name.
func (s *Session) Spec(sys System) (dsm.Spec, error) {
	info, err := dsm.Lookup(string(sys))
	if err != nil {
		return dsm.Spec{}, fmt.Errorf("core: %w", err)
	}
	spec := info.New(s.opts.Thresholds)
	// The session's RelocDelay option overrides the registry's
	// threshold-derived default for delayed-relocation systems.
	if spec.RelocDelayMisses > 0 && s.opts.RelocDelay > 0 {
		spec.RelocDelayMisses = s.opts.RelocDelay
	}
	return spec, nil
}

// Trace returns the (cached) trace of an application.
func (s *Session) Trace(app string) (*trace.Trace, error) {
	if tr, ok := s.traces[app]; ok {
		return tr, nil
	}
	info, err := apps.ByName(app)
	if err != nil {
		return nil, err
	}
	tr, err := info.Generate(apps.Params{CPUs: s.opts.Cluster.TotalCPUs(), Scale: s.opts.Scale})
	if err != nil {
		return nil, err
	}
	s.traces[app] = tr
	return tr, nil
}

// baselineCluster is the session's cluster with the fabric reset to the
// ideal crossbar: like the base timing model, the normalization
// reference always runs on the paper's ideal network, so normalized
// times stay comparable across fabrics (the y-axis of every figure).
func (s *Session) baselineCluster() config.Cluster {
	cl := s.opts.Cluster
	cl.Net = config.Network{}
	return cl
}

// baseline returns the (cached) perfect-CC-NUMA run of an application
// under the base timing model and the ideal crossbar.
func (s *Session) baseline(app string) (*stats.Sim, error) {
	if b, ok := s.bases[app]; ok {
		return b, nil
	}
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	b, err := dsm.Run(tr, dsm.PerfectCCNUMA(), s.baselineCluster(), config.Default(), s.opts.Thresholds)
	if err != nil {
		return nil, err
	}
	s.bases[app] = b
	return b, nil
}

// Simulate runs one application on one system.
func (s *Session) Simulate(app string, sys System) (*Result, error) {
	spec, err := s.Spec(sys)
	if err != nil {
		return nil, err
	}
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	sim, err := dsm.Run(tr, spec, s.opts.Cluster, s.opts.Timing, s.opts.Thresholds)
	if err != nil {
		return nil, err
	}
	base, err := s.baseline(app)
	if err != nil {
		return nil, err
	}
	return &Result{
		App: app, System: sys, Stats: sim, Baseline: base,
		Normalized: sim.Normalized(base),
	}, nil
}

// Compare runs one application across several systems.
func (s *Session) Compare(app string, systems ...System) ([]*Result, error) {
	out := make([]*Result, 0, len(systems))
	for _, sys := range systems {
		r, err := s.Simulate(app, sys)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SimulateTrace runs a caller-provided trace (e.g. a custom workload
// built with the apps.World API) on one system, returning the run and
// its perfect-CC-NUMA baseline.
func (s *Session) SimulateTrace(tr *trace.Trace, sys System) (*Result, error) {
	spec, err := s.Spec(sys)
	if err != nil {
		return nil, err
	}
	sim, err := dsm.Run(tr, spec, s.opts.Cluster, s.opts.Timing, s.opts.Thresholds)
	if err != nil {
		return nil, err
	}
	base, err := dsm.Run(tr, dsm.PerfectCCNUMA(), s.baselineCluster(), config.Default(), s.opts.Thresholds)
	if err != nil {
		return nil, err
	}
	return &Result{
		App: tr.Name, System: sys, Stats: sim, Baseline: base,
		Normalized: sim.Normalized(base),
	}, nil
}
