// Package cache models the three caching structures of the simulated
// cluster at coherence-block granularity: the per-processor direct-mapped
// L1, the per-node set-associative SRAM block cache of CC-NUMA cluster
// devices, and the per-node page-grain S-COMA page cache of R-NUMA with
// its fine-grain block-presence tags.
package cache

import (
	"repro/internal/config"
	"repro/internal/memory"
)

// LineState is the coherence state of a cached block copy.
type LineState uint8

const (
	// Invalid means the slot holds no valid block.
	Invalid LineState = iota
	// Shared means a clean, possibly multiply-cached copy.
	Shared
	// Modified means a dirty, exclusively writable copy.
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case Shared:
		return "shared"
	case Modified:
		return "modified"
	default:
		return "?"
	}
}

// Victim describes a block displaced from a cache.
type Victim struct {
	Block memory.Block
	Dirty bool
	Valid bool
}

// L1 is a direct-mapped processor cache modeled at block granularity.
type L1 struct {
	sets  uint64
	tags  []memory.Block
	state []LineState
}

// NewL1 builds a direct-mapped L1 of the given size in bytes.
func NewL1(bytes int) *L1 {
	sets := uint64(bytes / config.BlockBytes)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cache: L1 size must be a power-of-two number of blocks")
	}
	return &L1{
		sets:  sets,
		tags:  make([]memory.Block, sets),
		state: make([]LineState, sets),
	}
}

// Sets returns the number of lines.
func (c *L1) Sets() int { return int(c.sets) }

func (c *L1) idx(b memory.Block) uint64 { return uint64(b) & (c.sets - 1) }

// Lookup returns the state of block b in the cache (Invalid on miss).
func (c *L1) Lookup(b memory.Block) LineState {
	i := c.idx(b)
	if c.state[i] != Invalid && c.tags[i] == b {
		return c.state[i]
	}
	return Invalid
}

// SetState updates the state of a resident block. It panics if the block
// is not resident — callers must have checked with Lookup.
func (c *L1) SetState(b memory.Block, s LineState) {
	i := c.idx(b)
	if c.state[i] == Invalid || c.tags[i] != b {
		panic("cache: SetState on non-resident block")
	}
	c.state[i] = s
}

// Insert places block b with the given state, returning the displaced
// victim (Valid=false if the slot was empty). Inserting a block that is
// already resident just updates its state and returns an invalid victim.
func (c *L1) Insert(b memory.Block, s LineState) Victim {
	i := c.idx(b)
	var v Victim
	if c.state[i] != Invalid {
		if c.tags[i] == b {
			c.state[i] = s
			return Victim{}
		}
		v = Victim{Block: c.tags[i], Dirty: c.state[i] == Modified, Valid: true}
	}
	c.tags[i] = b
	c.state[i] = s
	return v
}

// Invalidate removes block b, returning whether it was present and dirty.
func (c *L1) Invalidate(b memory.Block) (present, dirty bool) {
	i := c.idx(b)
	if c.state[i] == Invalid || c.tags[i] != b {
		return false, false
	}
	dirty = c.state[i] == Modified
	c.state[i] = Invalid
	return true, dirty
}

// BlockCache is the per-node CC-NUMA cluster (remote/block) cache: N-way
// set associative with LRU replacement. An infinite variant (Ways == 0)
// backs the perfect-CC-NUMA baseline.
type BlockCache struct {
	sets uint64
	ways int

	// finite representation
	tags  [][]memory.Block
	state [][]LineState

	// infinite representation
	inf map[memory.Block]LineState
}

// NewBlockCache builds a block cache of the given total size and
// associativity.
func NewBlockCache(bytes, ways int) *BlockCache {
	blocks := bytes / config.BlockBytes
	sets := uint64(blocks / ways)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cache: block cache sets must be a power of two")
	}
	c := &BlockCache{sets: sets, ways: ways}
	c.tags = make([][]memory.Block, sets)
	c.state = make([][]LineState, sets)
	for i := range c.tags {
		c.tags[i] = make([]memory.Block, 0, ways)
		c.state[i] = make([]LineState, 0, ways)
	}
	return c
}

// NewInfiniteBlockCache builds the perfect-CC-NUMA block cache: unbounded
// capacity, no evictions.
func NewInfiniteBlockCache() *BlockCache {
	return &BlockCache{inf: make(map[memory.Block]LineState)}
}

// Infinite reports whether the cache is the unbounded variant.
func (c *BlockCache) Infinite() bool { return c.inf != nil }

func (c *BlockCache) set(b memory.Block) uint64 { return uint64(b) & (c.sets - 1) }

// Lookup returns the block's state, promoting it to most-recently-used on
// a hit.
func (c *BlockCache) Lookup(b memory.Block) LineState {
	if c.inf != nil {
		return c.inf[b]
	}
	s := c.set(b)
	tags := c.tags[s]
	for i, t := range tags {
		if t == b {
			st := c.state[s][i]
			c.promote(s, i)
			return st
		}
	}
	return Invalid
}

// Probe returns the block's state without touching LRU order.
func (c *BlockCache) Probe(b memory.Block) LineState {
	if c.inf != nil {
		return c.inf[b]
	}
	s := c.set(b)
	for i, t := range c.tags[s] {
		if t == b {
			return c.state[s][i]
		}
	}
	return Invalid
}

// promote moves way i of set s to the MRU position (index 0).
func (c *BlockCache) promote(s uint64, i int) {
	if i == 0 {
		return
	}
	tags, states := c.tags[s], c.state[s]
	t, st := tags[i], states[i]
	copy(tags[1:i+1], tags[0:i])
	copy(states[1:i+1], states[0:i])
	tags[0], states[0] = t, st
}

// Insert places block b, returning the LRU victim if the set was full.
// Inserting a resident block refreshes its state and LRU position.
func (c *BlockCache) Insert(b memory.Block, st LineState) Victim {
	if c.inf != nil {
		c.inf[b] = st
		return Victim{}
	}
	s := c.set(b)
	for i, t := range c.tags[s] {
		if t == b {
			c.state[s][i] = st
			c.promote(s, i)
			return Victim{}
		}
	}
	if len(c.tags[s]) < c.ways {
		c.tags[s] = append(c.tags[s], 0)
		c.state[s] = append(c.state[s], Invalid)
	} else {
		// evict LRU (last slot)
		last := c.ways - 1
		v := Victim{Block: c.tags[s][last], Dirty: c.state[s][last] == Modified, Valid: true}
		copy(c.tags[s][1:], c.tags[s][:last])
		copy(c.state[s][1:], c.state[s][:last])
		c.tags[s][0], c.state[s][0] = b, st
		return v
	}
	// shift and place at MRU
	tags, states := c.tags[s], c.state[s]
	copy(tags[1:], tags[:len(tags)-1])
	copy(states[1:], states[:len(states)-1])
	tags[0], states[0] = b, st
	return Victim{}
}

// SetState updates the state of a resident block; it is a no-op if the
// block is absent.
func (c *BlockCache) SetState(b memory.Block, st LineState) {
	if c.inf != nil {
		if _, ok := c.inf[b]; ok {
			c.inf[b] = st
		}
		return
	}
	s := c.set(b)
	for i, t := range c.tags[s] {
		if t == b {
			c.state[s][i] = st
			return
		}
	}
}

// Invalidate removes block b, reporting presence and dirtiness.
func (c *BlockCache) Invalidate(b memory.Block) (present, dirty bool) {
	if c.inf != nil {
		st, ok := c.inf[b]
		if !ok || st == Invalid {
			return false, false
		}
		delete(c.inf, b)
		return true, st == Modified
	}
	s := c.set(b)
	for i, t := range c.tags[s] {
		if t == b && c.state[s][i] != Invalid {
			dirty := c.state[s][i] == Modified
			last := len(c.tags[s]) - 1
			copy(c.tags[s][i:], c.tags[s][i+1:last+1])
			copy(c.state[s][i:], c.state[s][i+1:last+1])
			c.tags[s] = c.tags[s][:last]
			c.state[s] = c.state[s][:last]
			return true, dirty
		}
	}
	return false, false
}

// PageEntry is one S-COMA page frame: fine-grain tags record which blocks
// of the page are valid and which are dirty.
type PageEntry struct {
	Page  memory.Page
	Valid uint64 // bit i: block i of the page is present
	Dirty uint64 // bit i: block i is dirty

	prev, next *PageEntry
}

// ValidBlocks returns the number of valid blocks in the frame.
func (e *PageEntry) ValidBlocks() int { return popcount(e.Valid) }

// DirtyBlocks returns the number of dirty blocks in the frame.
func (e *PageEntry) DirtyBlocks() int { return popcount(e.Dirty) }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// PageCache is the per-node S-COMA page cache: a set of page frames with
// LRU replacement at page granularity and per-block presence tags. A
// capacity of zero pages means unbounded (R-NUMA-Inf).
type PageCache struct {
	capacity int // pages; 0 = unbounded
	entries  map[memory.Page]*PageEntry

	// LRU list: head is MRU, tail is LRU.
	head, tail *PageEntry
}

// NewPageCache builds a page cache holding the given number of bytes
// worth of page frames. bytes = 0 builds the unbounded variant.
func NewPageCache(bytes int) *PageCache {
	return &PageCache{
		capacity: bytes / config.PageBytes,
		entries:  make(map[memory.Page]*PageEntry),
	}
}

// Infinite reports whether the cache is unbounded.
func (c *PageCache) Infinite() bool { return c.capacity == 0 }

// Capacity returns the frame count (0 = unbounded).
func (c *PageCache) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *PageCache) Len() int { return len(c.entries) }

// Entry returns the frame for page p, or nil, without touching LRU
// order.
func (c *PageCache) Entry(p memory.Page) *PageEntry { return c.entries[p] }

// Touch promotes page p to MRU, returning its frame (nil if absent).
func (c *PageCache) Touch(p memory.Page) *PageEntry {
	e := c.entries[p]
	if e == nil {
		return nil
	}
	c.moveToFront(e)
	return e
}

// Full reports whether an allocation would require an eviction.
func (c *PageCache) Full() bool {
	return c.capacity != 0 && len(c.entries) >= c.capacity
}

// EvictLRU removes and returns the least-recently-used frame, or nil if
// the cache is empty.
func (c *PageCache) EvictLRU() *PageEntry {
	e := c.tail
	if e == nil {
		return nil
	}
	c.remove(e)
	delete(c.entries, e.Page)
	return e
}

// Allocate creates an empty frame for page p at MRU position. The caller
// must have made room first (Full + EvictLRU); if the cache is full,
// Allocate panics.
func (c *PageCache) Allocate(p memory.Page) *PageEntry {
	if c.entries[p] != nil {
		panic("cache: page already resident")
	}
	if c.Full() {
		panic("cache: allocate into full page cache")
	}
	e := &PageEntry{Page: p}
	c.entries[p] = e
	c.pushFront(e)
	return e
}

// Remove deletes page p's frame outright (used when a page migrates away
// or is gathered), returning it (nil if absent).
func (c *PageCache) Remove(p memory.Page) *PageEntry {
	e := c.entries[p]
	if e == nil {
		return nil
	}
	c.remove(e)
	delete(c.entries, p)
	return e
}

func (c *PageCache) pushFront(e *PageEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PageCache) remove(e *PageEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *PageCache) moveToFront(e *PageEntry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}
