// Package cache models the three caching structures of the simulated
// cluster at coherence-block granularity: the per-processor direct-mapped
// L1, the per-node set-associative SRAM block cache of CC-NUMA cluster
// devices, and the per-node page-grain S-COMA page cache of R-NUMA with
// its fine-grain block-presence tags.
//
// The structures are probed on every simulated memory access, so they are
// built for the replay hot path: flat arrays indexed by set or by
// block/page number, no map lookups, and no steady-state allocation. The
// sized constructors (NewInfiniteBlockCacheSized, NewPageCacheSized) take
// the trace footprint so the index arrays are allocated once up front.
package cache

import (
	"repro/internal/config"
	"repro/internal/memory"
)

// LineState is the coherence state of a cached block copy.
type LineState uint8

const (
	// Invalid means the slot holds no valid block.
	Invalid LineState = iota
	// Shared means a clean, possibly multiply-cached copy.
	Shared
	// Modified means a dirty, exclusively writable copy.
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case Shared:
		return "shared"
	case Modified:
		return "modified"
	default:
		return "?"
	}
}

// Victim describes a block displaced from a cache.
type Victim struct {
	Block memory.Block
	Dirty bool
	Valid bool
}

// L1 is a direct-mapped processor cache modeled at block granularity.
type L1 struct {
	sets  uint64
	tags  []memory.Block
	state []LineState
}

// NewL1 builds a direct-mapped L1 of the given size in bytes.
func NewL1(bytes int) *L1 {
	sets := uint64(bytes / config.BlockBytes)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cache: L1 size must be a power-of-two number of blocks")
	}
	return &L1{
		sets:  sets,
		tags:  make([]memory.Block, sets),
		state: make([]LineState, sets),
	}
}

// Sets returns the number of lines.
func (c *L1) Sets() int { return int(c.sets) }

//repro:hotpath
func (c *L1) idx(b memory.Block) uint64 { return uint64(b) & (c.sets - 1) }

// Lookup returns the state of block b in the cache (Invalid on miss).
//
//repro:hotpath
func (c *L1) Lookup(b memory.Block) LineState {
	i := c.idx(b)
	if c.state[i] != Invalid && c.tags[i] == b {
		return c.state[i]
	}
	return Invalid
}

// SetState updates the state of a resident block. It panics if the block
// is not resident — callers must have checked with Lookup.
//
//repro:hotpath
func (c *L1) SetState(b memory.Block, s LineState) {
	i := c.idx(b)
	if c.state[i] == Invalid || c.tags[i] != b {
		panic("cache: SetState on non-resident block")
	}
	c.state[i] = s
}

// Insert places block b with the given state, returning the displaced
// victim (Valid=false if the slot was empty). Inserting a block that is
// already resident just updates its state and returns an invalid victim.
//
//repro:hotpath
func (c *L1) Insert(b memory.Block, s LineState) Victim {
	i := c.idx(b)
	var v Victim
	if c.state[i] != Invalid {
		if c.tags[i] == b {
			c.state[i] = s
			return Victim{}
		}
		v = Victim{Block: c.tags[i], Dirty: c.state[i] == Modified, Valid: true}
	}
	c.tags[i] = b
	c.state[i] = s
	return v
}

// Invalidate removes block b, returning whether it was present and dirty.
//
//repro:hotpath
func (c *L1) Invalidate(b memory.Block) (present, dirty bool) {
	i := c.idx(b)
	if c.state[i] == Invalid || c.tags[i] != b {
		return false, false
	}
	dirty = c.state[i] == Modified
	c.state[i] = Invalid
	return true, dirty
}

// BlockCache is the per-node CC-NUMA cluster (remote/block) cache: N-way
// set associative with LRU replacement. An infinite variant (Ways == 0)
// backs the perfect-CC-NUMA baseline.
//
// The finite variant stores all sets in two flat arrays (ways
// consecutive slots per set, MRU first); the infinite variant stores the
// per-block state in a slice indexed by block number, grown on demand —
// no map on the probe path either way.
type BlockCache struct {
	sets uint64
	ways int

	// finite representation: slot s*ways+i is way i of set s, ordered
	// MRU to LRU; size[s] is the set's occupancy.
	tags  []memory.Block
	state []LineState
	size  []uint8

	// infinite representation: state indexed by block number.
	infinite bool
	inf      []LineState
}

// NewBlockCache builds a block cache of the given total size and
// associativity.
func NewBlockCache(bytes, ways int) *BlockCache {
	blocks := bytes / config.BlockBytes
	sets := uint64(blocks / ways)
	if sets == 0 || sets&(sets-1) != 0 {
		panic("cache: block cache sets must be a power of two")
	}
	if ways > 255 {
		panic("cache: block cache associativity exceeds 255")
	}
	return &BlockCache{
		sets:  sets,
		ways:  ways,
		tags:  make([]memory.Block, int(sets)*ways),
		state: make([]LineState, int(sets)*ways),
		size:  make([]uint8, sets),
	}
}

// NewInfiniteBlockCache builds the perfect-CC-NUMA block cache: unbounded
// capacity, no evictions.
func NewInfiniteBlockCache() *BlockCache {
	return NewInfiniteBlockCacheSized(0)
}

// NewInfiniteBlockCacheSized builds the unbounded block cache with its
// state array preallocated for the given number of blocks (the trace
// footprint); probing any block below that bound never allocates.
func NewInfiniteBlockCacheSized(blocks int) *BlockCache {
	return &BlockCache{infinite: true, inf: make([]LineState, blocks)}
}

// Infinite reports whether the cache is the unbounded variant.
func (c *BlockCache) Infinite() bool { return c.infinite }

//repro:hotpath
func (c *BlockCache) set(b memory.Block) uint64 { return uint64(b) & (c.sets - 1) }

// grow extends the infinite state array to cover block b.
func (c *BlockCache) grow(b memory.Block) {
	need := int(b) + 1
	if cap(c.inf) >= need {
		c.inf = c.inf[:need]
		return
	}
	bigger := make([]LineState, need, need+need/2)
	copy(bigger, c.inf)
	c.inf = bigger
}

// Lookup returns the block's state, promoting it to most-recently-used on
// a hit.
//
//repro:hotpath
func (c *BlockCache) Lookup(b memory.Block) LineState {
	if c.infinite {
		if int(b) < len(c.inf) {
			return c.inf[b]
		}
		return Invalid
	}
	s := c.set(b)
	base := int(s) * c.ways
	n := int(c.size[s])
	for i := 0; i < n; i++ {
		if c.tags[base+i] == b {
			st := c.state[base+i]
			c.promote(base, i)
			return st
		}
	}
	return Invalid
}

// Probe returns the block's state without touching LRU order.
//
//repro:hotpath
func (c *BlockCache) Probe(b memory.Block) LineState {
	if c.infinite {
		if int(b) < len(c.inf) {
			return c.inf[b]
		}
		return Invalid
	}
	s := c.set(b)
	base := int(s) * c.ways
	n := int(c.size[s])
	for i := 0; i < n; i++ {
		if c.tags[base+i] == b {
			return c.state[base+i]
		}
	}
	return Invalid
}

// promote moves slot base+i to the MRU position (base).
//
//repro:hotpath
func (c *BlockCache) promote(base, i int) {
	if i == 0 {
		return
	}
	t, st := c.tags[base+i], c.state[base+i]
	copy(c.tags[base+1:base+i+1], c.tags[base:base+i])
	copy(c.state[base+1:base+i+1], c.state[base:base+i])
	c.tags[base], c.state[base] = t, st
}

// Insert places block b, returning the LRU victim if the set was full.
// Inserting a resident block refreshes its state and LRU position.
//
//repro:hotpath
func (c *BlockCache) Insert(b memory.Block, st LineState) Victim {
	if c.infinite {
		if int(b) >= len(c.inf) {
			c.grow(b)
		}
		c.inf[b] = st
		return Victim{}
	}
	s := c.set(b)
	base := int(s) * c.ways
	n := int(c.size[s])
	for i := 0; i < n; i++ {
		if c.tags[base+i] == b {
			c.state[base+i] = st
			c.promote(base, i)
			return Victim{}
		}
	}
	var v Victim
	if n == c.ways {
		// evict LRU (last slot)
		last := base + c.ways - 1
		v = Victim{Block: c.tags[last], Dirty: c.state[last] == Modified, Valid: true}
		n--
	} else {
		c.size[s]++
	}
	// shift and place at MRU
	copy(c.tags[base+1:base+n+1], c.tags[base:base+n])
	copy(c.state[base+1:base+n+1], c.state[base:base+n])
	c.tags[base], c.state[base] = b, st
	return v
}

// SetState updates the state of a resident block; it is a no-op if the
// block is absent.
//
//repro:hotpath
func (c *BlockCache) SetState(b memory.Block, st LineState) {
	if c.infinite {
		if int(b) < len(c.inf) && c.inf[b] != Invalid {
			c.inf[b] = st
		}
		return
	}
	s := c.set(b)
	base := int(s) * c.ways
	n := int(c.size[s])
	for i := 0; i < n; i++ {
		if c.tags[base+i] == b {
			c.state[base+i] = st
			return
		}
	}
}

// Invalidate removes block b, reporting presence and dirtiness.
//
//repro:hotpath
func (c *BlockCache) Invalidate(b memory.Block) (present, dirty bool) {
	if c.infinite {
		if int(b) >= len(c.inf) || c.inf[b] == Invalid {
			return false, false
		}
		dirty = c.inf[b] == Modified
		c.inf[b] = Invalid
		return true, dirty
	}
	s := c.set(b)
	base := int(s) * c.ways
	n := int(c.size[s])
	for i := 0; i < n; i++ {
		if c.tags[base+i] == b && c.state[base+i] != Invalid {
			dirty = c.state[base+i] == Modified
			copy(c.tags[base+i:base+n-1], c.tags[base+i+1:base+n])
			copy(c.state[base+i:base+n-1], c.state[base+i+1:base+n])
			c.size[s]--
			return true, dirty
		}
	}
	return false, false
}

// PageEntry is one S-COMA page frame: fine-grain tags record which blocks
// of the page are valid and which are dirty.
type PageEntry struct {
	Page  memory.Page
	Valid uint64 // bit i: block i of the page is present
	Dirty uint64 // bit i: block i is dirty

	prev, next *PageEntry
}

// ValidBlocks returns the number of valid blocks in the frame.
func (e *PageEntry) ValidBlocks() int { return popcount(e.Valid) }

// DirtyBlocks returns the number of dirty blocks in the frame.
func (e *PageEntry) DirtyBlocks() int { return popcount(e.Dirty) }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// PageCache is the per-node S-COMA page cache: a set of page frames with
// LRU replacement at page granularity and per-block presence tags. A
// capacity of zero pages means unbounded (R-NUMA-Inf).
//
// Frames are indexed by page number in a flat array (no map on the probe
// path), and the most recently freed frame is recycled by the next
// Allocate, so steady-state replacement allocates nothing. A frame
// returned by EvictLRU or Remove is therefore only valid until the next
// Allocate on the same cache.
type PageCache struct {
	capacity int // pages; 0 = unbounded
	entries  []*PageEntry
	resident int

	// LRU list: head is MRU, tail is LRU.
	head, tail *PageEntry

	// spare is the most recently evicted/removed frame, recycled by
	// Allocate.
	spare *PageEntry
}

// NewPageCache builds a page cache holding the given number of bytes
// worth of page frames. bytes = 0 builds the unbounded variant.
func NewPageCache(bytes int) *PageCache {
	return NewPageCacheSized(bytes, 0)
}

// NewPageCacheSized is NewPageCache with the frame index preallocated
// for the given number of pages (the trace footprint), so probing any
// page below that bound never allocates.
func NewPageCacheSized(bytes, pages int) *PageCache {
	return &PageCache{
		capacity: bytes / config.PageBytes,
		entries:  make([]*PageEntry, pages),
	}
}

// Infinite reports whether the cache is unbounded.
func (c *PageCache) Infinite() bool { return c.capacity == 0 }

// Capacity returns the frame count (0 = unbounded).
func (c *PageCache) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *PageCache) Len() int { return c.resident }

// Entry returns the frame for page p, or nil, without touching LRU
// order.
//
//repro:hotpath
func (c *PageCache) Entry(p memory.Page) *PageEntry {
	if int(p) < len(c.entries) {
		return c.entries[p]
	}
	return nil
}

// Touch promotes page p to MRU, returning its frame (nil if absent).
//
//repro:hotpath
func (c *PageCache) Touch(p memory.Page) *PageEntry {
	e := c.Entry(p)
	if e == nil {
		return nil
	}
	c.moveToFront(e)
	return e
}

// Full reports whether an allocation would require an eviction.
func (c *PageCache) Full() bool {
	return c.capacity != 0 && c.resident >= c.capacity
}

// EvictLRU removes and returns the least-recently-used frame, or nil if
// the cache is empty. The returned frame is valid until the next
// Allocate.
//
//repro:hotpath
func (c *PageCache) EvictLRU() *PageEntry {
	e := c.tail
	if e == nil {
		return nil
	}
	c.remove(e)
	c.entries[e.Page] = nil
	c.resident--
	c.spare = e
	return e
}

// Allocate creates an empty frame for page p at MRU position. The caller
// must have made room first (Full + EvictLRU); if the cache is full,
// Allocate panics.
//
//repro:hotpath
func (c *PageCache) Allocate(p memory.Page) *PageEntry {
	if c.Entry(p) != nil {
		panic("cache: page already resident")
	}
	if c.Full() {
		panic("cache: allocate into full page cache")
	}
	if int(p) >= len(c.entries) {
		bigger := make([]*PageEntry, int(p)+1)
		copy(bigger, c.entries)
		c.entries = bigger
	}
	e := c.spare
	if e != nil {
		c.spare = nil
		*e = PageEntry{Page: p}
	} else {
		e = &PageEntry{Page: p}
	}
	c.entries[p] = e
	c.resident++
	c.pushFront(e)
	return e
}

// Remove deletes page p's frame outright (used when a page migrates away
// or is gathered), returning it (nil if absent). The returned frame is
// valid until the next Allocate.
//
//repro:hotpath
func (c *PageCache) Remove(p memory.Page) *PageEntry {
	e := c.Entry(p)
	if e == nil {
		return nil
	}
	c.remove(e)
	c.entries[p] = nil
	c.resident--
	c.spare = e
	return e
}

//repro:hotpath
func (c *PageCache) pushFront(e *PageEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

//repro:hotpath
func (c *PageCache) remove(e *PageEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

//repro:hotpath
func (c *PageCache) moveToFront(e *PageEntry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}
