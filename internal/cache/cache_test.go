package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/memory"
)

func TestL1DirectMappedConflict(t *testing.T) {
	c := NewL1(config.L1Bytes)
	sets := memory.Block(c.Sets())
	c.Insert(0, Shared)
	if c.Lookup(0) != Shared {
		t.Fatal("inserted block missing")
	}
	// A block mapping to the same set displaces it.
	v := c.Insert(sets, Modified)
	if !v.Valid || v.Block != 0 || v.Dirty {
		t.Fatalf("victim = %+v, want clean block 0", v)
	}
	if c.Lookup(0) != Invalid {
		t.Error("displaced block still resident")
	}
	if c.Lookup(sets) != Modified {
		t.Error("new block not resident")
	}
}

func TestL1DirtyVictim(t *testing.T) {
	c := NewL1(config.L1Bytes)
	sets := memory.Block(c.Sets())
	c.Insert(5, Modified)
	v := c.Insert(5+sets, Shared)
	if !v.Valid || !v.Dirty || v.Block != 5 {
		t.Fatalf("victim = %+v, want dirty block 5", v)
	}
}

func TestL1ReinsertUpdatesState(t *testing.T) {
	c := NewL1(config.L1Bytes)
	c.Insert(9, Shared)
	v := c.Insert(9, Modified)
	if v.Valid {
		t.Error("reinserting resident block produced a victim")
	}
	if c.Lookup(9) != Modified {
		t.Error("state not upgraded")
	}
}

func TestL1Invalidate(t *testing.T) {
	c := NewL1(config.L1Bytes)
	c.Insert(3, Modified)
	present, dirty := c.Invalidate(3)
	if !present || !dirty {
		t.Errorf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if present, _ := c.Invalidate(3); present {
		t.Error("double invalidate reported presence")
	}
}

func TestL1SetStatePanicsOnAbsent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetState on absent block did not panic")
		}
	}()
	NewL1(config.L1Bytes).SetState(1, Modified)
}

func TestBlockCacheLRU(t *testing.T) {
	// 4-way cache with enough sets; use same-set blocks.
	bc := NewBlockCache(config.BlockCacheBytes, 4)
	sets := memory.Block(config.BlockCacheBytes / config.BlockBytes / 4)
	same := func(i int) memory.Block { return memory.Block(i) * sets }
	for i := 0; i < 4; i++ {
		if v := bc.Insert(same(i), Shared); v.Valid {
			t.Fatalf("eviction while filling way %d", i)
		}
	}
	// Touch block 0 so it becomes MRU; inserting a fifth must evict the
	// LRU (block 1).
	bc.Lookup(same(0))
	v := bc.Insert(same(4), Shared)
	if !v.Valid || v.Block != same(1) {
		t.Fatalf("victim = %+v, want block %d", v, same(1))
	}
	if bc.Probe(same(0)) == Invalid {
		t.Error("MRU block was evicted")
	}
}

func TestBlockCacheProbeDoesNotPromote(t *testing.T) {
	bc := NewBlockCache(config.BlockCacheBytes, 4)
	sets := memory.Block(config.BlockCacheBytes / config.BlockBytes / 4)
	same := func(i int) memory.Block { return memory.Block(i) * sets }
	for i := 0; i < 4; i++ {
		bc.Insert(same(i), Shared)
	}
	bc.Probe(same(0)) // must NOT refresh LRU position
	v := bc.Insert(same(4), Shared)
	if v.Block != same(0) {
		t.Errorf("victim = %d, want the probed-but-not-promoted block %d", v.Block, same(0))
	}
}

func TestBlockCacheInvalidate(t *testing.T) {
	bc := NewBlockCache(config.BlockCacheBytes, 4)
	bc.Insert(7, Modified)
	present, dirty := bc.Invalidate(7)
	if !present || !dirty {
		t.Errorf("invalidate = (%v,%v)", present, dirty)
	}
	if st := bc.Probe(7); st != Invalid {
		t.Error("block survived invalidation")
	}
	// The freed way is reusable without eviction.
	if v := bc.Insert(7, Shared); v.Valid {
		t.Error("insert into freed way evicted")
	}
}

func TestInfiniteBlockCacheNeverEvicts(t *testing.T) {
	bc := NewInfiniteBlockCache()
	if !bc.Infinite() {
		t.Fatal("not infinite")
	}
	for i := 0; i < 100000; i++ {
		if v := bc.Insert(memory.Block(i), Shared); v.Valid {
			t.Fatalf("infinite cache evicted at block %d", i)
		}
	}
	for i := 0; i < 100000; i += 9999 {
		if bc.Lookup(memory.Block(i)) != Shared {
			t.Fatalf("block %d missing", i)
		}
	}
}

func TestBlockCacheAssociativityBound(t *testing.T) {
	// Property: a set never holds more than `ways` blocks — inserting N
	// same-set blocks yields exactly max(0, N-ways) victims.
	f := func(n uint8) bool {
		ways := 4
		bc := NewBlockCache(config.BlockCacheBytes, ways)
		sets := memory.Block(config.BlockCacheBytes / config.BlockBytes / ways)
		victims := 0
		for i := 0; i < int(n); i++ {
			if v := bc.Insert(memory.Block(i)*sets, Shared); v.Valid {
				victims++
			}
		}
		want := int(n) - ways
		if want < 0 {
			want = 0
		}
		return victims == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageCacheLRUEviction(t *testing.T) {
	pc := NewPageCache(3 * config.PageBytes)
	if pc.Capacity() != 3 {
		t.Fatalf("capacity = %d, want 3", pc.Capacity())
	}
	pc.Allocate(1)
	pc.Allocate(2)
	pc.Allocate(3)
	if !pc.Full() {
		t.Fatal("cache of 3 not full after 3 allocations")
	}
	pc.Touch(1) // 1 becomes MRU; LRU is 2
	e := pc.EvictLRU()
	if e.Page != 2 {
		t.Errorf("evicted page %d, want 2", e.Page)
	}
	if pc.Len() != 2 {
		t.Errorf("len = %d, want 2", pc.Len())
	}
}

func TestPageCacheTags(t *testing.T) {
	pc := NewPageCache(config.PageCacheBytes)
	e := pc.Allocate(9)
	e.Valid |= 1 << 5
	e.Dirty |= 1 << 5
	e.Valid |= 1 << 60
	if e.ValidBlocks() != 2 {
		t.Errorf("valid blocks = %d, want 2", e.ValidBlocks())
	}
	if e.DirtyBlocks() != 1 {
		t.Errorf("dirty blocks = %d, want 1", e.DirtyBlocks())
	}
	if got := pc.Entry(9); got != e {
		t.Error("entry lookup mismatch")
	}
	if pc.Entry(10) != nil {
		t.Error("absent page has an entry")
	}
}

func TestPageCacheRemove(t *testing.T) {
	pc := NewPageCache(3 * config.PageBytes)
	pc.Allocate(4)
	pc.Allocate(5)
	if pc.Remove(4) == nil {
		t.Fatal("remove of resident page returned nil")
	}
	if pc.Remove(4) != nil {
		t.Fatal("double remove returned a frame")
	}
	if pc.Full() {
		t.Error("cache full after removal")
	}
	// LRU list stays consistent after removal.
	pc.Allocate(6)
	pc.Allocate(7)
	if e := pc.EvictLRU(); e.Page != 5 {
		t.Errorf("LRU = %d, want 5", e.Page)
	}
}

func TestInfinitePageCache(t *testing.T) {
	pc := NewPageCache(0)
	if !pc.Infinite() {
		t.Fatal("capacity 0 not infinite")
	}
	for i := 0; i < 10000; i++ {
		if pc.Full() {
			t.Fatal("infinite page cache reported full")
		}
		pc.Allocate(memory.Page(i))
	}
	if pc.Len() != 10000 {
		t.Errorf("len = %d", pc.Len())
	}
}

func TestPageCacheDoubleAllocatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("double allocate did not panic")
		}
	}()
	pc := NewPageCache(config.PageCacheBytes)
	pc.Allocate(1)
	pc.Allocate(1)
}

func TestPageCacheLRUOrderProperty(t *testing.T) {
	// Property: after any touch sequence, evictions come out in
	// least-recently-used order (verified against a reference model).
	f := func(touches []uint8) bool {
		const pages = 8
		pc := NewPageCache(pages * config.PageBytes)
		var ref []memory.Page // front = LRU, back = MRU
		for i := 0; i < pages; i++ {
			pc.Allocate(memory.Page(i))
			ref = append(ref, memory.Page(i))
		}
		for _, raw := range touches {
			p := memory.Page(raw % pages)
			pc.Touch(p)
			for i, q := range ref {
				if q == p {
					ref = append(append(ref[:i], ref[i+1:]...), p)
					break
				}
			}
		}
		for len(ref) > 0 {
			e := pc.EvictLRU()
			if e == nil || e.Page != ref[0] {
				return false
			}
			ref = ref[1:]
		}
		return pc.EvictLRU() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
