package bench

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
)

// runTrace replays one of the fault benchmark traces and returns its
// statistics.
func runTrace(t *testing.T, name string, spec dsm.Spec) *stats.Sim {
	t.Helper()
	faultOnce.Do(buildFaultTraces)
	cl := config.DefaultCluster()
	var trc = coldTr
	switch name {
	case "cold":
		trc = coldTr
	case "coherence":
		trc = coherTr
	case "capacity":
		trc = capTr
	default:
		t.Fatalf("unknown trace %q", name)
	}
	if err := trc.Validate(); err != nil {
		t.Fatalf("trace %s invalid: %v", name, err)
	}
	sim, err := dsm.RunWithOptions(trc, spec, cl, config.Default(), config.DefaultThresholds(),
		dsm.RunOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestFaultTracesDriveIntendedMissClasses pins the benchmark traces to
// their advertised miss profiles: each fault-path benchmark must
// actually spend its remote misses in the class it is named for,
// otherwise the BENCH baselines measure the wrong path.
func TestFaultTracesDriveIntendedMissClasses(t *testing.T) {
	cold := runTrace(t, "cold", dsm.CCNUMA())
	if c, tot := cold.RemoteMissesByClass(stats.Cold), cold.TotalRemoteMisses(); tot == 0 || c*10 < tot*9 {
		t.Errorf("cold trace: %d/%d remote misses cold, want >= 90%%", c, tot)
	}

	coher := runTrace(t, "coherence", dsm.CCNUMA())
	if c, tot := coher.RemoteMissesByClass(stats.Coherence), coher.TotalRemoteMisses(); tot == 0 || c*2 < tot {
		t.Errorf("coherence trace: %d/%d remote misses coherence, want majority", c, tot)
	}

	capa := runTrace(t, "capacity", dsm.CCNUMA())
	if c, tot := capa.RemoteMissesByClass(stats.CapacityConflict), capa.TotalRemoteMisses(); tot == 0 || c*2 < tot {
		t.Errorf("capacity trace: %d/%d remote misses capacity/conflict, want majority", c, tot)
	}

	// The S-COMA variant must actually exercise the relocation and
	// replacement machinery of the pageop layer.
	spec := dsm.RNUMA()
	spec.PageCacheBytes = 8 * config.PageBytes
	scoma := runTrace(t, "capacity", spec)
	if scoma.PageOpsByKind(stats.Relocation) == 0 || scoma.PageOpsByKind(stats.Replacement) == 0 {
		t.Errorf("scoma trace: relocations=%d replacements=%d, want both > 0",
			scoma.PageOpsByKind(stats.Relocation), scoma.PageOpsByKind(stats.Replacement))
	}
}
