package bench

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/harness"
	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

// serveLoad sizing: each iteration drives one complete mixed hot/cold
// load run — loadConcurrency clients issuing loadRequests queries drawn
// from a pool of loadDistinct distinct seeds. The server is rebuilt per
// iteration (empty result cache) while the trace cache is shared, so
// every iteration pays loadDistinct genuine cold simulations and serves
// the rest from the memoization and coalescing layers: the steady
// mixed-traffic profile the serving stack exists for.
const (
	loadRequests    = 2000
	loadConcurrency = 1000
	loadDistinct    = 8
	loadScale       = 64
)

// ServeLoad measures the query server end to end over real HTTP: QPS,
// p50/p99 latency and cache hit rate under loadConcurrency concurrent
// clients. Unguarded — the numbers characterize the serving stack's
// throughput, not a per-op allocation budget.
func ServeLoad(b *testing.B) {
	queries := make([]harness.Query, loadDistinct)
	for i := range queries {
		queries[i] = harness.Query{
			Experiment: "fig5",
			Apps:       []string{"radix"},
			Systems:    []string{"ccnuma"},
			Scale:      loadScale,
			Seed:       uint64(i + 1),
		}.Normalize()
		if err := queries[i].Validate(); err != nil {
			b.Fatal(err)
		}
	}
	traces := harness.NewTraceCache() // shared: iterations re-simulate, not re-generate

	var report loadtest.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := serve.New(serve.Config{
			CacheEntries: loadDistinct,
			QueueDepth:   loadRequests,
			Traces:       traces,
			Commit:       "bench",
		})
		ts := httptest.NewServer(srv)
		r, err := loadtest.Run(context.Background(), loadtest.Options{
			BaseURL:     ts.URL,
			Queries:     queries,
			Requests:    loadRequests,
			Concurrency: loadConcurrency,
		})
		ts.Close()
		srv.Drain()
		if err != nil {
			b.Fatal(err)
		}
		if r.Errors > 0 || r.Rejected > 0 {
			b.Fatalf("load run: %d errors, %d rejected of %d requests", r.Errors, r.Rejected, r.Requests)
		}
		report = r
	}
	b.ReportMetric(report.QPS, "load-qps")
	b.ReportMetric(report.P50ms, "load-p50-ms")
	b.ReportMetric(report.P99ms, "load-p99-ms")
	b.ReportMetric(report.HitRate, "load-hit-rate")
}
