// Package bench holds the simulator's hot-path benchmark bodies in an
// importable form: bench_test.go at the repo root wraps them for `go
// test -bench`, cmd/benchreport runs them via testing.Benchmark to emit
// the committed BENCH_*.json trajectory files, and the allocation-
// regression guard re-runs the guarded subset against the committed
// baseline.
//
// The cases cover the layers the performance work touches: cache probes
// (block cache, infinite block cache, page cache), the DSM fault path
// broken out by miss class (cold, coherence, capacity/conflict, and the
// S-COMA relocation/replacement path), engine dispatch, trace streaming
// in both memory layouts (the live columnar form vs the retired
// array-of-structs baseline), trace materialization cold (generator)
// vs warm (on-disk store), and the macrobenchmarks: the full Figure 5
// sweep, the scale-32 rung of the scale sweep, and the query server
// under concurrent mixed hot/cold load (ServeLoad).
package bench

import (
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/memory"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

// Case is one named benchmark body.
type Case struct {
	Name string
	// Bench is the benchmark body, runnable by testing.Benchmark or
	// under a b.Run wrapper.
	Bench func(b *testing.B)
	// Guarded marks the case as part of the allocation-regression
	// guard: its allocs/op is compared against the committed baseline.
	Guarded bool
	// Macro marks the whole-system macrobenchmarks (full sweeps, the
	// serving stack under load) that cmd/benchreport -micro skips; the
	// sweep macros report the sim-cycles metric used to derive
	// simulated-cycles-per-second.
	Macro bool
}

// Cases returns every benchmark case in reporting order.
func Cases() []Case {
	return []Case{
		{Name: "CacheProbeBlock", Bench: CacheProbeBlock, Guarded: true},
		{Name: "CacheProbeInfinite", Bench: CacheProbeInfinite, Guarded: true},
		{Name: "CacheProbePage", Bench: CacheProbePage, Guarded: true},
		{Name: "EngineDispatch", Bench: EngineDispatch, Guarded: true},
		{Name: "FaultPathCold", Bench: FaultPathCold, Guarded: true},
		{Name: "FaultPathCoherence", Bench: FaultPathCoherence, Guarded: true},
		{Name: "FaultPathCapacity", Bench: FaultPathCapacity, Guarded: true},
		{Name: "FaultPathSCOMA", Bench: FaultPathSCOMA, Guarded: true},
		{Name: "TraceReplaySoA", Bench: TraceReplaySoA, Guarded: true},
		{Name: "TraceReplayAoS", Bench: TraceReplayAoS, Guarded: true},
		{Name: "StoreGenerateCold", Bench: StoreGenerateCold},
		{Name: "StoreMaterializeWarm", Bench: StoreMaterializeWarm},
		{Name: "Fig5Sweep", Bench: Fig5Sweep, Guarded: true, Macro: true},
		{Name: "Fig5SweepTelemetry", Bench: Fig5SweepTelemetry, Guarded: true, Macro: true},
		{Name: "ScaleSweep32", Bench: ScaleSweep32, Macro: true},
		{Name: "ScaleSweepPDES", Bench: ScaleSweepPDES, Guarded: true, Macro: true},
		{Name: "ScaleSweepPDESSeq", Bench: ScaleSweepPDESSeq, Macro: true},
		{Name: "ServeLoad", Bench: ServeLoad, Macro: true},
	}
}

// lcg advances a 64-bit linear congruential generator; the top bits feed
// the probe streams so every run probes the same pseudo-random sequence.
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// CacheProbeBlock probes the finite set-associative block cache with a
// pseudo-random block stream twice the cache's capacity, mixing hits,
// misses and inserts — the per-access pattern of the CC-NUMA fill path.
func CacheProbeBlock(b *testing.B) {
	c := cache.NewBlockCache(config.BlockCacheBytes, config.BlockCacheWays)
	span := uint64(2 * config.BlockCacheBytes / config.BlockBytes)
	x := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = lcg(x)
		blk := memory.Block((x >> 33) % span)
		if c.Lookup(blk) == cache.Invalid {
			c.Insert(blk, cache.Shared)
		}
	}
}

// CacheProbeInfinite probes the unbounded block cache of the
// perfect-CC-NUMA baseline, presized to the footprint like the machine
// builds it.
func CacheProbeInfinite(b *testing.B) {
	const blocks = 1 << 16
	c := cache.NewInfiniteBlockCacheSized(blocks)
	x := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = lcg(x)
		blk := memory.Block((x >> 33) % blocks)
		if c.Lookup(blk) == cache.Invalid {
			c.Insert(blk, cache.Shared)
		}
	}
}

// CacheProbePage drives the S-COMA page cache through its steady-state
// replacement cycle: touch, miss, evict LRU, allocate — the sequence the
// R-NUMA relocation path performs once the cache is warm.
func CacheProbePage(b *testing.B) {
	const capacity, span = 16, 64
	c := cache.NewPageCacheSized(capacity*config.PageBytes, span)
	x := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = lcg(x)
		p := memory.Page((x >> 33) % span)
		if c.Touch(p) != nil {
			continue
		}
		if c.Full() {
			c.EvictLRU()
		}
		c.Allocate(p)
	}
}

// EngineDispatch measures the scheduler's in-place dispatch cycle (peek,
// advance, requeue) over the default cluster's CPU population — one such
// cycle runs per trace op.
func EngineDispatch(b *testing.B) {
	s := engine.NewScheduler(config.DefaultCluster().TotalCPUs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := s.Peek()
		c.Clock += int64(i%7) + 1
		s.Requeue(c)
	}
}

// ---------------------------------------------------------------------
// Fault-path benchmarks: each replays a synthetic trace engineered to
// drive the DSM fault path through one miss class. One benchmark
// iteration is a full replay; the trace-ops metric gives the per-op
// scale.

// faultTrace builds a trace in which CPU 0 first-touches pages [0, P)
// before the parallel phase (homing them at node 0), re-touches them
// right after the phase marker so later touchers do not re-home them,
// and then every CPU runs the per-CPU measure stream.
func faultTrace(name string, pages int, cl config.Cluster, measure func(r *trace.Recorder, cpu int)) *trace.Trace {
	cpus := cl.TotalCPUs()
	tr := &trace.Trace{
		Name:      name,
		CPUs:      make([]trace.Stream, cpus),
		Barriers:  2,
		Footprint: uint64(pages) * config.PageBytes,
	}
	for c := 0; c < cpus; c++ {
		r := trace.NewRecorder()
		if c == 0 {
			for p := 0; p < pages; p++ {
				r.Access(memory.Page(p).Addr(), false)
			}
		}
		r.Barrier(0)
		r.Phase()
		if c == 0 {
			// Claim post-phase first touch so the measure streams below
			// see remote pages, not first-touch re-homing.
			for p := 0; p < pages; p++ {
				r.Access(memory.Page(p).Addr(), false)
			}
		}
		r.Barrier(1)
		measure(r, c)
		tr.CPUs[c] = r.Finish()
	}
	return tr
}

// touchRange reads every block of pages [lo, hi).
func touchRange(r *trace.Recorder, lo, hi int) {
	for p := lo; p < hi; p++ {
		for blk := 0; blk < config.BlocksPerPage; blk++ {
			a := memory.Page(p).Addr() + memory.Addr(blk*config.BlockBytes)
			r.Access(a, false)
		}
	}
}

var (
	faultOnce sync.Once
	coldTr    *trace.Trace
	coherTr   *trace.Trace
	capTr     *trace.Trace
)

func buildFaultTraces() {
	cl := config.DefaultCluster()
	cpus := cl.TotalCPUs()

	// Cold: every CPU reads a private span of remote blocks exactly
	// once — all measured misses are cold remote misses (plus the soft
	// page faults that map the pages).
	const coldPerCPU = 8
	coldTr = faultTrace("bench-cold", coldPerCPU*cpus, cl, func(r *trace.Recorder, cpu int) {
		touchRange(r, cpu*coldPerCPU, (cpu+1)*coldPerCPU)
	})

	// Coherence: one CPU on each of two distinct nodes write-ping-pongs
	// over a small shared span; every refetch follows an invalidation.
	const sharedPages, rounds = 4, 8
	coherTr = faultTrace("bench-coherence", sharedPages, cl, func(r *trace.Recorder, cpu int) {
		if cpu != 0 && cpu != cl.CPUsPerNode {
			return
		}
		for round := 0; round < rounds; round++ {
			for p := 0; p < sharedPages; p++ {
				for blk := 0; blk < config.BlocksPerPage; blk++ {
					a := memory.Page(p).Addr() + memory.Addr(blk*config.BlockBytes)
					r.Access(a, true)
				}
			}
		}
	})

	// Capacity/conflict: every CPU sweeps a private remote span larger
	// than its share of the node's caches, several times — after the
	// first sweep every miss is a capacity/conflict refetch.
	const capPerCPU, sweeps = 16, 4
	capTr = faultTrace("bench-capacity", capPerCPU*cpus, cl, func(r *trace.Recorder, cpu int) {
		for s := 0; s < sweeps; s++ {
			touchRange(r, cpu*capPerCPU, (cpu+1)*capPerCPU)
		}
	})
}

// faultRun replays the trace on the spec and reports per-replay metrics.
func faultRun(b *testing.B, tr *trace.Trace, spec dsm.Spec) {
	cl := config.DefaultCluster()
	tm, th := config.Default(), config.DefaultThresholds()
	b.ReportAllocs()
	b.ResetTimer()
	var last int64
	for i := 0; i < b.N; i++ {
		sim, err := dsm.Run(tr, spec, cl, tm, th)
		if err != nil {
			b.Fatal(err)
		}
		last = sim.ExecCycles
	}
	b.ReportMetric(float64(tr.Ops()), "trace-ops")
	b.ReportMetric(float64(last), "sim-cycles")
}

// FaultPathCold measures the fault path on cold remote misses (plus the
// soft page faults that establish mappings) under CC-NUMA.
func FaultPathCold(b *testing.B) {
	faultOnce.Do(buildFaultTraces)
	faultRun(b, coldTr, dsm.CCNUMA())
}

// FaultPathCoherence measures the fault path on invalidation-driven
// coherence misses (dirty remote fetches and upgrades) under CC-NUMA.
func FaultPathCoherence(b *testing.B) {
	faultOnce.Do(buildFaultTraces)
	faultRun(b, coherTr, dsm.CCNUMA())
}

// FaultPathCapacity measures the fault path on capacity/conflict
// refetches under CC-NUMA.
func FaultPathCapacity(b *testing.B) {
	faultOnce.Do(buildFaultTraces)
	faultRun(b, capTr, dsm.CCNUMA())
}

// FaultPathSCOMA measures the R-NUMA relocation path on the capacity
// workload with a deliberately tiny page cache, so relocations and
// frame replacements (the pageop layer) dominate.
func FaultPathSCOMA(b *testing.B) {
	faultOnce.Do(buildFaultTraces)
	spec := dsm.RNUMA()
	spec.PageCacheBytes = 8 * config.PageBytes
	faultRun(b, capTr, spec)
}

// ---------------------------------------------------------------------
// Trace streaming benchmarks: the replay engine's per-op consumption
// pattern, isolated from protocol work, in both memory layouts.

// streamSink keeps the streaming loops from being optimized away.
var streamSink uint64

// The two TraceReplay benchmarks perform identical dispatch-shaped
// per-op work — load the kind, steer a switch on it, fold the gap into
// a running clock and consume the arg — which is what Machine.Execute
// does before protocol work begins. Only the memory layout differs.

// TraceReplaySoA streams the capacity trace through its columnar form:
// three dense per-CPU arrays, as Machine.Execute consumes them. One
// iteration walks every op of every CPU; the trace-ops metric gives the
// per-op scale.
func TraceReplaySoA(b *testing.B) {
	faultOnce.Do(buildFaultTraces)
	tr := capTr
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		var clock uint64
		for c := range tr.CPUs {
			s := &tr.CPUs[c]
			kinds := s.Kinds
			gaps := s.Gaps[:len(kinds)]
			args := s.Args[:len(kinds)]
			for j, k := range kinds {
				clock += uint64(gaps[j])
				arg := args[j]
				switch k {
				case trace.Read, trace.Write:
					sink += arg ^ clock
				case trace.Barrier, trace.Lock, trace.Unlock:
					sink += arg + clock
				default:
					sink += clock
				}
			}
		}
	}
	streamSink = sink
	b.ReportMetric(float64(tr.Ops()), "trace-ops")
}

// TraceReplayAoS is the pre-columnar baseline: the same dispatch-shaped
// work striding a per-CPU []trace.Op (16-byte padded structs). The AoS
// slices are materialized outside the timed region. Kept so the layout
// comparison (SoA must not be slower) stays measurable after the AoS
// representation left the replay path.
func TraceReplayAoS(b *testing.B) {
	faultOnce.Do(buildFaultTraces)
	tr := capTr
	aos := make([][]trace.Op, len(tr.CPUs))
	for c := range tr.CPUs {
		aos[c] = tr.CPUs[c].Ops()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		var clock uint64
		for _, ops := range aos {
			for j := range ops {
				op := &ops[j]
				clock += uint64(op.Gap)
				arg := op.Arg
				switch op.Kind {
				case trace.Read, trace.Write:
					sink += arg ^ clock
				case trace.Barrier, trace.Lock, trace.Unlock:
					sink += arg + clock
				default:
					sink += clock
				}
			}
		}
	}
	streamSink = sink
	b.ReportMetric(float64(tr.Ops()), "trace-ops")
}

// ---------------------------------------------------------------------
// Trace store benchmarks: cold generation vs warm disk materialization
// of the same workload, at the same scale the Figure 5 macrobenchmark
// replays. Their ns/op ratio is the speedup a warm store buys every
// repeat run.

// storeBenchApp is the workload both store benchmarks materialize. fmm
// is the most generation-heavy of the paper's seven per emitted op (the
// generator really evaluates multipole interactions), which is exactly
// the shape of workload the store exists for; decode cost per op is
// layout-bound and app-independent, so other apps differ mainly in how
// much generation work the warm path skips.
const storeBenchApp = "fmm"

// storeBenchParams sizes the store benchmarks to the macro scale.
func storeBenchParams() apps.Params {
	return apps.Params{CPUs: config.DefaultCluster().TotalCPUs(), Scale: fig5Scale}
}

// StoreGenerateCold measures generating the workload from scratch —
// the cost every run of every worker paid before the trace store.
func StoreGenerateCold(b *testing.B) {
	info, err := apps.ByName(storeBenchApp)
	if err != nil {
		b.Fatal(err)
	}
	p := storeBenchParams()
	b.ReportAllocs()
	b.ResetTimer()
	var ops int
	for i := 0; i < b.N; i++ {
		tr, err := info.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		ops = tr.Ops()
	}
	b.ReportMetric(float64(ops), "trace-ops")
}

// StoreMaterializeWarm measures the same workload materialized from a
// warm on-disk store: one Load (read + checksum + columnar decode) per
// iteration.
func StoreMaterializeWarm(b *testing.B) {
	info, err := apps.ByName(storeBenchApp)
	if err != nil {
		b.Fatal(err)
	}
	p := storeBenchParams()
	dir, err := os.MkdirTemp("", "tracestore-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	key := store.Key{App: info.Name, CPUs: p.CPUs, Scale: p.Scale, Seed: p.Seed}
	tr, err := info.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Save(key, tr); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ops int
	for i := 0; i < b.N; i++ {
		got, ok := st.Load(key)
		if !ok {
			b.Fatal("warm store missed")
		}
		ops = got.Ops()
	}
	b.ReportMetric(float64(ops), "trace-ops")
}

// ---------------------------------------------------------------------
// Macrobenchmark.

// fig5Scale matches benchScale in bench_test.go: one sweep iteration in
// the hundreds of milliseconds.
const fig5Scale = 8

// Fig5Sweep regenerates the paper's Figure 5 comparison (all base
// systems over the seven applications) at the benchmark scale, sharing
// generated traces across iterations via a TraceCache so the metric is
// simulator throughput, not workload generation. The sim-cycles metric
// is the total simulated cycles of one sweep; dividing it by seconds
// per iteration gives simulated-cycles-per-second.
func Fig5Sweep(b *testing.B) {
	traces := harness.NewTraceCache()
	var cycles int64
	run := func() {
		r, err := harness.Fig5(harness.Options{
			Scale: fig5Scale, Parallel: 4, Traces: traces, Out: io.Discard,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = 0
		for _, app := range r.AppOrder {
			for _, sys := range r.Systems {
				if run := r.Runs[app][sys]; run != nil {
					cycles += run.Stats.ExecCycles
				}
			}
		}
	}
	run() // warm the trace cache outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// Fig5SweepTelemetry is Fig5Sweep with time-resolved telemetry fully on
// (windowed series plus the event timeline) — the committed baseline
// pair pins the observability overhead: this case against Fig5Sweep is
// the "<10% slower with telemetry" budget, checked directly by
// TestTelemetryOverheadBudget.
func Fig5SweepTelemetry(b *testing.B) {
	traces := harness.NewTraceCache()
	var cycles int64
	run := func() {
		r, err := harness.Fig5(harness.Options{
			Scale: fig5Scale, Parallel: 4, Traces: traces, Out: io.Discard,
			Telemetry: &harness.TelemetryOptions{Timeline: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = 0
		for _, app := range r.AppOrder {
			for _, sys := range r.Systems {
				if run := r.Runs[app][sys]; run != nil {
					cycles += run.Stats.ExecCycles
				}
			}
		}
	}
	run() // warm the trace cache outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// ScaleSweep32 runs the scale-sweep experiment at problem scale 32 (all
// Figure 5 systems over the seven applications), the mid rung of the
// default 8..64 ladder — the macro answer to "how fast can we sweep a
// scenario end to end". Traces are shared across iterations like
// Fig5Sweep, so the metric is simulator throughput.
func ScaleSweep32(b *testing.B) {
	traces := harness.NewTraceCache()
	var cycles int64
	run := func() {
		r, err := harness.ScaleSweep(harness.Options{
			Scales: []int{32}, Parallel: 4, Traces: traces, Out: io.Discard,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = 0
		for _, app := range r.AppOrder {
			for _, sys := range r.Systems {
				if run := r.Runs[app][sys]; run != nil {
					cycles += run.Stats.ExecCycles
				}
			}
		}
	}
	run() // warm the trace cache outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// pdesSweepScales is the scale ladder of the PDES macrobenchmark pair:
// the two rungs past the default ladder's end, where the open item is
// pushing the sweep. The problems are small (scale is a divisor), so
// the pair measures the engine's coordination economics — how much of
// a run the commutativity window actually parallelizes once per-op
// work stops amortizing the round structure — rather than peak speedup.
func pdesSweepScales() []int { return []int{256, 1024} }

// pdesSweep runs one audited scalesweep over pdesSweepScales on the
// given shard count and returns the summed simulated cycles.
func pdesSweep(b *testing.B, traces *harness.TraceCache, shards int) int64 {
	r, err := harness.ScaleSweep(harness.Options{
		Scales: pdesSweepScales(), Parallel: 4, Shards: shards,
		Audit: true, Traces: traces, Out: io.Discard,
	})
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for _, app := range r.AppOrder {
		for _, sys := range r.Systems {
			if run := r.Runs[app][sys]; run != nil {
				cycles += run.Stats.ExecCycles
			}
		}
	}
	return cycles
}

// ScaleSweepPDES runs the scale-256/1024 rungs of the scale sweep on
// the sharded conservative-PDES engine (4 shards, audits on), the
// committed evidence that the parallel engine completes an audit-clean
// sweep past the default ladder. The speedup-vs-seq metric is the
// wall-time ratio of the sequential twin (ScaleSweepPDESSeq) to this
// case, measured back-to-back on warm traces; values below 1 mean the
// conservative rounds cost more than the admitted parallelism repays
// at these problem sizes.
func ScaleSweepPDES(b *testing.B) {
	traces := harness.NewTraceCache()
	pdesSweep(b, traces, 4) // warm the trace cache outside the timed region
	seqStart := time.Now()
	pdesSweep(b, traces, 0)
	seqWall := time.Since(seqStart)
	shardStart := time.Now()
	pdesSweep(b, traces, 4)
	shardWall := time.Since(shardStart)
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles = pdesSweep(b, traces, 4)
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
	if shardWall > 0 {
		b.ReportMetric(float64(seqWall)/float64(shardWall), "speedup-vs-seq")
	}
}

// ScaleSweepPDESSeq is the sequential twin of ScaleSweepPDES: the same
// audited scale-256/1024 sweep on the sequential engine, so the pair's
// ns/op ratio in the committed BENCH trajectory is the PDES speedup on
// this hardware.
func ScaleSweepPDESSeq(b *testing.B) {
	traces := harness.NewTraceCache()
	pdesSweep(b, traces, 0) // warm the trace cache outside the timed region
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles = pdesSweep(b, traces, 0)
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}
