package memory

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func TestAddrDecomposition(t *testing.T) {
	a := Addr(config.PageBytes + 3*config.BlockBytes + 5)
	if a.Page() != 1 {
		t.Errorf("page = %d, want 1", a.Page())
	}
	if a.Block() != Block(config.BlocksPerPage+3) {
		t.Errorf("block = %d, want %d", a.Block(), config.BlocksPerPage+3)
	}
	if a.Block().Page() != 1 {
		t.Errorf("block.Page = %d, want 1", a.Block().Page())
	}
	if a.Block().Index() != 3 {
		t.Errorf("block index = %d, want 3", a.Block().Index())
	}
}

func TestAddrBlockPageConsistency(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		b := a.Block()
		p := a.Page()
		return b.Page() == p &&
			b.Addr() <= a && a < b.Addr()+config.BlockBytes &&
			p.Addr() <= a && a < p.Addr()+config.PageBytes &&
			p.FirstBlock()+Block(b.Index()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocatorPageAlignment(t *testing.T) {
	al := NewAllocator()
	r1 := al.Alloc("a", 100)
	r2 := al.Alloc("b", config.PageBytes+1)
	if r1.Start%config.PageBytes != 0 || r2.Start%config.PageBytes != 0 {
		t.Error("allocations not page aligned")
	}
	if r1.Size != config.PageBytes {
		t.Errorf("100 bytes rounded to %d, want one page", r1.Size)
	}
	if r2.Size != 2*config.PageBytes {
		t.Errorf("page+1 rounded to %d, want two pages", r2.Size)
	}
	if al.Pages() != 3 {
		t.Errorf("total pages = %d, want 3", al.Pages())
	}
}

func TestAllocatorDisjoint(t *testing.T) {
	f := func(sizes []uint16) bool {
		al := NewAllocator()
		var regs []Region
		for _, s := range sizes {
			regs = append(regs, al.Alloc("r", uint64(s)))
		}
		for i := range regs {
			for j := i + 1; j < len(regs); j++ {
				a, b := regs[i], regs[j]
				if a.Start < b.Start+Addr(b.Size) && b.Start < a.Start+Addr(a.Size) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRegionOf(t *testing.T) {
	al := NewAllocator()
	a := al.Alloc("alpha", 4096)
	b := al.Alloc("beta", 8192)
	if r, ok := al.RegionOf(a.Start + 10); !ok || r.Name != "alpha" {
		t.Error("address in alpha not found")
	}
	if r, ok := al.RegionOf(b.Start + 5000); !ok || r.Name != "beta" {
		t.Error("address in beta not found")
	}
	if _, ok := al.RegionOf(b.Start + Addr(b.Size)); ok {
		t.Error("address past the heap resolved to a region")
	}
}

func TestFirstTouch(t *testing.T) {
	pt := NewPageTable(8)
	if home := pt.FirstTouch(5, 3); home != 3 {
		t.Errorf("first touch home = %d, want 3", home)
	}
	// Second toucher does not move the page.
	if home := pt.FirstTouch(5, 6); home != 3 {
		t.Errorf("second touch moved home to %d", home)
	}
	if pt.Entry(5).Mode[3] != ModeHome {
		t.Error("home node mode not set")
	}
}

func TestSetHome(t *testing.T) {
	pt := NewPageTable(4)
	pt.FirstTouch(2, 0)
	pt.SetHome(2, 3)
	e := pt.Entry(2)
	if e.Home != 3 {
		t.Errorf("home = %d, want 3", e.Home)
	}
	if e.Mode[0] != ModeUnmapped {
		t.Errorf("old home mode = %v, want unmapped", e.Mode[0])
	}
	if e.Mode[3] != ModeHome {
		t.Errorf("new home mode = %v, want home", e.Mode[3])
	}
}

func TestPoisonBits(t *testing.T) {
	pt := NewPageTable(2)
	pt.PoisonAll(7)
	for i := 0; i < config.BlocksPerPage; i++ {
		if !pt.IsPoisoned(7, i) {
			t.Fatalf("block %d not poisoned", i)
		}
	}
	pt.Unpoison(7, 10)
	if pt.IsPoisoned(7, 10) {
		t.Error("block 10 still poisoned")
	}
	if !pt.IsPoisoned(7, 11) {
		t.Error("block 11 lost its poison bit")
	}
	pt.ClearPoison(7)
	for i := 0; i < config.BlocksPerPage; i++ {
		if pt.IsPoisoned(7, i) {
			t.Fatalf("block %d poisoned after clear", i)
		}
	}
}

func TestPageTableGrowsLazily(t *testing.T) {
	pt := NewPageTable(2)
	if pt.NumPages() != 0 {
		t.Error("fresh table not empty")
	}
	pt.Entry(99)
	if pt.NumPages() != 100 {
		t.Errorf("table covers %d pages, want 100", pt.NumPages())
	}
	if pt.Entry(50).Home != -1 {
		t.Error("untouched page has a home")
	}
}

func TestPageModeString(t *testing.T) {
	modes := map[PageMode]string{
		ModeUnmapped: "unmapped", ModeCCNUMA: "ccnuma", ModeSCOMA: "scoma",
		ModeReplica: "replica", ModeHome: "home",
	}
	for m, want := range modes {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}
