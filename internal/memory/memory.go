// Package memory models the global shared address space of the DSM
// cluster: a bump allocator applications allocate shared data from, and a
// page table that tracks, for every page, its home node, its caching mode
// on every node, replication state, and the poison bits used by lazy TLB
// invalidation during page gathering.
package memory

import (
	"fmt"

	"repro/internal/config"
)

// Addr is a byte address in the global shared address space.
type Addr uint64

// Block returns the global block number containing a.
func (a Addr) Block() Block { return Block(a >> config.BlockShift) }

// Page returns the global page number containing a.
func (a Addr) Page() Page { return Page(a >> config.PageShift) }

// Block is a global coherence-block number.
type Block uint64

// Page returns the page containing the block.
func (b Block) Page() Page { return Page(b >> (config.PageShift - config.BlockShift)) }

// Index returns the block's index within its page (0..BlocksPerPage-1).
func (b Block) Index() int { return int(b) & (config.BlocksPerPage - 1) }

// Addr returns the first byte address of the block.
func (b Block) Addr() Addr { return Addr(b << config.BlockShift) }

// Page is a global page number.
type Page uint64

// FirstBlock returns the first block of the page.
func (p Page) FirstBlock() Block {
	return Block(p << (config.PageShift - config.BlockShift))
}

// Addr returns the first byte address of the page.
func (p Page) Addr() Addr { return Addr(p << config.PageShift) }

// Allocator is a page-aligned bump allocator over the shared address
// space. Allocations never overlap and are stable for a given sequence of
// calls, so traces are reproducible.
type Allocator struct {
	next Addr
	regs []Region
}

// Region records one named allocation.
type Region struct {
	Name  string
	Start Addr
	Size  uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Start && uint64(a-r.Start) < r.Size
}

// NewAllocator returns an empty allocator starting at address 0.
func NewAllocator() *Allocator { return &Allocator{} }

// Alloc reserves size bytes, rounded up to a whole number of pages, and
// returns the region. Page alignment guarantees distinct data structures
// never share a page, matching how SPLASH-2 codes pad shared arrays.
func (al *Allocator) Alloc(name string, size uint64) Region {
	if size == 0 {
		size = 1
	}
	rounded := (size + config.PageBytes - 1) &^ uint64(config.PageBytes-1)
	r := Region{Name: name, Start: al.next, Size: rounded}
	al.next += Addr(rounded)
	al.regs = append(al.regs, r)
	return r
}

// Pages returns the total number of pages allocated so far.
func (al *Allocator) Pages() uint64 { return uint64(al.next) >> config.PageShift }

// Bytes returns the total bytes allocated so far.
func (al *Allocator) Bytes() uint64 { return uint64(al.next) }

// Regions returns the allocation list in order.
func (al *Allocator) Regions() []Region { return al.regs }

// RegionOf returns the region containing a, if any.
func (al *Allocator) RegionOf(a Addr) (Region, bool) {
	for _, r := range al.regs {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}

// PageMode is how a node currently caches a given page.
type PageMode uint8

const (
	// ModeUnmapped means the node has not touched the page.
	ModeUnmapped PageMode = iota
	// ModeCCNUMA means remote blocks are cached in processor/block
	// caches only.
	ModeCCNUMA
	// ModeSCOMA means the node holds the page in its S-COMA page cache.
	ModeSCOMA
	// ModeReplica means the node holds a read-only replica in its local
	// memory.
	ModeReplica
	// ModeHome means the page's home is this node (local memory).
	ModeHome
)

// String names the mode.
func (m PageMode) String() string {
	switch m {
	case ModeUnmapped:
		return "unmapped"
	case ModeCCNUMA:
		return "ccnuma"
	case ModeSCOMA:
		return "scoma"
	case ModeReplica:
		return "replica"
	case ModeHome:
		return "home"
	default:
		return fmt.Sprintf("PageMode(%d)", int(m))
	}
}

// PageInfo is the page table entry for one global page.
type PageInfo struct {
	// Home is the page's current home node, or -1 before first touch.
	Home int

	// Replicated marks the page as read-only replicated; writes fault.
	Replicated bool

	// Poisoned marks blocks as poisoned during a page gather, forcing
	// lazy TLB invalidation on next access. Bit i covers block i.
	Poisoned uint64

	// Mode is the per-node caching mode.
	Mode []PageMode

	// Touched reports whether any access has reached the page (first-
	// touch placement has run).
	Touched bool
}

// PageTable is the global page table. It is sized lazily as pages are
// touched.
type PageTable struct {
	nodes int
	pages []PageInfo
}

// NewPageTable returns a page table for a cluster with the given node
// count.
func NewPageTable(nodes int) *PageTable {
	return &PageTable{nodes: nodes}
}

// grow ensures the table covers page p.
func (pt *PageTable) grow(p Page) {
	for uint64(len(pt.pages)) <= uint64(p) {
		pi := PageInfo{Home: -1, Mode: make([]PageMode, pt.nodes)}
		pt.pages = append(pt.pages, pi)
	}
}

// Presize extends the table to cover pages [0, n), sharing one backing
// allocation across the per-node mode vectors. Replay machines know the
// trace footprint up front, so presizing makes Entry allocation-free on
// the access path.
func (pt *PageTable) Presize(n int) {
	if n <= len(pt.pages) {
		return
	}
	fresh := n - len(pt.pages)
	modes := make([]PageMode, fresh*pt.nodes)
	for i := 0; i < fresh; i++ {
		pt.pages = append(pt.pages, PageInfo{
			Home: -1,
			Mode: modes[i*pt.nodes : (i+1)*pt.nodes : (i+1)*pt.nodes],
		})
	}
}

// Entry returns a pointer to the page's entry, creating it if needed.
func (pt *PageTable) Entry(p Page) *PageInfo {
	pt.grow(p)
	return &pt.pages[p]
}

// NumPages returns how many pages the table currently covers.
func (pt *PageTable) NumPages() int { return len(pt.pages) }

// Nodes returns the node count the table was built for.
func (pt *PageTable) Nodes() int { return pt.nodes }

// FirstTouch applies first-touch placement: if the page has no home yet,
// the toucher's node becomes the home. It returns the (possibly new)
// home node.
func (pt *PageTable) FirstTouch(p Page, node int) int {
	e := pt.Entry(p)
	if !e.Touched {
		e.Touched = true
		e.Home = node
		e.Mode[node] = ModeHome
	}
	return e.Home
}

// SetHome moves the page's home to the given node (page migration). The
// old home's mode reverts to unmapped; sharers' modes are managed by the
// protocol layer.
func (pt *PageTable) SetHome(p Page, node int) {
	e := pt.Entry(p)
	if e.Home >= 0 && e.Home != node {
		e.Mode[e.Home] = ModeUnmapped
	}
	e.Home = node
	e.Mode[node] = ModeHome
}

// PoisonAll sets the poison bit for every block of the page.
func (pt *PageTable) PoisonAll(p Page) {
	pt.Entry(p).Poisoned = ^uint64(0) >> (64 - config.BlocksPerPage)
}

// ClearPoison clears all poison bits of the page.
func (pt *PageTable) ClearPoison(p Page) { pt.Entry(p).Poisoned = 0 }

// IsPoisoned reports whether the page's block with the given intra-page
// index is poisoned.
func (pt *PageTable) IsPoisoned(p Page, blockIndex int) bool {
	return pt.Entry(p).Poisoned&(1<<uint(blockIndex)) != 0
}

// Unpoison clears the poison bit of a single block (lazy invalidation
// completed on it).
func (pt *PageTable) Unpoison(p Page, blockIndex int) {
	pt.Entry(p).Poisoned &^= 1 << uint(blockIndex)
}
