package lint

import (
	"go/ast"
	"go/types"
)

// HotAllocAnalyzer guards functions annotated `//repro:hotpath`
// against constructs that allocate.
//
// The replay loop dispatches one memory access per trace op; the
// fault, probe and dispatch paths it drives are pinned to 0 allocs/op
// by the dynamic benchmark guard (bench_guard_test). That guard only
// fires for regressions a guarded benchmark happens to exercise; the
// analyzer rejects the allocation sources themselves — fmt calls,
// string concatenation, closures, map literals and map makes,
// interface-boxing conversions — in any function carrying the
// `//repro:hotpath` annotation, on every path. Arguments of panic
// calls are exempt: a terminating path may format its last words, and
// the compiler keeps the formatting out of the happy path.
//
// The check is not transitive: a hot function may call a cold helper
// (amortized growth, lazy construction); the helper is simply not
// annotated. Annotations are cross-checked against internal/bench's
// guarded benchmarks by the lint suite's own tests.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocating constructs (fmt, string concat, closures, map literals, interface boxing) in //repro:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcIsHotPath(pass, f, fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// funcIsHotPath reports whether the declaration carries the
// //repro:hotpath directive in its doc comment (or immediately above
// its first line, for undocumented functions).
func funcIsHotPath(pass *Pass, f *ast.File, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if c.Text == "//repro:hotpath" {
				return true
			}
		}
	}
	return pass.hasDirective(f, fd.Pos(), "repro:hotpath")
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pass, n) {
				// Terminating path: everything under panic(...) may
				// allocate its message.
				return false
			}
			if pkg := calleePackagePath(pass, n); pkg == "fmt" {
				pass.Reportf(n.Pos(), "hot path %s calls %s: fmt allocates; format outside the hot path or pass pre-built values", name, calleeName(n))
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
				if boxes(pass, tv.Type, n.Args[0]) {
					pass.Reportf(n.Pos(), "hot path %s converts %s to interface %s: boxing allocates; keep the concrete type or hoist the conversion", name, types.ExprString(n.Args[0]), tv.Type.String())
				}
			}
			if isMapMake(pass, n) {
				pass.Reportf(n.Pos(), "hot path %s makes a map: map allocation on the hot path; preallocate in the constructor or use a dense slice index", name)
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isStringType(pass, n.X) {
				pass.Reportf(n.Pos(), "hot path %s concatenates strings: concatenation allocates; format outside the hot path", name)
			}
		case *ast.AssignStmt:
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isStringType(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "hot path %s appends to a string: concatenation allocates; format outside the hot path", name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s defines a closure: captured variables escape and the literal may allocate; hoist it to a method or package function", name)
			return false
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "hot path %s builds a map literal: map allocation on the hot path; preallocate in the constructor", name)
				}
			}
		}
		return true
	})
}

// isPanicCall reports whether the call is to the predeclared panic.
func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// calleePackagePath returns the import path of the called function's
// package ("" for builtins, methods on local values, and indirect
// calls).
func calleePackagePath(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isMapMake reports whether the call is make(map[...]...).
func isMapMake(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isStringType reports whether the expression has string type.
func isStringType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxes reports whether converting arg to target boxes a concrete
// value into an interface.
func boxes(pass *Pass, target types.Type, arg ast.Expr) bool {
	if _, isIface := target.Underlying().(*types.Interface); !isIface {
		return false
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	_, argIsIface := tv.Type.Underlying().(*types.Interface)
	return !argIsIface
}
