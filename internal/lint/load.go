package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked package presented to the
// analyzers.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns in dir
// and returns the decoded package stream.
func goList(dir string, patterns ...string) ([]*listPackage, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,Module,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the export-data lookup function the gc importer
// resolves dependency packages through.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
}

// ExportData resolves the given import paths (and their dependency
// closures) to compiler export-data files via `go list -export`,
// keyed by import path. linttest uses it to satisfy standard-library
// imports of fixture packages.
func ExportData(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, paths...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers read.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// LoadPackages loads the packages matching the patterns (resolved
// relative to dir, e.g. "./..."): module packages are parsed and
// typechecked from source, and every import — standard library or
// module-internal — is satisfied from the compiler export data `go
// list -export` reports, the same mechanism vet's unitchecker uses.
// Only non-test Go files are analyzed, matching what ships in the
// binaries the invariants protect.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// -deps lists the full closure; only module packages are
		// analysis targets.
		if p.Module != nil {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typecheck parses and typechecks one package from source.
func typecheck(fset *token.FileSet, imp types.Importer, t *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %v", t.ImportPath, err)
	}
	return &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
