// Package telemetry is the nilhook fixture collector: its import path
// carries the "telemetry" segment, so the analyzer recognizes its
// Collector type.
package telemetry

// Collector mirrors the real collector's hook surface.
type Collector struct {
	dispatches int64
	pageOps    int64
}

func (c *Collector) Dispatch(clock int64)     { c.dispatches++ }
func (c *Collector) PageOp(kind int, t int64) { c.pageOps++ }
func (c *Collector) Link(id int, b, t int64)  {}
func (c *Collector) Bind(nodes int)           {}
