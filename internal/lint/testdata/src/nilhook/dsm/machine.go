// Package dsm is the nilhook fixture: telemetry hook call sites in the
// core must sit behind a nil guard, because the collector is nil unless
// telemetry is attached.
package dsm

import "nilhook/telemetry"

type machine struct {
	tel   *telemetry.Collector
	clock int64
}

// dispatchUnguarded calls the hook bare and must be flagged.
func (m *machine) dispatchUnguarded() {
	m.tel.Dispatch(m.clock) // want `telemetry hook m\.tel\.Dispatch is not behind a nil guard`
}

// dispatchGuarded uses the direct-comparison idiom.
func (m *machine) dispatchGuarded() {
	if m.tel != nil {
		m.tel.Dispatch(m.clock)
	}
}

// pageOpGuarded uses the init-statement idiom the fault paths prefer.
func (m *machine) pageOpGuarded(kind int) {
	if tl := m.tel; tl != nil {
		tl.PageOp(kind, m.clock)
	}
}

// attach uses an early return: every hook below the `== nil { return }`
// is guarded.
func (m *machine) attach(c *telemetry.Collector) {
	if c == nil {
		return
	}
	m.tel = c
	c.Bind(4)
}

// bindInElse calls the hook in the else branch of an `== nil` check.
func (m *machine) bindInElse(c *telemetry.Collector) {
	if c == nil {
		m.tel = nil
	} else {
		c.Bind(4)
	}
}

// linkHalfGuarded guards one call but not the sibling that follows the
// guarded block: the second must be flagged.
func (m *machine) linkHalfGuarded(id int) {
	if m.tel != nil {
		m.tel.Link(id, 64, m.clock)
	}
	m.tel.Link(id, 64, m.clock) // want `telemetry hook m\.tel\.Link is not behind a nil guard`
}

// guardDoesNotCrossFuncs: a guard outside a closure does not protect
// calls inside it (the closure may run later, after detach).
func (m *machine) guardDoesNotCrossFuncs() func() {
	if m.tel != nil {
		return func() {
			m.tel.Dispatch(m.clock) // want `telemetry hook m\.tel\.Dispatch is not behind a nil guard`
		}
	}
	return nil
}

// wrongReceiverGuard checks a different expression than it calls.
type pair struct{ a, b *telemetry.Collector }

func (p *pair) mismatch() {
	if p.a != nil {
		p.b.Dispatch(0) // want `telemetry hook p\.b\.Dispatch is not behind a nil guard`
	}
}
