// Package serve is the walltime clean fixture for the serving stack:
// request latency, uptime and load-test timing are wall-clock
// quantities by nature, so packages under a serve path segment may
// read the wall clock.
package serve

import "time"

// latency measures how long a request handler took; exempt by package
// path.
func latency(start time.Time) float64 {
	return time.Since(start).Seconds()
}

// uptime stamps the /statusz document; exempt by package path.
func uptime() time.Time {
	return time.Now()
}
