// Package dsm is a walltime fixture: a simulation-core package that
// must not observe wall time or the global rand source.
package dsm

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock directly and must be flagged.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in simulation package walltime/dsm`
}

// elapsed uses time.Since, which reads the wall clock internally.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in simulation package walltime/dsm`
}

// jitter draws from the globally seeded shared source.
func jitter() int {
	return rand.Intn(8) // want `global rand\.Intn in simulation package walltime/dsm`
}

// seededDelay draws from an explicitly seeded local source: the draw is
// reproducible, so methods on *rand.Rand are allowed.
func seededDelay(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// format consumes a caller-supplied time value: observing a time.Time
// passed down from the harness is fine, only producing one is not.
func format(created time.Time) string {
	return created.UTC().Format(time.RFC3339)
}
