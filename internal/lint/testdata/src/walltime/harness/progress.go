// Package harness is the walltime clean fixture: harness progress and
// manifest code is presentation-layer and may read the wall clock.
package harness

import "time"

// Stamp reads wall time for a progress line; exempt by package path.
func Stamp() string {
	return time.Now().UTC().Format(time.RFC3339)
}
