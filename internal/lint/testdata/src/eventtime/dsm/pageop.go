// Package dsm is an eventtime fixture reproducing the PR 2 flushFrame
// bug shape: a dirty-frame writeback whose event time is a literal 0
// instead of the operation's current simulated time.
package dsm

// block is a stand-in for memory.Block.
type block struct{ dirty bool }

// fabric is a stand-in for the interconnect with event-timed charges.
type fabric struct{}

func (f *fabric) Traverse(src, dst int, bytes int64, now int64) int64 { return now + bytes }

// machine is a stand-in for the DSM machine.
type machine struct {
	fab *fabric
}

// writebackRemote mirrors the real signature: the trailing now
// parameter is the emitting event's simulated time.
func (m *machine) writebackRemote(n, h int, b block, now int64) int64 {
	return m.fab.Traverse(n, h, 64, now)
}

// pageOp carries the operation's running simulated time.
type pageOp struct {
	m   *machine
	now int64
}

// flushFrameBuggy reintroduces the PR 2 bug: the writeback is charged
// at t=0 instead of the operation's clock. The analyzer must flag it.
func (op *pageOp) flushFrameBuggy(n, home int, b block) {
	if b.dirty {
		op.m.writebackRemote(n, home, b, 0) // want `literal 0 passed as event-time parameter "now" of op\.m\.writebackRemote`
	}
}

// flushFrameFixed threads the operation's current time, as the PR 2
// fix does.
func (op *pageOp) flushFrameFixed(n, home int, b block) {
	if b.dirty {
		op.m.writebackRemote(n, home, b, op.now)
	}
}

// startOfTime is a named constant: naming the zero documents intent,
// so only bare literals are flagged.
const startOfTime int64 = 0

// warmAtOrigin uses the named constant and stays clean.
func (op *pageOp) warmAtOrigin(n, home int, b block) {
	op.m.writebackRemote(n, home, b, startOfTime)
}

// preloadFrames is a legitimate time-0 call (initial placement before
// the first dispatch) and carries the annotation.
func (op *pageOp) preloadFrames(n, home int, b block) {
	//lint:eventtime initial placement happens before the first dispatch
	op.m.writebackRemote(n, home, b, 0)
}

// unblockAt exercises the "at" parameter name used on scheduler seams.
func unblockAt(id int, at int64) int64 { return at }

func wake(id int) int64 {
	return unblockAt(id, 0) // want `literal 0 passed as event-time parameter "at" of unblockAt`
}

// zeroBytes is a control: literal 0 into a non-event-time integer
// parameter is fine.
func (m *machine) zeroBytes(now int64) int64 {
	return m.fab.Traverse(0, 0, 0, now)
}
