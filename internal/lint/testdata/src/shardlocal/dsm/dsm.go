// Package dsm is a shardlocal fixture: functions annotated
// //repro:shardlocal may only touch the shared-state types through
// the per-type allowlists, and may not write through a Machine.
package dsm

// Machine mirrors the simulator's shared-state root.
type Machine struct {
	phaseDone bool
	pageBusy  []int64
	mapped    [][]bool
	pt        PageTable
}

func (m *Machine) access(b uint64, write bool) {}
func (m *Machine) nodeOf(id int) int           { return 0 }
func (m *Machine) cpusOf(n int) (int, int)     { return 0, 0 }
func (m *Machine) evictFrame(n int)            {}
func (m *Machine) unpark(id int)               {}

// PageInfo is a shared page-table entry handed out by reference.
type PageInfo struct{ Touched bool }

func (e *PageInfo) Poison() {}

// PageTable mirrors the presized page table: Entry is the pure read.
type PageTable struct{ pages []PageInfo }

func (pt *PageTable) Entry(p int) *PageInfo { return &pt.pages[p] }
func (pt *PageTable) Presize(n int)         {}

// L1 mirrors the direct-mapped cache: Lookup is the pure probe.
type L1 struct{}

func (c *L1) Lookup(b uint64) int    { return 0 }
func (c *L1) Insert(b uint64, s int) {}
func (c *L1) Invalidate(b uint64)    {}

// Fabric mirrors the interconnect: no calls are admissible.
type Fabric struct{}

func (f *Fabric) Traverse(s, d, bytes int) int64 { return 0 }

// scanClean is annotated and stays on the allowlists: pure probes,
// reads of shared fields, the sanctioned access call, and writes to
// its own unwatched state.
//
//repro:shardlocal
func scanClean(m *Machine, l1 *L1, busy []int64) int64 {
	e := m.pt.Entry(3)
	if !e.Touched || m.phaseDone {
		return 0
	}
	clock := m.pageBusy[0]
	if l1.Lookup(7) != 0 {
		m.access(7, false)
		clock += int64(m.nodeOf(1))
	}
	busy[0] = clock
	return clock
}

// commitBad is annotated and packed with violations: non-allowlisted
// methods on every watched type plus direct Machine writes.
//
//repro:shardlocal
func commitBad(m *Machine, l1 *L1, f *Fabric) {
	m.evictFrame(0)      // want `shard-local commitBad calls Machine\.evictFrame`
	m.unpark(3)          // want `shard-local commitBad calls Machine\.unpark`
	m.pt.Presize(64)     // want `shard-local commitBad calls PageTable\.Presize`
	l1.Insert(7, 1)      // want `shard-local commitBad calls L1\.Insert`
	f.Traverse(0, 1, 64) // want `shard-local commitBad calls Fabric\.Traverse`
	e := m.pt.Entry(3)
	e.Poison()            // want `shard-local commitBad calls PageInfo\.Poison`
	e.Touched = true      // want `shard-local commitBad writes through PageInfo\.Touched`
	m.phaseDone = true    // want `shard-local commitBad writes through Machine\.phaseDone`
	m.pageBusy[0] = 9     // want `shard-local commitBad writes through Machine\.pageBusy`
	m.mapped[1][2] = true // want `shard-local commitBad writes through Machine\.mapped`
	m.pageBusy[0]++       // want `shard-local commitBad writes through Machine\.pageBusy`
}

// serialStep is unannotated: the coordinator's serial phase may touch
// anything, so none of this is flagged.
func serialStep(m *Machine, l1 *L1) {
	m.evictFrame(0)
	m.phaseDone = true
	m.pageBusy[0] = 9
	l1.Insert(7, 1)
}
