// Package engine is a hotalloc fixture: functions annotated
// //repro:hotpath must not contain allocating constructs.
package engine

import "fmt"

type event struct {
	id   int
	name string
}

// Sink is an interface boxing target.
type Sink interface{ accept() }

func (e *event) accept() {}

// dispatchHot is annotated and packed with violations.
//
//repro:hotpath
func dispatchHot(e *event, names map[int]string) string {
	fmt.Println(e.id)               // want `hot path dispatchHot calls fmt\.Println`
	s := e.name + "-hot"            // want `hot path dispatchHot concatenates strings`
	s += "!"                        // want `hot path dispatchHot appends to a string`
	f := func() int { return e.id } // want `hot path dispatchHot defines a closure`
	_ = f
	m := map[int]int{e.id: 1} // want `hot path dispatchHot builds a map literal`
	_ = m
	m2 := make(map[string]int) // want `hot path dispatchHot makes a map`
	_ = m2
	return s
}

// boxOnHotPath converts a concrete value to an interface explicitly.
//
//repro:hotpath
func boxOnHotPath(e *event) Sink {
	return Sink(e) // want `hot path boxOnHotPath converts e to interface`
}

// dispatchClean is annotated but allocation-free: index math, slice
// reads, struct field writes.
//
//repro:hotpath
func dispatchClean(e *event, table []int64) int64 {
	if e.id < 0 || e.id >= len(table) {
		panic(fmt.Sprintf("event %d out of range", e.id))
	}
	table[e.id]++
	return table[e.id]
}

// coldHelper is unannotated: the same constructs draw no findings
// because the check applies only to annotated functions.
func coldHelper(e *event) string {
	return fmt.Sprintf("event %d %s", e.id, e.name+"!")
}
