// Package harness is the mapiter clean fixture: it sits outside the
// deterministic core, so bare map ranges are not flagged.
package harness

// Summarize may range freely: harness output is presentation-layer.
func Summarize(rows map[string]float64) float64 {
	var total float64
	for _, v := range rows {
		total += v
	}
	return total
}
