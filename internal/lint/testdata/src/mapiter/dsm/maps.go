// Package dsm is a mapiter fixture: its import path carries the "dsm"
// segment, placing it in the deterministic core.
package dsm

import "sort"

// stats is a stand-in for per-node counter maps.
type stats struct {
	faults map[int]int64
	owners map[string]bool
}

// emitUnsorted depends on visit order (appends in map order) and must
// be flagged.
func (s *stats) emitUnsorted() []int64 {
	var out []int64
	for _, v := range s.faults { // want `range over map s\.faults in deterministic core`
		out = append(out, v)
	}
	return out
}

// emitSortedKeys collects keys and sorts them before visiting: the
// collection loop itself is order-insensitive and annotated.
func (s *stats) emitSortedKeys() []int64 {
	keys := make([]int, 0, len(s.faults))
	//lint:unordered key collection is sorted below
	for k := range s.faults {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]int64, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.faults[k])
	}
	return out
}

// countOwners ranges without binding key or value: only the count is
// observable, so order cannot matter and no annotation is needed.
func (s *stats) countOwners() int {
	n := 0
	for range s.owners {
		n++
	}
	return n
}

// sumInline annotates on the same line as the range statement.
func (s *stats) sumInline() int64 {
	var total int64
	for _, v := range s.faults { //lint:unordered commutative sum
		total += v
	}
	return total
}

// ownersUnguarded binds the key of a map range with no annotation and
// must be flagged.
func (s *stats) ownersUnguarded() []string {
	var out []string
	for name := range s.owners { // want `range over map s\.owners in deterministic core`
		out = append(out, name)
	}
	return out
}

// sliceRange is a control: ranging a slice is always fine.
func sliceRange(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
