package lint

import (
	"go/ast"
	"go/types"
)

// MapIterAnalyzer flags `range` over a map in the deterministic core.
//
// Go randomizes map iteration order per run, so a map range whose
// effect depends on visit order (rendering, message emission, anything
// feeding a report, a hash or the fabric) silently breaks the
// byte-stable outputs the golden tests, the content-addressed trace
// store and the cross-PR sweep comparisons rely on. A loop that is
// genuinely order-insensitive — collecting keys to sort afterwards,
// building another map, commutative accumulation — is annotated
// `//lint:unordered` on or directly above the `for` statement; the
// preferred alternative is to sort the keys first or to index by a
// dense integer key (slices).
var MapIterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "flag range over a map in the deterministic core unless annotated //lint:unordered",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	if !inDeterministicCore(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			// `for range m` draws nothing from the iteration but its
			// count; order cannot matter.
			if rs.Key == nil && rs.Value == nil {
				return true
			}
			if pass.hasDirective(f, rs.Pos(), "lint:unordered") {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s in deterministic core: iteration order is randomized; sort the keys first or annotate the loop //lint:unordered if it is order-insensitive", types.ExprString(rs.X))
			return true
		})
	}
	return nil
}
