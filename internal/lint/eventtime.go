package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// EventTimeAnalyzer flags a literal 0 flowing into an event-time
// parameter in the deterministic core.
//
// Every protocol message and resource acquisition carries the explicit
// simulated time of the emitting event (a `now` parameter threaded
// from the dispatched CPU's clock or a pageOp's current time). Passing
// a literal 0 injects the message at the beginning of simulated time —
// the exact flushFrame bug PR 2 fixed at run time: the dirty-frame
// writeback charged the NI, fabric and home controller at t=0 instead
// of the caller's clock, silently mis-timing link occupancy and hiding
// the traffic from time-windowed views. The runtime audit
// (Fabric.EnableAudit) catches this class only on paths a sweep
// exercises; the analyzer catches it on every path at compile time.
// The rare legitimate time-0 call (initialization before the first
// dispatch) is annotated `//lint:eventtime`.
var EventTimeAnalyzer = &Analyzer{
	Name: "eventtime",
	Doc:  "flag literal-0 event-time (`now`) arguments to fabric, resource and page-op calls",
	Run:  runEventTime,
}

// eventTimeParams are the parameter names that carry an event time
// through the simulation core ("now" on the fabric/resource/page-op
// seams, "at" on scheduler unblocking).
var eventTimeParams = map[string]bool{"now": true, "at": true}

func runEventTime(pass *Pass) error {
	if !inDeterministicCore(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig := calleeSignature(pass, call)
			if sig == nil {
				return true
			}
			params := sig.Params()
			for i, arg := range call.Args {
				if i >= params.Len() {
					break // variadic tail; event times are never variadic
				}
				prm := params.At(i)
				if !eventTimeParams[prm.Name()] || !isIntegerType(prm.Type()) {
					continue
				}
				if !isConstZero(pass, arg) {
					continue
				}
				if pass.hasDirective(f, call.Pos(), "lint:eventtime") {
					continue
				}
				pass.Reportf(arg.Pos(), "literal 0 passed as event-time parameter %q of %s: messages must enter the fabric at the emitting event's simulated time (the flushFrame time-0 bug class); pass the caller's clock, or annotate //lint:eventtime if time 0 is intended", prm.Name(), calleeName(call))
			}
			return true
		})
	}
	return nil
}

// calleeSignature resolves the signature of a call's callee, or nil
// for builtins, conversions and calls through untyped expressions.
func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// calleeName renders the callee expression for diagnostics.
func calleeName(call *ast.CallExpr) string {
	return types.ExprString(call.Fun)
}

// isIntegerType reports whether t is (an alias of) an integer type —
// engine.Time is an alias of int64.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isConstZero reports whether the expression is the integer constant 0
// written literally (a named constant expressing a deliberate zero is
// not flagged; a bare 0 is).
func isConstZero(pass *Pass, e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v == 0
}
