// Package linttest runs lint analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under testdata/src/<importpath>/, and every line that
// should be flagged carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps if the line yields several
// findings). The runner reports a test error for every expected
// finding that did not materialize and every finding that was not
// expected, so a fixture both proves the analyzer fires and pins the
// clean pattern that silences it.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run loads the fixture package at testdata/src/<path> (resolving
// fixture-local imports from sibling directories and everything else
// from compiler export data) and applies the analyzer, matching its
// findings against the fixture's want comments.
func Run(t *testing.T, analyzer *lint.Analyzer, paths ...string) {
	t.Helper()
	l := newFixtureLoader(t, filepath.Join("testdata", "src"))
	for _, path := range paths {
		pkg := l.load(path)
		diags := runAnalyzer(t, analyzer, l.fset, pkg)
		checkWants(t, analyzer.Name, l.fset, pkg, diags)
	}
}

// fixtureLoader typechecks fixture packages, caching across loads so
// cross-fixture imports share one type universe.
type fixtureLoader struct {
	t       *testing.T
	root    string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
	gc      types.ImporterFrom
	exports map[string]string
}

type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

func newFixtureLoader(t *testing.T, root string) *fixtureLoader {
	return &fixtureLoader{
		t:    t,
		root: root,
		fset: token.NewFileSet(),
		pkgs: map[string]*fixturePkg{},
	}
}

// Import resolves an import during fixture typechecking:
// fixture-local packages first, then export data.
func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *fixtureLoader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if info, err := os.Stat(filepath.Join(l.root, path)); err == nil && info.IsDir() {
		return l.load(path).types, nil
	}
	if l.gc == nil {
		l.initExports()
	}
	return l.gc.ImportFrom(path, dir, mode)
}

// initExports builds the export-data lookup for non-fixture imports by
// asking the go command for the union of external imports across all
// fixture files.
func (l *fixtureLoader) initExports() {
	l.t.Helper()
	external := map[string]bool{}
	walkErr := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), p, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if info, err := os.Stat(filepath.Join(l.root, path)); err == nil && info.IsDir() {
				continue
			}
			external[path] = true
		}
		return nil
	})
	if walkErr != nil {
		l.t.Fatalf("linttest: scanning fixture imports: %v", walkErr)
	}
	var err error
	l.exports, err = lint.ExportData(".", sortedKeys(external)...)
	if err != nil {
		l.t.Fatalf("linttest: %v", err)
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("linttest: no export data for %q", path)
		}
		return os.Open(file)
	}).(types.ImporterFrom)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// load parses and typechecks the fixture package at root/<path>.
func (l *fixtureLoader) load(path string) *fixturePkg {
	l.t.Helper()
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("linttest: fixture %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("linttest: parsing fixture %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.t.Fatalf("linttest: fixture %s has no Go files", path)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("linttest: typechecking fixture %s: %v", path, err)
	}
	p := &fixturePkg{path: path, files: files, types: tpkg, info: info}
	l.pkgs[path] = p
	return p
}

// runAnalyzer applies one analyzer to one fixture package.
func runAnalyzer(t *testing.T, a *lint.Analyzer, fset *token.FileSet, pkg *fixturePkg) []lint.Diagnostic {
	t.Helper()
	var diags []lint.Diagnostic
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s on %s: %v", a.Name, pkg.path, err)
	}
	return diags
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// checkWants compares findings against the fixture's want comments.
func checkWants(t *testing.T, analyzer string, fset *token.FileSet, pkg *fixturePkg, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.files {
		name := fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, pat := range parseWantPatterns(t, name, i+1, line[idx+len("// want "):]) {
				wants = append(wants, &want{file: name, line: i + 1, re: pat})
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding at %s:%d: %s", analyzer, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: expected finding at %s:%d matching %q, got none", analyzer, filepath.Base(w.file), w.line, w.re)
		}
	}
}

// parseWantPatterns extracts the quoted regexps of one want comment.
func parseWantPatterns(t *testing.T, file string, line int, rest string) []*regexp.Regexp {
	t.Helper()
	var pats []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Fatalf("linttest: %s:%d: malformed want comment near %q", file, line, rest)
		}
		val, tail, err := unquotePrefix(rest)
		if err != nil {
			t.Fatalf("linttest: %s:%d: %v", file, line, err)
		}
		re, err := regexp.Compile(val)
		if err != nil {
			t.Fatalf("linttest: %s:%d: bad want regexp: %v", file, line, err)
		}
		pats = append(pats, re)
		rest = strings.TrimSpace(tail)
	}
	return pats
}

// unquotePrefix unquotes the leading Go string literal of s and
// returns its value and the remainder.
func unquotePrefix(s string) (val, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			val, err = strconv.Unquote(s[:i+1])
			return val, s[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated string in want comment: %s", s)
}
