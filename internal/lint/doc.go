// Package lint is the simulator's static-analysis suite: custom
// analyzers that enforce, at compile time, the invariants the runtime
// audit subsystem (internal/audit) and the conservation tests enforce
// at run time. The paper's caching-vs-migration comparison is only
// trustworthy because the simulator is deterministic and event-time
// disciplined; these analyzers make the bug classes the audit has
// caught — map-iteration nondeterminism, wall-clock leakage, time-0
// fabric charges, unguarded observability hooks, hot-path allocation,
// shared-state races in shard-owned code — fail `go vet`, not a
// five-second sweep.
//
// The six analyzers:
//
//   - mapiter: flags `range` over a map in the deterministic core
//     (dsm, engine, interconnect, trace, telemetry, stats). Map
//     iteration order is randomized by the runtime, so any map range
//     whose effect is order-sensitive breaks byte-stable reports and
//     content-addressed traces. Loops that are genuinely
//     order-insensitive (collecting keys to sort, building another
//     map, pure accumulation) carry a `//lint:unordered` annotation.
//   - walltime: forbids wall-clock and global-randomness sources
//     (time.Now/Since/Until, package-level math/rand) in simulation
//     packages. Wall time is presentation-layer input: only the
//     harness progress/manifest code and the cmd/ and examples/
//     binaries may observe it, and they pass it down as values.
//   - eventtime: flags a literal 0 passed as a `now` event-time
//     parameter (fabric Traverse/Deliver, Resource.Acquire,
//     writebackRemote, ...). This is exactly the flushFrame bug class
//     PR 2 fixed at run time: a message injected at t=0 instead of
//     the emitting transaction's clock mis-times link occupancy and
//     hides traffic from windowed views. A deliberate time-0 charge
//     carries a `//lint:eventtime` annotation.
//   - hotalloc: functions annotated `//repro:hotpath` may not use
//     fmt, string concatenation, closures, map literals/makes, or
//     interface-boxing conversions — the allocation sources the
//     dynamic allocs/op guard (bench_guard_test) detects after the
//     fact. Arguments of panic calls are exempt: a terminating path
//     may format its last words.
//   - nilhook: every telemetry-collector call site in dsm and
//     interconnect must sit behind a nil guard, preserving the PR 6
//     invariant that an uninstrumented run pays exactly one branch
//     per hook.
//   - shardlocal: functions annotated `//repro:shardlocal` (the scan
//     and commit paths the sharded conservative-PDES engine runs
//     concurrently across shard goroutines) may only touch the
//     shared-state types (Machine, PageTable, PageInfo, L1, Fabric)
//     through per-type allowlists of reviewed-safe calls, and may
//     not write through a Machine at all — shared-state mutation
//     belongs to the coordinator's serial phase.
//
// The suite runs three ways: standalone (`go run ./cmd/repolint
// ./...`), as a vet tool (`go vet -vettool=$(which repolint) ./...`),
// and inside `go test ./...` via the repository-root lint_test.go, so
// tier-1 verification enforces it without CI.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers can migrate to the
// upstream driver verbatim if the dependency ever lands; packages are
// loaded by typechecking source against compiler export data obtained
// from `go list -export`, the same mechanism vet's unitchecker uses,
// keeping the module dependency-free.
package lint
