package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ShardLocalAnalyzer guards functions annotated `//repro:shardlocal`
// — the code paths the sharded conservative-PDES engine runs
// concurrently across shard goroutines — against unguarded access to
// shared simulator state.
//
// The sharded engine's soundness argument (internal/dsm/shard.go) is
// that everything a parallel phase executes either reads shared state
// frozen for the duration of the phase or writes state its shard
// owns. That argument is easy to break silently: one new call from a
// scan or commit loop into a Machine mutator (a fault path, a page
// operation, an unpark) is a data race the race detector only catches
// if a test happens to interleave it. The analyzer rejects the access
// statically instead: inside a //repro:shardlocal function, method
// calls on the shared-state types (Machine, PageTable, L1, Fabric)
// must be on a per-type allowlist of calls the equivalence argument
// has been reviewed to cover, and assignments through a Machine
// receiver (`m.field = ...`, `m.mapped[n][p] = ...`) are forbidden
// outright.
//
// Like hotalloc, the check is not transitive: an allowlisted call
// (Machine.access on a scan-proven hit) may itself touch whatever its
// contract guarantees is shard-local. The allowlist is the reviewed
// boundary, not a purity proof.
var ShardLocalAnalyzer = &Analyzer{
	Name: "shardlocal",
	Doc:  "forbid non-allowlisted shared-state access (Machine/PageTable/L1/Fabric methods, Machine field writes) in //repro:shardlocal functions",
	Run:  runShardLocal,
}

// shardSharedTypes maps each watched shared-state type to the methods
// a shard-owned code path may call on it. Machine.access is the
// commit path's re-execution of a scan-proven L1 hit; nodeOf, cpusOf
// and schedFor are pure topology lookups; PageTable.Entry is a pure
// read once the table is presized; L1.Lookup probes the direct-mapped
// cache without touching recency state. Fabric has no admissible
// calls: shard-local events never inject messages.
var shardSharedTypes = map[string]map[string]bool{
	"Machine":   {"access": true, "nodeOf": true, "cpusOf": true, "schedFor": true},
	"PageTable": {"Entry": true},
	"PageInfo":  {},
	"L1":        {"Lookup": true},
	"Fabric":    {},
}

func runShardLocal(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcIsShardLocal(pass, f, fd) {
				continue
			}
			checkShardLocalBody(pass, fd)
		}
	}
	return nil
}

// funcIsShardLocal reports whether the declaration carries the
// //repro:shardlocal directive in its doc comment (or immediately
// above its first line, for undocumented functions).
func funcIsShardLocal(pass *Pass, f *ast.File, fd *ast.FuncDecl) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if c.Text == "//repro:shardlocal" {
				return true
			}
		}
	}
	return pass.hasDirective(f, fd.Pos(), "repro:shardlocal")
}

func checkShardLocalBody(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			recv, method, ok := methodReceiver(pass, n)
			if !ok {
				return true
			}
			allowed, watched := shardSharedTypes[recv]
			if !watched || allowed[method] {
				return true
			}
			pass.Reportf(n.Pos(), "shard-local %s calls %s.%s: not on the shard-local allowlist (%s); shared-state mutation must go through the coordinator's serial phase", name, recv, method, allowedList(allowed))
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkShardLocalWrite(pass, name, lhs)
			}
		case *ast.IncDecStmt:
			checkShardLocalWrite(pass, name, n.X)
		}
		return true
	})
}

// checkShardLocalWrite flags a write whose destination dereferences a
// watched shared-state value: `m.field = x`, `m.mapped[n][p] = true`,
// `m.pageBusy[p]++`. Rebinding a local variable of the watched type
// itself (`m = other`) is not a shared-state write.
func checkShardLocalWrite(pass *Pass, name string, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if recv, ok := watchedTypeName(pass.TypesInfo.Types[e.X].Type); ok {
				pass.Reportf(lhs.Pos(), "shard-local %s writes through %s.%s: shared-state writes must go through the coordinator's serial phase", name, recv, e.Sel.Name)
				return
			}
			lhs = e.X
		default:
			return
		}
	}
}

// methodReceiver resolves a call's receiver to a watched-type name and
// method name, when the call is a method call at all.
func methodReceiver(pass *Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig := obj.Signature()
	if sig.Recv() == nil {
		return "", "", false
	}
	name, watched := watchedTypeName(sig.Recv().Type())
	if !watched {
		return "", "", false
	}
	return name, obj.Name(), true
}

// watchedTypeName returns the shardSharedTypes key for t (pointers
// dereferenced), if t is one of the watched named types.
func watchedTypeName(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	name := named.Obj().Name()
	_, watched := shardSharedTypes[name]
	return name, watched
}

// allowedList renders an allowlist for diagnostics, sorted for stable
// output; an empty list reads as "none".
func allowedList(allowed map[string]bool) string {
	if len(allowed) == 0 {
		return "allowed: none"
	}
	names := make([]string, 0, len(allowed))
	for m := range allowed {
		names = append(names, m)
	}
	sort.Strings(names)
	return "allowed: " + strings.Join(names, ", ")
}
