package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTimeAnalyzer forbids wall-clock and global-randomness sources in
// simulation packages.
//
// The simulator's only clock is the simulated one: a time.Now (or a
// draw from the globally seeded math/rand source) anywhere in the
// simulation core makes two runs of the same trace diverge, breaking
// determinism tests, golden files and the content-addressed trace
// store. Wall time is presentation-layer input — the harness
// progress/manifest code and the cmd/ and examples/ binaries may
// observe it and pass it down as a value (see
// telemetry.NewManifestAt). Randomness in generators comes from
// explicitly seeded local sources, never the shared global one.
var WallTimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now and global math/rand outside harness progress/manifest code and the binaries",
	Run:  runWallTime,
}

// wallTimeExemptSegments are the package-path elements allowed to
// observe wall time: the harness (progress lines, run manifests), the
// binaries, the example programs, the benchmark bodies (which measure
// wall time by definition), and the serving stack (request latencies,
// uptime, load-test percentiles are wall-clock quantities; simulated
// time never leaves the harness below it).
var wallTimeExemptSegments = []string{"harness", "cmd", "examples", "bench", "serve"}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// (time.Since/Until call time.Now internally.)
var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(pass *Pass) error {
	if pathHasSegment(pass.Pkg.Path(), wallTimeExemptSegments...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			// Methods are fine: a *rand.Rand with an explicit seed is
			// deterministic, and time.Time values only enter sim
			// packages as caller-supplied data.
			if obj.Signature().Recv() != nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "time.%s in simulation package %s: wall time is nondeterministic; take the time as a parameter from the harness or cmd layer", obj.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewSource, NewPCG, ...) build the
				// explicitly seeded local sources the core is supposed
				// to use; only draws routed through the shared global
				// source are flagged.
				if strings.HasPrefix(obj.Name(), "New") {
					return true
				}
				pass.Reportf(sel.Pos(), "global %s.%s in simulation package %s: the shared source is not seedable per run; draw from an explicitly seeded *rand.Rand instead", obj.Pkg().Name(), obj.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
