package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over a flagging fixture (a package inside its
// scope with `// want` expectations) and a clean fixture (the same
// construct outside the scope, or the sanctioned pattern), so the
// tests pin both that the analyzer fires and what silences it.

func TestMapIter(t *testing.T) {
	linttest.Run(t, lint.MapIterAnalyzer, "mapiter/dsm", "mapiter/harness")
}

func TestWallTime(t *testing.T) {
	linttest.Run(t, lint.WallTimeAnalyzer, "walltime/dsm", "walltime/harness", "walltime/serve")
}

func TestEventTime(t *testing.T) {
	linttest.Run(t, lint.EventTimeAnalyzer, "eventtime/dsm")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAllocAnalyzer, "hotalloc/engine")
}

func TestNilHook(t *testing.T) {
	linttest.Run(t, lint.NilHookAnalyzer, "nilhook/dsm")
}

func TestShardLocal(t *testing.T) {
	linttest.Run(t, lint.ShardLocalAnalyzer, "shardlocal/dsm")
}

// TestSuite pins the suite composition: the six analyzers, each with
// a name and documentation, names unique.
func TestSuite(t *testing.T) {
	suite := lint.Suite()
	want := []string{"mapiter", "walltime", "eventtime", "hotalloc", "nilhook", "shardlocal"}
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}
