package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks can migrate to
// the upstream driver unchanged.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass presents one package to an analyzer: its syntax, its type
// information, and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// directives caches the per-file directive-comment line sets,
	// built on first use.
	directives map[*ast.File]directiveLines
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Suite returns the full analyzer suite in stable order.
func Suite() []*Analyzer {
	return []*Analyzer{
		MapIterAnalyzer,
		WallTimeAnalyzer,
		EventTimeAnalyzer,
		HotAllocAnalyzer,
		NilHookAnalyzer,
		ShardLocalAnalyzer,
	}
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// pathSegments splits an import path into its elements.
func pathSegments(path string) []string { return strings.Split(path, "/") }

// pathHasSegment reports whether any element of the import path equals
// one of the given segments. Matching by element rather than by full
// path keeps the analyzers testable against fixture packages ("dsm",
// "a/dsm") while still scoping them to repro/internal/dsm and friends.
func pathHasSegment(path string, segments ...string) bool {
	for _, el := range pathSegments(path) {
		for _, s := range segments {
			if el == s {
				return true
			}
		}
	}
	return false
}

// coreSegments are the package-path elements of the deterministic core:
// packages whose execution must be byte-reproducible because reports,
// golden files and content-addressed traces are derived from them.
var coreSegments = []string{"dsm", "engine", "interconnect", "trace", "store", "telemetry", "stats"}

// inDeterministicCore reports whether the package belongs to the
// deterministic core.
func inDeterministicCore(pkg *types.Package) bool {
	return pathHasSegment(pkg.Path(), coreSegments...)
}

// directiveLines records, per file, the source lines carrying a given
// lint directive comment.
type directiveLines map[string]map[int]bool

// fileDirectives scans a file's comments for //lint:... and
// //repro:... directives and returns the line sets keyed by directive
// name ("lint:unordered", "repro:hotpath", ...). Both a comment on the
// flagged line itself and one on the line immediately above count, so
// the caller checks both.
func (p *Pass) fileDirectives(f *ast.File) directiveLines {
	if d, ok := p.directives[f]; ok {
		return d
	}
	d := directiveLines{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "lint:") && !strings.HasPrefix(text, "repro:") {
				continue
			}
			name := text
			if i := strings.IndexAny(text, " \t"); i >= 0 {
				name = text[:i]
			}
			if d[name] == nil {
				d[name] = map[int]bool{}
			}
			d[name][p.Fset.Position(c.Pos()).Line] = true
		}
	}
	if p.directives == nil {
		p.directives = map[*ast.File]directiveLines{}
	}
	p.directives[f] = d
	return d
}

// hasDirective reports whether the given directive annotates pos: the
// directive comment sits on the same line or on the line immediately
// above.
func (p *Pass) hasDirective(f *ast.File, pos token.Pos, name string) bool {
	lines := p.fileDirectives(f)[name]
	if lines == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	return lines[line] || lines[line-1]
}

// fileOf returns the *ast.File containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// walkWithStack traverses the file like ast.Inspect but hands fn the
// stack of enclosing nodes (outermost first, not including n itself).
// Returning false prunes the subtree.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if !ok {
			// Pruned: ast.Inspect will not deliver the matching nil,
			// so do not push.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// runAll applies every analyzer to every package and returns the
// findings sorted by position.
func runAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

// sortDiagnostics orders findings by file position then analyzer name.
func sortDiagnostics(pkgs []*Package, diags []Diagnostic) {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if fset == nil {
			return diags[i].Message < diags[j].Message
		}
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// Run loads the packages matching the patterns (resolved relative to
// dir) and applies the given analyzers, returning position-sorted
// findings. It is the entry point shared by cmd/repolint and the
// repository-root lint test.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (*token.FileSet, []Diagnostic, error) {
	pkgs, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	diags, err := runAll(analyzers, pkgs)
	return fset, diags, err
}
