package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilHookAnalyzer enforces the telemetry hook contract in the
// simulation core: every call on a *telemetry.Collector in dsm or
// interconnect must sit behind a nil guard.
//
// Telemetry is opt-in; the machine and fabric hold a nil collector by
// default, and PR 6's overhead budget rests on the invariant that an
// uninstrumented run pays exactly one predictable branch per hook —
// and does not crash. An unguarded hook is therefore both a panic on
// the default configuration and a creeping violation of the overhead
// contract. Recognized guard shapes, matching the repository idiom:
//
//	if tl := m.tel; tl != nil { tl.PageOp(...) }
//	if m.tel != nil { m.tel.Dispatch(...) }
//	if c == nil { return }   // early out; calls below are guarded
//	if c == nil { ... } else { c.Bind(...) }
var NilHookAnalyzer = &Analyzer{
	Name: "nilhook",
	Doc:  "require telemetry-collector call sites in dsm/interconnect to be behind a nil guard",
	Run:  runNilHook,
}

// nilHookScopeSegments are the packages whose hook sites are on the
// replay hot path and must honor the single-branch contract.
var nilHookScopeSegments = []string{"dsm", "interconnect"}

func runNilHook(pass *Pass) error {
	if !pathHasSegment(pass.Pkg.Path(), nilHookScopeSegments...) {
		return nil
	}
	for _, f := range pass.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvType := pass.TypesInfo.TypeOf(sel.X)
			if !isTelemetryCollector(recvType) {
				return true
			}
			if nilGuarded(pass, sel.X, n, stack) {
				return true
			}
			pass.Reportf(call.Pos(), "telemetry hook %s.%s is not behind a nil guard: the collector is nil unless telemetry is attached; wrap the call in `if %s != nil` (the single-branch hook contract)", types.ExprString(sel.X), sel.Sel.Name, types.ExprString(sel.X))
			return true
		})
	}
	return nil
}

// isTelemetryCollector reports whether t is telemetry.Collector or a
// pointer to it, for any package whose path contains a "telemetry"
// segment (which keeps fixtures loadable outside the module).
func isTelemetryCollector(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Collector" && obj.Pkg() != nil && pathHasSegment(obj.Pkg().Path(), "telemetry")
}

// nilGuarded reports whether the receiver expression recv is
// nil-checked on every path reaching node n.
func nilGuarded(pass *Pass, recv ast.Expr, n ast.Node, stack []ast.Node) bool {
	want := types.ExprString(recv)
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			inBody := i+1 < len(stack) && stack[i+1] == anc.Body
			inElse := i+1 < len(stack) && stack[i+1] == anc.Else
			if inBody && condChecksNotNil(anc.Cond, want) {
				return true
			}
			if inElse && condChecksIsNil(anc.Cond, want) {
				return true
			}
		case *ast.BlockStmt:
			// An earlier `if recv == nil { return }` in an enclosing
			// block guards everything after it.
			inner := n
			if i+1 < len(stack) {
				inner = stack[i+1]
			}
			if blockGuardsBefore(anc, inner, want) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Guards do not cross function boundaries.
			return false
		}
	}
	return false
}

// condChecksNotNil reports whether the condition (possibly a
// conjunction) contains `want != nil`.
func condChecksNotNil(cond ast.Expr, want string) bool {
	return condHasNilCheck(cond, want, token.NEQ)
}

// condChecksIsNil reports whether the condition contains `want == nil`.
func condChecksIsNil(cond ast.Expr, want string) bool {
	return condHasNilCheck(cond, want, token.EQL)
}

func condHasNilCheck(cond ast.Expr, want string, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		if exprMatches(be.X, want) && isNilIdent(be.Y) {
			found = true
		}
		if exprMatches(be.Y, want) && isNilIdent(be.X) {
			found = true
		}
		return true
	})
	return found
}

func exprMatches(e ast.Expr, want string) bool { return types.ExprString(e) == want }

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockGuardsBefore reports whether block contains, before the
// statement inner (or the statement containing it), an
// `if want == nil { return ... }` early out.
func blockGuardsBefore(block *ast.BlockStmt, inner ast.Node, want string) bool {
	for _, stmt := range block.List {
		if stmt == inner || containsNode(stmt, inner) {
			return false
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || ifs.Else != nil || !condChecksIsNil(ifs.Cond, want) {
			continue
		}
		if bodyTerminates(ifs.Body) {
			return true
		}
	}
	return false
}

// containsNode reports whether target lies within root's subtree.
func containsNode(root, target ast.Node) bool {
	if root == nil || target == nil {
		return false
	}
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}

// bodyTerminates reports whether the block's final statement leaves
// the function (return or panic).
func bodyTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
