package harness

import (
	"bytes"
	"fmt"
	"testing"
)

// renderAll runs one experiment and returns its three renderings —
// the human text report and the machine CSV and JSON documents — as
// raw bytes. Audit is on: every simulation also runs under event-time
// discipline and traffic-conservation checks.
func renderAll(t *testing.T, name string, o Options) (text, csv, json []byte) {
	t.Helper()
	var textBuf bytes.Buffer
	o.Out = &textBuf
	r, err := RunByName(name, o)
	if err != nil {
		t.Fatalf("%s (scale %d, shards %d): %v", name, o.Scale, o.Shards, err)
	}
	var csvBuf, jsonBuf bytes.Buffer
	if err := r.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	return textBuf.Bytes(), csvBuf.Bytes(), jsonBuf.Bytes()
}

// TestShardedHarnessMatchesSequential is the harness-level equivalence
// guarantee behind the -shards flag: every experiment, rendered as
// text, CSV, and JSON, is byte-for-byte identical whether it ran on
// the sequential engine or the sharded conservative-PDES engine at
// any admissible shard count. This is what lets the serving layer
// treat Shards as a pure execution knob (one cache entry per query
// regardless of engine) and what makes the flag safe to flip on any
// published result.
func TestShardedHarnessMatchesSequential(t *testing.T) {
	for _, scale := range []int{8, 16} {
		for _, name := range Experiments() {
			var wantText, wantCSV, wantJSON []byte
			for _, shards := range []int{1, 2, 4} {
				o := Options{Scale: scale, Apps: []string{"radix"}, Parallel: 4, Shards: shards, Audit: true}
				text, csv, json := renderAll(t, name, o)
				if shards == 1 {
					wantText, wantCSV, wantJSON = text, csv, json
					continue
				}
				id := fmt.Sprintf("%s scale %d shards %d", name, scale, shards)
				if !bytes.Equal(text, wantText) {
					t.Errorf("%s: text report differs from sequential", id)
				}
				if !bytes.Equal(csv, wantCSV) {
					t.Errorf("%s: CSV differs from sequential", id)
				}
				if !bytes.Equal(json, wantJSON) {
					t.Errorf("%s: JSON differs from sequential", id)
				}
			}
		}
	}
}

// TestShardedHarnessAuditClean: the sharded engine stays audit-clean
// (event-time discipline, traffic conservation) across the whole
// experiment suite at the small end of the scale ladder with the
// widest admissible partition that still has multiple CPUs per shard.
func TestShardedHarnessAuditClean(t *testing.T) {
	var buf bytes.Buffer
	for _, name := range Experiments() {
		o := Options{Scale: 64, Apps: []string{"radix"}, Parallel: 4, Shards: 4, Out: &buf, Audit: true}
		if _, err := RunByName(name, o); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
