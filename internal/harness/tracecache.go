package harness

import (
	"sync"

	"repro/internal/apps"
	"repro/internal/trace"
)

// TraceCache shares generated application traces across experiments.
// Workload generation is deterministic for a given (app, cpus, scale),
// and replay never mutates a trace, so one generated trace can back
// every system and every experiment that asks for the same workload.
// The zero value is unusable; a nil *TraceCache disables caching
// (every call generates afresh), which keeps the cache strictly
// opt-in for callers that want cold-generation timings.
type TraceCache struct {
	mu sync.Mutex
	m  map[traceKey]*trace.Trace
}

type traceKey struct {
	app   string
	cpus  int
	scale int
	seed  uint64
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{m: make(map[traceKey]*trace.Trace)}
}

// Len returns the number of cached traces.
func (tc *TraceCache) Len() int {
	if tc == nil {
		return 0
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.m)
}

// generate returns the cached trace for (app, params), generating and
// caching it on first use. A nil receiver generates without caching.
func (tc *TraceCache) generate(app apps.Info, p apps.Params) (*trace.Trace, error) {
	if tc == nil {
		return app.Generate(p)
	}
	key := traceKey{app: app.Name, cpus: p.CPUs, scale: p.Scale, seed: p.Seed}
	tc.mu.Lock()
	tr := tc.m[key]
	tc.mu.Unlock()
	if tr != nil {
		return tr, nil
	}
	tr, err := app.Generate(p)
	if err != nil {
		return nil, err
	}
	tc.mu.Lock()
	tc.m[key] = tr
	tc.mu.Unlock()
	return tr, nil
}
