package harness

import (
	"sync"
	"sync/atomic"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

// TraceCache shares generated application traces across experiments.
// Workload generation is deterministic for a given (app, cpus, scale,
// seed), and replay never mutates a trace, so one materialized trace
// can back every system and every experiment that asks for the same
// workload.
//
// Requests are single-flight: when several workers ask for the same
// key concurrently, exactly one runs the generator (or the disk load)
// and the rest block until its result lands — without single-flight, a
// parallel sweep's workers would each regenerate the same workload and
// race to install it.
//
// A cache built with NewTraceCacheWithStore additionally reads through
// to a content-addressed on-disk trace store (internal/trace/store):
// misses try the store before generating, and generated traces are
// written back, so repeat CLI runs and sibling processes materialize
// workloads from disk instead of re-running generators.
//
// The zero value is unusable; a nil *TraceCache disables caching
// (every call generates afresh), which keeps the cache strictly
// opt-in for callers that want cold-generation timings.
type TraceCache struct {
	mu sync.Mutex
	// m is keyed directly on the store's content-address key — the
	// in-memory and on-disk tiers identify a workload by the same
	// (app, cpus, scale, seed) tuple by construction.
	m map[store.Key]*traceEntry

	// disk is the optional persistent tier (nil = memory only; a nil
	// *store.Store behaves as always-miss, so no nil checks downstream).
	disk *store.Store

	// Counters behind Stats(): how requests resolved. A request is
	// exactly one of hit (completed in-memory entry), coalesced
	// (joined an in-flight materialization), diskHit (this request led
	// a flight satisfied from the on-disk store) or generated (led a
	// flight that ran the generator). inFlight tracks flights whose
	// result has not landed yet.
	hits      atomic.Int64
	coalesced atomic.Int64
	diskHits  atomic.Int64
	generated atomic.Int64
	inFlight  atomic.Int64
}

// TraceCacheStats is a point-in-time snapshot of the cache's request
// counters (all zero for a nil cache).
type TraceCacheStats struct {
	// Hits served from a completed in-memory entry.
	Hits int64 `json:"hits"`
	// Coalesced requests that joined another request's in-flight
	// materialization instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// DiskHits are flights satisfied by the on-disk store.
	DiskHits int64 `json:"disk_hits"`
	// Generated are flights that ran a workload generator.
	Generated int64 `json:"generated"`
	// InFlight is the number of materializations currently running.
	InFlight int64 `json:"in_flight"`
}

// Stats snapshots the cache's request counters.
func (tc *TraceCache) Stats() TraceCacheStats {
	if tc == nil {
		return TraceCacheStats{}
	}
	return TraceCacheStats{
		Hits:      tc.hits.Load(),
		Coalesced: tc.coalesced.Load(),
		DiskHits:  tc.diskHits.Load(),
		Generated: tc.generated.Load(),
		InFlight:  tc.inFlight.Load(),
	}
}

// traceEntry is one in-flight or completed materialization. done closes
// when tr/err are final.
type traceEntry struct {
	done chan struct{}
	tr   *trace.Trace
	err  error
}

// NewTraceCache returns an empty in-memory cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{m: make(map[store.Key]*traceEntry)}
}

// NewTraceCacheWithStore returns a cache backed by an on-disk trace
// store. A nil store is equivalent to NewTraceCache.
func NewTraceCacheWithStore(st *store.Store) *TraceCache {
	tc := NewTraceCache()
	tc.disk = st
	return tc
}

// Len returns the number of completed cached traces.
func (tc *TraceCache) Len() int {
	if tc == nil {
		return 0
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	n := 0
	for _, e := range tc.m {
		select {
		case <-e.done:
			n++
		default:
		}
	}
	return n
}

// generate returns the cached trace for (app, params), materializing
// (disk load, else generation) and caching it on first use; concurrent
// requests for the same key share one materialization. A nil receiver
// generates without caching.
func (tc *TraceCache) generate(app apps.Info, p apps.Params) (*trace.Trace, error) {
	if tc == nil {
		return app.Generate(p)
	}
	key := store.Key{App: app.Name, CPUs: p.CPUs, Scale: p.Scale, Seed: p.Seed}
	tc.mu.Lock()
	if e, ok := tc.m[key]; ok {
		tc.mu.Unlock()
		select {
		case <-e.done:
			tc.hits.Add(1)
		default:
			tc.coalesced.Add(1)
		}
		<-e.done
		return e.tr, e.err
	}
	e := &traceEntry{done: make(chan struct{})}
	tc.m[key] = e
	tc.inFlight.Add(1)
	tc.mu.Unlock()

	var hit bool
	e.tr, hit, e.err = tc.disk.LoadOrGenerate(key, func() (*trace.Trace, error) {
		return app.Generate(p)
	})
	switch {
	case e.err != nil:
		// Failed generations are not cached: drop the entry so a later
		// request (possibly under different conditions) can retry. The
		// waiters blocked on this flight still observe the error.
		tc.mu.Lock()
		delete(tc.m, key)
		tc.mu.Unlock()
	case hit:
		tc.diskHits.Add(1)
	default:
		tc.generated.Add(1)
	}
	tc.inFlight.Add(-1)
	close(e.done)
	return e.tr, e.err
}
