package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTopoSweepStructure(t *testing.T) {
	var buf bytes.Buffer
	r, err := TopoSweep(opts(&buf, "migratory"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systems) != 12 {
		t.Errorf("systems = %d, want 3 systems x 4 fabrics", len(r.Systems))
	}
	out := buf.String()
	for _, want := range []string{"Topology sweep", "maximum per-link load", "CC-NUMA@ring", "MigRep@mesh"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	for _, app := range r.AppOrder {
		for _, sys := range r.Systems {
			if r.Norm(app, sys) <= 0 {
				t.Errorf("%s on %s: nonpositive normalized time", app, sys)
			}
		}
	}
	// The interconnect view must be populated for every run.
	for _, sys := range r.Systems {
		st := r.Runs["migratory"][sys].Stats
		if st.Net == nil || len(st.Net.Links) == 0 {
			t.Fatalf("%s: missing interconnect stats", sys)
		}
	}
	// The paper's argument at link granularity: under migratory sharing
	// the bulk page moves of MigRep load the hottest link strictly more
	// than fine-grain R-NUMA on the multi-hop fabrics.
	for _, topo := range []string{"ring", "mesh"} {
		mr := r.Runs["migratory"]["MigRep@"+topo].Stats.Net.MaxLink()
		rn := r.Runs["migratory"]["R-NUMA@"+topo].Stats.Net.MaxLink()
		if mr.Bytes <= rn.Bytes {
			t.Errorf("%s: MigRep max link %d not above R-NUMA %d", topo, mr.Bytes, rn.Bytes)
		}
	}
}

// TestTopoSweepCrossbarMatchesFig5 pins the compatibility contract at
// the experiment level: the sweep's crossbar column must reproduce the
// Figure 5 numbers exactly.
func TestTopoSweepCrossbarMatchesFig5(t *testing.T) {
	var b1, b2 bytes.Buffer
	sweep, err := TopoSweep(opts(&b1, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	fig5, err := Fig5(opts(&b2, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"CC-NUMA", "MigRep", "R-NUMA"} {
		got := sweep.Norm("radix", sys+"@crossbar")
		want := fig5.Norm("radix", sys)
		if got != want {
			t.Errorf("%s: crossbar sweep norm %v != fig5 norm %v", sys, got, want)
		}
	}
}

// TestTopoSweepDeterministic renders the experiment twice and requires
// byte-identical reports, the property the CSV/golden outputs in CI
// rely on.
func TestTopoSweepDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if _, err := TopoSweep(opts(&b1, "migratory")); err != nil {
		t.Fatal(err)
	}
	if _, err := TopoSweep(opts(&b2, "migratory")); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("two identical sweeps rendered different reports")
	}
}
