// Package harness defines and runs the paper's experiments: Figure 5
// (base comparison), Table 4 (page operations and miss counts), Figure 6
// (fast vs slow page operations), Figure 7 (4x network latency), and
// Figure 8 (R-NUMA page-cache halving with MigRep integration). Each
// experiment runs every application on its systems and normalizes
// execution time against perfect CC-NUMA.
//
// Systems resolve through the dsm registry: every experiment has the
// paper's default set, and Options.Systems overrides it with any list
// of registered system names — including systems added after the
// paper, such as the contention-aware "migrep-contend" — without the
// harness knowing them individually.
//
// An experiment returns a structured Result: one record per (app,
// system, fabric) run carrying normalized time, miss and page-op
// breakdowns, traffic, and interconnect hot-link/bisection stats.
// Rendering is separate from running: WriteText reproduces the
// paper-style tables (locked byte-for-byte by the golden tests),
// WriteCSV and WriteJSON emit the flat records for downstream tooling.
//
// The topology-sweep experiment ("toposweep") goes beyond the paper:
// it re-runs the Figure 5 comparison across interconnect fabrics
// (crossbar, ring, 2D mesh, fat-tree) and reports each run's maximum
// per-link load and bisection traffic from the per-link counters of
// internal/interconnect.
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace/store"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the application inputs (1 = full reproduction
	// size). Tests and benchmarks use larger values.
	Scale int

	// Seed perturbs the deterministic workload generators (0 = the
	// paper's inputs). It participates in the trace store's content
	// address, so distinct seeds are distinct cached workloads.
	Seed uint64

	// Fabric overrides the interconnect topology of every non-baseline
	// run ("" = the experiment's own default, the ideal crossbar).
	// Accepts the config topology names: crossbar, ring, mesh,
	// fattree. Normalization still runs perfect CC-NUMA on the ideal
	// crossbar — the same anchor the topology sweep uses — and the
	// sweep itself rejects an override (it already runs every fabric).
	Fabric string

	// Apps restricts the run to the named applications (nil = the
	// paper's seven).
	Apps []string

	// Systems overrides the experiment's default system set with
	// memory systems named in the dsm registry (nil = the experiment's
	// own defaults). Overridden systems run under the experiment's
	// base timing and thresholds; the topology sweep runs each named
	// system on every fabric.
	Systems []string

	// Scales lists the problem scales the scale-sweep experiment runs
	// (nil = DefaultSweepScales). Ignored by every other experiment,
	// which size themselves from Scale.
	Scales []int

	// Parallel runs the per-application system sets concurrently using
	// this many workers (0 = serial). Simulations are deterministic and
	// independent, so this only affects wall-clock time.
	Parallel int

	// Shards > 1 runs every simulation on the sharded conservative-PDES
	// engine with this many node-partition shards (must evenly divide
	// the cluster's node count). Results are byte-identical to the
	// sequential engine, so Shards — like Parallel — only affects
	// wall-clock time and is excluded from cache keys. Runs with
	// telemetry attached fall back to the sequential engine.
	Shards int

	// Verbose streams per-run progress lines to Out.
	Verbose bool

	// Audit enables the machines' self-auditing mode: event-time
	// discipline is enforced while each simulation runs and the
	// internal/audit conservation checks (traffic ⇄ fabric byte
	// conservation, page-busy monotonicity, directory/cache agreement)
	// run over every finished machine; any violation fails the
	// experiment. Auditing does not change simulated results.
	Audit bool

	// Traces, when non-nil, caches generated application traces keyed
	// by (app, cpus, scale) and shares them across experiments: a run
	// of all five paper experiments generates each workload once
	// instead of once per experiment. Traces are read-only during
	// replay, so sharing is safe even across Parallel workers.
	Traces *TraceCache

	// Telemetry, when non-nil, attaches a telemetry.Collector to every
	// non-baseline run: windowed time series always, the page-operation
	// timeline when TelemetryOptions.Timeline is set. Collectors hang
	// off each Run; Result.WriteTelemetry renders them as artifacts.
	// Collection is observational — reported statistics are
	// byte-identical with or without it.
	Telemetry *TelemetryOptions

	// Progress, when non-nil, receives one line per completed
	// simulation with its wall-clock time (and one per generated
	// trace). Unlike Verbose output it goes to its own writer, so it
	// can stream to stderr while the report goes to stdout.
	Progress io.Writer

	// Out receives the rendered report (required).
	Out io.Writer

	// ctx cancels a run between simulations; set by RunByNameContext
	// so long-running sweeps scheduled by a server can be abandoned
	// when the server drains. nil means "never cancelled".
	ctx context.Context
}

// ctxErr reports the cancellation state of the run's context.
func (o Options) ctxErr() error {
	if o.ctx == nil {
		return nil
	}
	return o.ctx.Err()
}

func (o Options) norm() Options {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Out == nil {
		panic("harness: Options.Out is required")
	}
	return o
}

// appList resolves the selected applications.
func (o Options) appList() ([]apps.Info, error) {
	if len(o.Apps) == 0 {
		return apps.Paper(), nil
	}
	out := make([]apps.Info, 0, len(o.Apps))
	for _, n := range o.Apps {
		i, err := apps.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, i)
	}
	return out, nil
}

// Run is one simulation outcome.
type Run struct {
	App string
	// System is the bare system name ("CC-NUMA"); Label is the run's
	// presentation label, which may add the environment ("MigRep-Slow",
	// "CC-NUMA@ring"). Results key their Runs maps by Label.
	System string
	Label  string
	// Fabric is the interconnect topology the run used.
	Fabric string
	Stats  *stats.Sim
	// Norm is execution time normalized to perfect CC-NUMA on the same
	// application.
	Norm float64
	// Telemetry is the run's collector when Options.Telemetry was set
	// (nil otherwise, and always nil for the normalization baseline).
	Telemetry *telemetry.Collector
}

// Result is a completed experiment: the structured records of every
// (app, system, fabric) run, plus the metadata the renderers need.
// WriteText reproduces the paper-style report, WriteCSV and WriteJSON
// emit the flat Records for downstream tooling.
type Result struct {
	Name string
	// Systems in presentation order.
	Systems []string
	// Runs indexed by app then system.
	Runs map[string]map[string]*Run
	// AppOrder preserves presentation order.
	AppOrder []string

	// Scale and Scales record the problem size(s) the experiment ran,
	// for the run manifest (Scales only for the scale sweep).
	Scale  int
	Scales []int
	// Shards records the engine the runs executed on (0 = sequential,
	// N > 1 = the sharded engine's partition width), for the manifest.
	Shards int
	// Traces content-addresses every workload the experiment replayed:
	// one entry per generated trace, carrying the on-disk store hash.
	Traces []telemetry.TraceRef

	// render writes the experiment's text report; set by the
	// experiment that produced the result.
	render func(w io.Writer, r *Result)
}

// WriteText renders the experiment's text report (headers and tables,
// exactly as the paper presents them) to w.
func (r *Result) WriteText(w io.Writer) {
	if r.render != nil {
		r.render(w, r)
		return
	}
	renderNormTable(w, r)
}

// Norm returns the normalized execution time for (app, system).
func (r *Result) Norm(app, system string) float64 {
	if m := r.Runs[app]; m != nil {
		if run := m[system]; run != nil {
			return run.Norm
		}
	}
	return 0
}

// MeanNorm averages a system's normalized time over all apps.
func (r *Result) MeanNorm(system string) float64 {
	var sum float64
	var n int
	for _, app := range r.AppOrder {
		if v := r.Norm(app, system); v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// systemRun describes one simulation to execute: a system spec plus its
// timing/threshold environment.
type systemRun struct {
	spec dsm.Spec
	tm   config.Timing
	th   config.Thresholds
	// label overrides spec.Name in reports (e.g. "MigRep-Slow").
	label string
	// net selects the interconnect fabric; the zero value is the ideal
	// crossbar every pre-topology experiment uses.
	net config.Network
}

func (s systemRun) name() string {
	if s.label != "" {
		return s.label
	}
	return s.spec.Name
}

// systemRuns resolves an Options.Systems override through the dsm
// registry into runs under the given timing/threshold environment, or
// returns the experiment's defaults when no override is set. Unknown
// names fail with the registry's error, which lists every registered
// system.
func (o Options) systemRuns(def []systemRun, tm config.Timing, th config.Thresholds) ([]systemRun, error) {
	if len(o.Systems) == 0 {
		return def, nil
	}
	specs, err := dsm.ResolveSpecs(o.Systems, th)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	out := make([]systemRun, 0, len(specs))
	for _, spec := range specs {
		out = append(out, systemRun{spec: spec, tm: tm, th: th})
	}
	return out, nil
}

// runExperiment generates each app's trace once and replays it on every
// system in the set.
func runExperiment(name string, systems []systemRun, o Options) (*Result, error) {
	o = o.norm()
	list, err := o.appList()
	if err != nil {
		return nil, err
	}
	cl := config.DefaultCluster()
	if o.Fabric != "" {
		net := config.Network{Topology: o.Fabric}
		if err := net.Validate(cl.Nodes); err != nil {
			return nil, fmt.Errorf("harness: -fabric %q: %w", o.Fabric, err)
		}
		for i := range systems {
			systems[i].net = net
		}
	}
	res := &Result{Name: name, Runs: map[string]map[string]*Run{}}
	for _, s := range systems {
		res.Systems = append(res.Systems, s.name())
	}

	// Every experiment normalizes to perfect CC-NUMA under the base
	// timing model.
	baseline := systemRun{spec: dsm.PerfectCCNUMA(), tm: config.Default(), th: config.DefaultThresholds()}

	for _, app := range list {
		if err := o.ctxErr(); err != nil {
			return nil, fmt.Errorf("harness: %s cancelled: %w", name, err)
		}
		params := apps.Params{CPUs: cl.TotalCPUs(), Scale: o.Scale, Seed: o.Seed}
		genStart := time.Now()
		tr, err := o.Traces.generate(app, params)
		if err != nil {
			return nil, fmt.Errorf("harness: generating %s: %w", app.Name, err)
		}
		key := store.Key{App: app.Name, CPUs: params.CPUs, Scale: params.Scale, Seed: params.Seed}
		res.Traces = append(res.Traces, telemetry.TraceRef{
			App: key.App, CPUs: key.CPUs, Scale: key.Scale, Seed: key.Seed, Hash: key.Filename(),
		})
		if o.Progress != nil {
			fmt.Fprintf(o.Progress, "# trace %s scale %d ready in %.2fs (%d ops)\n",
				app.Name, o.Scale, time.Since(genStart).Seconds(), tr.Ops())
		}
		if o.Verbose {
			fmt.Fprintf(o.Out, "# %s: %d ops, %.1f MB footprint\n",
				app.Name, tr.Ops(), float64(tr.Footprint)/(1<<20))
		}
		all := append([]systemRun{baseline}, systems...)
		sims := make([]*stats.Sim, len(all))
		cols := make([]*telemetry.Collector, len(all))
		if err := forEach(o.ctx, all, o.Parallel, func(i int, s systemRun) error {
			scl := cl
			scl.Net = s.net
			ro := dsm.RunOptions{Audit: o.Audit, Shards: o.Shards}
			if o.Telemetry != nil && i > 0 {
				cols[i] = telemetry.New(telemetry.Config{
					Window: o.Telemetry.Window, Timeline: o.Telemetry.Timeline,
				})
				ro.Telemetry = cols[i]
			}
			runStart := time.Now()
			sim, err := dsm.RunWithOptions(tr, s.spec, scl, s.tm, s.th, ro)
			if err != nil {
				return fmt.Errorf("harness: %s on %s: %w", app.Name, s.name(), err)
			}
			if o.Progress != nil {
				fmt.Fprintf(o.Progress, "# run %s/%s/%s done in %.2fs\n",
					name, app.Name, s.name(), time.Since(runStart).Seconds())
			}
			sims[i] = sim
			return nil
		}); err != nil {
			return nil, err
		}
		base := sims[0]
		res.AppOrder = append(res.AppOrder, app.Name)
		res.Runs[app.Name] = map[string]*Run{}
		for i, s := range systems {
			sim := sims[i+1]
			res.Runs[app.Name][s.name()] = &Run{
				App: app.Name, System: s.spec.Name, Label: s.name(), Fabric: s.net.Kind(),
				Stats: sim, Norm: sim.Normalized(base), Telemetry: cols[i+1],
			}
			if o.Verbose {
				fmt.Fprintf(o.Out, "#   %-22s %8.3f (exec %d cycles)\n",
					s.name(), sim.Normalized(base), sim.ExecCycles)
			}
		}
	}
	res.Scale = o.Scale
	if o.Shards > 1 {
		res.Shards = o.Shards
	}
	return res, nil
}

// forEach runs f over items, optionally with a worker pool. A non-nil
// ctx stops dispatching new items once cancelled (items already running
// complete normally).
func forEach(ctx context.Context, items []systemRun, workers int, f func(int, systemRun) error) error {
	cancelled := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	if workers <= 1 {
		for i, it := range items {
			if err := cancelled(); err != nil {
				return err
			}
			if err := f(i, it); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	errs := make([]error, len(items))
	for i, it := range items {
		if err := cancelled(); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, it systemRun) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = f(i, it)
		}(i, it)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// renderNormTable prints a normalized-execution-time table: one row per
// app, one column per system, plus the mean row the paper quotes.
func renderNormTable(w io.Writer, r *Result) {
	width := 10
	fmt.Fprintf(w, "%-10s", "app")
	for _, s := range r.Systems {
		fmt.Fprintf(w, " %*s", width+len(s)-len(s), s)
	}
	fmt.Fprintln(w)
	for _, app := range r.AppOrder {
		fmt.Fprintf(w, "%-10s", app)
		for _, s := range r.Systems {
			fmt.Fprintf(w, " %*.3f", len(s), r.Norm(app, s))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "mean")
	for _, s := range r.Systems {
		fmt.Fprintf(w, " %*.3f", len(s), r.MeanNorm(s))
	}
	fmt.Fprintln(w)
}

// SortedApps returns the result's applications sorted by name (test
// helper).
func (r *Result) SortedApps() []string {
	out := append([]string(nil), r.AppOrder...)
	sort.Strings(out)
	return out
}

// header prints an experiment banner.
func header(w io.Writer, title string) {
	fmt.Fprintln(w, strings.Repeat("=", 72))
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", 72))
}
