package harness

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
)

// Query identifies one memoizable experiment invocation: everything
// that determines the flat Record output of a run — which experiment,
// on which applications and systems, over which fabric, at which
// problem scale(s), from which generator seed. It is the unit the
// serving layer (internal/serve) caches and coalesces on, and it maps
// one-to-one onto the cmd/experiments flags, so a served response is
// byte-identical to the equivalent CLI -json output.
//
// The zero value normalizes to the full Figure 5 comparison at scale 1.
type Query struct {
	// Experiment is any RunByName name ("fig5", "table4", ...,
	// "toposweep", "scalesweep"), or "all" for the Experiments() set.
	// Empty defaults to "fig5".
	Experiment string `json:"experiment,omitempty"`

	// Apps restricts the run to the named applications (empty = the
	// paper's seven).
	Apps []string `json:"apps,omitempty"`

	// Systems overrides the experiment's system set by dsm-registry
	// name (empty = the experiment's defaults).
	Systems []string `json:"systems,omitempty"`

	// Fabric overrides the interconnect topology (see Options.Fabric);
	// empty keeps the experiment's default.
	Fabric string `json:"fabric,omitempty"`

	// Scale is the problem-size divisor (values below 1 normalize to
	// 1). Ignored by "scalesweep", which sizes itself from Scales.
	Scale int `json:"scale,omitempty"`

	// Scales is the scale ladder for "scalesweep" (empty = the default
	// ladder); dropped by normalization for every other experiment.
	Scales []int `json:"scales,omitempty"`

	// Seed perturbs the workload generators.
	Seed uint64 `json:"seed,omitempty"`

	// Shards selects the sharded conservative-PDES engine (values
	// below 2 normalize to 0, the sequential engine). Sharded results
	// are byte-identical to sequential ones, so Shards is an execution
	// knob, not an identity field: it is excluded from Canonical and
	// two queries differing only in Shards share one cache entry.
	Shards int `json:"shards,omitempty"`
}

// Normalize canonicalizes the query in place-free form: names are
// trimmed (systems also lowercased, matching the registry's
// case-insensitive lookup), defaults are made explicit, and fields the
// selected experiment ignores are dropped — so two queries that would
// produce identical output canonicalize to identical keys.
func (q Query) Normalize() Query {
	q.Experiment = strings.ToLower(strings.TrimSpace(q.Experiment))
	if q.Experiment == "" {
		q.Experiment = "fig5"
	}
	q.Apps = trimEach(q.Apps, false)
	q.Systems = trimEach(q.Systems, true)
	q.Fabric = strings.ToLower(strings.TrimSpace(q.Fabric))
	if q.Experiment == "scalesweep" {
		// The sweep sizes itself from Scales; Scale is ignored.
		q.Scale = 0
		if len(q.Scales) == 0 {
			q.Scales = DefaultSweepScales()
		}
	} else {
		if q.Scale < 1 {
			q.Scale = 1
		}
		q.Scales = nil
	}
	if q.Shards < 2 {
		q.Shards = 0
	}
	return q
}

// trimEach trims every element, optionally lowercasing, dropping
// empties; nil stays nil so "unset" and "set to nothing" coincide.
func trimEach(in []string, lower bool) []string {
	var out []string
	for _, s := range in {
		s = strings.TrimSpace(s)
		if lower {
			s = strings.ToLower(s)
		}
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Validate rejects queries that could not run: unknown experiment,
// application, system or fabric names, non-positive sweep scales, and
// fabric overrides on the topology sweep. It expects a normalized
// query (Validate on a raw query may miss aliases Normalize folds).
func (q Query) Validate() error {
	known := false
	for _, n := range append(Experiments(), "scalesweep", "all") {
		if q.Experiment == n {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("harness: unknown experiment %q (have %v, scalesweep, all)", q.Experiment, Experiments())
	}
	for _, a := range q.Apps {
		if _, err := apps.ByName(a); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	}
	if len(q.Systems) > 0 {
		if _, err := dsm.ResolveSpecs(q.Systems, config.DefaultThresholds()); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	}
	if q.Fabric != "" {
		if err := (config.Network{Topology: q.Fabric}).Validate(config.DefaultCluster().Nodes); err != nil {
			return fmt.Errorf("harness: fabric %q: %w", q.Fabric, err)
		}
		if q.Experiment == "toposweep" || q.Experiment == "all" {
			return fmt.Errorf("harness: experiment %q already runs every fabric; drop the fabric override", q.Experiment)
		}
	}
	for _, sc := range q.Scales {
		if sc < 1 {
			return fmt.Errorf("harness: scalesweep: invalid scale %d", sc)
		}
	}
	if q.Shards > 0 {
		if nodes := config.DefaultCluster().Nodes; nodes%q.Shards != 0 {
			return fmt.Errorf("harness: %d shards do not evenly partition %d nodes", q.Shards, nodes)
		}
	}
	return nil
}

// Canonical renders the normalized query as a stable, unambiguous key
// string — the cache-key canonicalization the result-memoization layer
// hashes. List order is preserved (it determines record order in the
// output), and every field appears even when defaulted, so the
// encoding never aliases two distinct queries.
func (q Query) Canonical() string {
	q = q.Normalize()
	var b strings.Builder
	b.WriteString("experiment=")
	b.WriteString(q.Experiment)
	b.WriteString("\x00apps=")
	b.WriteString(strings.Join(q.Apps, ","))
	b.WriteString("\x00systems=")
	b.WriteString(strings.Join(q.Systems, ","))
	b.WriteString("\x00fabric=")
	b.WriteString(q.Fabric)
	fmt.Fprintf(&b, "\x00scale=%d", q.Scale)
	b.WriteString("\x00scales=")
	for i, sc := range q.Scales {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(sc))
	}
	fmt.Fprintf(&b, "\x00seed=%d", q.Seed)
	return b.String()
}

// ExperimentNames resolves the query's experiment selector to the run
// list: the Experiments() set for "all", else the single name.
func (q Query) ExperimentNames() []string {
	if strings.ToLower(strings.TrimSpace(q.Experiment)) == "all" {
		return Experiments()
	}
	return []string{q.Normalize().Experiment}
}

// Options maps the query onto run options, inheriting the execution
// knobs (parallelism, audit, caches, writers) from base. The identity
// fields (scale, scales, seed, apps, systems, fabric) come from the
// query alone.
func (q Query) Options(base Options) Options {
	q = q.Normalize()
	base.Scale = q.Scale
	base.Scales = append([]int(nil), q.Scales...)
	base.Seed = q.Seed
	base.Apps = append([]string(nil), q.Apps...)
	base.Systems = append([]string(nil), q.Systems...)
	base.Fabric = q.Fabric
	if q.Shards > 0 {
		// An execution knob like Parallel: it picks the engine, never
		// the results, so it rides with the run without entering the
		// query's canonical key.
		base.Shards = q.Shards
	}
	return base
}
