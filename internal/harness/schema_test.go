package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRecordSchemaPinned round-trips a record through the JSON layer
// and pins the schema field: every emitted record names the exact
// document version, a decoded record carries it back unchanged, and
// the constant itself cannot drift silently — consumers (the serve
// result keys, downstream tooling) key on the literal string.
func TestRecordSchemaPinned(t *testing.T) {
	if RecordSchema != "repro-record/v1" {
		t.Fatalf("RecordSchema = %q; bumping it orphans every memoized result and "+
			"breaks downstream consumers — if intentional, update this pin and the serve layer together", RecordSchema)
	}

	var buf bytes.Buffer
	r, err := Fig5(opts(&buf, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := r.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}

	// Every record in the emitted document declares the schema...
	var recs []Record
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("no records emitted")
	}
	for i, rec := range recs {
		if rec.Schema != RecordSchema {
			t.Errorf("record %d: schema = %q, want %q", i, rec.Schema, RecordSchema)
		}
	}

	// ...as the raw field name "schema", first in the object, so a
	// reader can dispatch on it without decoding the whole record.
	first := strings.TrimSpace(out.String())
	if !strings.HasPrefix(first, "[\n  {\n    \"schema\": \"repro-record/v1\"") {
		t.Errorf("schema is not the leading field:\n%.120s", first)
	}

	// And the round trip is lossless: re-marshalling the decoded
	// records reproduces the emitted bytes.
	again, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(again, '\n'), out.Bytes()) {
		t.Error("records did not round-trip to identical JSON")
	}
}
