package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// TelemetryOptions configures the collectors Options.Telemetry attaches
// to every run.
type TelemetryOptions struct {
	// Window is the width of one time window in simulated cycles
	// (<= 0 selects telemetry.DefaultWindow).
	Window int64

	// Timeline additionally records each run's page-operation event
	// timeline, exported as Chrome trace-event JSON and CSV.
	Timeline bool
}

// artifactName flattens an experiment/app/label tuple into a filename
// stem: anything outside [A-Za-z0-9._-] becomes '-', so labels like
// "CC-NUMA@ring" and "migrep@s8" stay readable and filesystem-safe.
func artifactName(parts ...string) string {
	mapped := make([]string, len(parts))
	for i, p := range parts {
		mapped[i] = strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '.', r == '_', r == '-':
				return r
			default:
				return '-'
			}
		}, p)
	}
	return strings.Join(mapped, "_")
}

// WriteTelemetry writes the result's telemetry artifacts into dir
// (created if missing): per run a windowed-series CSV
// (<experiment>_<app>_<label>.windows.csv) and, when timelines were
// recorded, a Chrome trace-event JSON (.timeline.json, loadable in
// Perfetto or chrome://tracing) and a compact CSV (.timeline.csv);
// plus one run manifest (<experiment>.manifest.json) identifying the
// experiment, systems, fabrics, scale, seed, replayed trace hashes,
// build, and the given wall time. Runs without a collector (telemetry
// was off) are skipped.
func (r *Result) WriteTelemetry(dir string, wall time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var window int64
	timeline := false
	for _, app := range r.AppOrder {
		for _, sys := range r.Systems {
			run := r.Runs[app][sys]
			if run == nil || run.Telemetry == nil {
				continue
			}
			col := run.Telemetry
			window = col.WindowCycles()
			stem := artifactName(r.Name, app, run.Label)
			if err := writeArtifact(filepath.Join(dir, stem+".windows.csv"), col.WriteWindowsCSV); err != nil {
				return err
			}
			if col.TimelineEnabled() {
				timeline = true
				if err := writeArtifact(filepath.Join(dir, stem+".timeline.json"), col.WriteChromeTrace); err != nil {
					return err
				}
				if err := writeArtifact(filepath.Join(dir, stem+".timeline.csv"), col.WriteTimelineCSV); err != nil {
					return err
				}
			}
		}
	}
	man := r.Manifest(wall)
	man.WindowCycles = window
	man.Timeline = timeline
	return man.WriteFile(filepath.Join(dir, artifactName(r.Name)+".manifest.json"))
}

// Manifest builds the run manifest describing this result: experiment
// and system identity, fabrics, scale(s), seed, and the content hashes
// of every replayed trace, stamped with the current build metadata and
// the given wall time.
func (r *Result) Manifest(wall time.Duration) telemetry.Manifest {
	man := telemetry.NewManifestAt(time.Now())
	man.Experiment = r.Name
	man.Systems = append([]string(nil), r.Systems...)
	man.Fabric = r.fabrics()
	man.Scale = r.Scale
	man.Scales = append([]int(nil), r.Scales...)
	man.Shards = r.Shards
	man.Traces = append([]telemetry.TraceRef(nil), r.Traces...)
	if len(r.Traces) > 0 {
		man.Seed = r.Traces[0].Seed
	}
	if len(r.AppOrder) == 1 {
		man.App = r.AppOrder[0]
	}
	man.WallSeconds = wall.Seconds()
	return man
}

// fabrics joins the distinct fabrics the result's runs used, in first-
// appearance order.
func (r *Result) fabrics() string {
	var out []string
	for _, app := range r.AppOrder {
		for _, sys := range r.Systems {
			if run := r.Runs[app][sys]; run != nil {
				found := false
				for _, f := range out {
					if f == run.Fabric {
						found = true
						break
					}
				}
				if !found {
					out = append(out, run.Fabric)
				}
			}
		}
	}
	return strings.Join(out, ",")
}

// writeArtifact creates path and streams one renderer into it.
func writeArtifact(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
