package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

// countingApp returns an apps.Info whose generator counts invocations
// and whose output varies with params, so cache keying is observable.
func countingApp(name string, calls *atomic.Int64) apps.Info {
	return apps.Info{
		Name: name,
		Generate: func(p apps.Params) (*trace.Trace, error) {
			calls.Add(1)
			tr := &trace.Trace{
				Name:      fmt.Sprintf("%s-c%d-s%d-x%d", name, p.CPUs, p.Scale, p.Seed),
				CPUs:      make([]trace.Stream, p.CPUs),
				Footprint: 1 << 20,
			}
			for c := 0; c < p.CPUs; c++ {
				tr.CPUs[c] = trace.StreamOf(trace.Op{Kind: trace.Read, Arg: uint64(p.Scale + c)})
			}
			return tr, nil
		},
	}
}

// TestTraceCacheSingleFlight is the thundering-herd regression test:
// many workers requesting the same key concurrently must trigger
// exactly ONE generation, and all workers must get that one trace.
func TestTraceCacheSingleFlight(t *testing.T) {
	var calls atomic.Int64
	app := countingApp("herd", &calls)
	tc := NewTraceCache()

	const workers = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
		got   [workers]*trace.Trace
	)
	start.Add(workers)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-gate // maximize overlap: all workers request at once
			tr, err := tc.generate(app, apps.Params{CPUs: 4, Scale: 8})
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = tr
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("generator ran %d times under %d concurrent requests, want exactly 1", n, workers)
	}
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Errorf("worker %d got a different trace pointer", i)
		}
	}
	if tc.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", tc.Len())
	}
}

// TestTraceCacheKeysOnParams: distinct (cpus, scale, seed) tuples are
// distinct cache slots.
func TestTraceCacheKeysOnParams(t *testing.T) {
	var calls atomic.Int64
	app := countingApp("keys", &calls)
	tc := NewTraceCache()
	params := []apps.Params{
		{CPUs: 4, Scale: 8},
		{CPUs: 8, Scale: 8},
		{CPUs: 4, Scale: 16},
		{CPUs: 4, Scale: 8, Seed: 7},
	}
	for _, p := range params {
		for rep := 0; rep < 3; rep++ {
			if _, err := tc.generate(app, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := calls.Load(); n != int64(len(params)) {
		t.Errorf("generator ran %d times, want %d (one per distinct key)", n, len(params))
	}
}

// TestTraceCacheErrorNotCached: a failed generation propagates to every
// waiter of that flight but does not poison the key.
func TestTraceCacheErrorNotCached(t *testing.T) {
	var calls atomic.Int64
	fail := true
	app := apps.Info{
		Name: "flaky",
		Generate: func(p apps.Params) (*trace.Trace, error) {
			calls.Add(1)
			if fail {
				return nil, fmt.Errorf("transient")
			}
			return &trace.Trace{Name: "ok", CPUs: make([]trace.Stream, p.CPUs)}, nil
		},
	}
	tc := NewTraceCache()
	if _, err := tc.generate(app, apps.Params{CPUs: 2, Scale: 1}); err == nil {
		t.Fatal("expected error")
	}
	fail = false
	if _, err := tc.generate(app, apps.Params{CPUs: 2, Scale: 1}); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("generator ran %d times, want 2 (failure not cached)", n)
	}
}

// TestTraceCacheReadsThroughStore: with a disk tier, the first process
// generation warms the store and a fresh cache (fresh process) loads
// from disk without generating.
func TestTraceCacheReadsThroughStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	app := countingApp("disk", &calls)
	p := apps.Params{CPUs: 4, Scale: 8}

	cold := NewTraceCacheWithStore(st)
	tr1, err := cold.generate(app, p)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("cold path generated %d times, want 1", calls.Load())
	}

	warm := NewTraceCacheWithStore(st) // a "new process"
	tr2, err := warm.generate(app, p)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("warm cache still ran the generator (%d calls total), want disk hit", n)
	}
	if !tr1.Equal(tr2) {
		t.Error("disk-loaded trace differs from generated")
	}
}

// TestTraceCacheNilDiskStore: NewTraceCacheWithStore(nil) degrades to
// the memory-only cache.
func TestTraceCacheNilDiskStore(t *testing.T) {
	var calls atomic.Int64
	tc := NewTraceCacheWithStore(nil)
	app := countingApp("nildisk", &calls)
	for i := 0; i < 2; i++ {
		if _, err := tc.generate(app, apps.Params{CPUs: 2, Scale: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("generator ran %d times, want 1", calls.Load())
	}
}

// TestTraceCacheStats pins the observability counters: each request
// resolves as exactly one of hit / coalesced / disk-hit / generated,
// and the snapshot reflects the split.
func TestTraceCacheStats(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	app := countingApp("stats", &calls)
	p := apps.Params{CPUs: 4, Scale: 8}

	cold := NewTraceCacheWithStore(st)
	if _, err := cold.generate(app, p); err != nil { // generated
		t.Fatal(err)
	}
	if _, err := cold.generate(app, p); err != nil { // hit
		t.Fatal(err)
	}
	s := cold.Stats()
	if s.Generated != 1 || s.Hits != 1 || s.DiskHits != 0 || s.InFlight != 0 {
		t.Fatalf("cold cache stats = %+v, want 1 generated, 1 hit", s)
	}

	warm := NewTraceCacheWithStore(st) // fresh process, warm disk
	if _, err := warm.generate(app, p); err != nil {
		t.Fatal(err)
	}
	if s := warm.Stats(); s.DiskHits != 1 || s.Generated != 0 {
		t.Fatalf("warm cache stats = %+v, want 1 disk hit, 0 generated", s)
	}

	// The herd case: 32 concurrent requests for one cold key split into
	// one leader (generated) and a mix of coalesced and late hits.
	herd := NewTraceCache()
	const workers = 32
	var wg sync.WaitGroup
	wg.Add(workers)
	gate := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			<-gate
			if _, err := herd.generate(app, apps.Params{CPUs: 2, Scale: 2}); err != nil {
				t.Error(err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	s = herd.Stats()
	if s.Generated != 1 {
		t.Fatalf("herd stats = %+v, want exactly 1 generated", s)
	}
	if s.Hits+s.Coalesced != workers-1 {
		t.Fatalf("herd stats = %+v: hits+coalesced = %d, want %d", s, s.Hits+s.Coalesced, workers-1)
	}
	if s.InFlight != 0 {
		t.Fatalf("herd stats = %+v: in-flight after completion", s)
	}

	// A nil cache answers zeroes rather than panicking.
	var nilCache *TraceCache
	if s := nilCache.Stats(); s != (TraceCacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", s)
	}
}
