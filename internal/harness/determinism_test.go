package harness

import (
	"bytes"
	"testing"
)

// fig5Sweep runs the golden-configuration Figure 5 sweep with the given
// worker count and returns the rendered report and the CSV rows.
func fig5Sweep(t *testing.T, parallel int) (report, csv []byte) {
	t.Helper()
	var buf bytes.Buffer
	o := goldenOptions(&buf)
	o.Parallel = parallel
	r, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	var rows bytes.Buffer
	if err := r.WriteCSV(&rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rows.Bytes()
}

// TestSweepDeterministicAcrossWorkers locks in that the harness worker
// pool only affects wall-clock time: the rendered report and the CSV
// records of the Figure 5 sweep are byte-identical whether the
// simulations run serially or on 4 or 8 workers, and across repeated
// runs. Simulations are independent deterministic machines, so any
// drift here means shared mutable state leaked between runs (e.g.
// through the shared trace or a results race).
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-run determinism sweep in -short mode")
	}
	refReport, refCSV := fig5Sweep(t, 1)
	for _, parallel := range []int{1, 4, 8} {
		report, csv := fig5Sweep(t, parallel)
		if !bytes.Equal(report, refReport) {
			t.Errorf("Parallel=%d report differs from serial run\n%s",
				parallel, firstDiff(string(report), string(refReport)))
		}
		if !bytes.Equal(csv, refCSV) {
			t.Errorf("Parallel=%d CSV differs from serial run\n%s",
				parallel, firstDiff(string(csv), string(refCSV)))
		}
	}
}
