package harness

import (
	"context"
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
)

// baseSystemRuns builds the default Figure 5 systems under a
// timing/threshold environment.
func baseSystemRuns(tm config.Timing, th config.Thresholds) []systemRun {
	var out []systemRun
	for _, s := range dsm.AllBaseSystems() {
		out = append(out, systemRun{spec: s, tm: tm, th: th})
	}
	return out
}

// Fig5 reproduces Figure 5: base performance of CC-NUMA, Rep, Mig,
// MigRep, R-NUMA and R-NUMA-Inf, normalized to perfect CC-NUMA.
func Fig5(o Options) (*Result, error) {
	tm, th := config.Default(), config.DefaultThresholds()
	systems, err := o.systemRuns(baseSystemRuns(tm, th), tm, th)
	if err != nil {
		return nil, err
	}
	r, err := runExperiment("fig5", systems, o)
	if err != nil {
		return nil, err
	}
	r.render = func(w io.Writer, r *Result) {
		header(w, "Figure 5: base normalized execution time (vs perfect CC-NUMA)")
		renderNormTable(w, r)
	}
	r.WriteText(o.Out)
	return r, nil
}

// Table4 reproduces Table 4: per-node page operations and per-node
// remote misses (overall, with capacity/conflict in parentheses) for
// CC-NUMA, CC-NUMA+MigRep and R-NUMA.
func Table4(o Options) (*Result, error) {
	tm, th := config.Default(), config.DefaultThresholds()
	def := []systemRun{
		{spec: dsm.CCNUMA(), tm: tm, th: th},
		{spec: dsm.MigRep(), tm: tm, th: th},
		{spec: dsm.RNUMA(), tm: tm, th: th},
	}
	systems, err := o.systemRuns(def, tm, th)
	if err != nil {
		return nil, err
	}
	overridden := len(o.Systems) > 0
	r, err := runExperiment("table4", systems, o)
	if err != nil {
		return nil, err
	}
	r.render = func(w io.Writer, r *Result) {
		if overridden {
			// The paper's column layout names its three systems; an
			// overridden set gets the generic normalized table.
			header(w, "Table 4 (system override): normalized execution time")
			renderNormTable(w, r)
			return
		}
		header(w, "Table 4: per-node page operations and remote misses (x1000)")
		fmt.Fprintf(w, "%-10s %9s %11s %10s | %14s %16s %12s\n",
			"app", "migration", "replication", "relocation", "CC-NUMA", "CC-NUMA+MigRep", "R-NUMA")
		for _, app := range r.AppOrder {
			mr := r.Runs[app]["MigRep"].Stats
			rn := r.Runs[app]["R-NUMA"].Stats
			cc := r.Runs[app]["CC-NUMA"].Stats
			row := func(s *stats.Sim) string {
				return fmt.Sprintf("%.0f (%.0f)",
					s.PerNodeRemoteMisses()/1000,
					s.PerNodeRemoteMissesByClass(stats.CapacityConflict)/1000)
			}
			fmt.Fprintf(w, "%-10s %9.0f %11.0f %10.0f | %14s %16s %12s\n",
				app,
				mr.PerNodePageOps(stats.Migration),
				mr.PerNodePageOps(stats.Replication),
				rn.PerNodePageOps(stats.Relocation),
				row(cc), row(mr), row(rn))
		}
	}
	r.WriteText(o.Out)
	return r, nil
}

// Fig6 reproduces Figure 6: MigRep and R-NUMA under fast and slow page
// operation support. Slow systems pay 10x traps and TLB shootdowns plus
// extra copy time, and use the raised thresholds of Section 6.2. A
// system override runs the named systems under both environments.
func Fig6(o Options) (*Result, error) {
	fastTM, fastTH := config.Default(), config.DefaultThresholds()
	slowTM, slowTH := config.Slow(), config.SlowThresholds()
	def := []systemRun{
		{spec: dsm.MigRep(), tm: fastTM, th: fastTH, label: "MigRep-Fast"},
		{spec: dsm.MigRep(), tm: slowTM, th: slowTH, label: "MigRep-Slow"},
		{spec: dsm.RNUMA(), tm: fastTM, th: fastTH, label: "R-NUMA-Fast"},
		{spec: dsm.RNUMA(), tm: slowTM, th: slowTH, label: "R-NUMA-Slow"},
	}
	systems := def
	if len(o.Systems) > 0 {
		fasts, err := dsm.ResolveSpecs(o.Systems, fastTH)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		slows, err := dsm.ResolveSpecs(o.Systems, slowTH)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		systems = nil
		for i := range fasts {
			systems = append(systems,
				systemRun{spec: fasts[i], tm: fastTM, th: fastTH, label: fasts[i].Name + "-Fast"},
				systemRun{spec: slows[i], tm: slowTM, th: slowTH, label: slows[i].Name + "-Slow"})
		}
	}
	r, err := runExperiment("fig6", systems, o)
	if err != nil {
		return nil, err
	}
	r.render = func(w io.Writer, r *Result) {
		header(w, "Figure 6: sensitivity to page operation overhead (vs perfect CC-NUMA)")
		renderNormTable(w, r)
	}
	r.WriteText(o.Out)
	return r, nil
}

// Fig7 reproduces Figure 7: CC-NUMA, MigRep and R-NUMA with the network
// latency scaled 4x (remote:local ratio of 16).
func Fig7(o Options) (*Result, error) {
	tm := config.Default().ScaleNetwork(4)
	th := config.DefaultThresholds()
	def := []systemRun{
		{spec: dsm.CCNUMA(), tm: tm, th: th},
		{spec: dsm.MigRep(), tm: tm, th: th},
		{spec: dsm.RNUMA(), tm: tm, th: th},
	}
	systems, err := o.systemRuns(def, tm, th)
	if err != nil {
		return nil, err
	}
	r, err := runExperiment("fig7", systems, o)
	if err != nil {
		return nil, err
	}
	r.render = func(w io.Writer, r *Result) {
		header(w, "Figure 7: 4x network latency (vs perfect CC-NUMA at base latency)")
		renderNormTable(w, r)
	}
	r.WriteText(o.Out)
	return r, nil
}

// Fig8 reproduces Figure 8: R-NUMA with a halved page cache, with and
// without integrated MigRep (relocation delayed by 32000 misses), against
// CC-NUMA, MigRep and base R-NUMA.
func Fig8(o Options) (*Result, error) {
	tm, th := config.Default(), config.DefaultThresholds()
	// The paper delays relocation by one full reset interval (32000
	// misses), several times the R-NUMA switching threshold, so that
	// migration/replication gets the first shot at a page while hot
	// pages still relocate eventually. Our scaled inputs see far fewer
	// misses per page, so the delay keeps the same ratio to the
	// switching threshold (32000 = 1000x of 32 at paper scale is
	// unreachable here; 8x preserves the mechanism without starving
	// relocation entirely). The "rnuma-half-migrep" registry entry
	// encodes the same 8x rule.
	delay := th.RNUMAThreshold * 8
	def := []systemRun{
		{spec: dsm.CCNUMA(), tm: tm, th: th},
		{spec: dsm.MigRep(), tm: tm, th: th},
		{spec: dsm.RNUMAHalf(), tm: tm, th: th},
		{spec: dsm.RNUMAHalfMigRep(delay), tm: tm, th: th},
		{spec: dsm.RNUMA(), tm: tm, th: th},
	}
	systems, err := o.systemRuns(def, tm, th)
	if err != nil {
		return nil, err
	}
	r, err := runExperiment("fig8", systems, o)
	if err != nil {
		return nil, err
	}
	r.render = func(w io.Writer, r *Result) {
		header(w, "Figure 8: R-NUMA page-cache halving and MigRep integration")
		renderNormTable(w, r)
	}
	r.WriteText(o.Out)
	return r, nil
}

// Experiments lists the experiment names an "all" run executes: the
// paper's figures and tables plus the topology sweep. The scale sweep
// ("scalesweep") is runnable by name but deliberately not part of
// "all": it re-runs Figure 5 at several problem scales, which both
// multiplies runtime and keyed-output volume, and an "all" pass is the
// baseline whose text/CSV/JSON must stay comparable across PRs.
func Experiments() []string {
	return []string{"fig5", "table4", "fig6", "fig7", "fig8", "toposweep"}
}

// RunByNameContext is RunByName with cancellation: the run stops
// scheduling new simulations once ctx is cancelled and returns the
// context's error. Simulations already executing finish — the engine
// has no preemption points — so cancellation latency is one
// simulation, not one experiment. This is the entry point a serving
// layer wants: a drained server abandons queued sweeps without
// killing the process.
func RunByNameContext(ctx context.Context, name string, o Options) (*Result, error) {
	o.ctx = ctx
	return RunByName(name, o)
}

// RunByName dispatches one experiment (any Experiments() name, plus
// "scalesweep").
func RunByName(name string, o Options) (*Result, error) {
	switch name {
	case "fig5":
		return Fig5(o)
	case "table4":
		return Table4(o)
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "fig8":
		return Fig8(o)
	case "toposweep":
		return TopoSweep(o)
	case "scalesweep":
		return ScaleSweep(o)
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v, scalesweep)", name, Experiments())
	}
}
