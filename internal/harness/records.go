package harness

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// RecordSchema identifies the Record document format, so JSON emitted
// by the CLI and served by cmd/dsmserve is self-describing. Bump it on
// any field change; it participates in the serving layer's result
// cache key, so a schema change orphans memoized responses instead of
// replaying stale shapes.
const RecordSchema = "repro-record/v1"

// Record is one flattened (application, system, fabric) run of an
// experiment: the row every machine-readable renderer emits.
type Record struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	App        string `json:"app"`
	// System is the bare system name; Label is the run's presentation
	// label, which can carry the environment ("MigRep-Slow") or repeat
	// the fabric ("CC-NUMA@ring"). Group rows by (system, fabric) or
	// by label, whichever matches the analysis.
	System string `json:"system"`
	Label  string `json:"label"`
	Fabric string `json:"fabric"`

	Normalized float64 `json:"normalized"`
	ExecCycles int64   `json:"exec_cycles"`

	RemoteMisses     int64 `json:"remote_misses"`
	Cold             int64 `json:"cold"`
	Coherence        int64 `json:"coherence"`
	CapacityConflict int64 `json:"capacity_conflict"`

	Migrations   int64 `json:"migrations"`
	Replications int64 `json:"replications"`
	Collapses    int64 `json:"collapses"`
	Relocations  int64 `json:"relocations"`
	Replacements int64 `json:"replacements"`

	Upgrades     int64 `json:"upgrades"`
	PageFaults   int64 `json:"page_faults"`
	TrafficBytes int64 `json:"traffic_bytes"`

	// Interconnect view: the hottest link's byte count and the bytes
	// crossing the cluster bisection (zero when the fabric reported no
	// stats).
	MaxLinkBytes   int64 `json:"max_link_bytes"`
	BisectionBytes int64 `json:"bisection_bytes"`
}

// record flattens one run.
func (run *Run) record(experiment string) Record {
	s := run.Stats
	var upgrades, faults int64
	for i := range s.Nodes {
		upgrades += s.Nodes[i].Upgrades
		faults += s.Nodes[i].PageFaults
	}
	rec := Record{
		Schema:     RecordSchema,
		Experiment: experiment,
		App:        run.App,
		System:     run.System,
		Label:      run.Label,
		Fabric:     run.Fabric,

		Normalized: run.Norm,
		ExecCycles: s.ExecCycles,

		RemoteMisses:     s.TotalRemoteMisses(),
		Cold:             s.RemoteMissesByClass(stats.Cold),
		Coherence:        s.RemoteMissesByClass(stats.Coherence),
		CapacityConflict: s.RemoteMissesByClass(stats.CapacityConflict),

		Migrations:   s.PageOpsByKind(stats.Migration),
		Replications: s.PageOpsByKind(stats.Replication),
		Collapses:    s.PageOpsByKind(stats.Collapse),
		Relocations:  s.PageOpsByKind(stats.Relocation),
		Replacements: s.PageOpsByKind(stats.Replacement),

		Upgrades:     upgrades,
		PageFaults:   faults,
		TrafficBytes: s.TotalTrafficBytes(),
	}
	if s.Net != nil {
		rec.MaxLinkBytes = s.Net.MaxLink().Bytes
		rec.BisectionBytes = s.Net.BisectionBytes
	}
	return rec
}

// Records flattens the experiment into one record per run, in
// presentation order.
func (r *Result) Records() []Record {
	var out []Record
	for _, app := range r.AppOrder {
		for _, sys := range r.Systems {
			if run := r.Runs[app][sys]; run != nil {
				out = append(out, run.record(r.Name))
			}
		}
	}
	return out
}

// csvHeader matches the field order of WriteCSVRows.
const csvHeader = "experiment,app,system,label,fabric,normalized,exec_cycles," +
	"remote_misses,cold,coherence,capacity_conflict," +
	"migrations,replications,collapses,relocations,replacements," +
	"upgrades,page_faults,traffic_bytes,max_link_bytes,bisection_bytes"

// WriteCSVHeader emits the column header matching WriteCSVRows.
func WriteCSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, csvHeader)
	return err
}

// WriteCSVRows emits the experiment's records without a header, so
// several experiments can share one file.
func (r *Result) WriteCSVRows(w io.Writer) error {
	for _, rec := range r.Records() {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			rec.Experiment, rec.App, rec.System, rec.Label, rec.Fabric,
			rec.Normalized, rec.ExecCycles,
			rec.RemoteMisses, rec.Cold, rec.Coherence, rec.CapacityConflict,
			rec.Migrations, rec.Replications, rec.Collapses, rec.Relocations, rec.Replacements,
			rec.Upgrades, rec.PageFaults, rec.TrafficBytes,
			rec.MaxLinkBytes, rec.BisectionBytes)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the experiment as machine-readable rows for
// downstream plotting: a header plus one row per (application, system,
// fabric) run.
func (r *Result) WriteCSV(w io.Writer) error {
	if err := WriteCSVHeader(w); err != nil {
		return err
	}
	return r.WriteCSVRows(w)
}

// WriteJSON emits the experiment's records as an indented JSON array.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Records())
}
