package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSystemsOverride runs Figure 5 on a caller-chosen system list,
// including the contention-aware MigRep that only exists as a registry
// entry: the harness must resolve it by name and report it like any
// paper system.
func TestSystemsOverride(t *testing.T) {
	var buf bytes.Buffer
	o := opts(&buf, "radix")
	o.Systems = []string{"ccnuma", "migrep-contend"}
	r, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systems) != 2 || r.Systems[0] != "CC-NUMA" || r.Systems[1] != "MigRep-Cont" {
		t.Fatalf("systems = %v", r.Systems)
	}
	for _, sys := range r.Systems {
		if r.Norm("radix", sys) <= 0 {
			t.Errorf("%s: nonpositive normalized time", sys)
		}
	}
	if !strings.Contains(buf.String(), "MigRep-Cont") {
		t.Error("report does not mention the overridden system")
	}
}

// TestSystemsOverrideEverywhere exercises the override on every
// experiment, since each resolves its own defaults.
func TestSystemsOverrideEverywhere(t *testing.T) {
	for _, name := range Experiments() {
		var buf bytes.Buffer
		o := opts(&buf)
		o.Systems = []string{"ccnuma", "rnuma"}
		r, err := RunByName(name, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Records()) == 0 {
			t.Errorf("%s: no records", name)
		}
	}
}

// TestUnknownSystemListsRegistry pins the error contract: an unknown
// system name must fail up front with the registered names, not deep
// inside a run.
func TestUnknownSystemListsRegistry(t *testing.T) {
	var buf bytes.Buffer
	o := opts(&buf)
	o.Systems = []string{"nosuch-system"}
	_, err := Fig5(o)
	if err == nil {
		t.Fatal("unknown system accepted")
	}
	for _, want := range []string{"nosuch-system", "ccnuma", "migrep-contend", "rnuma-half-migrep"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestUnknownAppListsRegistry is the same contract for applications.
func TestUnknownAppListsRegistry(t *testing.T) {
	var buf bytes.Buffer
	o := Options{Scale: 8, Apps: []string{"nosuch-app"}, Out: &buf, Audit: true}
	_, err := Fig5(o)
	if err == nil {
		t.Fatal("unknown app accepted")
	}
	for _, want := range []string{"nosuch-app", "radix", "lu"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestWriteJSON round-trips the structured records through the JSON
// renderer.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	r, err := Fig5(opts(&buf, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := r.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(recs) != len(r.Systems) {
		t.Fatalf("got %d records, want %d", len(recs), len(r.Systems))
	}
	for _, rec := range recs {
		if rec.Experiment != "fig5" || rec.App != "radix" {
			t.Errorf("bad record labels: %+v", rec)
		}
		if rec.Fabric != "crossbar" {
			t.Errorf("fabric = %q, want crossbar", rec.Fabric)
		}
		if rec.Normalized <= 0 || rec.ExecCycles <= 0 {
			t.Errorf("degenerate record: %+v", rec)
		}
		if rec.TrafficBytes <= 0 && rec.System != "Perfect" {
			t.Errorf("%s: no traffic recorded", rec.System)
		}
	}
}

// TestTopoSweepWithContention runs the contention-aware policy where
// it matters — on real fabrics — and checks its records carry
// interconnect stats.
func TestTopoSweepWithContention(t *testing.T) {
	var buf bytes.Buffer
	o := opts(&buf, "radix")
	o.Systems = []string{"migrep", "migrep-contend"}
	r, err := TopoSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	// 2 systems x 4 fabrics.
	if len(r.Systems) != 8 {
		t.Fatalf("systems = %v", r.Systems)
	}
	for _, rec := range r.Records() {
		if rec.MaxLinkBytes <= 0 {
			t.Errorf("%s@%s: no link stats", rec.System, rec.Fabric)
		}
	}
	if !strings.Contains(buf.String(), "MigRep-Cont@ring") {
		t.Error("sweep report missing the contention system on the ring")
	}
}
