package harness

import (
	"io"

	"repro/internal/stats"
)

// WriteCSV emits a completed experiment as machine-readable rows for
// downstream plotting: one row per (application, system) run.
func (r *Result) WriteCSV(w io.Writer) error {
	if err := stats.WriteCSVHeader(w); err != nil {
		return err
	}
	for _, app := range r.AppOrder {
		for _, sys := range r.Systems {
			run := r.Runs[app][sys]
			if run == nil {
				continue
			}
			if err := run.Stats.WriteCSVRow(w, r.Name, run.Norm); err != nil {
				return err
			}
		}
	}
	return nil
}
