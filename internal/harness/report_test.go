package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

// cannedResult builds a small fixed Result by hand — two apps on two
// systems with distinct, easily recognizable counter values — so the
// renderers can be checked without running a simulation. (The rendering
// tests that lived in internal/stats before the Result redesign moved
// here with the renderers.)
func cannedResult() *Result {
	mk := func(app, system string, exec int64, norm float64, remote, traffic int64) *Run {
		s := stats.New(system, app, 2)
		s.ExecCycles = exec
		s.Nodes[0].RemoteMisses[stats.Cold] = remote
		s.Nodes[1].RemoteMisses[stats.CapacityConflict] = 2 * remote
		s.Nodes[0].PageOps[stats.Migration] = 3
		s.Nodes[1].PageOps[stats.Replication] = 4
		s.Nodes[0].Upgrades = 5
		s.Nodes[1].PageFaults = 6
		s.Nodes[0].TrafficBytes = traffic
		return &Run{App: app, System: system, Label: system, Fabric: "crossbar", Stats: s, Norm: norm}
	}
	return &Result{
		Name:     "canned",
		Systems:  []string{"CC-NUMA", "R-NUMA"},
		AppOrder: []string{"alpha", "beta"},
		Runs: map[string]map[string]*Run{
			"alpha": {
				"CC-NUMA": mk("alpha", "CC-NUMA", 1000, 1.125, 10, 4096),
				"R-NUMA":  mk("alpha", "R-NUMA", 2000, 2.25, 20, 8192),
			},
			"beta": {
				"CC-NUMA": mk("beta", "CC-NUMA", 3000, 1.5, 30, 1024),
				"R-NUMA":  mk("beta", "R-NUMA", 4000, 3.0, 40, 2048),
			},
		},
	}
}

func TestWriteTextRendersNormTable(t *testing.T) {
	var buf bytes.Buffer
	cannedResult().WriteText(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 apps + mean
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "CC-NUMA") || !strings.Contains(lines[0], "R-NUMA") {
		t.Errorf("header missing systems: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "alpha") || !strings.Contains(lines[1], "1.125") || !strings.Contains(lines[1], "2.250") {
		t.Errorf("alpha row wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "mean") || !strings.Contains(lines[3], "1.312") || !strings.Contains(lines[3], "2.625") {
		t.Errorf("mean row wrong (want means 1.312 and 2.625): %q", lines[3])
	}
}

func TestRecordsFlattenInPresentationOrder(t *testing.T) {
	recs := cannedResult().Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	wantOrder := []struct{ app, system string }{
		{"alpha", "CC-NUMA"}, {"alpha", "R-NUMA"}, {"beta", "CC-NUMA"}, {"beta", "R-NUMA"},
	}
	for i, w := range wantOrder {
		if recs[i].App != w.app || recs[i].System != w.system {
			t.Errorf("record %d: got (%s, %s), want (%s, %s)", i, recs[i].App, recs[i].System, w.app, w.system)
		}
		if recs[i].Experiment != "canned" {
			t.Errorf("record %d: experiment %q", i, recs[i].Experiment)
		}
	}
	r0 := recs[0] // alpha on CC-NUMA: remote=10 cold + 20 cap/conf
	if r0.RemoteMisses != 30 || r0.Cold != 10 || r0.CapacityConflict != 20 {
		t.Errorf("miss breakdown wrong: %+v", r0)
	}
	if r0.Migrations != 3 || r0.Replications != 4 || r0.Upgrades != 5 || r0.PageFaults != 6 {
		t.Errorf("page-op/upgrade breakdown wrong: %+v", r0)
	}
	if r0.Normalized != 1.125 || r0.ExecCycles != 1000 || r0.TrafficBytes != 4096 {
		t.Errorf("headline numbers wrong: %+v", r0)
	}
	if r0.Fabric != "crossbar" || r0.Label != "CC-NUMA" {
		t.Errorf("fabric/label wrong: %+v", r0)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := cannedResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v", err)
	}
	want := cannedResult().Records()
	if len(back) != len(want) {
		t.Fatalf("round trip lost records: got %d, want %d", len(back), len(want))
	}
	for i := range back {
		if back[i] != want[i] {
			t.Errorf("record %d changed across JSON round trip:\ngot  %+v\nwant %+v", i, back[i], want[i])
		}
	}
}

func TestWriteCSVMatchesRecords(t *testing.T) {
	var buf bytes.Buffer
	r := cannedResult()
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("got %d CSV lines, want 5:\n%s", len(lines), buf.String())
	}
	if lines[0] != csvHeader {
		t.Errorf("CSV header drifted: %q", lines[0])
	}
	for i, rec := range r.Records() {
		cols := strings.Split(lines[i+1], ",")
		if len(cols) != len(strings.Split(csvHeader, ",")) {
			t.Fatalf("row %d: %d columns, header has %d", i, len(cols), len(strings.Split(csvHeader, ",")))
		}
		if cols[0] != rec.Experiment || cols[1] != rec.App || cols[2] != rec.System {
			t.Errorf("row %d misaligned with records: %q", i, lines[i+1])
		}
	}
}
