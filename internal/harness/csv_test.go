package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestResultWriteCSV(t *testing.T) {
	var out bytes.Buffer
	r, err := Fig5(opts(&out, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	// header + one row per system
	if want := 1 + len(r.Systems); len(lines) != want {
		t.Fatalf("got %d lines, want %d", len(lines), want)
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "fig5,radix,") {
			t.Errorf("bad row: %s", line)
		}
	}
}
