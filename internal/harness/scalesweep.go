package harness

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/config"
	"repro/internal/dsm"
)

// DefaultSweepScales is the problem-scale ladder the scale sweep runs
// when Options.Scales is empty: from the largest input the test budget
// sustains (the divisor 8 of the full reproduction size) down through
// three successive halvings.
func DefaultSweepScales() []int { return []int{8, 16, 32, 64} }

// scaleLabel names one (system, scale) combination in reports.
func scaleLabel(sys string, scale int) string { return sys + "@s" + strconv.Itoa(scale) }

// scaleSweepSystems resolves the sweep's system set: the Figure 5 base
// systems by default, or an Options.Systems registry override.
func scaleSweepSystems(o Options, th config.Thresholds) ([]dsm.Spec, error) {
	if len(o.Systems) == 0 {
		return dsm.AllBaseSystems(), nil
	}
	specs, err := dsm.ResolveSpecs(o.Systems, th)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return specs, nil
}

// ScaleSweep runs the Figure 5 comparison across problem scales: every
// sweep system on every scale of Options.Scales (DefaultSweepScales
// when empty), each scale normalized to perfect CC-NUMA at the same
// scale. Where Figure 5 fixes the working set and varies the memory
// system, the sweep varies the working set too — the regime the
// locality literature says flips conclusions: as footprints shrink
// toward cache sizes, capacity misses (R-NUMA's prey) vanish before
// sharing misses do, and the paper's traffic ordering compresses. The
// per-scale traffic table makes that visible directly in bytes moved.
//
// Options.Scale is ignored; the sweep's scales come from
// Options.Scales. Each (app, system, scale) run appears in the Result
// with label "system@s<scale>" (the bare system name stays in
// Record.System, so downstream tooling can group either way).
func ScaleSweep(o Options) (*Result, error) {
	o = o.norm()
	scales := o.Scales
	if len(scales) == 0 {
		scales = DefaultSweepScales()
	}
	for _, sc := range scales {
		if sc < 1 {
			return nil, fmt.Errorf("harness: scalesweep: invalid scale %d", sc)
		}
	}
	tm, th := config.Default(), config.DefaultThresholds()
	specs, err := scaleSweepSystems(o, th)
	if err != nil {
		return nil, err
	}
	sysNames := make([]string, len(specs))
	for i, spec := range specs {
		sysNames[i] = spec.Name
	}

	merged := &Result{Name: "scalesweep", Runs: map[string]map[string]*Run{}}
	for _, sc := range scales {
		var systems []systemRun
		for _, spec := range specs {
			systems = append(systems, systemRun{
				spec: spec, tm: tm, th: th,
				label: scaleLabel(spec.Name, sc),
			})
		}
		so := o
		so.Scale = sc
		// Systems are already resolved into labeled runs; a pass-through
		// override would re-resolve them without the scale labels.
		so.Systems = nil
		r, err := runExperiment("scalesweep", systems, so)
		if err != nil {
			return nil, err
		}
		merged.AppOrder = r.AppOrder
		merged.Systems = append(merged.Systems, r.Systems...)
		for app, runs := range r.Runs {
			if merged.Runs[app] == nil {
				merged.Runs[app] = map[string]*Run{}
			}
			for label, run := range runs {
				merged.Runs[app][label] = run
			}
		}
		for _, ref := range r.Traces {
			seen := false
			for _, have := range merged.Traces {
				if have.Hash == ref.Hash {
					seen = true
					break
				}
			}
			if !seen {
				merged.Traces = append(merged.Traces, ref)
			}
		}
	}
	merged.Scales = scales
	if o.Shards > 1 {
		merged.Shards = o.Shards
	}

	merged.render = func(w io.Writer, r *Result) {
		header(w, "Scale sweep: Figure 5 systems across problem scales")
		for _, sc := range scales {
			fmt.Fprintf(w, "-- scale %d (normalized execution time vs perfect CC-NUMA at scale %d)\n", sc, sc)
			view := &Result{Name: r.Name, AppOrder: r.AppOrder, Runs: r.Runs}
			for _, sys := range sysNames {
				view.Systems = append(view.Systems, scaleLabel(sys, sc))
			}
			renderNormTable(w, view)
			fmt.Fprintln(w)
		}
		renderScaleTrafficTable(w, r, sysNames, scales)
	}
	merged.WriteText(o.Out)
	return merged, nil
}

// renderScaleTrafficTable prints, per application and scale, every
// system's total remote traffic in KB — the paper's headline metric,
// now as a function of working-set size.
func renderScaleTrafficTable(w io.Writer, r *Result, systems []string, scales []int) {
	fmt.Fprintln(w, "total remote traffic (KB)")
	fmt.Fprintf(w, "%-10s %-6s", "app", "scale")
	for _, s := range systems {
		fmt.Fprintf(w, " %10s", s)
	}
	fmt.Fprintln(w)
	for _, app := range r.AppOrder {
		for _, sc := range scales {
			fmt.Fprintf(w, "%-10s %-6d", app, sc)
			for _, s := range systems {
				var kb float64
				if run := r.Runs[app][scaleLabel(s, sc)]; run != nil {
					kb = float64(run.Stats.TotalTrafficBytes()) / 1024
				}
				fmt.Fprintf(w, " %10.0f", kb)
			}
			fmt.Fprintln(w)
		}
	}
}
