package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// goldenOptions is the fixed configuration the golden reports were
// captured under: two apps at test scale, audit on. The reports are
// fully deterministic, so any byte of drift is a real behavior change.
func goldenOptions(buf *bytes.Buffer) Options {
	return Options{Scale: 8, Apps: []string{"radix", "lu"}, Parallel: 4, Audit: true, Out: buf}
}

// TestGoldenReports locks the Figure 5 and Figure 8 text reports
// byte-for-byte. The golden files were captured before the Policy/
// registry redesign, so a passing run proves the redesigned systems
// reproduce the pre-existing reports exactly. Regenerate deliberately
// with `go test ./internal/harness -run Golden -update`.
func TestGoldenReports(t *testing.T) {
	for _, name := range []string{"fig5", "fig8"} {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := RunByName(name, goldenOptions(&buf)); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s report drifted from golden file %s\n--- got ---\n%s\n--- want ---\n%s\n%s",
					name, path, buf.String(), want, firstDiff(buf.String(), string(want)))
			}
		})
	}
}

// firstDiff points at the first differing line, which beats eyeballing
// two whole reports.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("first difference at line %d:\n  got:  %q\n  want: %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("reports differ in length: got %d lines, want %d", len(g), len(w))
}
