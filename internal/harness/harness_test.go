package harness

import (
	"bytes"
	"strings"
	"testing"
)

// opts builds fast test options over a subset of applications. Audit is
// on for every harness test: each simulation runs under event-time
// discipline and the internal/audit conservation checks, so a protocol
// accounting bug fails the suite even where no assertion looks.
func opts(buf *bytes.Buffer, appNames ...string) Options {
	if len(appNames) == 0 {
		appNames = []string{"radix"}
	}
	return Options{Scale: 8, Apps: appNames, Parallel: 4, Out: buf, Audit: true}
}

func TestFig5Structure(t *testing.T) {
	var buf bytes.Buffer
	r, err := Fig5(opts(&buf, "radix", "lu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systems) != 6 {
		t.Errorf("systems = %v, want 6", r.Systems)
	}
	if got := r.SortedApps(); len(got) != 2 || got[0] != "lu" || got[1] != "radix" {
		t.Errorf("apps = %v", got)
	}
	for _, app := range r.AppOrder {
		for _, sys := range r.Systems {
			if r.Norm(app, sys) <= 0 {
				t.Errorf("%s on %s: nonpositive normalized time", app, sys)
			}
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "mean") {
		t.Error("missing mean row")
	}
}

func TestTable4Structure(t *testing.T) {
	var buf bytes.Buffer
	r, err := Table4(opts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systems) != 3 {
		t.Errorf("systems = %v", r.Systems)
	}
	out := buf.String()
	for _, col := range []string{"migration", "replication", "relocation", "R-NUMA"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %q", col)
		}
	}
}

func TestFig6SlowCostsMore(t *testing.T) {
	var buf bytes.Buffer
	r, err := Fig6(opts(&buf, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	// Slow page operations can only hurt.
	if r.Norm("radix", "R-NUMA-Slow") < r.Norm("radix", "R-NUMA-Fast") {
		t.Errorf("slow R-NUMA (%.3f) faster than fast (%.3f)",
			r.Norm("radix", "R-NUMA-Slow"), r.Norm("radix", "R-NUMA-Fast"))
	}
	if r.Norm("radix", "MigRep-Slow") < r.Norm("radix", "MigRep-Fast") {
		t.Errorf("slow MigRep faster than fast")
	}
}

func TestFig7LatencyHurtsCCNUMAMost(t *testing.T) {
	var buf bytes.Buffer
	r7, err := Fig7(opts(&buf, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	var b5 bytes.Buffer
	r5, err := Fig5(opts(&b5, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	// 4x network latency must increase CC-NUMA's normalized time.
	if r7.Norm("radix", "CC-NUMA") <= r5.Norm("radix", "CC-NUMA") {
		t.Errorf("4x latency did not slow CC-NUMA: %.3f vs %.3f",
			r7.Norm("radix", "CC-NUMA"), r5.Norm("radix", "CC-NUMA"))
	}
	// And R-NUMA must stay the best of the three.
	if r7.Norm("radix", "R-NUMA") > r7.Norm("radix", "CC-NUMA") {
		t.Errorf("R-NUMA (%.3f) worse than CC-NUMA (%.3f) at 4x latency",
			r7.Norm("radix", "R-NUMA"), r7.Norm("radix", "CC-NUMA"))
	}
}

func TestFig8Structure(t *testing.T) {
	var buf bytes.Buffer
	r, err := Fig8(opts(&buf, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systems) != 5 {
		t.Errorf("systems = %v", r.Systems)
	}
	// Halving the page cache cannot help radix.
	if r.Norm("radix", "R-NUMA-1/2") < r.Norm("radix", "R-NUMA")-0.01 {
		t.Errorf("half cache (%.3f) meaningfully beats full cache (%.3f)",
			r.Norm("radix", "R-NUMA-1/2"), r.Norm("radix", "R-NUMA"))
	}
}

func TestRunByName(t *testing.T) {
	for _, name := range Experiments() {
		var buf bytes.Buffer
		if _, err := RunByName(name, opts(&buf)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: no output", name)
		}
	}
	var buf bytes.Buffer
	if _, err := RunByName("nosuch", opts(&buf)); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestUnknownAppRejected(t *testing.T) {
	var buf bytes.Buffer
	o := Options{Scale: 8, Apps: []string{"nosuch"}, Out: &buf, Audit: true}
	if _, err := Fig5(o); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestSerialAndParallelAgree(t *testing.T) {
	var b1, b2 bytes.Buffer
	serial := Options{Scale: 8, Apps: []string{"radix"}, Parallel: 0, Out: &b1, Audit: true}
	parallel := Options{Scale: 8, Apps: []string{"radix"}, Parallel: 8, Out: &b2, Audit: true}
	r1, err := Fig5(serial)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fig5(parallel)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range r1.Systems {
		if r1.Norm("radix", sys) != r2.Norm("radix", sys) {
			t.Errorf("%s: serial %.6f != parallel %.6f", sys,
				r1.Norm("radix", sys), r2.Norm("radix", sys))
		}
	}
}

func TestMeanNorm(t *testing.T) {
	r := &Result{
		AppOrder: []string{"a", "b"},
		Runs: map[string]map[string]*Run{
			"a": {"X": {Norm: 1.0}},
			"b": {"X": {Norm: 3.0}},
		},
	}
	if got := r.MeanNorm("X"); got != 2.0 {
		t.Errorf("mean = %v, want 2", got)
	}
	if got := r.MeanNorm("Y"); got != 0 {
		t.Errorf("mean of absent system = %v, want 0", got)
	}
}
