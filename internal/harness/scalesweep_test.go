package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestScaleSweepRunsAuditClean runs the sweep over two scales on two
// apps with full auditing and checks the structure: one labeled run
// per (app, system, scale), traffic recorded, and both renderers
// consistent with the records.
func TestScaleSweepRunsAuditClean(t *testing.T) {
	var buf bytes.Buffer
	r, err := ScaleSweep(Options{
		Scales:   []int{32, 64},
		Apps:     []string{"radix", "lu"},
		Parallel: 4,
		Audit:    true,
		Traces:   NewTraceCache(),
		Out:      &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	const systems = 6 // the Figure 5 base set
	if got, want := len(r.Systems), 2*systems; got != want {
		t.Errorf("systems = %d, want %d (6 systems x 2 scales)", got, want)
	}
	recs := r.Records()
	if got, want := len(recs), 2*2*systems; got != want {
		t.Errorf("records = %d, want %d", got, want)
	}
	for _, rec := range recs {
		if !strings.Contains(rec.Label, "@s32") && !strings.Contains(rec.Label, "@s64") {
			t.Errorf("record label %q lacks a scale suffix", rec.Label)
		}
		if strings.Contains(rec.System, "@") {
			t.Errorf("record system %q should be the bare name", rec.System)
		}
		if rec.Normalized <= 0 {
			t.Errorf("%s/%s: normalized = %v, want > 0", rec.App, rec.Label, rec.Normalized)
		}
		if rec.TrafficBytes <= 0 {
			t.Errorf("%s/%s: traffic = %v, want > 0", rec.App, rec.Label, rec.TrafficBytes)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"Scale sweep", "-- scale 32", "-- scale 64",
		"total remote traffic (KB)", "CC-NUMA@s32", "R-NUMA@s64",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q", want)
		}
	}
}

// TestScaleSweepLargerWorkingSetMovesMoreBytes pins the sweep's reason
// to exist: for every system, the larger working set (smaller scale
// divisor) moves at least as many bytes as the smaller one.
func TestScaleSweepLargerWorkingSetMovesMoreBytes(t *testing.T) {
	var buf bytes.Buffer
	r, err := ScaleSweep(Options{
		Scales:   []int{16, 64},
		Apps:     []string{"radix"},
		Parallel: 4,
		Audit:    true,
		Traces:   NewTraceCache(),
		Out:      &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"CC-NUMA", "MigRep", "R-NUMA"} {
		big := r.Runs["radix"][scaleLabel(sys, 16)]
		small := r.Runs["radix"][scaleLabel(sys, 64)]
		if big == nil || small == nil {
			t.Fatalf("%s: missing sweep runs", sys)
		}
		if big.Stats.TotalTrafficBytes() < small.Stats.TotalTrafficBytes() {
			t.Errorf("%s: scale 16 traffic %d < scale 64 traffic %d",
				sys, big.Stats.TotalTrafficBytes(), small.Stats.TotalTrafficBytes())
		}
	}
}

// TestScaleSweepSystemOverride: a registry override replaces the
// Figure 5 set at every scale.
func TestScaleSweepSystemOverride(t *testing.T) {
	var buf bytes.Buffer
	r, err := ScaleSweep(Options{
		Scales:  []int{64},
		Apps:    []string{"radix"},
		Systems: []string{"ccnuma", "migrep-contend"},
		Audit:   true,
		Out:     &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Systems) != 2 {
		t.Fatalf("systems = %v, want 2 labels", r.Systems)
	}
	if r.Runs["radix"][scaleLabel("MigRep-Cont", 64)] == nil {
		t.Errorf("override system missing from runs: %v", r.Systems)
	}
}

// TestScaleSweepRejectsBadScale: zero or negative scales fail fast.
func TestScaleSweepRejectsBadScale(t *testing.T) {
	var buf bytes.Buffer
	if _, err := ScaleSweep(Options{Scales: []int{0}, Out: &buf}); err == nil {
		t.Error("scale 0 accepted")
	}
}
