package harness

import (
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
)

// topoSweepFabrics lists the fabrics the sweep compares, in presentation
// order. The crossbar entry is the paper's original ideal network and
// anchors the comparison.
func topoSweepFabrics() []config.Network {
	return []config.Network{
		{Topology: config.TopoCrossbar},
		{Topology: config.TopoRing},
		{Topology: config.TopoMesh},
		{Topology: config.TopoFatTree},
	}
}

// topoSweepSystems lists the systems the sweep compares: the paper's
// base CC-NUMA, the migration/replication kernel, and R-NUMA as the
// fine-grain representative.
func topoSweepSystems() []dsm.Spec {
	return []dsm.Spec{dsm.CCNUMA(), dsm.MigRep(), dsm.RNUMA()}
}

// topoLabel names one (system, fabric) combination in reports.
func topoLabel(sys, topo string) string { return sys + "@" + topo }

// TopoSweep re-runs the Figure 5 comparison across interconnect
// fabrics: every system of topoSweepSystems on every fabric of
// topoSweepFabrics, normalized to perfect CC-NUMA on the ideal
// crossbar. Beyond execution time, it reports where the traffic lands:
// the maximum per-link load and the bisection traffic of every run,
// which is where migration/replication's bulk 4-KB page moves separate
// from fine-grain 64-byte caching.
func TopoSweep(o Options) (*Result, error) {
	tm, th := config.Default(), config.DefaultThresholds()
	var systems []systemRun
	for _, net := range topoSweepFabrics() {
		for _, spec := range topoSweepSystems() {
			systems = append(systems, systemRun{
				spec: spec, tm: tm, th: th,
				label: topoLabel(spec.Name, net.Kind()),
				net:   net,
			})
		}
	}
	r, err := runExperiment("toposweep", systems, o)
	if err != nil {
		return nil, err
	}
	header(o.Out, "Topology sweep: Figure 5 across interconnect fabrics")
	for _, net := range topoSweepFabrics() {
		fmt.Fprintf(o.Out, "-- %s (normalized execution time vs perfect CC-NUMA on crossbar)\n", net.Kind())
		view := &Result{Name: r.Name, AppOrder: r.AppOrder, Runs: r.Runs}
		for _, spec := range topoSweepSystems() {
			view.Systems = append(view.Systems, topoLabel(spec.Name, net.Kind()))
		}
		renderNormTable(o.Out, view)
		fmt.Fprintln(o.Out)
	}
	renderLinkLoadTable(o.Out, r)
	return r, nil
}

// renderLinkLoadTable prints, per application and fabric, the maximum
// per-link load and the bisection traffic of every system, in KB.
func renderLinkLoadTable(w io.Writer, r *Result) {
	systems := topoSweepSystems()
	fmt.Fprintln(w, "maximum per-link load / bisection traffic (KB)")
	fmt.Fprintf(w, "%-10s %-9s", "app", "topology")
	for _, s := range systems {
		fmt.Fprintf(w, " %9s", s.Name)
	}
	fmt.Fprintf(w, " |")
	for _, s := range systems {
		fmt.Fprintf(w, " %9s", s.Name)
	}
	fmt.Fprintln(w)
	for _, app := range r.AppOrder {
		for _, net := range topoSweepFabrics() {
			fmt.Fprintf(w, "%-10s %-9s", app, net.Kind())
			for _, s := range systems {
				fmt.Fprintf(w, " %9.0f", float64(netOf(r, app, s.Name, net).MaxLink().Bytes)/1024)
			}
			fmt.Fprintf(w, " |")
			for _, s := range systems {
				fmt.Fprintf(w, " %9.0f", float64(netOf(r, app, s.Name, net).BisectionBytes)/1024)
			}
			fmt.Fprintln(w)
		}
	}
}

// netOf resolves the interconnect stats of one sweep run.
func netOf(r *Result, app, sys string, net config.Network) *stats.NetStats {
	run := r.Runs[app][topoLabel(sys, net.Kind())]
	if run == nil || run.Stats.Net == nil {
		return &stats.NetStats{}
	}
	return run.Stats.Net
}
