package harness

import (
	"fmt"
	"io"

	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
)

// topoSweepFabrics lists the fabrics the sweep compares, in presentation
// order. The crossbar entry is the paper's original ideal network and
// anchors the comparison.
func topoSweepFabrics() []config.Network {
	return []config.Network{
		{Topology: config.TopoCrossbar},
		{Topology: config.TopoRing},
		{Topology: config.TopoMesh},
		{Topology: config.TopoFatTree},
	}
}

// topoSweepSystems lists the default sweep systems: the paper's base
// CC-NUMA, the migration/replication kernel, and R-NUMA as the
// fine-grain representative. An Options.Systems override replaces them
// with any registered systems — the contention-aware "migrep-contend"
// is the intended guest, since per-link load only matters here.
func topoSweepSystems(o Options, th config.Thresholds) ([]dsm.Spec, error) {
	if len(o.Systems) == 0 {
		return []dsm.Spec{dsm.CCNUMA(), dsm.MigRep(), dsm.RNUMA()}, nil
	}
	specs, err := dsm.ResolveSpecs(o.Systems, th)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return specs, nil
}

// topoLabel names one (system, fabric) combination in reports.
func topoLabel(sys, topo string) string { return sys + "@" + topo }

// TopoSweep re-runs the Figure 5 comparison across interconnect
// fabrics: every sweep system on every fabric of topoSweepFabrics,
// normalized to perfect CC-NUMA on the ideal crossbar. Beyond
// execution time, it reports where the traffic lands: the maximum
// per-link load and the bisection traffic of every run, which is where
// migration/replication's bulk 4-KB page moves separate from
// fine-grain 64-byte caching.
func TopoSweep(o Options) (*Result, error) {
	if o.Fabric != "" {
		return nil, fmt.Errorf("harness: toposweep runs every fabric; a fabric override (%q) is meaningless", o.Fabric)
	}
	tm, th := config.Default(), config.DefaultThresholds()
	specs, err := topoSweepSystems(o, th)
	if err != nil {
		return nil, err
	}
	var systems []systemRun
	for _, net := range topoSweepFabrics() {
		for _, spec := range specs {
			systems = append(systems, systemRun{
				spec: spec, tm: tm, th: th,
				label: topoLabel(spec.Name, net.Kind()),
				net:   net,
			})
		}
	}
	sysNames := make([]string, len(specs))
	for i, spec := range specs {
		sysNames[i] = spec.Name
	}
	r, err := runExperiment("toposweep", systems, o)
	if err != nil {
		return nil, err
	}
	r.render = func(w io.Writer, r *Result) {
		header(w, "Topology sweep: Figure 5 across interconnect fabrics")
		for _, net := range topoSweepFabrics() {
			fmt.Fprintf(w, "-- %s (normalized execution time vs perfect CC-NUMA on crossbar)\n", net.Kind())
			view := &Result{Name: r.Name, AppOrder: r.AppOrder, Runs: r.Runs}
			for _, sys := range sysNames {
				view.Systems = append(view.Systems, topoLabel(sys, net.Kind()))
			}
			renderNormTable(w, view)
			fmt.Fprintln(w)
		}
		renderLinkLoadTable(w, r, sysNames)
	}
	r.WriteText(o.Out)
	return r, nil
}

// renderLinkLoadTable prints, per application and fabric, the maximum
// per-link load and the bisection traffic of every system, in KB.
func renderLinkLoadTable(w io.Writer, r *Result, systems []string) {
	fmt.Fprintln(w, "maximum per-link load / bisection traffic (KB)")
	fmt.Fprintf(w, "%-10s %-9s", "app", "topology")
	for _, s := range systems {
		fmt.Fprintf(w, " %9s", s)
	}
	fmt.Fprintf(w, " |")
	for _, s := range systems {
		fmt.Fprintf(w, " %9s", s)
	}
	fmt.Fprintln(w)
	for _, app := range r.AppOrder {
		for _, net := range topoSweepFabrics() {
			fmt.Fprintf(w, "%-10s %-9s", app, net.Kind())
			for _, s := range systems {
				fmt.Fprintf(w, " %9.0f", float64(netOf(r, app, s, net).MaxLink().Bytes)/1024)
			}
			fmt.Fprintf(w, " |")
			for _, s := range systems {
				fmt.Fprintf(w, " %9.0f", float64(netOf(r, app, s, net).BisectionBytes)/1024)
			}
			fmt.Fprintln(w)
		}
	}
}

// netOf resolves the interconnect stats of one sweep run.
func netOf(r *Result, app, sys string, net config.Network) *stats.NetStats {
	run := r.Runs[app][topoLabel(sys, net.Kind())]
	if run == nil || run.Stats.Net == nil {
		return &stats.NetStats{}
	}
	return run.Stats.Net
}
