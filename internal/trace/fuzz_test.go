package trace_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/memory"
	"repro/internal/trace"
)

// The fuzz inputs drive a Recorder (or build a raw trace) through a
// 3-byte instruction encoding: one opcode byte and a 16-bit argument.
// Real application traces re-encode into the same format to seed the
// corpus with realistic access/sync interleavings.
const (
	fzRead = iota
	fzWrite
	fzCompute
	fzBarrier
	fzLock
	fzUnlock
	fzPhase
	fzOps // opcode modulus
)

// encodeStep appends one instruction.
func encodeStep(dst []byte, op byte, arg uint16) []byte {
	return append(dst, op, byte(arg>>8), byte(arg))
}

// seedFromApp re-encodes the first CPU stream of a real generated trace
// (blocks truncated to 16 bits, gaps to compute steps) so the fuzz
// corpus starts from generator-shaped interleavings.
func seedFromApp(tb testing.TB, name string, maxSteps int) []byte {
	tb.Helper()
	info, err := apps.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := info.Generate(apps.Params{CPUs: 8, Scale: 64})
	if err != nil {
		tb.Fatal(err)
	}
	var out []byte
	steps := 0
	for _, op := range tr.CPUs[0].Ops() {
		if steps >= maxSteps {
			break
		}
		if op.Gap > 0 {
			out = encodeStep(out, fzCompute, uint16(op.Gap))
			steps++
		}
		switch op.Kind {
		case trace.Read:
			out = encodeStep(out, fzRead, uint16(op.Arg))
		case trace.Write:
			out = encodeStep(out, fzWrite, uint16(op.Arg))
		case trace.Barrier:
			out = encodeStep(out, fzBarrier, uint16(op.Arg))
		case trace.Lock:
			out = encodeStep(out, fzLock, uint16(op.Arg))
		case trace.Unlock:
			out = encodeStep(out, fzUnlock, uint16(op.Arg))
		case trace.Phase:
			out = encodeStep(out, fzPhase, 0)
		}
		steps++
	}
	return out
}

// FuzzRecorderCoalescing drives a Recorder with arbitrary interleavings
// of accesses, compute and synchronization and checks the coalescing
// invariants against an independent model:
//
//   - the emitted Read/Write ops preserve the order of distinct-block
//     runs (consecutive same-block accesses merge into one op),
//   - a run containing any write emits Write,
//   - synchronization ops pass through in order and break runs,
//   - compute time is conserved: the sum of all emitted gaps equals the
//     cycles fed via Compute plus one cycle per merged (L1-hit) access.
func FuzzRecorderCoalescing(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeStep(encodeStep(encodeStep(nil, fzRead, 1), fzWrite, 1), fzRead, 2))
	f.Add(seedFromApp(f, "radix", 512))
	f.Add(seedFromApp(f, "lu", 512))
	f.Add(seedFromApp(f, "migratory", 256))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := trace.NewRecorder()
		var want []trace.Op // expected kinds and args, gaps unused
		var wantGaps uint64
		runOpen := false
		appendAccess := func(b memory.Block, write bool) {
			if runOpen && want[len(want)-1].Arg == uint64(b) {
				if write {
					want[len(want)-1].Kind = trace.Write
				}
				wantGaps++ // merged hit costs one pipeline cycle
				return
			}
			k := trace.Read
			if write {
				k = trace.Write
			}
			want = append(want, trace.Op{Kind: k, Arg: uint64(b)})
			runOpen = true
		}
		appendSync := func(k trace.Kind, arg uint64) {
			want = append(want, trace.Op{Kind: k, Arg: arg})
			runOpen = false
		}

		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % fzOps
			arg := uint64(data[i+1])<<8 | uint64(data[i+2])
			switch op {
			case fzRead, fzWrite:
				addr := memory.Addr(arg * config.BlockBytes)
				appendAccess(addr.Block(), op == fzWrite)
				r.Access(addr, op == fzWrite)
			case fzCompute:
				r.Compute(int(arg))
				wantGaps += arg
			case fzBarrier:
				r.Barrier(int(arg))
				appendSync(trace.Barrier, arg)
			case fzLock:
				r.Lock(int(arg))
				appendSync(trace.Lock, arg)
			case fzUnlock:
				r.Unlock(int(arg))
				appendSync(trace.Unlock, arg)
			case fzPhase:
				r.Phase()
				appendSync(trace.Phase, 0)
			}
		}
		ops := r.Finish().Ops()

		var gotGaps uint64
		j := 0
		for _, op := range ops {
			gotGaps += uint64(op.Gap)
			if op.Kind == trace.Pad {
				continue // pure gap carrier
			}
			if j >= len(want) {
				t.Fatalf("extra op %v (arg %d) beyond %d expected", op.Kind, op.Arg, len(want))
			}
			if op.Kind != want[j].Kind || op.Arg != want[j].Arg {
				t.Fatalf("op %d: got %v(%d), want %v(%d)", j, op.Kind, op.Arg, want[j].Kind, want[j].Arg)
			}
			j++
		}
		if j != len(want) {
			t.Fatalf("emitted %d ops, want %d: coalescing dropped a run", j, len(want))
		}
		if gotGaps != wantGaps {
			t.Fatalf("gap cycles not conserved: emitted %d, fed %d", gotGaps, wantGaps)
		}
	})
}

// FuzzTraceValidate builds two-processor traces from arbitrary encoded
// op streams and checks that Validate never panics and is deterministic.
// Structurally well-formed prefixes from real generators seed the
// corpus, so the interesting accept/reject boundary (mismatched barrier
// sequences, unbalanced locks) gets explored by mutation.
func FuzzTraceValidate(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(seedFromApp(f, "radix", 256), seedFromApp(f, "radix", 256))
	f.Add(seedFromApp(f, "lu", 256), seedFromApp(f, "migratory", 256))

	decode := func(data []byte) trace.Stream {
		var ops trace.Stream
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % fzOps
			arg := uint64(data[i+1])<<8 | uint64(data[i+2])
			switch op {
			case fzRead:
				ops.Append(trace.Op{Kind: trace.Read, Arg: arg})
			case fzWrite:
				ops.Append(trace.Op{Kind: trace.Write, Arg: arg})
			case fzCompute:
				ops.Append(trace.Op{Kind: trace.Pad, Gap: uint32(arg)})
			case fzBarrier:
				ops.Append(trace.Op{Kind: trace.Barrier, Arg: arg})
			case fzLock:
				ops.Append(trace.Op{Kind: trace.Lock, Arg: arg})
			case fzUnlock:
				ops.Append(trace.Op{Kind: trace.Unlock, Arg: arg})
			case fzPhase:
				ops.Append(trace.Op{Kind: trace.Phase})
			}
		}
		return ops
	}

	f.Fuzz(func(t *testing.T, a, b []byte) {
		tr := &trace.Trace{Name: "fuzz", CPUs: []trace.Stream{decode(a), decode(b)}}
		err1 := tr.Validate()
		err2 := tr.Validate()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Validate not deterministic: %v vs %v", err1, err2)
		}
	})
}

// TestValidateAcceptsEveryGenerator pins the contract the fuzz seeds
// rely on: every registered application generator emits a trace that
// Validate accepts, at several scales and CPU counts.
func TestValidateAcceptsEveryGenerator(t *testing.T) {
	for _, info := range apps.All() {
		for _, cpus := range []int{8, 32} {
			tr, err := info.Generate(apps.Params{CPUs: cpus, Scale: 64})
			if err != nil {
				t.Fatalf("%s cpus=%d: %v", info.Name, cpus, err)
			}
			if err := tr.Validate(); err != nil {
				t.Errorf("%s cpus=%d: generator output rejected: %v", info.Name, cpus, err)
			}
		}
	}
}
