package store_test

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

// FuzzDecode feeds the binary decoder hostile bytes: any input must
// either decode to a structurally sound trace or return an error —
// never panic, never over-allocate past what the payload backs, and
// decoding must be deterministic. Valid encodings seed the corpus so
// mutation explores the interesting boundary just past the checksum
// (Reseal keeps mutated headers reachable).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DTRC\x01"))
	for _, name := range []string{"radix", "migratory"} {
		info, err := apps.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		tr, err := info.Generate(apps.Params{CPUs: 8, Scale: 64})
		if err != nil {
			f.Fatal(err)
		}
		enc := store.Encode(tr)
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		// A resealed tail-chop passes the CRC but is structurally short.
		f.Add(store.Reseal(enc[:len(enc)-8]))
	}
	f.Add(store.Reseal([]byte("DTRC\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01xxxx")))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr1, err1 := store.Decode(data)
		tr2, err2 := store.Decode(store.Reseal(append([]byte(nil), data...)))
		// Resealing only bypasses the checksum; the structural verdict
		// on the same body must not change.
		if (err1 == nil) != (err2 == nil) && err1 != nil && err1.Error() != "store: checksum mismatch" {
			t.Fatalf("reseal changed verdict: %v vs %v", err1, err2)
		}
		for _, tr := range []*trace.Trace{tr1, tr2} {
			if tr == nil {
				continue
			}
			// A successful decode must be internally consistent: equal
			// column lengths, in-range kinds.
			for cpu := range tr.CPUs {
				s := &tr.CPUs[cpu]
				if len(s.Kinds) != len(s.Gaps) || len(s.Kinds) != len(s.Args) {
					t.Fatalf("cpu %d: ragged columns %d/%d/%d", cpu, len(s.Kinds), len(s.Gaps), len(s.Args))
				}
				for _, k := range s.Kinds {
					if int(k) >= trace.KindCount {
						t.Fatalf("cpu %d: out-of-range kind %d survived decode", cpu, k)
					}
				}
			}
			// And re-encoding a decoded trace must round-trip exactly.
			back, err := store.Decode(store.Encode(tr))
			if err != nil {
				t.Fatalf("re-encode of decoded trace rejected: %v", err)
			}
			if !back.Equal(tr) {
				t.Fatal("decode->encode->decode not a fixed point")
			}
		}
	})
}
