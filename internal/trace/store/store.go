// Package store persists generated application traces in a
// content-addressed on-disk cache, so repeat runs and parallel workers
// materialize workloads from disk instead of re-running the generators.
//
// # File naming and content addressing
//
// One trace is one file under the store directory. The name is derived
// from the generation inputs, not the content: the hex SHA-256 (first
// 16 bytes) of the tuple (FormatVersion, app, cpus, scale, seed), with
// a ".trace" suffix. Workload generation is deterministic for a given
// tuple, so the tuple IS the content identity — two processes that
// need the same workload compute the same name with no coordination.
//
// # Binary format
//
// A trace file is a little-endian binary blob:
//
//	magic "DTRC" | version byte (= FormatVersion)
//	varint nameLen, name bytes
//	varint cpus, barriers, locks, footprint
//	varint opCount  x cpus
//	varint byteLen  x cpus      (per-CPU section lengths)
//	per-CPU sections, concatenated
//	crc32c (Castagnoli) of everything above, 4 bytes LE
//
// Each per-CPU section serializes the stream's three columns in turn:
// the kind column raw (one byte per op), the gap column as unsigned
// varints, and the arg column as zigzag varints of the delta from the
// previous arg — block numbers and sync ids are locally sequential, so
// deltas keep most args in one byte (~4 B/op on the SPLASH traces vs
// 16 B/op in-memory AoS). The section table up front lets Decode fan
// per-CPU sections out over goroutines.
//
// # Versioning and invalidation
//
// FormatVersion participates in the file name AND is checked in the
// header: an encoding change orphans old files (never read again, and
// rewritten under new names) rather than misparsing them. Files are
// written to a temp file and renamed into place, so a concurrent
// reader sees either nothing or a complete file. Load treats any
// decode failure — missing file, short file, bad magic or version,
// checksum mismatch, malformed varints — as a cache miss and deletes
// the offender: corrupt or truncated entries are regenerated silently,
// never surfaced as errors. There is no expiry; the store only grows,
// and deleting the directory (or any file in it) is always safe.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// FormatVersion identifies the on-disk encoding. Bump it on any change
// to the layout above; old files are then ignored (their names hash the
// old version) and regenerated.
const FormatVersion = 1

var magic = [4]byte{'D', 'T', 'R', 'C'}

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Key identifies one generated workload: the inputs that determine its
// content.
type Key struct {
	App   string
	CPUs  int
	Scale int
	Seed  uint64
}

// Filename returns the content address of the key: hex SHA-256 over the
// generation tuple and format version.
func (k Key) Filename() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\x00%s\x00%d\x00%d\x00%d", FormatVersion, k.App, k.CPUs, k.Scale, k.Seed)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16]) + ".trace"
}

// Store is a directory of encoded traces. A nil *Store disables
// persistence: Load always misses and Save does nothing, so callers can
// thread an optional store without nil checks.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Path returns the file path a key materializes at.
func (s *Store) Path(k Key) string { return filepath.Join(s.dir, k.Filename()) }

// Load returns the stored trace for k, or ok=false on any miss —
// including a corrupt or truncated file, which it deletes so the slot
// regenerates cleanly.
func (s *Store) Load(k Key) (*trace.Trace, bool) {
	if s == nil {
		return nil, false
	}
	data, err := os.ReadFile(s.Path(k))
	if err != nil {
		return nil, false
	}
	tr, err := Decode(data)
	if err != nil {
		// Corrupt entries regenerate silently; removing the file keeps
		// the next writer from racing a reader over known-bad bytes.
		os.Remove(s.Path(k))
		return nil, false
	}
	return tr, true
}

// Save encodes the trace and atomically installs it under k's name.
func (s *Store) Save(k Key, tr *trace.Trace) error {
	if s == nil {
		return nil
	}
	data := Encode(tr)
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadOrGenerate returns the stored trace for k, or runs gen and saves
// its result. hit reports whether disk satisfied the request. A failed
// Save is ignored: the trace is valid either way, and the next run
// simply regenerates.
func (s *Store) LoadOrGenerate(k Key, gen func() (*trace.Trace, error)) (tr *trace.Trace, hit bool, err error) {
	if tr, ok := s.Load(k); ok {
		return tr, true, nil
	}
	tr, err = gen()
	if err != nil {
		return nil, false, err
	}
	_ = s.Save(k, tr)
	return tr, false, nil
}

// Encode serializes a trace into the store's binary format.
func Encode(tr *trace.Trace) []byte {
	sections := make([][]byte, len(tr.CPUs))
	encodeEachCPU(len(tr.CPUs), func(cpu int) error {
		sections[cpu] = encodeSection(&tr.CPUs[cpu])
		return nil
	})

	size := 4 + 1 + 10 + len(tr.Name) + 4*10 + 20*len(tr.CPUs) + 4
	for _, sec := range sections {
		size += len(sec)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic[:]...)
	buf = append(buf, FormatVersion)
	buf = binary.AppendUvarint(buf, uint64(len(tr.Name)))
	buf = append(buf, tr.Name...)
	buf = binary.AppendUvarint(buf, uint64(len(tr.CPUs)))
	buf = binary.AppendUvarint(buf, uint64(tr.Barriers))
	buf = binary.AppendUvarint(buf, uint64(tr.Locks))
	buf = binary.AppendUvarint(buf, tr.Footprint)
	for i := range tr.CPUs {
		buf = binary.AppendUvarint(buf, uint64(tr.CPUs[i].Len()))
	}
	for _, sec := range sections {
		buf = binary.AppendUvarint(buf, uint64(len(sec)))
	}
	for _, sec := range sections {
		buf = append(buf, sec...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf
}

// encodeSection serializes one stream's columns: raw kinds, varint gaps,
// zigzag-delta varint args.
func encodeSection(s *trace.Stream) []byte {
	out := make([]byte, 0, 4*s.Len())
	for _, k := range s.Kinds {
		out = append(out, byte(k))
	}
	for _, g := range s.Gaps {
		out = binary.AppendUvarint(out, uint64(g))
	}
	var prev uint64
	for _, a := range s.Args {
		out = binary.AppendVarint(out, int64(a-prev))
		prev = a
	}
	return out
}

// Decoding errors (all treated as cache misses by Load; exported shape
// matters only to tests and the fuzz target, which assert non-panic).
var (
	errShort    = errors.New("store: truncated trace file")
	errMagic    = errors.New("store: bad magic")
	errVersion  = errors.New("store: format version mismatch")
	errChecksum = errors.New("store: checksum mismatch")
)

// decLimits bounds attacker-controlled counts before any allocation
// sized by them: a hostile header may not demand more memory than its
// own payload justifies.
const (
	maxName = 1 << 12
	maxCPUs = 1 << 16
)

// Decode parses a trace from the store's binary format. It never
// panics on hostile input: every count is validated against the bytes
// that back it before allocation, and the trailing checksum rejects
// truncation and bit rot up front.
func Decode(data []byte) (*trace.Trace, error) {
	if len(data) < len(magic)+1+4 {
		return nil, errShort
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, errChecksum
	}
	if [4]byte(body[:4]) != magic {
		return nil, errMagic
	}
	if body[4] != FormatVersion {
		return nil, errVersion
	}
	p := body[5:]

	nameLen, p, err := uvar(p)
	if err != nil {
		return nil, err
	}
	if nameLen > maxName || nameLen > uint64(len(p)) {
		return nil, errShort
	}
	name := string(p[:nameLen])
	p = p[nameLen:]

	hdr := make([]uint64, 4)
	for i := range hdr {
		if hdr[i], p, err = uvar(p); err != nil {
			return nil, err
		}
	}
	ncpu := hdr[0]
	if ncpu > maxCPUs {
		return nil, errShort
	}
	counts := make([]uint64, ncpu)
	for i := range counts {
		if counts[i], p, err = uvar(p); err != nil {
			return nil, err
		}
		// An op costs at least 3 section bytes (kind byte + 1-byte gap +
		// 1-byte arg), so no count can exceed a third of the bytes left.
		// Rejecting here also caps counts[i] well below 2^62, so the
		// 3*counts[i] comparison below cannot wrap uint64.
		if counts[i] > uint64(len(p))/3 {
			return nil, errShort
		}
	}
	lens := make([]uint64, ncpu)
	for i := range lens {
		if lens[i], p, err = uvar(p); err != nil {
			return nil, err
		}
		// Same minimum: rejects counts the section cannot possibly
		// back, before the column allocations below.
		if lens[i] < 3*counts[i] {
			return nil, errShort
		}
	}
	// p is now exactly the concatenated sections; the declared lengths
	// must tile it. Comparing each length against the bytes not yet
	// claimed keeps total <= len(p) as an invariant, so neither the sum
	// nor the offsets below can wrap.
	var total uint64
	for _, l := range lens {
		if l > uint64(len(p))-total {
			return nil, errShort
		}
		total += l
	}
	if total != uint64(len(p)) {
		return nil, errShort
	}

	tr := &trace.Trace{
		Name:      name,
		CPUs:      make([]trace.Stream, ncpu),
		Barriers:  int(hdr[1]),
		Locks:     int(hdr[2]),
		Footprint: hdr[3],
	}
	offs := make([]uint64, ncpu+1)
	for i, l := range lens {
		offs[i+1] = offs[i] + l
	}
	err = decodeEachCPU(int(ncpu), func(cpu int) error {
		s, err := decodeSection(p[offs[cpu]:offs[cpu+1]], int(counts[cpu]))
		if err != nil {
			return err
		}
		tr.CPUs[cpu] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// decodeSection parses one stream's columns from its section bytes; the
// section must be exactly consumed. The varint loops inline the
// one-byte fast path: real traces keep most gaps under 128 cycles and
// most arg deltas within ±63 blocks, so the common case is a single
// compare-and-copy per value and materializing a warm trace stays far
// cheaper than regenerating it.
func decodeSection(p []byte, count int) (trace.Stream, error) {
	var s trace.Stream
	if count > len(p) {
		return s, errShort
	}
	s.Kinds = make([]trace.Kind, count)
	for i, b := range p[:count] {
		if int(b) >= trace.KindCount {
			return trace.Stream{}, fmt.Errorf("store: invalid op kind %d", b)
		}
		s.Kinds[i] = trace.Kind(b)
	}
	p = p[count:]
	s.Gaps = make([]uint32, count)
	for i := range s.Gaps {
		if len(p) > 0 && p[0] < 0x80 {
			s.Gaps[i] = uint32(p[0])
			p = p[1:]
			continue
		}
		g, n := binary.Uvarint(p)
		if n <= 0 {
			return trace.Stream{}, errShort
		}
		if g > 1<<32-1 {
			return trace.Stream{}, fmt.Errorf("store: gap %d overflows uint32", g)
		}
		s.Gaps[i] = uint32(g)
		p = p[n:]
	}
	s.Args = make([]uint64, count)
	var prev uint64
	for i := range s.Args {
		var d int64
		if len(p) > 0 && p[0] < 0x80 {
			// Inline zigzag decode of a one-byte varint.
			b := uint64(p[0])
			d = int64(b>>1) ^ -int64(b&1)
			p = p[1:]
		} else {
			var n int
			d, n = binary.Varint(p)
			if n <= 0 {
				return trace.Stream{}, errShort
			}
			p = p[n:]
		}
		prev += uint64(d)
		s.Args[i] = prev
	}
	if len(p) != 0 {
		return trace.Stream{}, fmt.Errorf("store: %d trailing bytes in section", len(p))
	}
	return s, nil
}

// uvar reads one unsigned varint, returning the remaining bytes.
func uvar(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, p[n:], nil
}

// parallelThreshold is the CPU count below which section work stays on
// one goroutine (tiny traces, hostile fuzz inputs).
const parallelThreshold = 4

// encodeEachCPU runs f over every CPU index, fanning out when there is
// enough work to amortize the goroutines.
func encodeEachCPU(n int, f func(cpu int) error) error { return eachCPU(n, f) }

// decodeEachCPU is encodeEachCPU for the decode direction; the section
// table in the header makes per-CPU sections independently parseable.
func decodeEachCPU(n int, f func(cpu int) error) error { return eachCPU(n, f) }

func eachCPU(n int, f func(cpu int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if n < parallelThreshold || workers < 2 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
