package store_test

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

// TestRoundTripEveryGenerator pins the core store contract: for every
// registered application generator, Encode followed by Decode yields a
// trace identical in metadata and op content, at more than one CPU
// count.
func TestRoundTripEveryGenerator(t *testing.T) {
	for _, info := range apps.All() {
		for _, cpus := range []int{8, 32} {
			tr, err := info.Generate(apps.Params{CPUs: cpus, Scale: 64})
			if err != nil {
				t.Fatalf("%s cpus=%d: %v", info.Name, cpus, err)
			}
			data := store.Encode(tr)
			got, err := store.Decode(data)
			if err != nil {
				t.Fatalf("%s cpus=%d: decode: %v", info.Name, cpus, err)
			}
			if !got.Equal(tr) {
				t.Errorf("%s cpus=%d: round-trip not identical", info.Name, cpus)
			}
			if ops := tr.Ops(); ops > 0 {
				t.Logf("%s cpus=%d: %d ops, %d bytes (%.2f B/op)",
					info.Name, cpus, ops, len(data), float64(len(data))/float64(ops))
			}
		}
	}
}

// TestRoundTripEdgeShapes covers stream shapes the generators do not
// produce: empty traces, empty per-CPU streams, maximal gaps, and args
// that go backwards (negative deltas).
func TestRoundTripEdgeShapes(t *testing.T) {
	traces := []*trace.Trace{
		{Name: "", CPUs: nil},
		{Name: "empty-cpus", CPUs: make([]trace.Stream, 5), Footprint: 1 << 30},
		{
			Name: "edges",
			CPUs: []trace.Stream{
				trace.StreamOf(
					trace.Op{Kind: trace.Read, Gap: 1<<32 - 1, Arg: 1 << 62},
					trace.Op{Kind: trace.Write, Arg: 0}, // large negative delta
					trace.Op{Kind: trace.Pad, Gap: 7},
				),
				{},
				trace.StreamOf(trace.Op{Kind: trace.Barrier, Arg: 9}),
			},
			Barriers:  1,
			Locks:     2,
			Footprint: 12345,
		},
	}
	for _, tr := range traces {
		got, err := store.Decode(store.Encode(tr))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		if !got.Equal(tr) {
			t.Errorf("%s: round-trip not identical", tr.Name)
		}
	}
}

func genTrace(t *testing.T) (*trace.Trace, store.Key) {
	t.Helper()
	info, err := apps.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	k := store.Key{App: "radix", CPUs: 32, Scale: 64}
	tr, err := info.Generate(apps.Params{CPUs: k.CPUs, Scale: k.Scale})
	if err != nil {
		t.Fatal(err)
	}
	return tr, k
}

// TestStoreSaveLoad exercises the content-addressed file cycle.
func TestStoreSaveLoad(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr, k := genTrace(t)
	if _, ok := s.Load(k); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Save(k, tr); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(k)
	if !ok {
		t.Fatal("saved trace not found")
	}
	if !got.Equal(tr) {
		t.Error("loaded trace differs from saved")
	}
	// Different key fields must address different files.
	for _, other := range []store.Key{
		{App: "radix", CPUs: 8, Scale: 64},
		{App: "radix", CPUs: 32, Scale: 32},
		{App: "radix", CPUs: 32, Scale: 64, Seed: 1},
		{App: "lu", CPUs: 32, Scale: 64},
	} {
		if other.Filename() == k.Filename() {
			t.Errorf("key %+v collides with %+v", other, k)
		}
		if _, ok := s.Load(other); ok {
			t.Errorf("key %+v unexpectedly hit", other)
		}
	}
}

// TestCorruptFileRegeneratesSilently is the corruption contract:
// truncated or bit-flipped store files act as misses (and are removed),
// and LoadOrGenerate transparently regenerates.
func TestCorruptFileRegeneratesSilently(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, k := genTrace(t)
	if err := s.Save(k, tr); err != nil {
		t.Fatal(err)
	}
	path := s.Path(k)

	corrupt := func(name string, mutate func([]byte) []byte) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := s.Load(k); ok {
			t.Fatalf("%s: corrupt file loaded as a hit", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: corrupt file not removed", name)
		}
		// The miss regenerates and re-saves.
		got, hit, err := s.LoadOrGenerate(k, func() (*trace.Trace, error) { return tr, nil })
		if err != nil || hit {
			t.Fatalf("%s: LoadOrGenerate = hit=%v err=%v, want regeneration", name, hit, err)
		}
		if !got.Equal(tr) {
			t.Fatalf("%s: regenerated trace differs", name)
		}
		if _, ok := s.Load(k); !ok {
			t.Fatalf("%s: regenerated trace not re-saved", name)
		}
	}

	corrupt("truncated", func(d []byte) []byte { return d[:len(d)/2] })
	corrupt("bit-flip", func(d []byte) []byte {
		d[len(d)/3] ^= 0x40
		return d
	})
	corrupt("emptied", func(d []byte) []byte { return nil })
}

// TestLoadOrGenerateHitSkipsGenerator asserts the warm path never calls
// the generator.
func TestLoadOrGenerateHitSkipsGenerator(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr, k := genTrace(t)
	if err := s.Save(k, tr); err != nil {
		t.Fatal(err)
	}
	got, hit, err := s.LoadOrGenerate(k, func() (*trace.Trace, error) {
		t.Fatal("generator called on a warm store")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("hit=%v err=%v, want warm hit", hit, err)
	}
	if !got.Equal(tr) {
		t.Error("warm trace differs")
	}
}

// TestVersionMismatchIsMiss ensures a file carrying a different format
// version byte is rejected even if its checksum is valid.
func TestVersionMismatchIsMiss(t *testing.T) {
	tr, _ := genTrace(t)
	data := store.Encode(tr)
	if _, err := store.Decode(data); err != nil {
		t.Fatal(err)
	}
	// Flip the version byte and fix up the checksum.
	data[4]++
	data = store.Reseal(data)
	if _, err := store.Decode(data); err == nil {
		t.Error("future-version file decoded")
	}
}

// hostileFile assembles a checksummed trace file from hand-built
// header fields, so structural validation past the CRC gate is
// reachable with arbitrary (including overflowing) counts.
func hostileFile(name string, counts, lens []uint64, payload []byte) []byte {
	buf := []byte("DTRC\x01")
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(counts))) // cpus
	buf = binary.AppendUvarint(buf, 0)                   // barriers
	buf = binary.AppendUvarint(buf, 0)                   // locks
	buf = binary.AppendUvarint(buf, 0)                   // footprint
	for _, c := range counts {
		buf = binary.AppendUvarint(buf, c)
	}
	for _, l := range lens {
		buf = binary.AppendUvarint(buf, l)
	}
	buf = append(buf, payload...)
	return store.Reseal(append(buf, 0, 0, 0, 0))
}

// TestDecodeRejectsOverflowingHeaders pins two regressions the review
// caught: bounds arithmetic on attacker-controlled counts and section
// lengths must not wrap uint64 into a panic — hostile but checksummed
// headers must come back as errors.
func TestDecodeRejectsOverflowingHeaders(t *testing.T) {
	cases := map[string][]byte{
		// counts[0]*3 wraps uint64 to 1, which would pass the minimum-
		// bytes check and reach make() with a negative length.
		"count-overflow": hostileFile("x", []uint64{0xAAAAAAAAAAAAAAAB}, []uint64{1}, []byte{0}),
		// The lens sum wraps uint64 so every intermediate total stays
		// small, inverting the section offsets.
		"length-sum-overflow": hostileFile("x",
			[]uint64{0, 0, 0}, []uint64{3, ^uint64(1), 5}, make([]byte, 6)),
		// A single section length larger than the payload.
		"length-over-payload": hostileFile("x", []uint64{0}, []uint64{1 << 40}, make([]byte, 6)),
	}
	for name, data := range cases {
		tr, err := store.Decode(data)
		if err == nil {
			t.Errorf("%s: hostile header decoded (%d cpus)", name, tr.NumCPUs())
		}
	}
}

// TestNilStoreIsDisabled: a nil *Store loads nothing and saves nothing.
func TestNilStoreIsDisabled(t *testing.T) {
	var s *store.Store
	tr, k := genTrace(t)
	if _, ok := s.Load(k); ok {
		t.Error("nil store hit")
	}
	if err := s.Save(k, tr); err != nil {
		t.Errorf("nil store save: %v", err)
	}
	got, hit, err := s.LoadOrGenerate(k, func() (*trace.Trace, error) { return tr, nil })
	if err != nil || hit || got != tr {
		t.Errorf("nil store LoadOrGenerate = %v,%v,%v", got, hit, err)
	}
}

// TestSaveIsAtomic: no partially written file is ever visible under the
// key's name, even mid-Save (approximated by checking the temp-file
// protocol leaves no temp debris behind).
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr, k := genTrace(t)
	if err := s.Save(k, tr); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != k.Filename() {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("store dir = %v, want exactly [%s]", names, k.Filename())
	}
	if filepath.Ext(k.Filename()) != ".trace" {
		t.Errorf("filename %q lacks .trace suffix", k.Filename())
	}
}

// TestEncodeIsDeterministic: same trace, same bytes (content addressing
// relies on it only for cleanliness, but nondeterminism would thrash
// CI's cached store).
func TestEncodeIsDeterministic(t *testing.T) {
	tr, _ := genTrace(t)
	a, b := store.Encode(tr), store.Encode(tr)
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same trace differ")
	}
}
