package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Reseal recomputes the trailing checksum over data's body — a test
// helper for building deliberately malformed-but-checksummed inputs,
// so tests reach the structural validation behind the CRC gate.
func Reseal(data []byte) []byte {
	if len(data) < 4 {
		return data
	}
	body := data[:len(data)-4]
	return binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, castagnoli))
}
