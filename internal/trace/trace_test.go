package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/memory"
)

func TestRecorderCoalescesSameBlock(t *testing.T) {
	r := NewRecorder()
	// Eight word accesses within one block coalesce to one op.
	for i := 0; i < 8; i++ {
		r.Access(memory.Addr(i*8), false)
	}
	r.Access(memory.Addr(config.BlockBytes), true) // next block
	ops := r.Finish().Ops()
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	if ops[0].Kind != Read || ops[0].Arg != 0 {
		t.Errorf("op0 = %+v, want read of block 0", ops[0])
	}
	// The seven merged hits become gap cycles.
	if ops[0].Gap != 0 || ops[1].Gap != 7 {
		t.Errorf("gaps = %d,%d; want 0,7", ops[0].Gap, ops[1].Gap)
	}
	if ops[1].Kind != Write || ops[1].Arg != 1 {
		t.Errorf("op1 = %+v, want write of block 1", ops[1])
	}
}

func TestRecorderReadThenWriteBecomesWrite(t *testing.T) {
	r := NewRecorder()
	r.Access(0, false)
	r.Access(8, true) // same block
	ops := r.Finish().Ops()
	// One exclusive access; the merged hit's cycle trails as a pad.
	if len(ops) != 2 || ops[0].Kind != Write || ops[1].Kind != Pad || ops[1].Gap != 1 {
		t.Fatalf("ops = %+v, want write then pad(1)", ops)
	}
}

func TestRecorderComputeAttachesToNextOp(t *testing.T) {
	r := NewRecorder()
	r.Access(0, false)
	r.Compute(100)
	r.Access(memory.Addr(config.BlockBytes), false)
	ops := r.Finish().Ops()
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	if ops[1].Gap != 100 {
		t.Errorf("gap = %d, want 100", ops[1].Gap)
	}
}

func TestRecorderTrailingComputeBecomesPad(t *testing.T) {
	r := NewRecorder()
	r.Access(0, true)
	r.Compute(55)
	ops := r.Finish().Ops()
	if len(ops) != 2 || ops[1].Kind != Pad || ops[1].Gap != 55 {
		t.Fatalf("ops = %+v, want write then pad(55)", ops)
	}
}

func TestRecorderSyncFlushesRun(t *testing.T) {
	r := NewRecorder()
	r.Access(0, false)
	r.Barrier(3)
	r.Access(0, false) // same block again: new run after the barrier
	ops := r.Finish().Ops()
	if len(ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(ops))
	}
	if ops[1].Kind != Barrier || ops[1].Arg != 3 {
		t.Errorf("op1 = %+v, want barrier 3", ops[1])
	}
}

func TestRecorderLockUnlock(t *testing.T) {
	r := NewRecorder()
	r.Lock(2)
	r.Access(0, true)
	r.Unlock(2)
	ops := r.Finish().Ops()
	if len(ops) != 3 || ops[0].Kind != Lock || ops[2].Kind != Unlock {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestValidateCatchesBarrierMismatch(t *testing.T) {
	tr := &Trace{
		Name: "bad",
		CPUs: []Stream{
			StreamOf(Op{Kind: Barrier, Arg: 0}),
			StreamOf(Op{Kind: Barrier, Arg: 1}),
		},
	}
	if err := tr.Validate(); err == nil {
		t.Error("mismatched barrier ids validated")
	}
	tr2 := &Trace{
		Name: "bad2",
		CPUs: []Stream{
			StreamOf(Op{Kind: Barrier, Arg: 0}),
			{},
		},
	}
	if err := tr2.Validate(); err == nil {
		t.Error("unbalanced barrier counts validated")
	}
}

func TestValidateCatchesLockErrors(t *testing.T) {
	recursive := &Trace{
		Name: "rec",
		CPUs: []Stream{StreamOf(Op{Kind: Lock, Arg: 1}, Op{Kind: Lock, Arg: 1})},
	}
	if err := recursive.Validate(); err == nil {
		t.Error("recursive lock validated")
	}
	unheld := &Trace{
		Name: "unheld",
		CPUs: []Stream{StreamOf(Op{Kind: Unlock, Arg: 1})},
	}
	if err := unheld.Validate(); err == nil {
		t.Error("unlock of unheld lock validated")
	}
	leaked := &Trace{
		Name: "leak",
		CPUs: []Stream{StreamOf(Op{Kind: Lock, Arg: 1})},
	}
	if err := leaked.Validate(); err == nil {
		t.Error("trace ending with a held lock validated")
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := &Trace{
		Name: "ok",
		CPUs: []Stream{
			StreamOf(Op{Kind: Lock, Arg: 0}, Op{Kind: Write, Arg: 5}, Op{Kind: Unlock, Arg: 0}, Op{Kind: Barrier, Arg: 0}),
			StreamOf(Op{Kind: Read, Arg: 9}, Op{Kind: Barrier, Arg: 0}),
		},
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("well-formed trace rejected: %v", err)
	}
	if tr.Ops() != 6 {
		t.Errorf("ops = %d, want 6", tr.Ops())
	}
}

func TestRecorderOpCountNeverExceedsAccesses(t *testing.T) {
	// Property: coalescing only shrinks; op count <= access count, and
	// total gap equals compute plus merged hits.
	f := func(addrs []uint16, computes []uint8) bool {
		r := NewRecorder()
		var totalCompute uint64
		for i, a := range addrs {
			r.Access(memory.Addr(a), a%3 == 0)
			if i < len(computes) {
				r.Compute(int(computes[i]))
				totalCompute += uint64(computes[i])
			}
		}
		ops := r.Finish().Ops()
		if len(ops) > len(addrs)+1 { // +1 for a possible trailing pad
			return false
		}
		var gaps, memOps uint64
		for _, op := range ops {
			gaps += uint64(op.Gap)
			if op.Kind == Read || op.Kind == Write {
				memOps++
			}
		}
		merged := uint64(len(addrs)) - memOps
		return gaps == totalCompute+merged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Read; k <= Pad; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("kind %d has bad string %q", k, s)
		}
	}
}
