// Package trace defines the memory-access trace format the application
// generators produce and the replay engine consumes.
//
// Traces are per-processor streams of block-grain operations. Consecutive
// accesses to the same coherence block are coalesced by the Recorder into
// a single Read or Write op (a run that both reads and writes emits a
// Write, since the block must be fetched exclusively either way); the
// cycles spent computing on in-cache data between block touches are
// carried as a compute gap on the next op. Synchronization (barriers,
// locks) appears inline so the replay engine can preserve inter-processor
// dependences in simulated time.
//
// # Columnar representation
//
// Each processor's stream is stored column-wise (struct of arrays): a
// Stream holds three dense columns — Kinds ([]Kind, one byte per op),
// Gaps ([]uint32) and Args ([]uint64) — instead of a slice of 16-byte Op
// structs. Replay walks the three columns directly (13 B/op of payload,
// no padding, and the kind column alone fits ~64 ops per cache line),
// generation appends straight into the columns through the Recorder, and
// the on-disk format of trace/store serializes each column independently
// so per-CPU sections encode and decode in parallel. The Op struct
// survives as the row-at-a-time view: Stream.Op(i), Stream.Append and
// Cursor assemble or scatter rows at the column boundary, which is the
// convenient form for tests and hand-built traces.
package trace

import (
	"fmt"

	"repro/internal/memory"
)

// Kind is the operation type of one trace op.
type Kind uint8

const (
	// Read fetches a block with read intent.
	Read Kind = iota
	// Write fetches a block with write (exclusive) intent.
	Write
	// Barrier waits for all processors to arrive at the same barrier id.
	Barrier
	// Lock acquires the mutex with the given id.
	Lock
	// Unlock releases the mutex with the given id.
	Unlock
	// Phase marks the start of the parallel phase: first-touch page
	// placement applies to accesses after this marker.
	Phase
	// Pad carries trailing compute time with no memory or sync effect.
	Pad

	// KindCount is the number of valid kinds (decoder bound).
	KindCount = int(Pad) + 1
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Barrier:
		return "barrier"
	case Lock:
		return "lock"
	case Unlock:
		return "unlock"
	case Phase:
		return "phase"
	case Pad:
		return "pad"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is the row-at-a-time view of one trace operation. For Read/Write,
// Arg is the global block number; for Barrier/Lock/Unlock it is the
// barrier or lock id. Gap is the compute time in cycles spent before
// this op issues.
type Op struct {
	Kind Kind
	Gap  uint32
	Arg  uint64
}

// Stream is one processor's op sequence in columnar form. The three
// columns always have equal length; index i across them is op i.
type Stream struct {
	Kinds []Kind
	Gaps  []uint32
	Args  []uint64
}

// StreamOf builds a stream from rows (test and hand-built-trace helper).
func StreamOf(ops ...Op) Stream {
	var s Stream
	s.Grow(len(ops))
	for _, op := range ops {
		s.Append(op)
	}
	return s
}

// Len returns the op count.
func (s Stream) Len() int { return len(s.Kinds) }

// Op assembles row i from the columns.
func (s Stream) Op(i int) Op {
	return Op{Kind: s.Kinds[i], Gap: s.Gaps[i], Arg: s.Args[i]}
}

// Append scatters one row onto the columns.
func (s *Stream) Append(op Op) {
	s.Kinds = append(s.Kinds, op.Kind)
	s.Gaps = append(s.Gaps, op.Gap)
	s.Args = append(s.Args, op.Arg)
}

// Grow reserves capacity for n additional ops.
func (s *Stream) Grow(n int) {
	if n <= 0 {
		return
	}
	if cap(s.Kinds)-len(s.Kinds) < n {
		kinds := make([]Kind, len(s.Kinds), len(s.Kinds)+n)
		copy(kinds, s.Kinds)
		s.Kinds = kinds
	}
	if cap(s.Gaps)-len(s.Gaps) < n {
		gaps := make([]uint32, len(s.Gaps), len(s.Gaps)+n)
		copy(gaps, s.Gaps)
		s.Gaps = gaps
	}
	if cap(s.Args)-len(s.Args) < n {
		args := make([]uint64, len(s.Args), len(s.Args)+n)
		copy(args, s.Args)
		s.Args = args
	}
}

// Ops materializes the stream as rows (tests and the AoS baseline
// benchmark; the replay engine streams the columns directly).
func (s Stream) Ops() []Op {
	out := make([]Op, s.Len())
	for i := range out {
		out[i] = s.Op(i)
	}
	return out
}

// Equal reports whether two streams hold the same op sequence.
func (s Stream) Equal(o Stream) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.Kinds {
		if s.Kinds[i] != o.Kinds[i] || s.Gaps[i] != o.Gaps[i] || s.Args[i] != o.Args[i] {
			return false
		}
	}
	return true
}

// Cursor iterates a stream row by row. The columns are shared with the
// underlying stream, not copied.
type Cursor struct {
	s Stream
	i int
}

// Cursor returns an iterator positioned before the first op.
func (s Stream) Cursor() Cursor { return Cursor{s: s} }

// Next returns the next op, or ok=false past the end.
func (c *Cursor) Next() (op Op, ok bool) {
	if c.i >= c.s.Len() {
		return Op{}, false
	}
	op = c.s.Op(c.i)
	c.i++
	return op, true
}

// Trace is a complete multi-processor trace.
type Trace struct {
	// Name identifies the generating application and its parameters.
	Name string

	// CPUs holds one columnar op stream per processor.
	CPUs []Stream

	// Barriers is the number of distinct barrier episodes (for
	// validation).
	Barriers int

	// Locks is the number of distinct lock ids used.
	Locks int

	// Footprint is the shared bytes allocated by the generator.
	Footprint uint64
}

// NumCPUs returns the processor count of the trace.
func (t *Trace) NumCPUs() int { return len(t.CPUs) }

// Ops returns the total op count over all processors.
func (t *Trace) Ops() int {
	n := 0
	for i := range t.CPUs {
		n += t.CPUs[i].Len()
	}
	return n
}

// Equal reports whether two traces are identical in metadata and op
// content (store round-trip check).
func (t *Trace) Equal(o *Trace) bool {
	if t.Name != o.Name || t.Barriers != o.Barriers || t.Locks != o.Locks ||
		t.Footprint != o.Footprint || len(t.CPUs) != len(o.CPUs) {
		return false
	}
	for i := range t.CPUs {
		if !t.CPUs[i].Equal(o.CPUs[i]) {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: barrier sequences must be
// identical across processors (same ids in the same order), every lock
// must be released by its acquirer before the next lock op of that
// processor uses it again, and each processor must hold at most one lock
// at a time per id.
func (t *Trace) Validate() error {
	var ref []uint64
	for cpu := range t.CPUs {
		s := &t.CPUs[cpu]
		var barriers []uint64
		held := map[uint64]bool{}
		for i, k := range s.Kinds {
			switch k {
			case Barrier:
				barriers = append(barriers, s.Args[i])
			case Lock:
				if held[s.Args[i]] {
					return fmt.Errorf("trace %s: cpu %d op %d: recursive lock %d", t.Name, cpu, i, s.Args[i])
				}
				held[s.Args[i]] = true
			case Unlock:
				if !held[s.Args[i]] {
					return fmt.Errorf("trace %s: cpu %d op %d: unlock of unheld lock %d", t.Name, cpu, i, s.Args[i])
				}
				delete(held, s.Args[i])
			}
		}
		if len(held) != 0 {
			return fmt.Errorf("trace %s: cpu %d ends holding %d locks", t.Name, cpu, len(held))
		}
		if cpu == 0 {
			ref = barriers
		} else if len(barriers) != len(ref) {
			return fmt.Errorf("trace %s: cpu %d passes %d barriers, cpu 0 passes %d",
				t.Name, cpu, len(barriers), len(ref))
		} else {
			for i := range barriers {
				if barriers[i] != ref[i] {
					return fmt.Errorf("trace %s: cpu %d barrier %d is id %d, cpu 0 has id %d",
						t.Name, cpu, i, barriers[i], ref[i])
				}
			}
		}
	}
	return nil
}

// Recorder builds one processor's op stream with same-block run
// coalescing, appending directly into the stream's columns. It is the
// only way application generators should emit memory references.
type Recorder struct {
	s Stream

	// pending is compute time accumulated before the next emitted op.
	pending uint64
	// runGap is time accumulated during the active run (merged L1 hits
	// and interleaved compute); it becomes pending when the run flushes,
	// since it elapses after the run's fetch.
	runGap uint64

	runValid bool
	runBlock memory.Block
	runWrite bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

const maxGap = 1<<32 - 1

// emit appends an op carrying the pending gap, splitting oversized gaps
// into leading Pad ops.
func (r *Recorder) emit(k Kind, arg uint64) {
	for r.pending > maxGap {
		r.s.Append(Op{Kind: Pad, Gap: maxGap})
		r.pending -= maxGap
	}
	r.s.Append(Op{Kind: k, Gap: uint32(r.pending), Arg: arg})
	r.pending = 0
}

// flushRun emits the coalesced run, if any; the time spent inside the
// run carries over as the next op's gap.
func (r *Recorder) flushRun() {
	if !r.runValid {
		return
	}
	k := Read
	if r.runWrite {
		k = Write
	}
	r.emit(k, uint64(r.runBlock))
	r.pending = r.runGap
	r.runGap = 0
	r.runValid = false
}

// Access records a read or write of the block containing addr. Same-block
// consecutive accesses merge; each merged access contributes one cycle of
// compute gap (the L1 hit).
func (r *Recorder) Access(addr memory.Addr, write bool) {
	b := addr.Block()
	if r.runValid && b == r.runBlock {
		r.runWrite = r.runWrite || write
		r.runGap++ // the hit costs a cycle of pipeline time
		return
	}
	r.flushRun()
	r.runValid = true
	r.runBlock = b
	r.runWrite = write
}

// Compute adds cycles of pure computation. Compute interleaved with
// same-block accesses does not break the run: the block stays cached
// across it.
func (r *Recorder) Compute(cycles int) {
	if cycles <= 0 {
		return
	}
	if r.runValid {
		r.runGap += uint64(cycles)
	} else {
		r.pending += uint64(cycles)
	}
}

// Barrier records arrival at barrier id.
func (r *Recorder) Barrier(id int) {
	r.flushRun()
	r.emit(Barrier, uint64(id))
}

// Lock records acquisition of lock id.
func (r *Recorder) Lock(id int) {
	r.flushRun()
	r.emit(Lock, uint64(id))
}

// Unlock records release of lock id.
func (r *Recorder) Unlock(id int) {
	r.flushRun()
	r.emit(Unlock, uint64(id))
}

// Phase records the start-of-parallel-phase marker.
func (r *Recorder) Phase() {
	r.flushRun()
	r.emit(Phase, 0)
}

// Finish flushes any pending run and returns the columnar stream. The
// recorder must not be used afterwards.
func (r *Recorder) Finish() Stream {
	r.flushRun()
	if r.pending > 0 {
		// Trailing pure compute only matters for execution time; carry
		// it on a Pad op.
		r.emit(Pad, 0)
	}
	return r.s
}

// Len returns the number of ops emitted so far (excluding a pending run).
func (r *Recorder) Len() int { return r.s.Len() }
