// Package directory implements the full-map write-invalidate directory of
// the DSM protocol. Each coherence block has an entry recording its
// global state, the owning node when dirty, and the (conservative) set of
// nodes that may hold copies. Sharer sets are conservative because clean
// evictions are silent, exactly as in hardware full-map directories.
package directory

import (
	"fmt"

	"repro/internal/memory"
)

// State is a block's global coherence state.
type State uint8

const (
	// Idle means no node caches the block; memory at home is current.
	Idle State = iota
	// SharedState means one or more nodes hold clean copies.
	SharedState
	// ModifiedState means exactly one node holds a dirty copy.
	ModifiedState
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case SharedState:
		return "shared"
	case ModifiedState:
		return "modified"
	default:
		return "?"
	}
}

// Entry is one block's directory record.
type Entry struct {
	State   State
	Owner   int8   // owning node when ModifiedState, else -1
	Sharers uint64 // node bitmask, conservative superset
}

// Directory holds entries for every block of the shared address space.
type Directory struct {
	nodes   int
	entries []Entry
}

// New builds a directory covering blocks [0, numBlocks) for a cluster of
// the given node count (≤ 64).
func New(numBlocks uint64, nodes int) *Directory {
	if nodes <= 0 || nodes > 64 {
		panic("directory: node count must be in 1..64")
	}
	d := &Directory{nodes: nodes, entries: make([]Entry, numBlocks)}
	for i := range d.entries {
		d.entries[i].Owner = -1
	}
	return d
}

// NumBlocks returns the covered block count.
func (d *Directory) NumBlocks() int { return len(d.entries) }

// Entry returns a pointer to the block's record.
func (d *Directory) Entry(b memory.Block) *Entry { return &d.entries[b] }

// AddSharer records that node holds a clean copy.
func (d *Directory) AddSharer(b memory.Block, node int) {
	e := &d.entries[b]
	e.Sharers |= 1 << uint(node)
	if e.State == Idle {
		e.State = SharedState
	}
	if e.State == ModifiedState {
		// Owner's copy downgraded to shared alongside the new sharer.
		e.State = SharedState
		e.Owner = -1
	}
}

// SetOwner records that node holds the sole dirty copy; all other sharers
// are dropped (the protocol has invalidated them). It returns the bitmask
// of nodes (excluding the new owner) that held copies and therefore
// received invalidations.
func (d *Directory) SetOwner(b memory.Block, node int) (invalidated uint64) {
	e := &d.entries[b]
	invalidated = e.Sharers &^ (1 << uint(node))
	if e.State == ModifiedState && e.Owner >= 0 && int(e.Owner) != node {
		invalidated |= 1 << uint(e.Owner)
	}
	e.State = ModifiedState
	e.Owner = int8(node)
	e.Sharers = 1 << uint(node)
	return invalidated
}

// WriteBack records that the owner flushed its dirty copy to home memory.
// The block returns to Idle unless other (conservative) sharers remain.
func (d *Directory) WriteBack(b memory.Block, node int) {
	e := &d.entries[b]
	if e.State == ModifiedState && int(e.Owner) == node {
		e.Owner = -1
		e.Sharers &^= 1 << uint(node)
		if e.Sharers == 0 {
			e.State = Idle
		} else {
			e.State = SharedState
		}
	}
}

// DropSharer removes node from the sharer set (an observed clean
// eviction; silent drops simply leave the set conservative).
func (d *Directory) DropSharer(b memory.Block, node int) {
	e := &d.entries[b]
	e.Sharers &^= 1 << uint(node)
	if e.State == ModifiedState && int(e.Owner) == node {
		e.Owner = -1
		e.State = SharedState
	}
	if e.Sharers == 0 && e.State == SharedState {
		e.State = Idle
	}
}

// InvalidateAll clears every copy of the block (page gathering), and
// returns the set of nodes that held copies.
func (d *Directory) InvalidateAll(b memory.Block) (held uint64) {
	e := &d.entries[b]
	held = e.Sharers
	e.State = Idle
	e.Owner = -1
	e.Sharers = 0
	return held
}

// IsDirtyRemote reports whether the block is dirty at a node other than
// the requester, returning the owner.
func (d *Directory) IsDirtyRemote(b memory.Block, requester int) (owner int, dirty bool) {
	e := &d.entries[b]
	if e.State == ModifiedState && int(e.Owner) != requester {
		return int(e.Owner), true
	}
	return -1, false
}

// SharerCount returns the number of nodes in the sharer set.
func (d *Directory) SharerCount(b memory.Block) int {
	x := d.entries[b].Sharers
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Check validates the structural invariants of every entry:
// ModifiedState implies a valid owner inside the sharer set of size one
// or more; Idle implies no owner. It returns the first violation found.
func (d *Directory) Check() error {
	for i := range d.entries {
		e := &d.entries[i]
		switch e.State {
		case ModifiedState:
			if e.Owner < 0 || int(e.Owner) >= d.nodes {
				return fmt.Errorf("directory: block %d modified with owner %d", i, e.Owner)
			}
			if e.Sharers&(1<<uint(e.Owner)) == 0 {
				return fmt.Errorf("directory: block %d owner %d not in sharer set %b", i, e.Owner, e.Sharers)
			}
		case Idle:
			if e.Owner != -1 {
				return fmt.Errorf("directory: block %d idle with owner %d", i, e.Owner)
			}
			if e.Sharers != 0 {
				return fmt.Errorf("directory: block %d idle with sharers %b", i, e.Sharers)
			}
		case SharedState:
			if e.Owner != -1 {
				return fmt.Errorf("directory: block %d shared with owner %d", i, e.Owner)
			}
		}
	}
	return nil
}
