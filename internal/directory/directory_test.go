package directory

import (
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

func TestReadSharingAccumulates(t *testing.T) {
	d := New(16, 8)
	d.AddSharer(3, 1)
	d.AddSharer(3, 4)
	e := d.Entry(3)
	if e.State != SharedState {
		t.Errorf("state = %v, want shared", e.State)
	}
	if e.Sharers != (1<<1)|(1<<4) {
		t.Errorf("sharers = %b", e.Sharers)
	}
	if d.SharerCount(3) != 2 {
		t.Errorf("count = %d, want 2", d.SharerCount(3))
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := New(16, 8)
	d.AddSharer(0, 1)
	d.AddSharer(0, 2)
	inv := d.SetOwner(0, 3)
	if inv != (1<<1)|(1<<2) {
		t.Errorf("invalidated = %b, want nodes 1 and 2", inv)
	}
	e := d.Entry(0)
	if e.State != ModifiedState || e.Owner != 3 || e.Sharers != 1<<3 {
		t.Errorf("entry = %+v", *e)
	}
}

func TestOwnershipTransfer(t *testing.T) {
	d := New(16, 8)
	d.SetOwner(0, 1)
	inv := d.SetOwner(0, 2)
	if inv != 1<<1 {
		t.Errorf("invalidated = %b, want old owner", inv)
	}
	if owner, dirty := d.IsDirtyRemote(0, 5); !dirty || owner != 2 {
		t.Errorf("dirty remote = (%d,%v)", owner, dirty)
	}
	if _, dirty := d.IsDirtyRemote(0, 2); dirty {
		t.Error("owner sees itself as dirty remote")
	}
}

func TestWriteBack(t *testing.T) {
	d := New(16, 8)
	d.SetOwner(5, 4)
	d.WriteBack(5, 4)
	e := d.Entry(5)
	if e.State != Idle || e.Owner != -1 || e.Sharers != 0 {
		t.Errorf("after writeback: %+v", *e)
	}
	// Writeback from a non-owner is ignored.
	d.SetOwner(5, 1)
	d.WriteBack(5, 2)
	if d.Entry(5).State != ModifiedState {
		t.Error("foreign writeback destroyed ownership")
	}
}

func TestDowngradeOnReadOfDirty(t *testing.T) {
	d := New(16, 8)
	d.SetOwner(1, 6)
	// A read by node 2: protocol writes back and both become sharers.
	d.WriteBack(1, 6)
	d.AddSharer(1, 6)
	d.AddSharer(1, 2)
	e := d.Entry(1)
	if e.State != SharedState || e.Sharers != (1<<6)|(1<<2) {
		t.Errorf("entry = %+v", *e)
	}
}

func TestInvalidateAll(t *testing.T) {
	d := New(16, 8)
	d.AddSharer(2, 0)
	d.AddSharer(2, 7)
	held := d.InvalidateAll(2)
	if held != (1<<0)|(1<<7) {
		t.Errorf("held = %b", held)
	}
	if d.Entry(2).State != Idle {
		t.Error("block not idle after gather")
	}
}

func TestDropSharer(t *testing.T) {
	d := New(16, 8)
	d.AddSharer(9, 3)
	d.AddSharer(9, 5)
	d.DropSharer(9, 3)
	if d.Entry(9).Sharers != 1<<5 {
		t.Errorf("sharers = %b", d.Entry(9).Sharers)
	}
	d.DropSharer(9, 5)
	if d.Entry(9).State != Idle {
		t.Error("block with no sharers not idle")
	}
}

func TestAddSharerDowngradesModified(t *testing.T) {
	d := New(16, 8)
	d.SetOwner(0, 1)
	d.AddSharer(0, 2)
	e := d.Entry(0)
	if e.State != SharedState || e.Owner != -1 {
		t.Errorf("entry = %+v, want downgraded shared", *e)
	}
}

// refModel is an executable specification: a set of clean holders plus
// an optional dirty owner.
type refModel struct {
	clean map[int]bool
	owner int
}

func newRef() *refModel { return &refModel{clean: map[int]bool{}, owner: -1} }

func (r *refModel) read(n int) {
	if r.owner >= 0 {
		r.clean[r.owner] = true
		r.owner = -1
	}
	r.clean[n] = true
}

func (r *refModel) write(n int) {
	r.clean = map[int]bool{}
	r.owner = n
}

func (r *refModel) holders() uint64 {
	var m uint64
	for n := range r.clean {
		m |= 1 << uint(n)
	}
	if r.owner >= 0 {
		m |= 1 << uint(r.owner)
	}
	return m
}

func TestDirectoryAgainstReferenceModel(t *testing.T) {
	// Property: after any sequence of reads/writes, the directory's
	// sharer set equals the reference holders and the owner matches.
	f := func(ops []uint8) bool {
		d := New(1, 8)
		ref := newRef()
		for _, op := range ops {
			n := int(op % 8)
			if op&0x80 != 0 {
				ref.write(n)
				d.SetOwner(0, n)
			} else {
				ref.read(n)
				if owner, dirty := d.IsDirtyRemote(0, n); dirty {
					// protocol: owner downgrades on a foreign read
					d.WriteBack(0, owner)
					d.AddSharer(0, owner)
				}
				d.AddSharer(0, n)
			}
			if d.Check() != nil {
				return false
			}
			e := d.Entry(0)
			if e.Sharers != ref.holders() {
				return false
			}
			wantOwner := int8(-1)
			if ref.owner >= 0 {
				wantOwner = int8(ref.owner)
			}
			if e.Owner != wantOwner {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	d := New(4, 8)
	d.Entry(memory.Block(1)).State = ModifiedState // owner missing
	if d.Check() == nil {
		t.Error("Check accepted modified block without owner")
	}
	d2 := New(4, 8)
	d2.Entry(0).Sharers = 1 // idle with sharers
	if d2.Check() == nil {
		t.Error("Check accepted idle block with sharers")
	}
}

func TestNewRejectsBadNodeCounts(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() { recover() }()
			New(4, n)
			t.Errorf("New accepted %d nodes", n)
		}()
	}
}
