package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// ManifestSchema identifies the manifest document format.
const ManifestSchema = "repro-run-manifest/v1"

// TraceRef identifies one generated workload by its content address in
// the on-disk trace store: the hash is the store filename, a SHA-256 of
// (format version, app, cpus, scale, seed), so two manifests with equal
// hashes replayed byte-identical inputs.
type TraceRef struct {
	App   string `json:"app"`
	CPUs  int    `json:"cpus"`
	Scale int    `json:"scale"`
	Seed  uint64 `json:"seed"`
	Hash  string `json:"hash"`
}

// Manifest records everything needed to reproduce (and attribute) a
// run: what was simulated, on which inputs, by which build, and how
// long it took. It is written next to every telemetry report so results
// are reproducible artifacts rather than bare numbers.
type Manifest struct {
	Schema  string `json:"schema"`
	Created string `json:"created"` // wall-clock, RFC 3339 UTC

	// What ran: an experiment name and/or a single (app, system) pair,
	// with the memory-system specs and fabric involved.
	Experiment string   `json:"experiment,omitempty"`
	App        string   `json:"app,omitempty"`
	Systems    []string `json:"systems,omitempty"`
	Fabric     string   `json:"fabric,omitempty"`

	// Input identity: problem scale, generator seed, and the content
	// hashes of every trace the run replayed.
	Scale  int        `json:"scale,omitempty"`
	Scales []int      `json:"scales,omitempty"`
	Seed   uint64     `json:"seed"`
	Traces []TraceRef `json:"traces,omitempty"`

	// Telemetry parameters, when telemetry was collected.
	WindowCycles int64 `json:"window_cycles,omitempty"`
	Timeline     bool  `json:"timeline,omitempty"`

	// Shards records the sharded-engine partition width when the run
	// used the parallel engine (0 = sequential). Sharded results are
	// byte-identical to sequential ones; the field attributes execution
	// cost, not result identity.
	Shards int `json:"shards,omitempty"`

	// Execution cost and build identity.
	WallSeconds float64 `json:"wall_seconds"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Commit      string  `json:"commit,omitempty"`
}

// NewManifestAt returns a manifest stamped with the given creation
// time and this build's metadata; the caller fills in the run identity
// and wall time. Wall-clock time is presentation-layer input, so the
// harness or command layer observes it and passes it down — this
// package (part of the deterministic core) never reads the clock
// itself (see the walltime analyzer in internal/lint).
func NewManifestAt(created time.Time) Manifest {
	return Manifest{
		Schema:     ManifestSchema,
		Created:    created.UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     BuildCommit(),
	}
}

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BuildCommit returns the VCS revision of the running binary: the
// vcs.revision stamped by `go build` when available (with a "-dirty"
// suffix for modified trees), else a best-effort `git rev-parse HEAD`
// (go run and test binaries are not VCS-stamped), else empty.
func BuildCommit() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
