package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func testCollector(window int64, timeline bool) *Collector {
	c := New(Config{Window: window, Timeline: timeline})
	c.Bind(4, []string{"l:0->1", "l:1->2", "l:2->3"})
	return c
}

func TestWindowIndexing(t *testing.T) {
	c := testCollector(100, false)
	c.PageOp(stats.Migration, 0)    // window 0
	c.PageOp(stats.Migration, 99)   // window 0
	c.PageOp(stats.Migration, 100)  // window 1
	c.PageOp(stats.Migration, 250)  // window 2
	c.PageOp(stats.Replication, -5) // negative clamps to window 0
	if got := c.PageOpWindow(stats.Migration, 0); got != 2 {
		t.Errorf("window 0 migrations = %d, want 2", got)
	}
	if got := c.PageOpWindow(stats.Migration, 1); got != 1 {
		t.Errorf("window 1 migrations = %d, want 1", got)
	}
	if got := c.PageOpWindow(stats.Migration, 2); got != 1 {
		t.Errorf("window 2 migrations = %d, want 1", got)
	}
	if got := c.PageOpWindow(stats.Migration, 3); got != 0 {
		t.Errorf("window 3 migrations = %d, want 0 (past end)", got)
	}
	if got := c.PageOpWindow(stats.Replication, 0); got != 1 {
		t.Errorf("negative time not clamped to window 0: %d", got)
	}
	if got := c.PageOpTotal(stats.Migration); got != 4 {
		t.Errorf("migration total = %d, want 4", got)
	}
	if got := c.Windows(); got != 3 {
		t.Errorf("windows = %d, want 3", got)
	}
}

func TestDefaultWindowApplied(t *testing.T) {
	c := New(Config{})
	if got := c.WindowCycles(); got != DefaultWindow {
		t.Errorf("window = %d, want default %d", got, DefaultWindow)
	}
}

func TestSeriesTotalsReconcile(t *testing.T) {
	c := testCollector(1000, false)
	var wantNode, wantLink int64
	for i := int64(0); i < 50; i++ {
		c.Traffic(int(i)%4, 64+i, i*137)
		c.Link(int(i)%3, 128+i, i*211)
		wantNode += 64 + i
		wantLink += 128 + i
	}
	var gotNode, gotLink int64
	for n := 0; n < 4; n++ {
		gotNode += c.NodeTotal(n)
	}
	for id := 0; id < c.Links(); id++ {
		gotLink += c.LinkTotal(id)
	}
	if gotNode != wantNode {
		t.Errorf("node totals = %d, want %d", gotNode, wantNode)
	}
	if gotLink != wantLink {
		t.Errorf("link totals = %d, want %d", gotLink, wantLink)
	}
}

func TestMissSeriesSeparateRemoteLocal(t *testing.T) {
	c := testCollector(10, false)
	c.Miss(stats.Cold, true, 5)
	c.Miss(stats.Cold, false, 5)
	c.Miss(stats.Cold, false, 15)
	if got := c.MissTotal(stats.Cold, true); got != 1 {
		t.Errorf("remote cold total = %d, want 1", got)
	}
	if got := c.MissTotal(stats.Cold, false); got != 2 {
		t.Errorf("local cold total = %d, want 2", got)
	}
	if got := c.MissWindow(stats.Cold, false, 1); got != 1 {
		t.Errorf("local cold window 1 = %d, want 1", got)
	}
}

func TestHotLinksOrdering(t *testing.T) {
	c := testCollector(100, false)
	c.Link(1, 500, 0)
	c.Link(0, 200, 0)
	c.Link(2, 200, 0) // ties with link 0: lower id first
	got := c.HotLinks(3)
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hot links = %v, want %v", got, want)
		}
	}
	if got := c.HotLinks(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("hot links capped = %v, want [1]", got)
	}
	if name := c.LinkName(1); name != "l:1->2" {
		t.Errorf("link name = %q", name)
	}
}

func TestEventsRequireTimeline(t *testing.T) {
	off := testCollector(100, false)
	off.Event(EvMigrate, 1, 0, 1, 10, 20)
	if got := len(off.Events()); got != 0 {
		t.Errorf("events recorded with timeline off: %d", got)
	}
	on := testCollector(100, true)
	on.Event(EvMigrate, 1, 0, 1, 10, 20)
	evs := on.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != EvMigrate || e.Page != 1 || e.Home != 0 || e.Requester != 1 || e.Start != 10 || e.End != 20 {
		t.Errorf("event mis-recorded: %+v", e)
	}
}

func TestEventKindNames(t *testing.T) {
	want := map[EventKind]string{
		EvRelocate:   "relocate",
		EvReplicate:  "replicate",
		EvGrant:      "grant",
		EvCollapse:   "collapse",
		EvMigrate:    "migrate",
		EvFrameFlush: "frame-flush",
		EvFaultCopy:  "fault-copy",
	}
	for k, name := range want {
		if got := k.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", k, got, name)
		}
	}
	if int(numEventKinds) != len(want) {
		t.Errorf("numEventKinds = %d, want %d (update the name map)", numEventKinds, len(want))
	}
	// Only the page-busy operations serialize.
	for k := EventKind(0); k < numEventKinds; k++ {
		want := k == EvReplicate || k == EvGrant || k == EvCollapse || k == EvMigrate
		if got := k.Serializing(); got != want {
			t.Errorf("%s.Serializing() = %v, want %v", k, got, want)
		}
	}
}

func TestWriteWindowsCSV(t *testing.T) {
	c := testCollector(100, false)
	c.PageOp(stats.Migration, 150)
	c.Traffic(2, 4096, 150)
	c.Link(0, 64, 50)
	c.Dispatch(250)
	var sb strings.Builder
	if err := c.WriteWindowsCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if lines[0] != "window,start_cycle,end_cycle,series,key,value" {
		t.Fatalf("header = %q", lines[0])
	}
	want := map[string]bool{
		"0,0,100,link_bytes,l:0->1,64":    false,
		"1,100,200,pageop,migration,1":    false,
		"1,100,200,node_bytes,node2,4096": false,
		"2,200,300,dispatch,ops,1":        false,
	}
	for _, l := range lines[1:] {
		if _, ok := want[l]; !ok {
			t.Errorf("unexpected row %q (zero rows must be omitted)", l)
		}
		want[l] = true
	}
	for l, seen := range want {
		if !seen {
			t.Errorf("missing row %q", l)
		}
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	c := testCollector(100, true)
	c.Event(EvMigrate, 7, 2, 1, 1000, 1500)
	c.Event(EvReplicate, 8, 2, 3, 2000, 2600)
	c.Event(EvRelocate, 9, 0, 3, 2500, 2700)
	var sb strings.Builder
	if err := c.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  int64  `json:"pid"`
			Tid  int64  `json:"tid"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	var slices, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur < 0 {
				t.Errorf("negative duration on %q", e.Name)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if slices != 3 {
		t.Errorf("slices = %d, want 3", slices)
	}
	// Homes 2 and 0 each get one process_name metadata record.
	if meta != 2 {
		t.Errorf("metadata records = %d, want 2", meta)
	}
	found := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Name == "migrate" {
			found = true
			if e.Ts != 1000 || e.Dur != 500 || e.Pid != 2 || e.Tid != 1 {
				t.Errorf("migrate slice = %+v", e)
			}
			if page, ok := e.Args["page"].(float64); !ok || page != 7 {
				t.Errorf("migrate args = %v", e.Args)
			}
		}
	}
	if !found {
		t.Error("no migrate slice in trace")
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	c := testCollector(100, true)
	c.Event(EvGrant, 3, 1, 2, 10, 40)
	var sb strings.Builder
	if err := c.WriteTimelineCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "kind,page,home,requester,start_cycle,end_cycle\ngrant,3,1,2,10,40\n"
	if sb.String() != want {
		t.Errorf("timeline csv = %q, want %q", sb.String(), want)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	created := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	man := NewManifestAt(created)
	if man.Schema != ManifestSchema {
		t.Errorf("schema = %q", man.Schema)
	}
	if man.Created != "2026-08-08T12:00:00Z" {
		t.Errorf("created = %q, want fixed RFC 3339 stamp", man.Created)
	}
	if man.GoVersion == "" || man.GOOS == "" || man.GOARCH == "" || man.GOMAXPROCS < 1 {
		t.Errorf("build metadata unpopulated: %+v", man)
	}
	man.Experiment = "fig5"
	man.Systems = []string{"CC-NUMA", "MigRep"}
	man.Scale = 8
	man.Traces = []TraceRef{{App: "lu", CPUs: 32, Scale: 8, Hash: "abc.trace"}}
	man.WallSeconds = 1.5
	var sb strings.Builder
	if err := man.Write(&sb); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Experiment != "fig5" || back.Scale != 8 || len(back.Traces) != 1 || back.Traces[0].Hash != "abc.trace" {
		t.Errorf("round trip lost fields: %+v", back)
	}
}
