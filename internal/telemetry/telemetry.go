// Package telemetry is the simulator's opt-in time-resolved
// observability layer. Where internal/stats accumulates end-of-run
// aggregates, a telemetry.Collector resolves the same quantities over
// simulated time:
//
//   - Windowed series: the simulated timeline is cut into fixed-width
//     windows (Config.Window cycles) and every page operation, miss,
//     per-node traffic byte and per-link fabric byte is charged to the
//     window of its simulated event time. The series expose migration
//     bursts, replication storms and hot links forming and dissolving —
//     dynamics invisible in the end-of-run totals.
//   - An event timeline (Config.Timeline): every discrete page
//     operation (relocation, replication, replica grant, collapse,
//     migration, frame flush, fault-path replica copy) is recorded with
//     its start and end simulated times, page, home and requester, and
//     exports as Chrome trace-event JSON loadable in Perfetto or
//     chrome://tracing, plus a compact CSV.
//   - Run manifests (Manifest): the spec/fabric/scale/seed and trace
//     content hashes that make a report reproducible, written next to
//     the report artifacts.
//
// Collection is strictly observational: an instrumented run produces
// byte-identical simulation statistics, and a machine without a
// collector pays only a nil check per hook. A Collector is not
// goroutine-safe; attach one collector per machine (the harness builds
// one per run).
//
// Totals reconcile exactly with the aggregate counters by
// construction: every windowed increment mirrors one aggregate
// increment, so for example the sum over a link's windows equals the
// link's end-of-run byte counter in stats.NetStats (pinned by the
// conservation tests).
package telemetry

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// DefaultWindow is the window width, in simulated cycles, used when
// Config.Window is unset: 2^20 cycles, a handful of milliseconds of the
// paper's 600 MHz processor and a few dozen windows on a typical
// scaled-down run.
const DefaultWindow int64 = 1 << 20

// Config selects what a Collector records.
type Config struct {
	// Window is the width of one time window in simulated cycles
	// (<= 0 selects DefaultWindow).
	Window int64

	// Timeline additionally records the discrete page-operation event
	// timeline (see Event). Off by default: long runs with heavy page
	// activity can accumulate many events.
	Timeline bool
}

// series is one windowed int64 counter: vals[w] accumulates everything
// charged to window w. Windows materialize on first touch, so a series
// costs nothing until its first event and growth is amortized.
type series struct {
	vals []int64
}

// bump adds delta to window w, growing the series as needed.
func (s *series) bump(w int, delta int64) {
	if w >= len(s.vals) {
		if w >= cap(s.vals) {
			grown := make([]int64, w+1, 2*w+2)
			copy(grown, s.vals)
			s.vals = grown
		} else {
			s.vals = s.vals[:w+1]
		}
	}
	s.vals[w] += delta
}

// total sums the series over all windows.
func (s *series) total() int64 {
	var t int64
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Collector records time-resolved telemetry for one simulated machine.
// The zero value is not usable; build one with New and pass it to the
// run via dsm.RunOptions.Telemetry (or harness.Options.Telemetry).
type Collector struct {
	window   int64
	timeline bool

	nodes     int
	linkNames []string

	pageOps  [stats.NumPageOps]series
	remote   [stats.NumMissClasses]series
	local    [stats.NumMissClasses]series
	node     []series // per-node traffic bytes
	link     []series // per-link fabric bytes
	dispatch series   // dispatched trace ops

	events []Event
}

// New builds a collector with the given configuration.
func New(cfg Config) *Collector {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	return &Collector{window: w, timeline: cfg.Timeline}
}

// Bind sizes the collector for a machine: the node count and the
// fabric's link names (in link-id order). The machine calls it once at
// attach time, before any event is recorded.
func (c *Collector) Bind(nodes int, linkNames []string) {
	c.nodes = nodes
	c.linkNames = linkNames
	c.node = make([]series, nodes)
	c.link = make([]series, len(linkNames))
}

// WindowCycles returns the width of one window in simulated cycles.
func (c *Collector) WindowCycles() int64 { return c.window }

// TimelineEnabled reports whether the collector records the event
// timeline.
func (c *Collector) TimelineEnabled() bool { return c.timeline }

// win maps a simulated time to its window index. Negative times (never
// produced by a well-formed run) clamp to window 0 rather than
// corrupting the series.
func (c *Collector) win(t int64) int {
	if t <= 0 {
		return 0
	}
	return int(t / c.window)
}

// PageOp charges one page operation of the given kind to the window of
// time t.
func (c *Collector) PageOp(kind stats.PageOp, t int64) {
	c.pageOps[kind].bump(c.win(t), 1)
}

// Miss charges one miss of the given class — remote or local — to the
// window of time t.
func (c *Collector) Miss(cls stats.MissClass, remote bool, t int64) {
	if remote {
		c.remote[cls].bump(c.win(t), 1)
	} else {
		c.local[cls].bump(c.win(t), 1)
	}
}

// Traffic charges bytes put on the network by node n to the window of
// time t. It mirrors every increment of stats.Node.TrafficBytes.
func (c *Collector) Traffic(n int, bytes, t int64) {
	c.node[n].bump(c.win(t), bytes)
}

// Link charges bytes crossing fabric link id to the window of time t.
// It mirrors every increment of the fabric's per-link byte counters.
func (c *Collector) Link(id int, bytes, t int64) {
	c.link[id].bump(c.win(t), bytes)
}

// Dispatch charges one dispatched trace operation to the window of
// time t.
func (c *Collector) Dispatch(t int64) {
	c.dispatch.bump(c.win(t), 1)
}

// Event records one discrete page operation on the timeline (a no-op
// unless Config.Timeline was set).
func (c *Collector) Event(kind EventKind, page uint64, home, requester int, start, end int64) {
	if !c.timeline {
		return
	}
	c.events = append(c.events, Event{
		Kind: kind, Page: page,
		Home: int32(home), Requester: int32(requester),
		Start: start, End: end,
	})
}

// Events returns the recorded timeline, in recording order (which is
// execution order, not simulated-time order).
func (c *Collector) Events() []Event { return c.events }

// Windows returns the number of materialized windows: the highest
// window index touched by any series, plus one.
func (c *Collector) Windows() int {
	n := len(c.dispatch.vals)
	max := func(s *series) {
		if len(s.vals) > n {
			n = len(s.vals)
		}
	}
	for i := range c.pageOps {
		max(&c.pageOps[i])
	}
	for i := range c.remote {
		max(&c.remote[i])
	}
	for i := range c.local {
		max(&c.local[i])
	}
	for i := range c.node {
		max(&c.node[i])
	}
	for i := range c.link {
		max(&c.link[i])
	}
	return n
}

// at returns a series' value in window w (zero past its end).
func (s *series) at(w int) int64 {
	if w >= len(s.vals) {
		return 0
	}
	return s.vals[w]
}

// PageOpWindow returns the count of page operations of one kind in
// window w.
func (c *Collector) PageOpWindow(kind stats.PageOp, w int) int64 { return c.pageOps[kind].at(w) }

// MissWindow returns the count of remote or local misses of one class
// in window w.
func (c *Collector) MissWindow(cls stats.MissClass, remote bool, w int) int64 {
	if remote {
		return c.remote[cls].at(w)
	}
	return c.local[cls].at(w)
}

// NodeBytesWindow returns node n's traffic bytes in window w.
func (c *Collector) NodeBytesWindow(n, w int) int64 { return c.node[n].at(w) }

// LinkBytesWindow returns link id's bytes in window w.
func (c *Collector) LinkBytesWindow(id, w int) int64 { return c.link[id].at(w) }

// DispatchWindow returns the dispatched trace ops in window w.
func (c *Collector) DispatchWindow(w int) int64 { return c.dispatch.at(w) }

// Links returns the number of fabric links the collector tracks.
func (c *Collector) Links() int { return len(c.link) }

// LinkName returns the name of fabric link id.
func (c *Collector) LinkName(id int) string { return c.linkNames[id] }

// LinkTotal returns the sum of link id's windowed bytes — by
// construction equal to the fabric's end-of-run counter for that link.
func (c *Collector) LinkTotal(id int) int64 { return c.link[id].total() }

// NodeTotal returns the sum of node n's windowed traffic bytes — by
// construction equal to stats.Node.TrafficBytes for that node.
func (c *Collector) NodeTotal(n int) int64 { return c.node[n].total() }

// PageOpTotal returns the sum of one kind's windowed page-op counts.
func (c *Collector) PageOpTotal(kind stats.PageOp) int64 { return c.pageOps[kind].total() }

// MissTotal returns the sum of one class's windowed miss counts.
func (c *Collector) MissTotal(cls stats.MissClass, remote bool) int64 {
	if remote {
		return c.remote[cls].total()
	}
	return c.local[cls].total()
}

// DispatchTotal returns the total dispatched trace ops.
func (c *Collector) DispatchTotal() int64 { return c.dispatch.total() }

// HotLinks returns the ids of the n links with the highest total bytes,
// hottest first (ties broken by link id for determinism).
func (c *Collector) HotLinks(n int) []int {
	ids := make([]int, len(c.link))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ta, tb := c.link[ids[a]].total(), c.link[ids[b]].total()
		if ta != tb {
			return ta > tb
		}
		return ids[a] < ids[b]
	})
	if n < len(ids) {
		ids = ids[:n]
	}
	return ids
}

// windowsCSVHeader is the column layout of WriteWindowsCSV.
const windowsCSVHeader = "window,start_cycle,end_cycle,series,key,value"

// WriteWindowsCSV renders every windowed series as long-form CSV: one
// row per (window, series, key) with a non-zero value. series is one of
// pageop, miss_remote, miss_local, node_bytes, link_bytes, dispatch;
// key names the page-op kind, miss class, node or link. Totals over the
// window column reproduce the end-of-run aggregates exactly.
func (c *Collector) WriteWindowsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, windowsCSVHeader); err != nil {
		return err
	}
	var err error
	row := func(win int, ser, key string, v int64) {
		if err != nil || v == 0 {
			return
		}
		start := int64(win) * c.window
		_, err = fmt.Fprintf(w, "%d,%d,%d,%s,%s,%d\n", win, start, start+c.window, ser, key, v)
	}
	n := c.Windows()
	for win := 0; win < n; win++ {
		for k := 0; k < stats.NumPageOps; k++ {
			row(win, "pageop", stats.PageOp(k).String(), c.pageOps[k].at(win))
		}
		for cl := 0; cl < stats.NumMissClasses; cl++ {
			row(win, "miss_remote", stats.MissClass(cl).String(), c.remote[cl].at(win))
			row(win, "miss_local", stats.MissClass(cl).String(), c.local[cl].at(win))
		}
		for nd := range c.node {
			row(win, "node_bytes", fmt.Sprintf("node%d", nd), c.node[nd].at(win))
		}
		for l := range c.link {
			row(win, "link_bytes", c.linkNames[l], c.link[l].at(win))
		}
		row(win, "dispatch", "ops", c.dispatch.at(win))
	}
	return err
}
