package telemetry

import (
	"fmt"
	"io"
)

// EventKind classifies one timeline event. The kinds are finer-grained
// than stats.PageOp: a replica grant is distinguishable from the first
// replication, and the fault-path replica copy (charged to
// stats.Replication in the aggregates) gets its own kind, because the
// phase dynamics the timeline exists to show — replication storms vs
// steady-state grants — live exactly in those distinctions.
type EventKind uint8

const (
	// EvRelocate is an R-NUMA relocation of a page into a node's
	// S-COMA page cache (including static AlwaysSCOMA placement).
	EvRelocate EventKind = iota
	// EvReplicate is the creation of a page's first read-only replica.
	EvReplicate
	// EvGrant is a replica copy granted to an additional node of an
	// already-replicated page.
	EvGrant
	// EvCollapse is a write fault collapsing all replicas of a page
	// back to a single read-write home copy.
	EvCollapse
	// EvMigrate is a page's home moving to the requesting node.
	EvMigrate
	// EvFrameFlush is a page-cache frame eviction: the victim frame's
	// surviving blocks are flushed home (stats counts it as a
	// replacement). The event's page is the victim, not the page whose
	// relocation forced the eviction.
	EvFrameFlush
	// EvFaultCopy is a full read-only page copy fetched by a soft page
	// fault on an already-replicated page.
	EvFaultCopy

	numEventKinds
)

// String returns the event-kind name used in exports.
func (k EventKind) String() string {
	switch k {
	case EvRelocate:
		return "relocate"
	case EvReplicate:
		return "replicate"
	case EvGrant:
		return "grant"
	case EvCollapse:
		return "collapse"
	case EvMigrate:
		return "migrate"
	case EvFrameFlush:
		return "frame-flush"
	case EvFaultCopy:
		return "fault-copy"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Serializing reports whether the operation holds the page-busy horizon
// while it runs: every later accessor of the page waits out its end
// before starting a new operation. Spans of serializing events are
// therefore non-overlapping per page — a conservation-style invariant
// the telemetry tests pin.
func (k EventKind) Serializing() bool {
	switch k {
	case EvReplicate, EvGrant, EvCollapse, EvMigrate:
		return true
	default:
		return false
	}
}

// Event is one discrete page operation on the timeline.
type Event struct {
	Kind EventKind
	// Page is the page the operation acted on (for EvFrameFlush, the
	// evicted victim).
	Page uint64
	// Home is the page's home node when the operation completed (for
	// EvMigrate, the new home).
	Home int32
	// Requester is the node whose access initiated the operation and
	// to which it is charged.
	Requester int32
	// Start and End are the operation's simulated times in cycles.
	Start, End int64
}

// WriteChromeTrace renders the timeline as Chrome trace-event JSON — a
// {"traceEvents": [...]} document Perfetto and chrome://tracing load
// directly. Each event is a complete ("ph":"X") slice: the process lane
// is the page's home node, the thread lane the requesting node, and the
// timestamp/duration are simulated cycles presented as microseconds
// (the viewer's time unit; 1 "us" on screen = 1 simulated cycle).
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	// Name the process lanes once per node that appears as a home.
	seen := make(map[int32]bool)
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	for _, e := range c.events {
		if !seen[e.Home] {
			seen[e.Home] = true
			if err := emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"home node %d"}}`,
				e.Home, e.Home); err != nil {
				return err
			}
		}
		if err := emit(`{"name":%q,"cat":"pageop","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"page":%d,"home":%d,"requester":%d}}`,
			e.Kind.String(), e.Start, e.End-e.Start, e.Home, e.Requester,
			e.Page, e.Home, e.Requester); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

// timelineCSVHeader is the column layout of WriteTimelineCSV.
const timelineCSVHeader = "kind,page,home,requester,start_cycle,end_cycle"

// WriteTimelineCSV renders the timeline as compact CSV, one row per
// event in recording order.
func (c *Collector) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, timelineCSVHeader); err != nil {
		return err
	}
	for _, e := range c.events {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d\n",
			e.Kind, e.Page, e.Home, e.Requester, e.Start, e.End); err != nil {
			return err
		}
	}
	return nil
}
