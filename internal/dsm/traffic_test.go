package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestTrafficAccountedOnRemoteFill(t *testing.T) {
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {wr(0)},
		4: {gap(0, 10000)},
	})
	m := run(t, CCNUMA(), tr)
	// The remote fill moves at least a request header plus a data
	// block; the page fault adds two headers.
	min := int64(msgHeaderBytes + msgBlockBytes)
	if got := m.Stats().Nodes[1].TrafficBytes; got < min {
		t.Errorf("traffic = %d, want >= %d", got, min)
	}
	// The home node generated no traffic of its own.
	if got := m.Stats().Nodes[0].TrafficBytes; got != 0 {
		t.Errorf("home traffic = %d, want 0", got)
	}
}

func TestLocalWorkloadGeneratesNoTraffic(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynPrivate, apps.SyntheticParams{CPUs: 32, KBPerNode: 64, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(tr, CCNUMA(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.TotalTrafficBytes(); got != 0 {
		t.Errorf("private workload produced %d bytes of traffic", got)
	}
	if got := sim.TotalRemoteMisses(); got != 0 {
		t.Errorf("private workload produced %d remote misses", got)
	}
}

func TestWritebackTrafficOnEviction(t *testing.T) {
	// Node 1 writes a remote region larger than its caches: dirty
	// victims must flow home as data traffic.
	bcBlocks := config.BlockCacheBytes / config.BlockBytes
	var home, ops []trace.Op
	for b := 0; b <= 2*bcBlocks; b += config.BlocksPerPage {
		home = append(home, wr(uint64(b)))
	}
	for b := 0; b <= 2*bcBlocks; b++ {
		ops = append(ops, wr(uint64(b)))
	}
	tr := tinyTrace(uint64((2*bcBlocks+config.BlocksPerPage)*config.BlockBytes),
		map[int][]trace.Op{
			0: home,
			4: append([]trace.Op{{Kind: trace.Pad, Gap: 1 << 21}}, ops...),
		})
	m := run(t, CCNUMA(), tr)
	// Writeback traffic from node 1 beyond the fills themselves:
	// fills cost header+block each; evictions add one block each.
	fills := int64(2*bcBlocks + 1)
	fillBytes := fills * (msgHeaderBytes + msgBlockBytes)
	got := m.Stats().Nodes[1].TrafficBytes
	if got <= fillBytes {
		t.Errorf("traffic %d does not include writebacks (fills alone = %d)", got, fillBytes)
	}
}

func TestRNUMATrafficLowerOnReuse(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynStream, apps.SyntheticParams{CPUs: 32, KBPerNode: 256, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := Run(tr, CCNUMA(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Run(tr, RNUMA(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rn.TotalTrafficBytes() >= cc.TotalTrafficBytes() {
		t.Errorf("R-NUMA traffic %d not below CC-NUMA %d on streaming reuse",
			rn.TotalTrafficBytes(), cc.TotalTrafficBytes())
	}
}

func TestStallAndSyncCyclesPopulated(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynWriteShared, apps.SyntheticParams{CPUs: 32, KBPerNode: 64, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(tr, CCNUMA(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	var stall, sync int64
	for i := range sim.Nodes {
		stall += sim.Nodes[i].StallCycles
		sync += sim.Nodes[i].SyncCycles
	}
	if stall == 0 {
		t.Error("no stall cycles recorded")
	}
	if sync == 0 {
		t.Error("no synchronization cycles recorded")
	}
	if stall+sync >= sim.ExecCycles*32 {
		t.Errorf("stall %d + sync %d exceed total cpu time %d", stall, sync, sim.ExecCycles*32)
	}
}

func TestPageOpCyclesChargedForRelocation(t *testing.T) {
	sim := runSynthetic(t, RNUMA(), apps.SynStream, 256, 6)
	var pageOp int64
	for i := range sim.Nodes {
		pageOp += sim.Nodes[i].PageOpCycles
	}
	relocs := sim.PageOpsByKind(stats.Relocation)
	if relocs == 0 {
		t.Skip("no relocations at this size")
	}
	// Each relocation costs at least the minimum page operation.
	min := relocs * config.Default().PageOpCost(0)
	if pageOp < min {
		t.Errorf("page-op cycles %d below %d relocations x min cost", pageOp, relocs)
	}
}
