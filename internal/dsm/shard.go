package dsm

// Sharded conservative-PDES execution.
//
// ExecuteSharded partitions the cluster's nodes (and their CPUs) across
// goroutine-owned shards, each with its own indexed event heap, and
// drives them with the internal/engine/pdes coordinator. The textbook
// conservative lookahead — no cross-shard message arrives sooner than
// one fabric hop (interconnect.MinHopLatency) — is unsound here,
// because a dispatched event mutates globally visible machine state
// (directory entries, page tables, remote L1 lines) instantly at
// dispatch, not after a fabric traversal. The sharded engine therefore
// proves a stronger property per event instead of assuming a latency
// window per message:
//
//   - An op is committed in the parallel phase only when a read-only
//     scan of the machine state proves it is a sure L1 hit (or a pad, a
//     post-flip phase marker, or an end-of-trace retire) — an op whose
//     execution touches nothing outside its own CPU's clock and its own
//     node's commutative stat counters.
//   - Every other op — misses, upgrades, page operations, barriers,
//     locks — executes serially, in exact global (Clock, CPU-ID) order,
//     through the same dispatch path the sequential engine uses.
//
// Committed ops commute with every concurrently committed op and with
// nothing that could reorder against the serial stream (the commit
// horizon sits below every shard's first unproven event), so the
// sharded run's statistics are byte-identical to the sequential run's
// by construction. The scan results are cached per CPU as "streaks"
// and invalidated when a serial event touches state the scan read,
// tracked by page bloom filters, the event's node, and phase flips.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/engine/pdes"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/trace"
)

// scanCap bounds how many trace ops one scan walks ahead. A capped
// streak's frontier is the key after the last proven op — conservative,
// and the commit loop rescans to extend it when commits catch up.
const scanCap = 512

// pageBloom is a 256-bit bloom filter over the pages a scan probed (two
// bits per page). False positives only cost a spurious streak
// invalidation; false negatives cannot happen, which is what soundness
// needs.
type pageBloom [4]uint64

//repro:hotpath
func (f *pageBloom) add(p memory.Page) {
	h := uint64(p) * 0x9e3779b97f4a7c15
	f[(h>>6)&3] |= 1 << (h & 63)
	f[(h>>38)&3] |= 1 << ((h >> 32) & 63)
}

//repro:hotpath
func (f *pageBloom) mayContain(p memory.Page) bool {
	h := uint64(p) * 0x9e3779b97f4a7c15
	return f[(h>>6)&3]&(1<<(h&63)) != 0 &&
		f[(h>>38)&3]&(1<<((h>>32)&63)) != 0
}

// cpuStreak caches one CPU's scan result: frontier is the dispatch key
// of the first upcoming op the scan could not prove shard-local (the
// CPU's conservative horizon contribution), pages collects every page
// the scanned ops probe, and capped marks a frontier set by scanCap
// rather than a real unproven op. A streak stays valid until a serial
// event touches state the scan read.
type cpuStreak struct {
	frontier pdes.Key
	pages    pageBloom
	valid    bool
	capped   bool
}

// shardExec is the per-run state of one sharded execution: the trace
// cursor and scan streaks shared by all shards (each slot touched only
// by its owning shard during parallel phases, and only by the
// coordinator during serial phases).
type shardExec struct {
	m      *Machine
	tr     *trace.Trace
	pos    []int // [cpu] next trace op index
	streak []cpuStreak
	shards []*machineShard
}

// machineShard owns a contiguous range of nodes and their CPUs: a
// private scheduler heap over the CPU range plus a shard-local
// violation log (audit findings made during parallel phases, merged
// after the run). It implements pdes.Shard.
type machineShard struct {
	ex           *shardExec
	sched        *engine.Scheduler
	cpuLo, cpuHi int // owned CPU ids [lo, hi)
	violations   stats.ViolationLog
}

// schedFor returns the scheduler that owns CPU id: the machine's global
// scheduler in a sequential run, the owning shard's in a sharded run.
//
//repro:hotpath
func (m *Machine) schedFor(id int) *engine.Scheduler {
	if m.shards == nil {
		return m.sched
	}
	cpn := m.cl.CPUsPerNode * (m.cl.Nodes / len(m.shards))
	return m.shards[id/cpn].sched
}

// PDESStats returns the coordinator counters of the last ExecuteSharded
// run (zero after a sequential run).
func (m *Machine) PDESStats() pdes.Stats { return m.pdesStats }

// markCPU invalidates one CPU's streak (it executed a serial event, or
// its clock moved while parked).
//
//repro:hotpath
func (ex *shardExec) markCPU(id int) { ex.streak[id].valid = false }

// markNode invalidates the streaks of every CPU on node n: a serial
// event on the node may have replaced sibling L1 lines, node mappings
// or S-COMA frames its siblings' scans probed.
//
//repro:hotpath
func (ex *shardExec) markNode(n int) {
	lo, hi := ex.m.cpusOf(n)
	for id := lo; id < hi; id++ {
		ex.streak[id].valid = false
	}
}

// markPage invalidates every streak whose scan probed page p: the
// serial event may have changed the page's table entry, mappings,
// busy horizon, or cached lines.
//
//repro:hotpath
func (ex *shardExec) markPage(p memory.Page) {
	for id := range ex.streak {
		st := &ex.streak[id]
		if st.valid && st.pages.mayContain(p) {
			st.valid = false
		}
	}
}

// markAll invalidates every streak (the Phase flip changes what every
// scan's placement check observes).
func (ex *shardExec) markAll() {
	for id := range ex.streak {
		ex.streak[id].valid = false
	}
}

// scan walks CPU c's upcoming trace ops and proves as long a run of
// them shard-local as it can, recording the result in st. It is the
// read-only twin of the dispatch path: the local/non-local split and
// the clock model below must stay in lockstep with Machine.dispatch and
// the front of Machine.access. The scan mutates nothing, so shards may
// run it concurrently against shared machine state.
//
// An op is proven local exactly when the access would return on the L1
// hit path without entering any fault, placement, upgrade or fill
// branch: the page is touched, needs no post-phase re-placement, is
// mapped on this node (or homed here), is not a replicated write
// target, and the block sits in this CPU's L1 with sufficient
// permission. Such an op moves only c.Clock (gap, plus waiting out a
// pre-recorded page-busy horizon) and its own node's commutative
// SyncCycles sum. Pads always commute; a phase marker commutes once the
// flip has happened; running off the trace end makes the retire local.
//
//repro:shardlocal
func (ex *shardExec) scan(c *engine.CPU, st *cpuStreak) {
	m := ex.m
	ops := &ex.tr.CPUs[c.ID]
	n := m.nodeOf(c.ID)
	l1 := m.l1[c.ID]
	clock := c.Clock
	i := ex.pos[c.ID]
	end := i + scanCap

	st.pages = pageBloom{}
	st.valid = true
	st.capped = false
walk:
	for ; i < len(ops.Kinds); i++ {
		if i >= end {
			st.capped = true
			break
		}
		kind := ops.Kinds[i]
		switch kind {
		case trace.Pad:
			clock += int64(ops.Gaps[i])
		case trace.Phase:
			if !m.phaseDone {
				break walk // the flip mutates global state
			}
			clock += int64(ops.Gaps[i])
		case trace.Read, trace.Write:
			b := memory.Block(ops.Args[i])
			p := b.Page()
			st.pages.add(p)
			e := m.pt.Entry(p) // presized table: a pure read
			if !e.Touched {
				break walk // first-touch placement
			}
			if m.phaseDone && !m.parallelPlaced[p] {
				break walk // post-phase re-placement
			}
			if e.Home != n && !m.mapped[n][p] {
				break walk // soft page fault
			}
			write := kind == trace.Write
			if write && e.Replicated {
				break walk // protection fault collapses the replicas
			}
			if s := l1.Lookup(b); s != cache.Modified && (s != cache.Shared || write) {
				break walk // miss or upgrade
			}
			clock += int64(ops.Gaps[i])
			if t := m.pageBusy[p]; clock < t {
				clock = t // the hit waits out the page-busy horizon
			}
		default:
			// Barrier/Lock/Unlock (and anything unknown) serialize.
			break walk
		}
	}
	if i >= len(ops.Kinds) && !st.capped {
		st.frontier = pdes.Inf // only the (shard-local) retire remains
		return
	}
	st.frontier = pdes.Key{At: clock, ID: int32(c.ID)}
}

// Prepare rescans every streak the last serial phase invalidated and
// returns the shard's conservative bound on the key of its earliest
// event with possible non-local effects: per runnable CPU, the streak's
// frontier. Parked CPUs contribute nothing: a parked CPU resumes at or
// after the clock of the serial event that releases it, which the
// coordinator orders anyway. Prepare runs concurrently with other
// shards' Prepare calls, against shared state frozen since the serial
// phase ended; rescanning here rather than at commit time is what lets
// the horizon rise above the heap minimum — the serial phase always
// ends having just dirtied the globally earliest CPU.
//
//repro:shardlocal
func (s *machineShard) Prepare() pdes.Key {
	ex := s.ex
	h := pdes.Inf
	for id := s.cpuLo; id < s.cpuHi; id++ {
		c := s.sched.CPUByID(id)
		if !c.Runnable() {
			continue
		}
		st := &ex.streak[id]
		if !st.valid {
			ex.scan(c, st)
		}
		h = h.Min(st.frontier)
	}
	return h
}

// Advance commits provably shard-local ops with keys strictly below
// limit, re-executing each through the real dispatch machinery (Peek,
// gap advance, access hit path, Requeue), and rescans dirty streaks as
// they surface. It runs concurrently with other shards' Advance calls:
// everything it writes — its own heap, its CPUs' clocks and streaks,
// its own nodes' stats — is owned by this shard, and everything shared
// it reads is frozen while workers run.
//
//repro:shardlocal
func (s *machineShard) Advance(limit pdes.Key) int {
	ex := s.ex
	m := ex.m
	committed := 0
	for {
		c := s.sched.Top()
		if c == nil {
			return committed
		}
		k := pdes.Key{At: c.Clock, ID: int32(c.ID)}
		if !k.Less(limit) {
			return committed
		}
		st := &ex.streak[c.ID]
		if !st.valid {
			ex.scan(c, st)
		}
		if !k.Less(st.frontier) {
			if !st.capped {
				// The heap minimum sits at a real unproven op; no other
				// CPU of this shard can be earlier. The serial phase
				// takes it from here.
				return committed
			}
			ex.scan(c, st) // extend a capped streak and retry
			if !k.Less(st.frontier) {
				return committed
			}
		}

		// Commit: the op is proven local and below the horizon. Peek
		// (not Top) so dispatch counting matches the sequential engine.
		c = s.sched.Peek()
		ops := &ex.tr.CPUs[c.ID]
		i := ex.pos[c.ID]
		if i >= len(ops.Kinds) {
			s.sched.Retire(c)
			committed++
			continue
		}
		ex.pos[c.ID]++
		if m.auditing && c.Clock < m.lastDispatch {
			// lastDispatch is frozen at the serial frontier while
			// workers run; a committed key below it means the horizon
			// proof failed. Shard-local log: merged after the run.
			s.violations.Addf("dsm: shard cpu %d committed at %d behind serial frontier %d",
				c.ID, c.Clock, m.lastDispatch)
		}
		c.Clock += int64(ops.Gaps[i])
		switch ops.Kinds[i] {
		case trace.Read:
			m.access(c, memory.Block(ops.Args[i]), false)
		case trace.Write:
			m.access(c, memory.Block(ops.Args[i]), true)
		case trace.Pad, trace.Phase:
			// Nothing beyond the gap: the scan only admits a Phase
			// marker after the flip, where dispatch is a no-op too.
		}
		s.sched.Requeue(c)
		committed++
	}
}

// done reports whether every shard has retired all its CPUs.
func (ex *shardExec) done() bool {
	for _, s := range ex.shards {
		if !s.sched.Done() {
			return false
		}
	}
	return true
}

// step executes the globally earliest remaining event through the full
// sequential dispatch path, and returns its key. The coordinator calls
// it with every shard worker parked, so it may touch any machine state;
// before dispatching, it invalidates the streaks the event can
// invalidate (the executing CPU's, its node's and its page's for
// accesses, everyone's for the phase flip; parked CPUs it releases are
// handled by Machine.unpark).
func (ex *shardExec) step() (pdes.Key, error) {
	var best *machineShard
	bestKey := pdes.Inf
	for _, s := range ex.shards {
		if c := s.sched.Top(); c != nil {
			if k := (pdes.Key{At: c.Clock, ID: int32(c.ID)}); k.Less(bestKey) {
				best, bestKey = s, k
			}
		}
	}
	if best == nil {
		return pdes.Key{}, fmt.Errorf("dsm: deadlock: no runnable cpu (%s)", ex.tr.Name)
	}
	m := ex.m
	c := best.sched.Peek()
	ex.markCPU(c.ID)
	ops := &ex.tr.CPUs[c.ID]
	i := ex.pos[c.ID]
	if i >= len(ops.Kinds) {
		best.sched.Retire(c)
		return bestKey, nil
	}
	ex.pos[c.ID]++
	kind, arg := ops.Kinds[i], ops.Args[i]
	switch kind {
	case trace.Read, trace.Write:
		ex.markPage(memory.Block(arg).Page())
		ex.markNode(m.nodeOf(c.ID))
	case trace.Phase:
		if !m.phaseDone {
			ex.markAll()
		}
	}
	if err := m.dispatch(c, best.sched, kind, ops.Gaps[i], arg); err != nil {
		return pdes.Key{}, err
	}
	return bestKey, nil
}

// ExecuteSharded replays the trace with the machine's nodes partitioned
// across the given number of shards, producing statistics byte-identical
// to Execute's. shards must evenly divide the cluster's node count;
// shards <= 1 falls back to the sequential engine. A machine with
// telemetry attached refuses sharded execution (the collector is
// unsynchronized); callers gate on that before selecting the engine.
func (m *Machine) ExecuteSharded(tr *trace.Trace, shards int) error {
	if shards <= 1 {
		return m.Execute(tr)
	}
	if tr.NumCPUs() != m.cl.TotalCPUs() {
		return fmt.Errorf("dsm: trace has %d cpus, machine has %d", tr.NumCPUs(), m.cl.TotalCPUs())
	}
	if m.cl.Nodes%shards != 0 {
		return fmt.Errorf("dsm: %d shards do not evenly partition %d nodes", shards, m.cl.Nodes)
	}
	if m.tel != nil {
		return fmt.Errorf("dsm: telemetry requires the sequential engine")
	}

	ex := &shardExec{
		m:      m,
		tr:     tr,
		pos:    make([]int, tr.NumCPUs()),
		streak: make([]cpuStreak, tr.NumCPUs()),
		shards: make([]*machineShard, shards),
	}
	nodesPer := m.cl.Nodes / shards
	cpusPer := nodesPer * m.cl.CPUsPerNode
	pshards := make([]pdes.Shard, shards)
	for i := range ex.shards {
		sh := &machineShard{ex: ex, cpuLo: i * cpusPer, cpuHi: (i + 1) * cpusPer}
		sh.sched = engine.NewSchedulerRange(sh.cpuLo, sh.cpuHi)
		ex.shards[i] = sh
		pshards[i] = sh
	}
	m.shex = ex
	m.shards = ex.shards
	defer func() { m.shex, m.shards = nil, nil }()

	pst, err := pdes.Run(pdes.Config{Shards: pshards, Step: ex.step, Done: ex.done})
	if err != nil {
		return err
	}
	m.pdesStats = pst

	var max int64
	for _, sh := range ex.shards {
		if mc := sh.sched.MaxClock(); mc > max {
			max = mc
		}
		for _, v := range sh.violations.All() {
			m.violations.Addf("%s", v)
		}
	}
	m.st.ExecCycles = max
	m.st.Net = m.fabric.Snapshot()
	return nil
}
