package dsm

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func TestSpecValidateRejectsContradictions(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"negative block cache", Spec{Name: "x", BlockCacheBytes: -1}, "negative block cache"},
		{"negative page cache", Spec{Name: "x", RNUMA: true, PageCacheBytes: -4096}, "negative page cache"},
		{"page cache without rnuma", Spec{Name: "x", PageCacheBytes: 4096}, "without RNUMA"},
		{"always-scoma without rnuma", Spec{Name: "x", AlwaysSCOMA: true}, "AlwaysSCOMA requires RNUMA"},
		{"negative reloc delay", Spec{Name: "x", RNUMA: true, Migration: true, RelocDelayMisses: -5}, "negative relocation delay"},
		{"reloc delay without rnuma", Spec{Name: "x", Migration: true, RelocDelayMisses: 10}, "RNUMA is off"},
		{"reloc delay without migrep", Spec{Name: "x", RNUMA: true, RelocDelayMisses: 10}, "neither is enabled"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", c.spec)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
			// The same contradiction must be rejected at machine
			// construction, not simulated silently.
			if _, err := NewMachine(c.spec, config.DefaultCluster(), config.Default(),
				config.DefaultThresholds(), 1<<20, "test"); err == nil {
				t.Error("NewMachine accepted the invalid spec")
			}
		})
	}
}

func TestSpecValidateAcceptsAllRegisteredSystems(t *testing.T) {
	th := config.DefaultThresholds()
	for _, info := range Systems() {
		if err := info.New(th).Validate(); err != nil {
			t.Errorf("%s: %v", info.Name, err)
		}
	}
}
