package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
)

func TestSCOMAMapsOnFirstTouch(t *testing.T) {
	sim := runSynthetic(t, SCOMA(), apps.SynStream, 128, 4)
	// Static placement: relocations equal the remote pages touched, and
	// they happen immediately (before any refetch accumulates).
	if sim.PageOpsByKind(stats.Relocation) == 0 {
		t.Fatal("static S-COMA performed no placements")
	}
	var hits int64
	for i := range sim.Nodes {
		hits += sim.Nodes[i].PageCacheHits
	}
	if hits == 0 {
		t.Error("no page cache hits under static S-COMA")
	}
}

func TestSCOMABeatsCCNUMAOnReuseButThrashesUnderPressure(t *testing.T) {
	// With the footprint fitting the page cache, static S-COMA wins on
	// reuse like R-NUMA does.
	sc := runSynthetic(t, SCOMA(), apps.SynStream, 256, 8)
	cc := runSynthetic(t, CCNUMA(), apps.SynStream, 256, 8)
	if sc.ExecCycles >= cc.ExecCycles {
		t.Errorf("S-COMA (%d) did not beat CC-NUMA (%d) on streaming reuse",
			sc.ExecCycles, cc.ExecCycles)
	}
	// Under pressure the static policy replaces pages it should never
	// have admitted; reactive R-NUMA filters by refetch count and does
	// no worse.
	spec := SCOMA()
	spec.PageCacheBytes = 64 * config.PageBytes
	scSmall := runSynthetic(t, spec, apps.SynThrash, 256, 4)
	rnSpec := RNUMA()
	rnSpec.PageCacheBytes = 64 * config.PageBytes
	rnSmall := runSynthetic(t, rnSpec, apps.SynThrash, 256, 4)
	if scSmall.PageOpsByKind(stats.Replacement) == 0 {
		t.Error("static S-COMA under pressure never replaced")
	}
	if scSmall.PageOpsByKind(stats.Replacement) < rnSmall.PageOpsByKind(stats.Replacement) {
		t.Errorf("static S-COMA replaced less (%d) than reactive R-NUMA (%d) under pressure",
			scSmall.PageOpsByKind(stats.Replacement), rnSmall.PageOpsByKind(stats.Replacement))
	}
}

func TestSCOMAVerifies(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynWriteShared, apps.SyntheticParams{CPUs: 32, KBPerNode: 64, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(SCOMA(), config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}
