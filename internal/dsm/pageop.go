package dsm

import (
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// pageOp is one in-flight page operation: an R-NUMA relocation, a
// migration, a replication or replica grant, a collapse, or a
// page-cache replacement riding on one of those. It carries the
// operation's explicit event time and accumulates its cost, so that
// every protocol message the operation emits enters the fabric at the
// simulated instant it actually happens — never in the simulated past
// — and so that cost, traffic and page-busy accounting cannot drift
// apart. It replaces the ad-hoc int64 time threading the page paths
// used (and, in flushFrame's case, forgot).
type pageOp struct {
	m     *Machine
	c     *engine.CPU
	node  int   // node the operation is accounted to
	start int64 // event time the operation began (c.Clock at begin)
	now   int64 // current event time within the operation
}

// beginPageOp opens a page operation for CPU c on node, anchored at the
// CPU's current clock. The caller must have waited out any page-busy
// horizon first (access does this for every trace op). Page operations
// run to completion before the next one can begin, so the machine hands
// out one reusable scratch carrier instead of allocating per operation;
// the returned pageOp is valid until the next beginPageOp.
//
//repro:hotpath
func (m *Machine) beginPageOp(c *engine.CPU, node int) *pageOp {
	op := &m.opScratch
	op.m, op.c, op.node, op.start, op.now = m, c, node, c.Clock, c.Clock
	return op
}

// charge advances the operation's event time by cost cycles of page
// operation work.
//
//repro:hotpath
func (op *pageOp) charge(cost int64) { op.now += cost }

// elapsed returns the cycles the operation has consumed so far.
//
//repro:hotpath
func (op *pageOp) elapsed() int64 { return op.now - op.start }

// xfer injects one message of the operation from src to dst at the
// operation's current event time, charging its bytes to pay's traffic
// counter (page copies are charged to the requester that waits on them,
// gathered flushes to the cacher that emits them).
//
//repro:hotpath
func (op *pageOp) xfer(src, dst, pay int, bytes int64) {
	op.m.st.Nodes[pay].TrafficBytes += bytes
	if tl := op.m.tel; tl != nil {
		tl.Traffic(pay, bytes, op.now)
	}
	op.m.fabric.Deliver(src, dst, bytes, op.now)
}

// count records one page operation of the given kind against the
// operation's node (and, under telemetry, the window of the operation's
// current event time).
//
//repro:hotpath
func (op *pageOp) count(kind stats.PageOp) {
	op.m.st.Nodes[op.node].PageOps[kind]++
	if tl := op.m.tel; tl != nil {
		tl.PageOp(kind, op.now)
	}
}

// note records the operation on the telemetry timeline as kind acting
// on page p, spanning the operation's start to its current event time.
// Call it after the operation's last charge, so the span covers the
// whole operation; a sub-operation (a frame flush inside a relocation)
// notes its own completed span mid-operation instead.
//
//repro:hotpath
func (op *pageOp) note(kind telemetry.EventKind, p memory.Page) {
	if tl := op.m.tel; tl != nil {
		tl.Event(kind, uint64(p), op.m.pt.Entry(p).Home, op.node, op.start, op.now)
	}
}

// finish commits the operation: its elapsed cycles are accounted as
// page-operation time and the initiating CPU's clock advances to the
// operation's end.
//
//repro:hotpath
func (op *pageOp) finish() {
	op.m.st.Nodes[op.node].PageOpCycles += op.elapsed()
	op.c.Clock = op.now
}

// finishBusy is finish for operations that serialize subsequent
// accessors: the page stays busy until the operation's end.
//
//repro:hotpath
func (op *pageOp) finishBusy(p memory.Page) {
	op.finish()
	op.m.setPageBusy(p, op.now)
}

// writebackRemote sends a dirty block home asynchronously at the given
// event time: the CPU does not wait, but the NIs, the fabric links and
// the home controller are occupied and the directory is updated. now
// must be the emitting transaction's current event time — block
// evictions pass the CPU clock, page operations their pageOp's time.
//
//repro:hotpath
func (m *Machine) writebackRemote(n, h int, b memory.Block, now int64) {
	t := m.ni[n].Acquire(now, m.tm.NIOccupancy)
	t = m.fabric.Traverse(n, h, msgBlockBytes, t)
	m.home[h].Acquire(t, m.tm.HomeOccupancy)
	m.dir.WriteBack(b, n)
	m.st.Nodes[n].TrafficBytes += msgBlockBytes
	if tl := m.tel; tl != nil {
		tl.Traffic(n, msgBlockBytes, now)
	}
}
