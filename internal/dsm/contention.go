package dsm

// Contention-aware MigRep: the paper's migration/replication policy
// decides purely from per-page miss counters, which on a real fabric
// can pile 4-KB page moves onto links that are already the cluster's
// hot spot. This variant consults the interconnect's per-link byte
// counters (the topology work of PR 1) before every page move and
// defers the move while the route it would take is the fabric's hot
// spot. The miss counters stay in place, so a deferred move
// re-triggers on a later miss once the route's share has evened out.
//
// The hot-spot test is relative and cumulative: a route is gated while
// its hottest link has carried more than contentionFactor times the
// fabric-wide mean per-link bytes *over the whole run so far*. The
// counters never decay, so this measures a route's share of all
// traffic, not its instantaneous load — a route gated after an early
// burst ungates only once the rest of the fabric catches up
// cumulatively. That keeps the gate a pure function of counters the
// modeled hardware already has (deterministic, no clocks or windows),
// at the cost of reacting to history rather than the present. It also
// engages on the ideal crossbar, whose dedicated per-pair links make
// any hot pair a "hot link" even though the crossbar models no
// contention.
//
// The policy plugs in purely through the registration path: a Spec
// whose NewPolicy gates the stock migRepPolicy, registered under
// "migrep-contend". No fault-handling code knows it exists.

// contentionFactor is the hot-spot test: a route is gated when its
// hottest link has carried more than this multiple of the fabric-wide
// mean per-link bytes.
const contentionFactor = 2

// ContentionMigRep is CC-NUMA with contention-aware page migration and
// replication: MigRep whose page moves are deferred while the hottest
// link on the home→requester route has carried more than
// contentionFactor times the mean per-link bytes (see the package
// comment above for the exact — cumulative — semantics).
func ContentionMigRep() Spec {
	s := MigRep()
	s.Name = "MigRep-Cont"
	s.NewPolicy = newContentionPolicy
	return s
}

// newContentionPolicy builds the default policy for the spec and gates
// its page moves on the fabric's per-link load.
func newContentionPolicy(s Spec) Policy {
	p := newSpecPolicy(s).(*specPolicy)
	mr := p.mr
	if mr == nil {
		// A caller cleared the Spec's Migration/Replication flags:
		// there are no page moves to gate, so behave as the plain
		// derived policy instead of dereferencing a missing component.
		return p
	}
	mr.moveOK = func(home, requester int) bool {
		f := mr.m.Fabric()
		return f.RouteMaxLinkBytes(home, requester) <= contentionFactor*f.MeanLinkBytes()
	}
	return p
}
