package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// topoCluster returns the default cluster with the given fabric.
func topoCluster(net config.Network) config.Cluster {
	cl := config.DefaultCluster()
	cl.Net = net
	return cl
}

// runOnTopo executes a trace on a machine with the given fabric.
func runOnTopo(t *testing.T, spec Spec, net config.Network, tr *trace.Trace) *Machine {
	t.Helper()
	m, err := NewMachine(spec, topoCluster(net), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	return m
}

func sharingTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := apps.GenerateSynthetic(apps.SynReadShared,
		apps.SyntheticParams{CPUs: 32, KBPerNode: 128, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

var testNetworks = []config.Network{
	{}, // default ideal crossbar
	{Topology: config.TopoRing},
	{Topology: config.TopoMesh},
	{Topology: config.TopoFatTree},
	{Topology: config.TopoMesh, LinkBytesPerCycle: 8},
}

// TestTrafficConservation checks, for every topology and several
// systems, the two fabric invariants: the bytes injected per node pair
// (plus node-local messages) equal the node traffic counters, and the
// per-link totals equal the per-pair bytes multiplied by each pair's
// route hop count.
func TestTrafficConservation(t *testing.T) {
	tr := sharingTrace(t)
	for _, net := range testNetworks {
		for _, spec := range []Spec{CCNUMA(), MigRep(), RNUMA()} {
			m := runOnTopo(t, spec, net, tr)
			f := m.Fabric()
			topo := f.Topology()
			var pairTotal, hopWeighted int64
			for s := 0; s < topo.Nodes(); s++ {
				for d := 0; d < topo.Nodes(); d++ {
					pairTotal += f.PairBytes(s, d)
					hopWeighted += f.PairBytes(s, d) * int64(len(topo.Route(s, d)))
				}
			}
			name := topo.Name()
			if net.LinkBytesPerCycle > 0 {
				name += "+bw"
			}
			if got := pairTotal + f.LocalBytes(); got != m.Stats().TotalTrafficBytes() {
				t.Errorf("%s/%s: injected %d bytes, traffic counters say %d",
					name, spec.Name, got, m.Stats().TotalTrafficBytes())
			}
			if got := f.TotalLinkBytes(); got != hopWeighted {
				t.Errorf("%s/%s: link bytes %d, want hop-weighted %d",
					name, spec.Name, got, hopWeighted)
			}
			if m.Stats().Net == nil {
				t.Fatalf("%s/%s: stats.Net not populated", name, spec.Name)
			}
			if got := m.Stats().Net.TotalLinkBytes(); got != f.TotalLinkBytes() {
				t.Errorf("%s/%s: snapshot link bytes %d != fabric %d",
					name, spec.Name, got, f.TotalLinkBytes())
			}
		}
	}
}

// TestCrossbarLinkTotalsMatchTrafficCounters pins the compatibility
// contract of the default fabric: on the single-hop crossbar the
// per-link totals (plus node-local messages) are exactly the
// pre-existing per-node network-traffic counters.
func TestCrossbarLinkTotalsMatchTrafficCounters(t *testing.T) {
	tr := sharingTrace(t)
	for _, spec := range []Spec{CCNUMA(), Rep(), Mig(), MigRep(), RNUMA(), SCOMA()} {
		m := runOnTopo(t, spec, config.Network{}, tr)
		f := m.Fabric()
		if m.Stats().TotalTrafficBytes() == 0 {
			t.Fatalf("%s: workload generated no traffic", spec.Name)
		}
		if got := f.TotalLinkBytes() + f.LocalBytes(); got != m.Stats().TotalTrafficBytes() {
			t.Errorf("%s: crossbar links %d + local %d != traffic %d",
				spec.Name, f.TotalLinkBytes(), f.LocalBytes(), m.Stats().TotalTrafficBytes())
		}
	}
}

// TestCrossbarTimingUnchangedByFabric checks the implicit default
// fabric and an explicitly configured ideal crossbar are the same
// machine. (The absolute flat-model latencies — roundTrip ==
// RemoteMiss, page faults == SoftTrap + 2 network latencies — are
// pinned against Table 3 constants in machine_test.go, which now runs
// through the fabric path.)
func TestCrossbarTimingUnchangedByFabric(t *testing.T) {
	tr := sharingTrace(t)
	a := runOnTopo(t, CCNUMA(), config.Network{}, tr)
	b := runOnTopo(t, CCNUMA(), config.Network{Topology: config.TopoCrossbar, HopLatency: config.Default().NetworkLatency}, tr)
	if a.Stats().ExecCycles != b.Stats().ExecCycles {
		t.Errorf("implicit and explicit crossbar differ: %d vs %d cycles",
			a.Stats().ExecCycles, b.Stats().ExecCycles)
	}
}

// TestMultiHopFabricsSlowRemoteTraffic checks the topology axis has
// teeth: with per-hop latency, the ring (mean hops > 1) must run the
// same sharing workload slower than the single-hop crossbar.
func TestMultiHopFabricsSlowRemoteTraffic(t *testing.T) {
	tr := sharingTrace(t)
	xbar := runOnTopo(t, CCNUMA(), config.Network{}, tr)
	ring := runOnTopo(t, CCNUMA(), config.Network{Topology: config.TopoRing}, tr)
	if ring.Stats().ExecCycles <= xbar.Stats().ExecCycles {
		t.Errorf("ring exec %d not above crossbar %d",
			ring.Stats().ExecCycles, xbar.Stats().ExecCycles)
	}
	// Traffic volume is a property of the protocol, not the fabric.
	if ring.Stats().TotalTrafficBytes() != xbar.Stats().TotalTrafficBytes() {
		t.Errorf("ring traffic %d differs from crossbar %d",
			ring.Stats().TotalTrafficBytes(), xbar.Stats().TotalTrafficBytes())
	}
}

// TestMigRepCongestsLinksMoreThanFineGrain reproduces the paper's
// traffic argument at link granularity: under migratory sharing on a
// multi-hop fabric, the bulk 4-KB page moves of migration/replication
// load the hottest link strictly more than R-NUMA's fine-grain 64-byte
// fills of the same workload.
func TestMigRepCongestsLinksMoreThanFineGrain(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynMigratory,
		apps.SyntheticParams{CPUs: 32, KBPerNode: 256, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []config.Network{
		{Topology: config.TopoMesh},
		{Topology: config.TopoRing},
	} {
		mr := runOnTopo(t, MigRep(), net, tr)
		rn := runOnTopo(t, RNUMA(), net, tr)
		if mr.Stats().PageOpsByKind(stats.Migration) == 0 {
			t.Fatalf("%s: MigRep performed no migrations", net.Topology)
		}
		mrMax := mr.Stats().Net.MaxLink()
		rnMax := rn.Stats().Net.MaxLink()
		if mrMax.Bytes <= rnMax.Bytes {
			t.Errorf("%s: MigRep max link %d (%s) not above R-NUMA %d (%s)",
				net.Topology, mrMax.Bytes, mrMax.Name, rnMax.Bytes, rnMax.Name)
		}
	}
}
