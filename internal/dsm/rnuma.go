package dsm

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/stats"
)

// maybeRelocate runs the R-NUMA relocation interrupt for node n on page
// p after its refetch counter crossed the threshold. Relocation is a
// purely local operation: flush the node's cached copies of the page,
// unmap it, allocate a frame in the S-COMA page cache (evicting the LRU
// page if full), and remap; the necessary blocks are refetched on
// demand.
func (m *Machine) maybeRelocate(c *engine.CPU, n int, p memory.Page) {
	if m.spec.RelocDelayMisses > 0 &&
		m.pageMissTotal[p] < int64(m.spec.RelocDelayMisses) {
		return
	}
	e := m.pt.Entry(p)
	if e.Home == n || e.Mode[n] == memory.ModeReplica {
		return
	}
	ns := &m.st.Nodes[n]
	pc := m.pc[n]
	var cost int64

	// Make room: deallocate the least-recently-used page frame.
	if pc.Full() {
		victim := pc.EvictLRU()
		flushed := m.flushFrame(n, victim)
		cost += m.tm.PageOpCost(flushed)
		m.pt.Entry(victim.Page).Mode[n] = memory.ModeCCNUMA
		m.ref[n][victim.Page] = 0
		ns.PageOps[stats.Replacement]++
	}

	// Flush our CC-NUMA cached copies of the page; they will be
	// refetched into the frame on demand.
	flushed := 0
	b0 := p.FirstBlock()
	for i := 0; i < config.BlocksPerPage; i++ {
		b := b0 + memory.Block(i)
		present, dirty := m.invalidateOnNode(n, b, false)
		if present {
			flushed++
			if dirty {
				m.writebackRemote(n, e.Home, b, c.Clock)
			} else {
				m.dir.DropSharer(b, n)
			}
		}
	}
	cost += m.tm.PageOpCost(flushed)

	pc.Allocate(p)
	e.Mode[n] = memory.ModeSCOMA
	m.ref[n][p] = 0
	ns.PageOps[stats.Relocation]++
	ns.PageOpCycles += cost
	c.Clock += cost
}

// mapSCOMA statically places a just-faulted remote page into node n's
// page cache (the AlwaysSCOMA policy): allocate a frame, evicting the
// LRU page if the cache is full, and map the page in S-COMA mode. The
// caller has already charged the soft fault; this adds the allocation
// and any replacement cost.
func (m *Machine) mapSCOMA(c *engine.CPU, n int, p memory.Page) {
	pc := m.pc[n]
	if pc.Entry(p) != nil {
		return
	}
	ns := &m.st.Nodes[n]
	var cost int64
	if pc.Full() {
		victim := pc.EvictLRU()
		flushed := m.flushFrame(n, victim)
		cost += m.tm.PageOpCost(flushed)
		m.pt.Entry(victim.Page).Mode[n] = memory.ModeCCNUMA
		m.mapped[n][victim.Page] = false // remapping faults on next touch
		ns.PageOps[stats.Replacement]++
	}
	pc.Allocate(p)
	m.pt.Entry(p).Mode[n] = memory.ModeSCOMA
	ns.PageOps[stats.Relocation]++
	ns.PageOpCycles += cost
	c.Clock += cost
}

// flushFrame writes a deallocated S-COMA frame's dirty blocks back to
// the home node and purges the node's L1 copies of the page (the local
// physical mapping is going away). It returns the number of valid blocks
// flushed.
func (m *Machine) flushFrame(n int, fr *cache.PageEntry) (flushed int) {
	p := fr.Page
	e := m.pt.Entry(p)
	b0 := p.FirstBlock()
	for i := 0; i < config.BlocksPerPage; i++ {
		bit := uint64(1) << uint(i)
		if fr.Valid&bit == 0 {
			continue
		}
		b := b0 + memory.Block(i)
		flushed++
		dirty := fr.Dirty&bit != 0
		// Inclusion of the frame over the L1s: purge processor copies.
		if m.l1count[n][b] > 0 {
			lo, hi := m.cpusOf(n)
			for c := lo; c < hi; c++ {
				if present, d := m.l1[c].Invalidate(b); present {
					m.l1count[n][b]--
					dirty = dirty || d
				}
			}
		}
		if dirty {
			m.writebackRemote(n, e.Home, b, 0)
		} else {
			m.dir.DropSharer(b, n)
		}
		m.flags[n][b] &^= flagDepartInval // capacity departure
	}
	fr.Valid, fr.Dirty = 0, 0
	return flushed
}

// RefetchCounter exposes a page's current refetch count at a node, for
// tests.
func (m *Machine) RefetchCounter(node int, p memory.Page) int {
	if m.ref[node] == nil || uint64(p) >= uint64(len(m.ref[node])) {
		return 0
	}
	return int(m.ref[node][p])
}

// PageCacheLen exposes the number of resident pages in a node's page
// cache, for tests.
func (m *Machine) PageCacheLen(node int) int {
	if m.pc == nil {
		return 0
	}
	return m.pc[node].Len()
}

// PageMode exposes the caching mode of page p at a node, for tests.
func (m *Machine) PageMode(node int, p memory.Page) memory.PageMode {
	return m.pt.Entry(p).Mode[node]
}

// HomeOf exposes a page's current home node, for tests.
func (m *Machine) HomeOf(p memory.Page) int { return m.pt.Entry(p).Home }
