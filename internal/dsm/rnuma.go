package dsm

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// relocate runs the R-NUMA relocation interrupt for node n on page p
// after the policy decided to relocate it. Relocation is a purely
// local operation: flush the node's cached copies of the page, unmap
// it, allocate a frame in the S-COMA page cache (evicting a
// policy-chosen victim if full), and remap; the necessary blocks are
// refetched on demand.
func (m *Machine) relocate(c *engine.CPU, n int, p memory.Page) {
	e := m.pt.Entry(p)
	if e.Home == n || e.Mode[n] == memory.ModeReplica {
		return
	}
	pc := m.pc[n]
	op := m.beginPageOp(c, n)

	// Make room: deallocate the policy-chosen victim frame.
	if pc.Full() {
		m.evictFrame(op, n)
	}

	// Flush our CC-NUMA cached copies of the page; they will be
	// refetched into the frame on demand. Dirty copies travel home at
	// the operation's current event time (after any victim flush).
	flushed := 0
	b0 := p.FirstBlock()
	for i := 0; i < config.BlocksPerPage; i++ {
		b := b0 + memory.Block(i)
		present, dirty := m.invalidateOnNode(n, b, false)
		if present {
			flushed++
			if dirty {
				m.writebackRemote(n, e.Home, b, op.now)
			} else {
				m.dir.DropSharer(b, n)
			}
		}
	}
	op.charge(m.tm.PageOpCost(flushed))

	pc.Allocate(p)
	e.Mode[n] = memory.ModeSCOMA
	m.ref[n][p] = 0
	op.count(stats.Relocation)
	op.note(telemetry.EvRelocate, p)
	op.finish()
}

// mapSCOMA statically places a just-faulted remote page into node n's
// page cache (the AlwaysSCOMA policy): allocate a frame, evicting the
// LRU page if the cache is full, and map the page in S-COMA mode. The
// caller has already charged the soft fault; this adds the allocation
// and any replacement cost.
func (m *Machine) mapSCOMA(c *engine.CPU, n int, p memory.Page) {
	pc := m.pc[n]
	if pc.Entry(p) != nil {
		return
	}
	op := m.beginPageOp(c, n)
	if pc.Full() {
		m.evictFrame(op, n)
	}
	pc.Allocate(p)
	m.pt.Entry(p).Mode[n] = memory.ModeSCOMA
	op.count(stats.Relocation)
	op.note(telemetry.EvRelocate, p)
	op.finish()
}

// evictFrame deallocates the page frame the policy's ChooseVictim
// picks (LRU under every default policy): the frame's surviving blocks
// are flushed home at the operation's current event time, the victim
// page drops back to CC-NUMA mode, its refetch counter restarts, and
// the node's mapping is cleared so the next touch re-faults. Both
// eviction paths (reactive relocation and static S-COMA placement)
// share this helper, so they cannot diverge on the mapping state
// again.
func (m *Machine) evictFrame(op *pageOp, n int) {
	victim := m.pol.ChooseVictim(n)
	flushed := m.flushFrame(op, n, victim)
	op.charge(m.tm.PageOpCost(flushed))
	m.pt.Entry(victim.Page).Mode[n] = memory.ModeCCNUMA
	m.mapped[n][victim.Page] = false // the remapped page faults on next touch
	m.ref[n][victim.Page] = 0
	op.count(stats.Replacement)
	op.note(telemetry.EvFrameFlush, victim.Page)
}

// flushFrame writes a deallocated S-COMA frame's dirty blocks back to
// the home node at the operation's current event time and purges the
// node's L1 copies of the page (the local physical mapping is going
// away). It returns the number of valid blocks flushed.
func (m *Machine) flushFrame(op *pageOp, n int, fr *cache.PageEntry) (flushed int) {
	p := fr.Page
	e := m.pt.Entry(p)
	b0 := p.FirstBlock()
	for i := 0; i < config.BlocksPerPage; i++ {
		bit := uint64(1) << uint(i)
		if fr.Valid&bit == 0 {
			continue
		}
		b := b0 + memory.Block(i)
		flushed++
		dirty := fr.Dirty&bit != 0
		// Inclusion of the frame over the L1s: purge processor copies.
		if m.l1count[n][b] > 0 {
			lo, hi := m.cpusOf(n)
			for c := lo; c < hi; c++ {
				if present, d := m.l1[c].Invalidate(b); present {
					m.l1count[n][b]--
					dirty = dirty || d
				}
			}
		}
		if dirty {
			m.writebackRemote(n, e.Home, b, op.now)
		} else {
			m.dir.DropSharer(b, n)
		}
		m.flags[n][b] &^= flagDepartInval // capacity departure
	}
	fr.Valid, fr.Dirty = 0, 0
	return flushed
}

// RefetchCounter exposes a page's current refetch count at a node, for
// tests.
func (m *Machine) RefetchCounter(node int, p memory.Page) int {
	if m.ref[node] == nil || uint64(p) >= uint64(len(m.ref[node])) {
		return 0
	}
	return int(m.ref[node][p])
}

// PageCacheLen exposes the number of resident pages in a node's page
// cache, for tests.
func (m *Machine) PageCacheLen(node int) int {
	if m.pc == nil {
		return 0
	}
	return m.pc[node].Len()
}

// PageMode exposes the caching mode of page p at a node, for tests.
func (m *Machine) PageMode(node int, p memory.Page) memory.PageMode {
	return m.pt.Entry(p).Mode[node]
}

// HomeOf exposes a page's current home node, for tests.
func (m *Machine) HomeOf(p memory.Page) int { return m.pt.Entry(p).Home }

// Mapped exposes whether node n currently holds a valid mapping of page
// p, for tests.
func (m *Machine) Mapped(node int, p memory.Page) bool { return m.mapped[node][p] }
