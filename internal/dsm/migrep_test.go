package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runSynthetic executes a synthetic workload on a spec and returns the
// statistics.
func runSynthetic(t *testing.T, spec Spec, kind apps.SyntheticKind, kb, iters int) *stats.Sim {
	t.Helper()
	tr, err := apps.GenerateSynthetic(kind, apps.SyntheticParams{CPUs: 32, KBPerNode: kb, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(tr, spec, config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestReplicationFiresOnReadShared(t *testing.T) {
	sim := runSynthetic(t, Rep(), apps.SynReadShared, 128, 6)
	if sim.PageOpsByKind(stats.Replication) == 0 {
		t.Fatal("read-shared workload triggered no replications")
	}
	if sim.PageOpsByKind(stats.Migration) != 0 {
		t.Error("replication-only system migrated pages")
	}
	// Replication must reduce remote traffic versus plain CC-NUMA.
	base := runSynthetic(t, CCNUMA(), apps.SynReadShared, 128, 6)
	if sim.TotalRemoteMisses() >= base.TotalRemoteMisses() {
		t.Errorf("replication did not cut remote misses: %d vs %d",
			sim.TotalRemoteMisses(), base.TotalRemoteMisses())
	}
	if sim.ExecCycles >= base.ExecCycles {
		t.Errorf("replication did not improve execution: %d vs %d",
			sim.ExecCycles, base.ExecCycles)
	}
}

func TestMigrationFiresOnMigratory(t *testing.T) {
	sim := runSynthetic(t, Mig(), apps.SynMigratory, 96, 8)
	if sim.PageOpsByKind(stats.Migration) == 0 {
		t.Fatal("migratory workload triggered no migrations")
	}
	if sim.PageOpsByKind(stats.Replication) != 0 {
		t.Error("migration-only system replicated pages")
	}
	base := runSynthetic(t, CCNUMA(), apps.SynMigratory, 96, 8)
	if sim.TotalRemoteMisses() >= base.TotalRemoteMisses() {
		t.Errorf("migration did not cut remote misses: %d vs %d",
			sim.TotalRemoteMisses(), base.TotalRemoteMisses())
	}
}

func TestReplicationDoesNotFireOnWriteShared(t *testing.T) {
	sim := runSynthetic(t, MigRep(), apps.SynWriteShared, 64, 6)
	if got := sim.PageOpsByKind(stats.Replication); got != 0 {
		t.Errorf("write-shared workload replicated %d pages", got)
	}
}

func TestCCNUMAPerformsNoPageOps(t *testing.T) {
	sim := runSynthetic(t, CCNUMA(), apps.SynReadShared, 128, 6)
	for op := stats.Migration; op <= stats.Replacement; op++ {
		if got := sim.PageOpsByKind(op); got != 0 {
			t.Errorf("CC-NUMA performed %d %v operations", got, op)
		}
	}
}

func TestWriteToReplicatedPageCollapses(t *testing.T) {
	// Build a read-shared phase long enough to replicate, then a write
	// from one node: the replicas must collapse and the write proceed.
	tr, err := apps.GenerateSynthetic(apps.SynReadShared, apps.SyntheticParams{CPUs: 32, KBPerNode: 128, Iters: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Append a write by CPU 8 (node 2) to the first block of the hot
	// region after a final barrier.
	last := uint64(0)
	for cpu := range tr.CPUs {
		tr.CPUs[cpu].Append(trace.Op{Kind: trace.Barrier, Arg: 9999})
	}
	tr.CPUs[8].Append(trace.Op{Kind: trace.Write, Arg: last})

	sim, err := Run(tr, MigRep(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if sim.PageOpsByKind(stats.Replication) == 0 {
		t.Fatal("no replications before the write")
	}
	if sim.PageOpsByKind(stats.Collapse) == 0 {
		t.Error("write to replicated page did not collapse")
	}
}

func TestMigrationMovesHome(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynMigratory, apps.SyntheticParams{CPUs: 32, KBPerNode: 64, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(Mig(), config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	if m.Stats().PageOpsByKind(stats.Migration) == 0 {
		t.Skip("no migration fired at this size")
	}
	if err := m.Verify(); err != nil {
		t.Errorf("machine inconsistent after migrations: %v", err)
	}
}

func TestMigRepCountersResetAtInterval(t *testing.T) {
	m := mk(t, MigRep())
	cnt := m.migCounter(0)
	for i := 0; i < m.th.MigRepResetInterval-1; i++ {
		cnt.read[1]++
		cnt.sinceReset++
	}
	// Drive one more poke through the public path: it must reset.
	cpu := m.sched.CPUByID(4)
	m.pt.FirstTouch(0, 0)
	m.pol.OnRemoteMiss(cpu, 1, 0, stats.Coherence, false)
	if cnt.sinceReset != 0 {
		t.Errorf("sinceReset = %d after interval, want 0", cnt.sinceReset)
	}
	if cnt.read[1] != 0 {
		t.Errorf("read counter = %d after reset", cnt.read[1])
	}
}

func TestReplicaServesLocalReads(t *testing.T) {
	sim := runSynthetic(t, Rep(), apps.SynReadShared, 128, 8)
	base := runSynthetic(t, Rep(), apps.SynReadShared, 128, 2)
	// Longer runs add sweeps after replication; the extra sweeps must
	// add mostly local misses, so remote misses grow sublinearly.
	extraRemote := sim.TotalRemoteMisses() - base.TotalRemoteMisses()
	if extraRemote > base.TotalRemoteMisses() {
		t.Errorf("post-replication sweeps still mostly remote: +%d over %d",
			extraRemote, base.TotalRemoteMisses())
	}
}

func TestGatherFlushesDirtyBlocks(t *testing.T) {
	m := mk(t, MigRep())
	cpu := m.sched.CPUByID(0)
	// Home page 0 at node 0 and dirty a block at node 1.
	m.pt.FirstTouch(0, 0)
	m.mapped[0][0] = true
	c4 := m.sched.CPUByID(4)
	m.mapped[1][0] = true
	m.pt.Entry(0).Mode[1] = 1 // ccnuma
	m.access(c4, 0, true)
	if owner, dirty := m.dir.IsDirtyRemote(0, 0); !dirty || owner != 1 {
		t.Fatalf("setup failed: owner=%d dirty=%v", owner, dirty)
	}
	flushed := m.gatherPage(m.beginPageOp(cpu, 0), 0)
	if flushed == 0 {
		t.Error("gather flushed nothing")
	}
	if _, dirty := m.dir.IsDirtyRemote(0, 0); dirty {
		t.Error("block still dirty after gather")
	}
	if m.nodeHolds(1, 0) {
		t.Error("node 1 still holds the block after gather")
	}
	_ = cpu
}

func TestSlowThresholdsReduceOps(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynMigratory, apps.SyntheticParams{CPUs: 32, KBPerNode: 96, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(tr, MigRep(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(tr, MigRep(), config.DefaultCluster(), config.Slow(), config.SlowThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if slow.PageOpsByKind(stats.Migration) > fast.PageOpsByKind(stats.Migration) {
		t.Errorf("raised threshold increased migrations: %d > %d",
			slow.PageOpsByKind(stats.Migration), fast.PageOpsByKind(stats.Migration))
	}
}

// TestBoundaryReferenceReachesThresholds pins the ISSUE 2 fix to
// the migrep policy's reset boundary: the reference that lands exactly on the
// reset interval must still reach the threshold checks before the
// counters clear. Previously the reset swallowed it, so a page whose
// counter crossed the threshold on its interval's final reference never
// triggered the operation.
func TestBoundaryReferenceReachesThresholds(t *testing.T) {
	m := mk(t, Rep())
	m.pt.FirstTouch(0, 0)
	cnt := m.migCounter(0)
	cnt.sinceReset = int32(m.th.MigRepResetInterval) - 1
	cnt.read[1] = int32(m.th.MigRepThreshold) - 1
	c4 := m.sched.CPUByID(4)
	m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 1 {
		t.Errorf("interval's final reference fired %d replications, want 1", got)
	}
	// The counters still clear once the boundary reference is handled.
	if cnt.sinceReset != 0 || cnt.read[1] != 0 {
		t.Errorf("counters not reset after boundary: sinceReset=%d read=%d",
			cnt.sinceReset, cnt.read[1])
	}
}

// TestMigrationWeighsHomeUseOnly pins the migration condition after the
// dead cnt.total(h) term was dropped: home references accrue only to
// homeUse (never to the per-node read/write banks), and migration fires
// exactly when the requester's misses reach homeUse + threshold.
func TestMigrationWeighsHomeUseOnly(t *testing.T) {
	m := mk(t, Mig())
	m.pt.FirstTouch(0, 0)
	cnt := m.migCounter(0)
	c0 := m.sched.CPUByID(0)
	c4 := m.sched.CPUByID(4)
	for i := 0; i < 5; i++ {
		m.pol.OnHomeMiss(c0, 0, 0, i%2 == 0)
	}
	// The dead term: home references never land in the read/write banks,
	// so total(home) is identically zero and homeUse carries the whole
	// home-side weight.
	if got := cnt.total(0); got != 0 {
		t.Fatalf("home references accrued to total(home) = %d, want 0", got)
	}
	if cnt.homeUse != 5 {
		t.Fatalf("homeUse = %d, want 5", cnt.homeUse)
	}
	thr := int32(m.th.MigRepThreshold)
	cnt.read[1] = thr + 3
	m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false) // total(1) = thr+4 < homeUse+thr = thr+5
	if got := m.st.Nodes[1].PageOps[stats.Migration]; got != 0 {
		t.Fatalf("migration fired below homeUse+threshold: %d ops", got)
	}
	m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false) // total(1) = thr+5: fires
	if got := m.st.Nodes[1].PageOps[stats.Migration]; got != 1 {
		t.Errorf("migration did not fire at homeUse+threshold: %d ops", got)
	}
}

// TestGrantReplicaSerializesAndChargesHome pins the ISSUE 2 alignment of
// grantReplica with replicate: the grant keeps the page busy until the
// copy completes (SoftTrap 3000 + CopyCost(64) 21760 = 24760 cycles
// under the default timing), so concurrent accessors wait it out, and
// the home controller is occupied for a quarter of the operation.
// Previously neither happened: the page was never marked busy and the
// home stayed free during the copy.
func TestGrantReplicaSerializesAndChargesHome(t *testing.T) {
	m := mk(t, Rep())
	m.pt.FirstTouch(0, 0)
	c4 := m.sched.CPUByID(4)
	c8 := m.sched.CPUByID(8)
	m.EnableAudit()
	m.replicate(c4, 1, 0)
	homeBusy := m.home[0].Busy()
	// A real accessor waits out pageBusy in access before any page
	// operation starts; model that for the direct call.
	c8.Clock = m.pageBusy[0]
	start := c8.Clock
	m.grantReplica(c8, 2, 0)
	wantCost := config.Default().SoftTrap + config.Default().CopyCost(config.BlocksPerPage)
	if got := c8.Clock - start; got != wantCost {
		t.Errorf("grant cost = %d cycles, want %d", got, wantCost)
	}
	if got := m.pageBusy[0]; got != c8.Clock {
		t.Errorf("pageBusy = %d after grant, want %d (the grant's end)", got, c8.Clock)
	}
	if got := m.home[0].Busy(); got != homeBusy+wantCost/4 {
		t.Errorf("home busy = %d, want %d (one quarter of the grant)", got, homeBusy+wantCost/4)
	}
	if v := m.AuditViolations(); len(v) != 0 {
		t.Errorf("audit violations: %v", v)
	}
}
