package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runSynthetic executes a synthetic workload on a spec and returns the
// statistics.
func runSynthetic(t *testing.T, spec Spec, kind apps.SyntheticKind, kb, iters int) *stats.Sim {
	t.Helper()
	tr, err := apps.GenerateSynthetic(kind, apps.SyntheticParams{CPUs: 32, KBPerNode: kb, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Run(tr, spec, config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestReplicationFiresOnReadShared(t *testing.T) {
	sim := runSynthetic(t, Rep(), apps.SynReadShared, 128, 6)
	if sim.PageOpsByKind(stats.Replication) == 0 {
		t.Fatal("read-shared workload triggered no replications")
	}
	if sim.PageOpsByKind(stats.Migration) != 0 {
		t.Error("replication-only system migrated pages")
	}
	// Replication must reduce remote traffic versus plain CC-NUMA.
	base := runSynthetic(t, CCNUMA(), apps.SynReadShared, 128, 6)
	if sim.TotalRemoteMisses() >= base.TotalRemoteMisses() {
		t.Errorf("replication did not cut remote misses: %d vs %d",
			sim.TotalRemoteMisses(), base.TotalRemoteMisses())
	}
	if sim.ExecCycles >= base.ExecCycles {
		t.Errorf("replication did not improve execution: %d vs %d",
			sim.ExecCycles, base.ExecCycles)
	}
}

func TestMigrationFiresOnMigratory(t *testing.T) {
	sim := runSynthetic(t, Mig(), apps.SynMigratory, 96, 8)
	if sim.PageOpsByKind(stats.Migration) == 0 {
		t.Fatal("migratory workload triggered no migrations")
	}
	if sim.PageOpsByKind(stats.Replication) != 0 {
		t.Error("migration-only system replicated pages")
	}
	base := runSynthetic(t, CCNUMA(), apps.SynMigratory, 96, 8)
	if sim.TotalRemoteMisses() >= base.TotalRemoteMisses() {
		t.Errorf("migration did not cut remote misses: %d vs %d",
			sim.TotalRemoteMisses(), base.TotalRemoteMisses())
	}
}

func TestReplicationDoesNotFireOnWriteShared(t *testing.T) {
	sim := runSynthetic(t, MigRep(), apps.SynWriteShared, 64, 6)
	if got := sim.PageOpsByKind(stats.Replication); got != 0 {
		t.Errorf("write-shared workload replicated %d pages", got)
	}
}

func TestCCNUMAPerformsNoPageOps(t *testing.T) {
	sim := runSynthetic(t, CCNUMA(), apps.SynReadShared, 128, 6)
	for op := stats.Migration; op <= stats.Replacement; op++ {
		if got := sim.PageOpsByKind(op); got != 0 {
			t.Errorf("CC-NUMA performed %d %v operations", got, op)
		}
	}
}

func TestWriteToReplicatedPageCollapses(t *testing.T) {
	// Build a read-shared phase long enough to replicate, then a write
	// from one node: the replicas must collapse and the write proceed.
	tr, err := apps.GenerateSynthetic(apps.SynReadShared, apps.SyntheticParams{CPUs: 32, KBPerNode: 128, Iters: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Append a write by CPU 8 (node 2) to the first block of the hot
	// region after a final barrier.
	last := uint64(0)
	for cpu := range tr.CPUs {
		tr.CPUs[cpu] = append(tr.CPUs[cpu], trace.Op{Kind: trace.Barrier, Arg: 9999})
	}
	tr.CPUs[8] = append(tr.CPUs[8], trace.Op{Kind: trace.Write, Arg: last})

	sim, err := Run(tr, MigRep(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if sim.PageOpsByKind(stats.Replication) == 0 {
		t.Fatal("no replications before the write")
	}
	if sim.PageOpsByKind(stats.Collapse) == 0 {
		t.Error("write to replicated page did not collapse")
	}
}

func TestMigrationMovesHome(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynMigratory, apps.SyntheticParams{CPUs: 32, KBPerNode: 64, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(Mig(), config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	if m.Stats().PageOpsByKind(stats.Migration) == 0 {
		t.Skip("no migration fired at this size")
	}
	if err := m.Verify(); err != nil {
		t.Errorf("machine inconsistent after migrations: %v", err)
	}
}

func TestMigRepCountersResetAtInterval(t *testing.T) {
	m := mk(t, MigRep())
	cnt := m.migCounter(0)
	for i := 0; i < m.th.MigRepResetInterval-1; i++ {
		cnt.read[1]++
		cnt.sinceReset++
	}
	// Drive one more poke through the public path: it must reset.
	cpu := m.sched.CPUByID(4)
	m.pt.FirstTouch(0, 0)
	m.pokeMigRep(cpu, 1, 0, false)
	if cnt.sinceReset != 0 {
		t.Errorf("sinceReset = %d after interval, want 0", cnt.sinceReset)
	}
	if cnt.read[1] != 0 {
		t.Errorf("read counter = %d after reset", cnt.read[1])
	}
}

func TestReplicaServesLocalReads(t *testing.T) {
	sim := runSynthetic(t, Rep(), apps.SynReadShared, 128, 8)
	base := runSynthetic(t, Rep(), apps.SynReadShared, 128, 2)
	// Longer runs add sweeps after replication; the extra sweeps must
	// add mostly local misses, so remote misses grow sublinearly.
	extraRemote := sim.TotalRemoteMisses() - base.TotalRemoteMisses()
	if extraRemote > base.TotalRemoteMisses() {
		t.Errorf("post-replication sweeps still mostly remote: +%d over %d",
			extraRemote, base.TotalRemoteMisses())
	}
}

func TestGatherFlushesDirtyBlocks(t *testing.T) {
	m := mk(t, MigRep())
	cpu := m.sched.CPUByID(0)
	// Home page 0 at node 0 and dirty a block at node 1.
	m.pt.FirstTouch(0, 0)
	m.mapped[0][0] = true
	c4 := m.sched.CPUByID(4)
	m.mapped[1][0] = true
	m.pt.Entry(0).Mode[1] = 1 // ccnuma
	m.access(c4, 0, true)
	if owner, dirty := m.dir.IsDirtyRemote(0, 0); !dirty || owner != 1 {
		t.Fatalf("setup failed: owner=%d dirty=%v", owner, dirty)
	}
	flushed := m.gatherPage(0, 0)
	if flushed == 0 {
		t.Error("gather flushed nothing")
	}
	if _, dirty := m.dir.IsDirtyRemote(0, 0); dirty {
		t.Error("block still dirty after gather")
	}
	if m.nodeHolds(1, 0) {
		t.Error("node 1 still holds the block after gather")
	}
	_ = cpu
}

func TestSlowThresholdsReduceOps(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynMigratory, apps.SyntheticParams{CPUs: 32, KBPerNode: 96, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(tr, MigRep(), config.DefaultCluster(), config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(tr, MigRep(), config.DefaultCluster(), config.Slow(), config.SlowThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if slow.PageOpsByKind(stats.Migration) > fast.PageOpsByKind(stats.Migration) {
		t.Errorf("raised threshold increased migrations: %d > %d",
			slow.PageOpsByKind(stats.Migration), fast.PageOpsByKind(stats.Migration))
	}
}
