package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/trace"
)

func barrierOp(id uint64, g uint32) trace.Op {
	return trace.Op{Kind: trace.Barrier, Arg: id, Gap: g}
}

func TestBarrierSynchronizesAllCPUs(t *testing.T) {
	// Every CPU pads a different amount, then hits a barrier, then does
	// one local access. Execution time = slowest pad + barrier overhead
	// + the (serialized) accesses.
	tr := &trace.Trace{Name: "barrier", CPUs: make([]trace.Stream, 32), Footprint: 1 << 20}
	for cpu := 0; cpu < 32; cpu++ {
		tr.CPUs[cpu] = trace.StreamOf(
			trace.Op{Kind: trace.Pad, Gap: uint32(1000 * (cpu + 1))},
			barrierOp(0, 0),
			rd(uint64(cpu*config.BlocksPerPage)), // own page
		)
	}
	m := run(t, CCNUMA(), tr)
	tm := config.Default()
	minWant := int64(32000) + tm.LocalMiss // slowest arrival + one miss
	got := m.Stats().ExecCycles
	if got < minWant {
		t.Errorf("exec = %d, want >= %d", got, minWant)
	}
	// Sync time must be accounted: cpu 0 waited ~31000 cycles.
	var sync int64
	for i := range m.Stats().Nodes {
		sync += m.Stats().Nodes[i].SyncCycles
	}
	if sync < 31000 {
		t.Errorf("sync cycles = %d, want at least the longest wait", sync)
	}
}

func TestLockSerializesCriticalSections(t *testing.T) {
	// All 32 CPUs take the same lock and pad 1000 cycles inside: the
	// sections must serialize, so execution takes at least 32*1000.
	tr := &trace.Trace{Name: "locks", CPUs: make([]trace.Stream, 32), Footprint: 1 << 16}
	for cpu := 0; cpu < 32; cpu++ {
		tr.CPUs[cpu] = trace.StreamOf(
			trace.Op{Kind: trace.Lock, Arg: 0},
			trace.Op{Kind: trace.Pad, Gap: 1000},
			trace.Op{Kind: trace.Unlock, Arg: 0},
		)
	}
	m := run(t, CCNUMA(), tr)
	if got := m.Stats().ExecCycles; got < 32*1000 {
		t.Errorf("exec = %d, want >= 32000 (serialized sections)", got)
	}
}

func TestLockAcquisitionChargesMemoryCost(t *testing.T) {
	tm := config.Default()
	// A single CPU taking a fresh lock pays a local transaction; a CPU
	// on another node taking it next pays a remote one.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {{Kind: trace.Lock, Arg: 0}, {Kind: trace.Unlock, Arg: 0}},
		4: {{Kind: trace.Pad, Gap: 10000}, {Kind: trace.Lock, Arg: 0}, {Kind: trace.Unlock, Arg: 0}},
	})
	m := run(t, CCNUMA(), tr)
	want := int64(10000) + tm.RemoteMiss
	if got := m.Stats().ExecCycles; got != want {
		t.Errorf("exec = %d, want %d", got, want)
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynWriteShared, apps.SyntheticParams{CPUs: 32, KBPerNode: 64, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{CCNUMA(), MigRep(), RNUMA()} {
		a, err := Run(tr, spec, config.DefaultCluster(), config.Default(), config.DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(tr, spec, config.DefaultCluster(), config.Default(), config.DefaultThresholds())
		if err != nil {
			t.Fatal(err)
		}
		if a.ExecCycles != b.ExecCycles {
			t.Errorf("%s: nondeterministic execution: %d vs %d", spec.Name, a.ExecCycles, b.ExecCycles)
		}
		if a.TotalRemoteMisses() != b.TotalRemoteMisses() {
			t.Errorf("%s: nondeterministic misses", spec.Name)
		}
	}
}

func TestGapAdvancesClock(t *testing.T) {
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {{Kind: trace.Pad, Gap: 12345}},
	})
	m := run(t, CCNUMA(), tr)
	if got := m.Stats().ExecCycles; got != 12345 {
		t.Errorf("exec = %d, want 12345", got)
	}
}

func TestPhaseResetReplacesPages(t *testing.T) {
	// CPU 0 initializes a page before the Phase marker; CPU 4 touches
	// it first afterwards: the page must move to node 1 for free.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {wr(0), {Kind: trace.Phase}},
		4: {{Kind: trace.Pad, Gap: 100000}, rd(0)},
	})
	m, err := NewMachine(CCNUMA(), config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	if home := m.HomeOf(0); home != 1 {
		t.Errorf("page homed at %d after phase re-touch, want 1", home)
	}
}

func TestAllSystemsRunAllApps(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep in -short mode")
	}
	specs := []Spec{
		PerfectCCNUMA(), CCNUMA(), Rep(), Mig(), MigRep(),
		RNUMA(), RNUMAInf(), RNUMAHalf(), RNUMAHalfMigRep(256),
	}
	for _, app := range apps.Paper() {
		tr, err := app.Generate(apps.Params{CPUs: 32, Scale: 8})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		var perfect int64
		for _, spec := range specs {
			m, err := NewMachine(spec, config.DefaultCluster(), config.Default(),
				config.DefaultThresholds(), tr.Footprint, tr.Name)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Execute(tr); err != nil {
				t.Fatalf("%s on %s: %v", app.Name, spec.Name, err)
			}
			if err := m.Verify(); err != nil {
				t.Errorf("%s on %s: machine inconsistent: %v", app.Name, spec.Name, err)
			}
			sim := m.Stats()
			if sim.ExecCycles <= 0 {
				t.Errorf("%s on %s: nonpositive execution time", app.Name, spec.Name)
			}
			if spec.Name == "Perfect" {
				perfect = sim.ExecCycles
			} else if float64(sim.ExecCycles) < 0.95*float64(perfect) {
				// Finite systems may beat "perfect" by small margins
				// (earlier writebacks avoid 3-hop fetches), but a large
				// win indicates an accounting bug.
				t.Errorf("%s on %s: faster than perfect by >5%%: %d vs %d",
					app.Name, spec.Name, sim.ExecCycles, perfect)
			}
		}
	}
}

func TestLockStatsExposed(t *testing.T) {
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {{Kind: trace.Lock, Arg: 7}, {Kind: trace.Unlock, Arg: 7}},
	})
	m := run(t, CCNUMA(), tr)
	if got := m.LockStats()[7]; got != 1 {
		t.Errorf("lock 7 acquisitions = %d, want 1", got)
	}
}

// TestContendedLocksKeepDispatchOrder is the regression test for the
// lock-handoff bug the audit subsystem caught: Execute used to charge
// the new lock holder's acquisition cost after Unblock had already
// pushed it into the scheduler heap, mutating the heap key in place.
// The corrupted heap then dispatched CPUs out of simulated-time order
// (837+ violations over the paper sweep). Lock-heavy contention across
// nodes, run under audit, must dispatch monotonically and pass the
// conservation checks — the harness apps that cover the rest of the
// suite (radix, lu, migratory) never take a lock, so this trace is the
// only lock coverage under audit.
func TestContendedLocksKeepDispatchOrder(t *testing.T) {
	tr := &trace.Trace{Name: "lockstorm", CPUs: make([]trace.Stream, 32), Footprint: 1 << 18}
	for cpu := 0; cpu < 32; cpu++ {
		var ops []trace.Op
		if cpu < 16 {
			// Cross-node handoffs on one hot lock: every grant charges
			// the new holder a remote transaction on the lock word.
			for i := 0; i < 40; i++ {
				ops = append(ops,
					trace.Op{Kind: trace.Lock, Arg: 0, Gap: uint32(11 * (cpu + 1))},
					wr(uint64((cpu%8)*config.BlocksPerPage+i%config.BlocksPerPage)),
					trace.Op{Kind: trace.Unlock, Arg: 0})
			}
		} else {
			// Dense independent ticks: the scheduler heap always holds
			// clocks inside any lock-handoff charge window, so a CPU
			// requeued with a stale (too-small) heap key is dispatched
			// ahead of them and trips the dispatch-order audit.
			for i := 0; i < 2000; i++ {
				ops = append(ops, trace.Op{Kind: trace.Pad, Gap: 13})
			}
		}
		tr.CPUs[cpu] = trace.StreamOf(ops...)
	}
	m, err := NewMachine(CCNUMA(), config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableAudit()
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	if got := m.AuditViolations(); len(got) != 0 {
		t.Errorf("dispatch-order violations under lock contention: %v", got)
	}
	if got := m.fabric.Violations(); len(got) != 0 {
		t.Errorf("fabric violations under lock contention: %v", got)
	}
}
