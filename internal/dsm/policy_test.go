package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestCollapseBlocksImmediateReplication(t *testing.T) {
	// Replication-only: with migration enabled the page would instead
	// migrate to the hot reader during the cooldown window.
	m := mk(t, Rep())
	m.pt.FirstTouch(0, 0)
	cnt := m.migCounter(0)
	c4 := m.sched.CPUByID(4)

	// Drive node 1 over the read threshold: first replication fires.
	for i := 0; i < m.th.MigRepThreshold; i++ {
		m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	}
	if m.st.Nodes[1].PageOps[stats.Replication] != 1 {
		t.Fatalf("replications = %d, want 1", m.st.Nodes[1].PageOps[stats.Replication])
	}

	// A write collapses; the counters zero and noRepl blocks a retry.
	c8 := m.sched.CPUByID(8)
	m.collapse(c8, 2, 0)
	if !cnt.noRepl {
		t.Fatal("collapse did not set the replication block")
	}
	for i := 0; i < m.th.MigRepThreshold+10; i++ {
		m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	}
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 1 {
		t.Errorf("replication re-fired during cooldown: %d ops", got)
	}

	// After a reset the page is eligible again.
	cnt.reset()
	for i := 0; i < m.th.MigRepThreshold; i++ {
		m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	}
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 2 {
		t.Errorf("replication did not re-fire after reset: %d ops", got)
	}
}

func TestHomeUseWeighsAgainstMigration(t *testing.T) {
	m := mk(t, Mig())
	m.pt.FirstTouch(0, 0)
	cnt := m.migCounter(0)
	c0 := m.sched.CPUByID(0)
	c4 := m.sched.CPUByID(4)

	// The home uses the page as much as the remote node: no migration.
	for i := 0; i < m.th.MigRepThreshold+20; i++ {
		m.pol.OnHomeMiss(c0, 0, 0, i%2 == 0)                 // home accesses
		m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false) // remote requests
	}
	if got := m.st.Nodes[1].PageOps[stats.Migration]; got != 0 {
		t.Errorf("page migrated away from an active home: %d ops", got)
	}
	if cnt.homeUse == 0 {
		t.Error("home use not recorded")
	}

	// An idle home loses the page.
	m2 := mk(t, Mig())
	m2.pt.FirstTouch(0, 0)
	c4b := m2.sched.CPUByID(4)
	for i := 0; i < m2.th.MigRepThreshold; i++ {
		m2.pol.OnRemoteMiss(c4b, 1, 0, stats.Coherence, false)
	}
	if got := m2.st.Nodes[1].PageOps[stats.Migration]; got != 1 {
		t.Errorf("page did not migrate from idle home: %d ops", got)
	}
	if m2.HomeOf(0) != 1 {
		t.Errorf("home = %d after migration, want 1", m2.HomeOf(0))
	}
}

func TestHomeWritesDoNotBlockReplication(t *testing.T) {
	m := mk(t, Rep())
	m.pt.FirstTouch(0, 0)
	c0 := m.sched.CPUByID(0)
	c4 := m.sched.CPUByID(4)
	// The home writes its own page; a remote node only reads it.
	for i := 0; i < 50; i++ {
		m.pol.OnHomeMiss(c0, 0, 0, true)
	}
	for i := 0; i < m.th.MigRepThreshold; i++ {
		m.pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	}
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 1 {
		t.Errorf("home-local writes blocked replication: %d ops", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// One CPU waits at a barrier nobody else reaches.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {{Kind: trace.Barrier, Arg: 0}},
	})
	m, err := NewMachine(CCNUMA(), config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(tr); err == nil {
		t.Error("deadlocked trace executed without error")
	}
}

func TestPaperShapeHolds(t *testing.T) {
	// The headline qualitative result at a moderate scale: R-NUMA beats
	// CC-NUMA on the capacity-bound workloads, and MigRep never loses
	// badly to CC-NUMA.
	if testing.Short() {
		t.Skip("shape check in -short mode")
	}
	cl := config.DefaultCluster()
	tm, th := config.Default(), config.DefaultThresholds()
	for _, name := range []string{"lu", "radix"} {
		info, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := info.Generate(apps.Params{CPUs: 32, Scale: 4})
		if err != nil {
			t.Fatal(err)
		}
		cc, err := Run(tr, CCNUMA(), cl, tm, th)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := Run(tr, RNUMA(), cl, tm, th)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := Run(tr, MigRep(), cl, tm, th)
		if err != nil {
			t.Fatal(err)
		}
		if rn.ExecCycles >= cc.ExecCycles {
			t.Errorf("%s: R-NUMA (%d) did not beat CC-NUMA (%d)", name, rn.ExecCycles, cc.ExecCycles)
		}
		// The bound is 1.25 rather than the historical 1.15: since the
		// event-time fixes of ISSUE 2, grantReplica serializes concurrent
		// accessors against the in-flight page copy like replicate always
		// did, which honestly charges MigRep the wait time its 77 replica
		// grants impose on lu at this scale (0.92x -> 1.17x CC-NUMA). The
		// qualitative shape — MigRep never loses badly — still holds.
		if float64(mr.ExecCycles) > 1.25*float64(cc.ExecCycles) {
			t.Errorf("%s: MigRep (%d) much worse than CC-NUMA (%d)", name, mr.ExecCycles, cc.ExecCycles)
		}
	}
}

func TestNetworkScalingHurtsCCNUMAMost(t *testing.T) {
	if testing.Short() {
		t.Skip("shape check in -short mode")
	}
	cl := config.DefaultCluster()
	th := config.DefaultThresholds()
	info, err := apps.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := info.Generate(apps.Params{CPUs: 32, Scale: 8})
	if err != nil {
		t.Fatal(err)
	}
	slowNet := config.Default().ScaleNetwork(4)
	ccBase, _ := Run(tr, CCNUMA(), cl, config.Default(), th)
	cc4x, _ := Run(tr, CCNUMA(), cl, slowNet, th)
	rnBase, _ := Run(tr, RNUMA(), cl, config.Default(), th)
	rn4x, _ := Run(tr, RNUMA(), cl, slowNet, th)
	ccGrowth := float64(cc4x.ExecCycles) / float64(ccBase.ExecCycles)
	rnGrowth := float64(rn4x.ExecCycles) / float64(rnBase.ExecCycles)
	if ccGrowth <= 1.0 {
		t.Errorf("4x latency did not slow CC-NUMA (growth %.3f)", ccGrowth)
	}
	if rnGrowth >= ccGrowth {
		t.Errorf("R-NUMA (%.3f) degraded as much as CC-NUMA (%.3f) under latency",
			rnGrowth, ccGrowth)
	}
}
