package dsm

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// SystemInfo describes one registered memory system: a stable name for
// CLIs and harness options, a one-line description, and a constructor
// producing the system's Spec under a given threshold environment
// (some systems derive parameters from the thresholds, e.g. the
// R-NUMA+MigRep relocation delay).
type SystemInfo struct {
	// Name is the stable registry key ("ccnuma", "migrep", ...), used
	// by -system/-systems flags and harness Options.Systems. Lookups
	// are case-insensitive; names register in lower case.
	Name string

	// Description is a one-line summary shown by CLI listings.
	Description string

	// New builds the system's Spec for the given policy thresholds.
	New func(th config.Thresholds) Spec
}

var (
	sysRegistry = map[string]SystemInfo{}
	sysOrder    []string // registration (= presentation) order
)

// Register adds a memory system to the registry. It panics on a
// duplicate or incomplete registration, mirroring internal/apps.
func Register(s SystemInfo) {
	if s.Name == "" || s.New == nil {
		panic("dsm: Register requires a name and a constructor")
	}
	key := strings.ToLower(s.Name)
	if _, dup := sysRegistry[key]; dup {
		panic("dsm: duplicate system " + key)
	}
	s.Name = key
	sysRegistry[key] = s
	sysOrder = append(sysOrder, key)
}

// Lookup resolves a registered system by name (case-insensitive,
// surrounding whitespace ignored so comma-separated flag values may
// contain spaces). An unknown name fails with an error that lists
// every registered system.
func Lookup(name string) (SystemInfo, error) {
	if s, ok := sysRegistry[strings.ToLower(strings.TrimSpace(name))]; ok {
		return s, nil
	}
	return SystemInfo{}, fmt.Errorf("dsm: unknown system %q (registered: %s)",
		name, strings.Join(SystemNames(), ", "))
}

// ResolveSpecs looks up each named system and constructs its Spec
// under the given thresholds — the shared resolution path behind every
// -system/-systems flag and harness override.
func ResolveSpecs(names []string, th config.Thresholds) ([]Spec, error) {
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		info, err := Lookup(n)
		if err != nil {
			return nil, err
		}
		out = append(out, info.New(th))
	}
	return out, nil
}

// Systems returns every registered system in registration order.
func Systems() []SystemInfo {
	out := make([]SystemInfo, 0, len(sysOrder))
	for _, n := range sysOrder {
		out = append(out, sysRegistry[n])
	}
	return out
}

// SystemNames returns the registered system names in registration
// order.
func SystemNames() []string {
	return append([]string(nil), sysOrder...)
}

// The paper's systems (and the extensions grown since) register here in
// presentation order. New systems plug in the same way — through
// Register, without touching the protocol core.
func init() {
	fixed := func(f func() Spec) func(config.Thresholds) Spec {
		return func(config.Thresholds) Spec { return f() }
	}
	Register(SystemInfo{Name: "perfect", Description: "CC-NUMA with an infinite block cache (normalization baseline)", New: fixed(PerfectCCNUMA)})
	Register(SystemInfo{Name: "ccnuma", Description: "base CC-NUMA with a 64-KB 4-way block cache", New: fixed(CCNUMA)})
	Register(SystemInfo{Name: "rep", Description: "CC-NUMA with page replication only", New: fixed(Rep)})
	Register(SystemInfo{Name: "mig", Description: "CC-NUMA with page migration only", New: fixed(Mig)})
	Register(SystemInfo{Name: "migrep", Description: "CC-NUMA with page migration and replication", New: fixed(MigRep)})
	Register(SystemInfo{Name: "rnuma", Description: "R-NUMA with a 2.4-MB S-COMA page cache", New: fixed(RNUMA)})
	Register(SystemInfo{Name: "rnuma-inf", Description: "R-NUMA with an unbounded page cache", New: fixed(RNUMAInf)})
	Register(SystemInfo{Name: "rnuma-half", Description: "R-NUMA with half the base page cache (1.2 MB)", New: fixed(RNUMAHalf)})
	Register(SystemInfo{
		Name:        "rnuma-half-migrep",
		Description: "halved R-NUMA integrated with MigRep, relocation delayed (Section 6.4)",
		New: func(th config.Thresholds) Spec {
			// The delay keeps the paper's ratio to the switching
			// threshold at our scaled inputs; see Fig8.
			return RNUMAHalfMigRep(8 * th.RNUMAThreshold)
		},
	})
	Register(SystemInfo{Name: "scoma", Description: "static S-COMA placement of every remote page on first touch", New: fixed(SCOMA)})
	Register(SystemInfo{Name: "migrep-contend", Description: "MigRep that defers page moves while their route has carried a disproportionate share of fabric traffic", New: fixed(ContentionMigRep)})
}
