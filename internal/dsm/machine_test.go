package dsm

import (
	"testing"

	"repro/internal/config"
	"repro/internal/memory"
	"repro/internal/trace"
)

// mk builds a machine over a small footprint for direct tests.
func mk(t *testing.T, spec Spec) *Machine {
	t.Helper()
	m, err := NewMachine(spec, config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), 1<<20, "test")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// run executes a hand-built trace on a fresh machine of the given spec.
func run(t *testing.T, spec Spec, tr *trace.Trace) *Machine {
	t.Helper()
	m, err := NewMachine(spec, config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(tr); err != nil {
		t.Fatal(err)
	}
	return m
}

// tinyTrace builds a 32-CPU trace where only the listed CPUs have ops.
func tinyTrace(footprint uint64, cpuOps map[int][]trace.Op) *trace.Trace {
	tr := &trace.Trace{Name: "hand", CPUs: make([]trace.Stream, 32), Footprint: footprint}
	for cpu, ops := range cpuOps {
		tr.CPUs[cpu] = trace.StreamOf(ops...)
	}
	return tr
}

func rd(b uint64) trace.Op { return trace.Op{Kind: trace.Read, Arg: b} }
func wr(b uint64) trace.Op { return trace.Op{Kind: trace.Write, Arg: b} }
func gap(b uint64, g uint32) trace.Op {
	return trace.Op{Kind: trace.Read, Arg: b, Gap: g}
}

func TestConstructionAllSpecs(t *testing.T) {
	specs := []Spec{
		PerfectCCNUMA(), CCNUMA(), Rep(), Mig(), MigRep(),
		RNUMA(), RNUMAInf(), RNUMAHalf(), RNUMAHalfMigRep(256),
	}
	for _, s := range specs {
		m := mk(t, s)
		if s.HasBlockCache() && m.bc == nil {
			t.Errorf("%s: missing block cache", s.Name)
		}
		if !s.HasBlockCache() && m.bc != nil {
			t.Errorf("%s: unexpected block cache", s.Name)
		}
		if s.RNUMA && m.pc == nil {
			t.Errorf("%s: missing page cache", s.Name)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("%s: fresh machine fails verification: %v", s.Name, err)
		}
	}
}

func TestDeriveFixedReconstructsTable3(t *testing.T) {
	m := mk(t, CCNUMA())
	tm := config.Default()
	// An uncontended local access must cost exactly the Table 3 local
	// miss latency.
	if got := m.localAccess(0, 0); got != tm.LocalMiss {
		t.Errorf("local access = %d, want %d", got, tm.LocalMiss)
	}
	// An uncontended remote round trip must cost exactly the Table 3
	// remote miss latency.
	m2 := mk(t, CCNUMA())
	if got := m2.roundTrip(0, 1, 0, 0, msgHeaderBytes, msgBlockBytes); got != tm.RemoteMiss {
		t.Errorf("round trip = %d, want %d", got, tm.RemoteMiss)
	}
}

func TestLocalFirstTouchAccessCost(t *testing.T) {
	tr := tinyTrace(1<<16, map[int][]trace.Op{0: {rd(0)}})
	m := run(t, CCNUMA(), tr)
	// First touch homes the page locally: one local miss, 104 cycles.
	if got := m.Stats().ExecCycles; got != config.Default().LocalMiss {
		t.Errorf("exec = %d, want %d", got, config.Default().LocalMiss)
	}
	if m.Stats().Nodes[0].LocalMisses[0] != 1 { // stats.Cold == 0
		t.Error("cold local miss not counted")
	}
}

func TestL1HitIsFree(t *testing.T) {
	tr := tinyTrace(1<<16, map[int][]trace.Op{0: {rd(0), rd(0), rd(0)}})
	m := run(t, CCNUMA(), tr)
	if got := m.Stats().ExecCycles; got != config.Default().LocalMiss {
		t.Errorf("exec = %d, want one miss worth (%d)", got, config.Default().LocalMiss)
	}
}

func TestRemoteReadTiming(t *testing.T) {
	tm := config.Default()
	// CPU 0 (node 0) writes the block, homing the page at node 0; CPU 4
	// (node 1) then reads it: a soft mapping fault plus one remote miss
	// served from the home (whose own caches hold it dirty — a 2-hop
	// fetch).
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {wr(0)},
		4: {gap(0, 1000)}, // gap orders the read after the write
	})
	m := run(t, CCNUMA(), tr)
	want := int64(1000) + tm.SoftTrap + 2*tm.NetworkLatency + tm.RemoteMiss
	if got := m.Stats().ExecCycles; got != want {
		t.Errorf("exec = %d, want %d", got, want)
	}
	n1 := m.Stats().Nodes[1]
	if n1.PageFaults != 1 {
		t.Errorf("page faults = %d, want 1", n1.PageFaults)
	}
	if n1.RemoteMisses[0] != 1 {
		t.Errorf("remote cold misses = %d, want 1", n1.RemoteMisses[0])
	}
}

func TestThreeHopDirtyFetch(t *testing.T) {
	tm := config.Default()
	// CPU 0 homes the page; CPU 4 (node 1) writes the block (taking
	// ownership); CPU 8 (node 2) reads it: 3-hop through the home.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {rd(0)},
		4: {trace.Op{Kind: trace.Write, Arg: 0, Gap: 10000}},
		8: {trace.Op{Kind: trace.Read, Arg: 0, Gap: 30000}},
	})
	m := run(t, CCNUMA(), tr)
	want := int64(30000) + tm.SoftTrap + 2*tm.NetworkLatency +
		tm.RemoteMiss + tm.DirtyRemoteExtra
	if got := m.Stats().ExecCycles; got != want {
		t.Errorf("exec = %d, want %d", got, want)
	}
	// After the read, node 1's copy must be downgraded: the directory
	// shows a clean shared block.
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

func TestBusContentionSerializes(t *testing.T) {
	tm := config.Default()
	// Two CPUs on the same node miss simultaneously to different local
	// blocks: the second is delayed by the bus occupancy.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {rd(0)},
		1: {rd(1000)}, // different block, different page
	})
	m := run(t, CCNUMA(), tr)
	want := tm.LocalMiss + tm.BusOccupancy
	if got := m.Stats().ExecCycles; got != want {
		t.Errorf("exec = %d, want %d (bus-delayed second miss)", got, want)
	}
}

func TestPerfectAbsorbsCapacityMisses(t *testing.T) {
	// A node-1 CPU streams a remote region larger than its L1, twice.
	// With an infinite block cache the second sweep hits the cluster
	// cache; with no block cache (R-NUMA before relocation) it goes
	// remote again.
	blocks := (config.L1Bytes / config.BlockBytes) * 2
	var ops []trace.Op
	for sweep := 0; sweep < 2; sweep++ {
		for b := 0; b < blocks; b++ {
			ops = append(ops, rd(uint64(b)))
		}
	}
	tr := tinyTrace(uint64(blocks*config.BlockBytes), map[int][]trace.Op{
		0: {wr(0)}, // home everything at node 0 (first touch is page-wise below)
		4: append([]trace.Op{{Kind: trace.Pad, Gap: 1 << 20}}, ops...),
	})
	// Home all pages at node 0 first.
	var home []trace.Op
	for b := 0; b < blocks; b += config.BlocksPerPage {
		home = append(home, wr(uint64(b)))
	}
	tr.CPUs[0] = trace.StreamOf(home...)

	perfect := run(t, PerfectCCNUMA(), tr)
	p1 := perfect.Stats().Nodes[1]
	if p1.RemoteMisses[2] != 0 { // stats.CapacityConflict == 2
		t.Errorf("perfect CC-NUMA saw %d capacity misses", p1.RemoteMisses[2])
	}
	if p1.BlockCacheHits == 0 {
		t.Error("perfect CC-NUMA block cache never hit")
	}

	rn := run(t, RNUMAInf(), tr)
	r1 := rn.Stats().Nodes[1]
	if r1.RemoteMisses[2] == 0 {
		t.Error("no-block-cache system shows no capacity refetches")
	}
}

func TestUpgradeCost(t *testing.T) {
	tm := config.Default()
	// Node 1 reads a remote block (shared), then writes it: the write
	// is an upgrade through the home, costing a round trip plus the
	// invalidation ack wave.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {rd(0)},
		4: {gap(0, 10000), wr(0)},
	})
	m := run(t, CCNUMA(), tr)
	n1 := m.Stats().Nodes[1]
	if n1.Upgrades != 1 {
		t.Errorf("upgrades = %d, want 1", n1.Upgrades)
	}
	base := int64(10000) + tm.SoftTrap + 2*tm.NetworkLatency + tm.RemoteMiss
	want := base + tm.RemoteMiss + tm.NetworkLatency
	if got := m.Stats().ExecCycles; got != want {
		t.Errorf("exec = %d, want %d", got, want)
	}
	// Node 0's copy must be gone.
	if m.nodeHolds(0, 0) {
		t.Error("upgrade did not invalidate the home's cached copy")
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

func TestSiblingSharingIsLocal(t *testing.T) {
	// Two CPUs of the same node read the same remote block: the second
	// fill is served on-node.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {wr(0)},
		4: {gap(0, 10000)},
		5: {gap(0, 50000)},
	})
	m := run(t, CCNUMA(), tr)
	n1 := m.Stats().Nodes[1]
	if total := n1.RemoteMisses[0] + n1.RemoteMisses[1] + n1.RemoteMisses[2]; total != 1 {
		t.Errorf("remote misses = %d, want 1 (second fill is local)", total)
	}
	if local := n1.LocalMisses[0] + n1.LocalMisses[1] + n1.LocalMisses[2]; local != 1 {
		t.Errorf("local misses = %d, want 1", local)
	}
}

func TestCoherenceClassification(t *testing.T) {
	// Node 1 reads, node 2 writes (invalidating node 1), node 1 reads
	// again: the refetch classifies as a coherence miss, not capacity.
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {rd(0)},
		4: {gap(0, 10000), gap(0, 90000)},
		8: {trace.Op{Kind: trace.Write, Arg: 0, Gap: 50000}},
	})
	m := run(t, CCNUMA(), tr)
	n1 := m.Stats().Nodes[1]
	if n1.RemoteMisses[1] != 1 { // stats.Coherence == 1
		t.Errorf("coherence misses = %d, want 1 (got cold=%d capconf=%d)",
			n1.RemoteMisses[1], n1.RemoteMisses[0], n1.RemoteMisses[2])
	}
}

func TestCapacityClassification(t *testing.T) {
	// Node 1 streams past its L1 and block cache, then refetches: the
	// misses classify as capacity/conflict.
	bcBlocks := config.BlockCacheBytes / config.BlockBytes
	var ops []trace.Op
	for b := 0; b <= 2*bcBlocks; b++ {
		ops = append(ops, rd(uint64(b)))
	}
	ops = append(ops, rd(0)) // refetch after eviction
	var home []trace.Op
	for b := 0; b <= 2*bcBlocks; b += config.BlocksPerPage {
		home = append(home, wr(uint64(b)))
	}
	tr := tinyTrace(uint64((2*bcBlocks+config.BlocksPerPage)*config.BlockBytes),
		map[int][]trace.Op{
			0: home,
			4: append([]trace.Op{{Kind: trace.Pad, Gap: 1 << 21}}, ops...),
		})
	m := run(t, CCNUMA(), tr)
	n1 := m.Stats().Nodes[1]
	if n1.RemoteMisses[2] == 0 {
		t.Error("no capacity/conflict misses recorded after eviction refetch")
	}
}

func TestVerifyAfterMixedWorkload(t *testing.T) {
	// A write-shared interleaving across nodes must leave the machine
	// consistent for every system.
	var cpuOps = map[int][]trace.Op{}
	for cpu := 0; cpu < 32; cpu += 3 {
		var ops []trace.Op
		for i := 0; i < 200; i++ {
			b := uint64((cpu*37 + i*11) % 512)
			if i%4 == 0 {
				ops = append(ops, wr(b))
			} else {
				ops = append(ops, rd(b))
			}
		}
		cpuOps[cpu] = ops
	}
	for _, spec := range []Spec{PerfectCCNUMA(), CCNUMA(), MigRep(), RNUMA()} {
		m := run(t, spec, tinyTrace(512*config.BlockBytes, cpuOps))
		if err := m.Verify(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestTraceCPUMismatch(t *testing.T) {
	m := mk(t, CCNUMA())
	bad := &trace.Trace{Name: "bad", CPUs: make([]trace.Stream, 4), Footprint: 4096}
	if err := m.Execute(bad); err == nil {
		t.Error("trace with wrong cpu count accepted")
	}
}

var _ = memory.Addr(0)
