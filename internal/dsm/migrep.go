package dsm

import (
	"repro/internal/config"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// cleanPage writes every dirty cached block of page p back to home at
// the operation's current event time, downgrading the owners to Shared.
// It returns the number of blocks flushed, which sizes the gather cost.
func (m *Machine) cleanPage(op *pageOp, p memory.Page) (flushed int) {
	h := m.pt.Entry(p).Home
	b0 := p.FirstBlock()
	for i := 0; i < config.BlocksPerPage; i++ {
		b := b0 + memory.Block(i)
		de := m.dir.Entry(b)
		if de.State != directory.ModifiedState {
			continue
		}
		owner := int(de.Owner)
		if m.downgradeOnNode(owner, b) {
			flushed++
			op.xfer(owner, h, owner, msgBlockBytes)
		}
		m.dir.WriteBack(b, owner)
		m.dir.AddSharer(b, owner)
	}
	return flushed
}

// gatherPage invalidates every cached copy of page p cluster-wide at
// the operation's current event time, flushing dirty blocks home, and
// removes any S-COMA frames holding the page. It returns the number of
// block copies flushed.
func (m *Machine) gatherPage(op *pageOp, p memory.Page) (flushed int) {
	h := m.pt.Entry(p).Home
	b0 := p.FirstBlock()
	for i := 0; i < config.BlocksPerPage; i++ {
		b := b0 + memory.Block(i)
		held := m.dir.InvalidateAll(b)
		for s := 0; s < m.cl.Nodes; s++ {
			if held&(1<<uint(s)) == 0 {
				continue
			}
			present, dirty := m.invalidateOnNode(s, b, true)
			if present {
				flushed++
			}
			if dirty {
				op.xfer(s, h, s, msgBlockBytes)
			}
		}
	}
	if m.pc != nil {
		for s := 0; s < m.cl.Nodes; s++ {
			if m.pc[s].Remove(p) != nil {
				m.pt.Entry(p).Mode[s] = memory.ModeCCNUMA
			}
		}
	}
	return flushed
}

// replicate creates the first read-only replica of page p at node n: the
// home gathers dirty blocks, marks the page replicated, and copies it
// into n's local memory once the gather has completed. Poison bits cover
// the gathered blocks for lazy TLB invalidation.
func (m *Machine) replicate(c *engine.CPU, n int, p memory.Page) {
	e := m.pt.Entry(p)
	op := m.beginPageOp(c, n)
	flushed := m.cleanPage(op, p)
	op.charge(m.tm.GatherCost(flushed))
	op.xfer(e.Home, n, n, int64(config.BlocksPerPage)*msgBlockBytes)
	op.charge(m.tm.CopyCost(config.BlocksPerPage))
	e.Replicated = true
	e.Mode[n] = memory.ModeReplica
	op.count(stats.Replication)
	op.note(telemetry.EvReplicate, p)
	m.home[e.Home].Acquire(op.start, op.elapsed()/4)
	op.finishBusy(p)
}

// grantReplica copies an already-replicated page into node n's local
// memory (a mapped node crossed the read threshold). Like replicate,
// the copy keeps the page busy — concurrent accessors wait it out — and
// occupies the home controller that serves it.
func (m *Machine) grantReplica(c *engine.CPU, n int, p memory.Page) {
	e := m.pt.Entry(p)
	op := m.beginPageOp(c, n)
	op.charge(m.tm.SoftTrap)
	op.xfer(e.Home, n, n, int64(config.BlocksPerPage)*msgBlockBytes)
	op.charge(m.tm.CopyCost(config.BlocksPerPage))
	e.Mode[n] = memory.ModeReplica
	op.count(stats.Replication)
	op.note(telemetry.EvGrant, p)
	m.home[e.Home].Acquire(op.start, op.elapsed()/4)
	op.finishBusy(p)
}

// collapse handles a write protection fault on a replicated page: the
// writer traps, the home locks the page mapper, gathers and invalidates
// all replicas and cached copies, and switches the page back to a single
// read-write copy at home.
func (m *Machine) collapse(c *engine.CPU, n int, p memory.Page) {
	e := m.pt.Entry(p)
	ns := &m.st.Nodes[n]
	// Wait for any page operation already in flight.
	if t := m.pageBusy[p]; c.Clock < t {
		ns.SyncCycles += t - c.Clock
		c.Clock = t
	}
	if !e.Replicated {
		return // another writer collapsed it while we waited
	}
	op := m.beginPageOp(c, n)
	op.charge(m.tm.SoftTrap) // the writer traps before the home acts
	flushed := m.gatherPage(op, p)
	op.charge(m.tm.GatherCost(flushed))
	replicas := 0
	for s := 0; s < m.cl.Nodes; s++ {
		if e.Mode[s] == memory.ModeReplica {
			replicas++
			e.Mode[s] = memory.ModeCCNUMA
			m.mapped[s][p] = false // replica mapping dropped; re-fault
			if s == n {
				m.mapped[s][p] = true // the writer remaps immediately
			}
			// Replica invalidation and ack between home and holder,
			// charged to the writer that forced the collapse.
			op.xfer(e.Home, s, n, msgHeaderBytes)
			op.xfer(s, e.Home, n, msgHeaderBytes)
		}
	}
	e.Replicated = false
	// The write proves the page is not read-only: zero its counters and
	// block re-replication until the next reset interval.
	cnt := m.migCounter(p)
	cnt.reset()
	cnt.noRepl = true
	op.charge(int64(replicas) * m.tm.TLBShootdown)
	op.count(stats.Collapse)
	op.note(telemetry.EvCollapse, p)
	op.finishBusy(p)
}

// migrate moves page p's home to node n: all cached copies are gathered
// with directory poisoning, every node's mapping is shot down lazily,
// and the page data moves to the new home once the gather completes.
func (m *Machine) migrate(c *engine.CPU, n int, p memory.Page) {
	e := m.pt.Entry(p)
	oldHome := e.Home
	op := m.beginPageOp(c, n)
	flushed := m.gatherPage(op, p)
	op.charge(m.tm.GatherCost(flushed))
	m.pt.PoisonAll(p)
	for s := 0; s < m.cl.Nodes; s++ {
		m.mapped[s][p] = false
	}
	m.pt.SetHome(p, n)
	m.mapped[n][p] = true
	m.pt.ClearPoison(p)

	op.xfer(oldHome, n, n, int64(config.BlocksPerPage)*msgBlockBytes)
	op.charge(m.tm.CopyCost(config.BlocksPerPage))
	op.count(stats.Migration)
	op.note(telemetry.EvMigrate, p) // Home already moved: notes the new home
	m.home[oldHome].Acquire(op.start, op.elapsed()/4)
	op.finishBusy(p)
	m.migCounter(p).reset()
}
