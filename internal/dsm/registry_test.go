package dsm

import (
	"strings"
	"testing"

	"repro/internal/config"
)

func TestRegistryCoversPaperSystems(t *testing.T) {
	want := []string{
		"perfect", "ccnuma", "rep", "mig", "migrep",
		"rnuma", "rnuma-inf", "rnuma-half", "rnuma-half-migrep",
		"scoma", "migrep-contend",
	}
	got := SystemNames()
	if len(got) != len(want) {
		t.Fatalf("registered systems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("system[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestLookupResolvesSpecs(t *testing.T) {
	th := config.DefaultThresholds()
	for _, name := range SystemNames() {
		info, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec := info.New(th)
		if spec.Name == "" {
			t.Errorf("%s: spec has no report label", name)
		}
		if _, err := NewMachine(spec, config.DefaultCluster(), config.Default(), th, 1<<20, "test"); err != nil {
			t.Errorf("%s: machine construction failed: %v", name, err)
		}
	}
	// Lookups are case-insensitive, matching the old CLI behavior.
	if _, err := Lookup("MigRep"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}

func TestLookupUnknownListsNames(t *testing.T) {
	_, err := Lookup("nosuch")
	if err == nil {
		t.Fatal("unknown system accepted")
	}
	for _, want := range []string{"nosuch", "ccnuma", "migrep-contend"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, s SystemInfo) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("duplicate", SystemInfo{Name: "ccnuma", New: func(config.Thresholds) Spec { return CCNUMA() }})
	mustPanic("no constructor", SystemInfo{Name: "hollow"})
	mustPanic("no name", SystemInfo{New: func(config.Thresholds) Spec { return CCNUMA() }})
}

// TestRNUMAHalfMigRepDelayTracksThresholds pins the registry
// constructor's Section 6.4 rule: the relocation delay scales with the
// R-NUMA switching threshold.
func TestRNUMAHalfMigRepDelayTracksThresholds(t *testing.T) {
	info, err := Lookup("rnuma-half-migrep")
	if err != nil {
		t.Fatal(err)
	}
	fast := info.New(config.DefaultThresholds())
	if want := 8 * config.DefaultThresholds().RNUMAThreshold; fast.RelocDelayMisses != want {
		t.Errorf("fast delay = %d, want %d", fast.RelocDelayMisses, want)
	}
	slow := info.New(config.SlowThresholds())
	if fast.RelocDelayMisses >= slow.RelocDelayMisses {
		t.Errorf("slow thresholds did not raise the delay: %d vs %d",
			fast.RelocDelayMisses, slow.RelocDelayMisses)
	}
}
