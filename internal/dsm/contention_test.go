package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
)

// mkNet builds a machine on a non-crossbar fabric.
func mkNet(t *testing.T, spec Spec, net config.Network) *Machine {
	t.Helper()
	cl := config.DefaultCluster()
	cl.Net = net
	m, err := NewMachine(spec, cl, config.Default(), config.DefaultThresholds(), 1<<20, "test")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestContentionDefersMovesOnHotRoute drives the contention-aware
// MigRep policy over its replication threshold while the home→requester
// route is artificially the fabric's hot spot: the move must be
// deferred (throttled), and must fire once the rest of the fabric has
// carried comparable traffic.
func TestContentionDefersMovesOnHotRoute(t *testing.T) {
	m := mkNet(t, ContentionMigRep(), config.Network{Topology: config.TopoRing})
	m.pt.FirstTouch(0, 0)
	c4 := m.sched.CPUByID(4)
	pol := m.Policy().(*specPolicy)

	// Saturate the 0<->1 route relative to an otherwise idle ring.
	m.fabric.Deliver(0, 1, 1<<20, 0)

	for i := 0; i < m.th.MigRepThreshold+5; i++ {
		pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	}
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 0 {
		t.Fatalf("replication fired on a saturated route: %d ops", got)
	}
	if pol.Throttled() == 0 {
		t.Fatal("no moves were throttled")
	}

	// Spread comparable traffic over the rest of the ring: the route is
	// no longer the hot spot, so the pending move goes through.
	for s := 1; s < m.cl.Nodes; s++ {
		m.fabric.Deliver(s, (s+1)%m.cl.Nodes, 1<<20, 0)
	}
	pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 1 {
		t.Errorf("replication did not fire after the fabric evened out: %d ops", got)
	}
}

// TestThrottledMoveSurvivesIntervalBoundary pins the gate's contract
// that a deferred move stays pending: when the throttled reference
// lands exactly on the counter reset interval, the counters must NOT
// clear (the stock policy would reset here), so the move re-triggers
// on the next ungated miss instead of re-accumulating a full
// threshold.
func TestThrottledMoveSurvivesIntervalBoundary(t *testing.T) {
	m := mkNet(t, ContentionMigRep(), config.Network{Topology: config.TopoRing})
	m.pt.FirstTouch(0, 0)
	c4 := m.sched.CPUByID(4)
	pol := m.Policy().(*specPolicy)
	m.fabric.Deliver(0, 1, 1<<20, 0) // hot route: the gate defers

	cnt := m.migCounter(0)
	cnt.sinceReset = int32(m.th.MigRepResetInterval) - 1
	cnt.read[1] = int32(m.th.MigRepThreshold) - 1
	pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false) // boundary + threshold, gated
	if pol.Throttled() != 1 {
		t.Fatalf("throttled = %d, want 1", pol.Throttled())
	}
	if cnt.read[1] != int32(m.th.MigRepThreshold) {
		t.Fatalf("deferred move lost its counters: read[1] = %d", cnt.read[1])
	}

	// Even out the fabric: the very next miss performs the pending
	// move, and only then does the interval reset apply.
	for s := 1; s < m.cl.Nodes; s++ {
		m.fabric.Deliver(s, (s+1)%m.cl.Nodes, 1<<20, 0)
	}
	pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 1 {
		t.Errorf("pending move did not fire on the next ungated miss: %d ops", got)
	}
	if cnt.sinceReset != 0 {
		t.Errorf("interval reset did not apply after the move: sinceReset = %d", cnt.sinceReset)
	}
}

// TestContentionPolicyWithoutMovesDegrades pins that clearing the
// Migration/Replication flags on the contention spec degrades to the
// plain derived policy instead of crashing machine construction.
func TestContentionPolicyWithoutMovesDegrades(t *testing.T) {
	s := ContentionMigRep()
	s.Migration, s.Replication = false, false
	m, err := NewMachine(s, config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), 1<<20, "test")
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy().(*specPolicy).Throttled() != 0 {
		t.Error("moveless policy reports throttles")
	}
}

// TestPlainMigRepNeverThrottles pins that the stock policy has no gate:
// the contention behavior exists only in the registered variant.
func TestPlainMigRepNeverThrottles(t *testing.T) {
	m := mkNet(t, MigRep(), config.Network{Topology: config.TopoRing})
	m.pt.FirstTouch(0, 0)
	c4 := m.sched.CPUByID(4)
	m.fabric.Deliver(0, 1, 1<<20, 0) // same hot route as above
	pol := m.Policy().(*specPolicy)
	for i := 0; i < m.th.MigRepThreshold; i++ {
		pol.OnRemoteMiss(c4, 1, 0, stats.Coherence, false)
	}
	if pol.Throttled() != 0 {
		t.Errorf("ungated policy throttled %d moves", pol.Throttled())
	}
	if got := m.st.Nodes[1].PageOps[stats.Replication]; got != 1 {
		t.Errorf("stock replication did not fire: %d ops", got)
	}
}

// TestContentionMigRepRunsCleanUnderAudit executes a whole migratory
// workload on the ring under the contention policy with the event-time
// and conservation audits on: the policy must not break any protocol
// invariant.
func TestContentionMigRepRunsCleanUnderAudit(t *testing.T) {
	tr, err := apps.GenerateSynthetic(apps.SynMigratory, apps.SyntheticParams{CPUs: 32, KBPerNode: 96, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	cl := config.DefaultCluster()
	cl.Net = config.Network{Topology: config.TopoRing}
	sim, err := RunWithOptions(tr, ContentionMigRep(), cl, config.Default(),
		config.DefaultThresholds(), RunOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if sim.ExecCycles == 0 {
		t.Fatal("no execution recorded")
	}
	// The gate can only defer moves, never add them: the contention
	// variant performs at most as many page moves as stock MigRep.
	base, err := RunWithOptions(tr, MigRep(), cl, config.Default(),
		config.DefaultThresholds(), RunOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	moves := func(s *stats.Sim) int64 {
		return s.PageOpsByKind(stats.Migration) + s.PageOpsByKind(stats.Replication)
	}
	if moves(sim) > moves(base) {
		t.Errorf("contention gate increased page moves: %d > %d", moves(sim), moves(base))
	}
}
