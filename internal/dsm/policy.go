package dsm

import (
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/stats"
)

// Policy is the page-relocation decision layer of a simulated system:
// the software (and home-side monitoring firmware) that decides when a
// page migrates, replicates, relocates into the S-COMA page cache, or
// is evicted from it. The Machine owns the mechanism — protocol state,
// counter banks, and the page operations themselves (migrate,
// replicate, grantReplica, relocate, mapSCOMA) — and calls the policy
// at the seams where the paper's systems differ:
//
//   - OnPageMapped: a soft page fault just mapped page p at node n
//     (static-placement policies such as AlwaysSCOMA act here).
//   - OnHomeMiss: home node n missed on its own page p (feeds the
//     home-use counter that weighs against migration).
//   - OnRemoteUpgrade: node n completed a remote write upgrade on page
//     p (an exclusivity request that moved no data).
//   - OnRemoteMiss: node n completed a remote fetch on page p with
//     miss class cls (the main trigger for every relocation policy).
//   - ChooseVictim: the page cache at node n is full; pick, remove and
//     return the frame to evict.
//
// Hooks run after the triggering access has completed and its state
// changes are applied, so a page operation a hook starts may gather the
// very copy that triggered it. Any operation the policy invokes is
// charged to the requesting CPU c, which is the one waiting on the
// page.
//
// Policies are attached per machine via Spec.NewPolicy (nil selects
// the Spec-derived default) and systems are registered by name through
// Register, so a new policy plugs in without touching the fault paths
// in access.go.
type Policy interface {
	// Attach binds the policy to its machine before execution starts.
	Attach(m *Machine)

	OnPageMapped(c *engine.CPU, n int, p memory.Page)
	OnHomeMiss(c *engine.CPU, n int, p memory.Page, write bool)
	OnRemoteUpgrade(c *engine.CPU, n int, p memory.Page)
	OnRemoteMiss(c *engine.CPU, n int, p memory.Page, cls stats.MissClass, write bool)

	// ChooseVictim removes and returns the page-cache frame node n
	// evicts to make room. It is only called when the cache is full.
	ChooseVictim(n int) *cache.PageEntry
}

// specPolicy is the default Policy: the composition of the paper's
// decision layers selected by a Spec's policy flags — home-driven
// migration/replication, reactive R-NUMA relocation (optionally
// delayed), and static S-COMA placement.
type specPolicy struct {
	m     *Machine
	mr    *migRepPolicy // nil unless migration or replication is on
	rn    *rnumaPolicy  // nil unless RNUMA is on
	scoma bool          // static first-touch S-COMA placement
}

// newSpecPolicy derives the default decision layer from a Spec.
func newSpecPolicy(s Spec) Policy {
	p := &specPolicy{scoma: s.AlwaysSCOMA}
	if s.MigRep() {
		p.mr = &migRepPolicy{}
	}
	if s.RNUMA {
		p.rn = &rnumaPolicy{delayMisses: s.RelocDelayMisses}
	}
	return p
}

func (p *specPolicy) Attach(m *Machine) {
	p.m = m
	if p.mr != nil {
		p.mr.m = m
	}
	if p.rn != nil {
		p.rn.m = m
	}
}

func (p *specPolicy) OnPageMapped(c *engine.CPU, n int, pg memory.Page) {
	if p.scoma {
		// Static S-COMA: the page maps straight into the page cache;
		// its blocks fetch on demand.
		p.m.mapSCOMA(c, n, pg)
	}
}

func (p *specPolicy) OnHomeMiss(c *engine.CPU, n int, pg memory.Page, write bool) {
	if p.mr != nil {
		p.mr.poke(c, n, pg, write)
	}
}

func (p *specPolicy) OnRemoteUpgrade(c *engine.CPU, n int, pg memory.Page) {
	if p.mr != nil && p.m.pt.Entry(pg).Home != n {
		p.mr.poke(c, n, pg, true)
	}
}

func (p *specPolicy) OnRemoteMiss(c *engine.CPU, n int, pg memory.Page, cls stats.MissClass, write bool) {
	if p.mr != nil {
		p.mr.poke(c, n, pg, write)
	}
	if p.rn != nil {
		p.rn.onMiss(c, n, pg, cls)
	}
}

func (p *specPolicy) ChooseVictim(n int) *cache.PageEntry {
	return p.m.pc[n].EvictLRU()
}

// Throttled reports how many page moves the policy deferred under a
// moveOK gate (zero for the ungated defaults).
func (p *specPolicy) Throttled() int64 {
	if p.mr == nil {
		return 0
	}
	return p.mr.throttled
}

// migRepPolicy runs the home-side page reference monitoring of Section
// 3.1: it maintains the per-page per-node miss counters, applies the
// periodic reset, and invokes page replication or migration when the
// thresholds fire.
type migRepPolicy struct {
	m *Machine

	// moveOK, when non-nil, gates every page move the thresholds
	// request (migration, replication, replica grant): returning false
	// defers the move, leaving the counters in place so a later miss
	// re-triggers the decision. Contention-aware variants use it to
	// hold bulk page traffic off saturated links.
	moveOK func(home, requester int) bool

	// throttled counts the page moves moveOK deferred.
	throttled int64
}

// poke records one request on page p issued by node n and applies the
// migration/replication thresholds.
func (mr *migRepPolicy) poke(c *engine.CPU, n int, p memory.Page, write bool) {
	m := mr.m
	e := m.pt.Entry(p)
	h := e.Home
	cnt := m.migCounter(p)
	cnt.sinceReset++
	// The reference that lands exactly on the reset interval still
	// reaches the threshold checks below: the counters clear only after
	// it has been considered. (Resetting first swallowed every
	// interval's final reference, so a page whose counter crossed the
	// threshold on that reference never triggered an operation.) When
	// the contention gate defers a move, the reset is skipped too — the
	// pending decision survives to re-trigger on a later miss, and the
	// counters clear on the next ungated reference instead.
	boundary := int(cnt.sinceReset) >= m.th.MigRepResetInterval
	if n == h {
		// The home's own misses weigh against migrating the page away
		// but trigger nothing themselves.
		cnt.homeUse++
		if boundary {
			cnt.reset()
		}
		return
	}
	if write {
		cnt.write[n]++
	} else {
		cnt.read[n]++
	}
	thr := int32(m.th.MigRepThreshold)

	// Replication: the page is read-only in this interval and the
	// requester reads it heavily. Pages recently collapsed by a write
	// stay ineligible until their counters reset.
	if m.spec.Replication && !cnt.anyWrites() && !cnt.noRepl &&
		cnt.read[n] >= thr && e.Mode[n] != memory.ModeReplica {
		if mr.moveOK != nil && !mr.moveOK(h, n) {
			mr.throttled++
			return // keep the counters: the move is pending, not denied
		}
		if e.Replicated {
			m.grantReplica(c, n, p)
		} else {
			m.replicate(c, n, p)
		}
		if boundary {
			cnt.reset()
		}
		return
	}

	// Migration: the requester misses on the page at least a threshold
	// more than the home uses it. Remote references accrue to the
	// read/write banks, the home's own references only ever to homeUse,
	// so homeUse is the whole home-side weight of the comparison.
	if m.spec.Migration && !e.Replicated &&
		cnt.total(n) >= cnt.homeUse+thr {
		if mr.moveOK != nil && !mr.moveOK(h, n) {
			mr.throttled++
			return // keep the counters: the move is pending, not denied
		}
		m.migrate(c, n, p)
	}
	if boundary {
		cnt.reset()
	}
}

// rnumaPolicy runs the cacher-side R-NUMA selection of Section 3.2:
// capacity/conflict refetches of a remote page bump its refetch
// counter, and crossing the threshold relocates the page into the
// node's S-COMA page cache — unless a relocation delay gives
// migration/replication first shot at the page (Section 6.4).
type rnumaPolicy struct {
	m *Machine

	// delayMisses, when non-zero, forbids relocating a page until it
	// has accumulated this many remote misses machine-wide.
	delayMisses int
}

func (rn *rnumaPolicy) onMiss(c *engine.CPU, n int, p memory.Page, cls stats.MissClass) {
	m := rn.m
	if cls != stats.CapacityConflict || m.pt.Entry(p).Home == n || m.pc[n].Entry(p) != nil {
		return
	}
	m.ref[n][p]++
	if int(m.ref[n][p]) < m.th.RNUMAThreshold {
		return
	}
	if rn.delayMisses > 0 && m.pageMissTotal[p] < int64(rn.delayMisses) {
		return
	}
	m.relocate(c, n, p)
}
