package dsm

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// telemetryWorkloads are the (trace, spec, fabric) combinations the
// telemetry integration tests run: together they exercise every hook —
// migrations, replications/grants/collapses, relocations and frame
// flushes, soft-fault copies, lock traffic — on both the crossbar and a
// multi-hop fabric.
func telemetryWorkloads(t *testing.T) []struct {
	name string
	tr   *trace.Trace
	spec Spec
	net  config.Network
} {
	t.Helper()
	traces := map[string]*trace.Trace{}
	gen := func(name string) *trace.Trace {
		if tr, ok := traces[name]; ok {
			return tr
		}
		app, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := app.Generate(apps.Params{CPUs: 32, Scale: 8})
		if err != nil {
			t.Fatal(err)
		}
		traces[name] = tr
		return tr
	}
	return []struct {
		name string
		tr   *trace.Trace
		spec Spec
		net  config.Network
	}{
		{"migratory/migrep", gen("migratory"), MigRep(), config.Network{}},
		{"ocean/migrep", gen("ocean"), MigRep(), config.Network{}},
		{"ocean/rnuma", gen("ocean"), RNUMA(), config.Network{}},
		{"lu/scoma", gen("lu"), SCOMA(), config.Network{}},
		{"migratory/migrep@ring", gen("migratory"), MigRep(), config.Network{Topology: config.TopoRing}},
		{"radix/rnuma", gen("radix"), RNUMA(), config.Network{}},
	}
}

// runWithTelemetry executes a trace with a collector attached and
// returns both.
func runWithTelemetry(t *testing.T, tr *trace.Trace, spec Spec, net config.Network, timeline bool) (*stats.Sim, *telemetry.Collector) {
	t.Helper()
	cl := config.DefaultCluster()
	cl.Net = net
	col := telemetry.New(telemetry.Config{Window: 1 << 16, Timeline: timeline})
	sim, err := RunWithOptions(tr, spec, cl, config.Default(), config.DefaultThresholds(),
		RunOptions{Telemetry: col})
	if err != nil {
		t.Fatal(err)
	}
	return sim, col
}

// TestTelemetryConservation pins the reconciliation invariant the
// telemetry package promises: every windowed series sums exactly to its
// end-of-run aggregate counter — per-link fabric bytes against
// stats.NetStats, per-node traffic against stats.Node.TrafficBytes,
// page-op and miss counts against the stats breakdowns, and dispatches
// against the trace's op count.
func TestTelemetryConservation(t *testing.T) {
	for _, w := range telemetryWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			sim, col := runWithTelemetry(t, w.tr, w.spec, w.net, false)

			// Per-link windowed bytes == NetStats link counters, link by link.
			if got, want := col.Links(), len(sim.Net.Links); got != want {
				t.Fatalf("collector tracks %d links, fabric has %d", got, want)
			}
			for id, l := range sim.Net.Links {
				if got := col.LinkTotal(id); got != l.Bytes {
					t.Errorf("link %s: windowed total %d != counter %d", l.Name, got, l.Bytes)
				}
				if name := col.LinkName(id); name != l.Name {
					t.Errorf("link %d name %q != %q", id, name, l.Name)
				}
			}

			// Per-node windowed traffic == TrafficBytes, node by node.
			for n := range sim.Nodes {
				if got, want := col.NodeTotal(n), sim.Nodes[n].TrafficBytes; got != want {
					t.Errorf("node %d: windowed traffic %d != TrafficBytes %d", n, got, want)
				}
			}

			// Page-op and miss windowed counts == the stats breakdowns.
			for k := 0; k < stats.NumPageOps; k++ {
				var want int64
				for n := range sim.Nodes {
					want += sim.Nodes[n].PageOps[k]
				}
				if got := col.PageOpTotal(stats.PageOp(k)); got != want {
					t.Errorf("pageop %s: windowed total %d != stats %d", stats.PageOp(k), got, want)
				}
			}
			for cl := 0; cl < stats.NumMissClasses; cl++ {
				var wantR, wantL int64
				for n := range sim.Nodes {
					wantR += sim.Nodes[n].RemoteMisses[cl]
					wantL += sim.Nodes[n].LocalMisses[cl]
				}
				if got := col.MissTotal(stats.MissClass(cl), true); got != wantR {
					t.Errorf("remote %s: windowed total %d != stats %d", stats.MissClass(cl), got, wantR)
				}
				if got := col.MissTotal(stats.MissClass(cl), false); got != wantL {
					t.Errorf("local %s: windowed total %d != stats %d", stats.MissClass(cl), got, wantL)
				}
			}

			// One dispatch per trace op.
			if got, want := col.DispatchTotal(), int64(w.tr.Ops()); got != want {
				t.Errorf("dispatches = %d, want %d trace ops", got, want)
			}
		})
	}
}

// TestTelemetryObservational pins the zero-interference guarantee: a
// run with a collector attached (timeline included) produces
// byte-identical statistics to the same run without one.
func TestTelemetryObservational(t *testing.T) {
	for _, w := range telemetryWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			cl := config.DefaultCluster()
			cl.Net = w.net
			plain, err := RunWithOptions(w.tr, w.spec, cl, config.Default(), config.DefaultThresholds(), RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			instrumented, _ := runWithTelemetry(t, w.tr, w.spec, w.net, true)
			if !reflect.DeepEqual(plain, instrumented) {
				t.Errorf("telemetry changed the simulation: exec %d vs %d, traffic %d vs %d",
					plain.ExecCycles, instrumented.ExecCycles,
					plain.TotalTrafficBytes(), instrumented.TotalTrafficBytes())
			}
		})
	}
}

// TestTimelineSerializingSpansDisjoint pins the page-busy invariant on
// the event timeline: operations that hold the page-busy horizon
// (replicate, grant, collapse, migrate) cannot overlap in simulated
// time on the same page — each later accessor waits the horizon out
// before a new operation can begin.
func TestTimelineSerializingSpansDisjoint(t *testing.T) {
	sawSerializing := false
	for _, w := range telemetryWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			_, col := runWithTelemetry(t, w.tr, w.spec, w.net, true)
			byPage := map[uint64][]telemetry.Event{}
			for _, e := range col.Events() {
				if e.End < e.Start {
					t.Errorf("%s on page %d: end %d before start %d", e.Kind, e.Page, e.End, e.Start)
				}
				if e.Kind.Serializing() {
					byPage[e.Page] = append(byPage[e.Page], e)
				}
			}
			for page, evs := range byPage {
				sawSerializing = true
				sort.Slice(evs, func(i, j int) bool {
					if evs[i].Start != evs[j].Start {
						return evs[i].Start < evs[j].Start
					}
					return evs[i].End < evs[j].End
				})
				for i := 1; i < len(evs); i++ {
					if evs[i].Start < evs[i-1].End {
						t.Errorf("page %d: %s [%d,%d] overlaps %s [%d,%d]",
							page, evs[i].Kind, evs[i].Start, evs[i].End,
							evs[i-1].Kind, evs[i-1].Start, evs[i-1].End)
					}
				}
			}
		})
	}
	if !sawSerializing {
		t.Error("no serializing events across all workloads; test exercises nothing")
	}
}

// TestTimelineEventsMirrorPageOpCounts ties the timeline to the
// aggregate page-op counters: with the timeline on, the events of each
// kind must match the corresponding stats.PageOp totals exactly.
func TestTimelineEventsMirrorPageOpCounts(t *testing.T) {
	for _, w := range telemetryWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			sim, col := runWithTelemetry(t, w.tr, w.spec, w.net, true)
			kinds := map[telemetry.EventKind]int64{}
			for _, e := range col.Events() {
				kinds[e.Kind]++
			}
			var ops [stats.NumPageOps]int64
			for n := range sim.Nodes {
				for k := 0; k < stats.NumPageOps; k++ {
					ops[k] += sim.Nodes[n].PageOps[k]
				}
			}
			// Replication counts first replicas, grants, and fault copies.
			if got, want := kinds[telemetry.EvReplicate]+kinds[telemetry.EvGrant]+kinds[telemetry.EvFaultCopy],
				ops[stats.Replication]; got != want {
				t.Errorf("replicate+grant+fault-copy events = %d, stats replications = %d", got, want)
			}
			if got, want := kinds[telemetry.EvMigrate], ops[stats.Migration]; got != want {
				t.Errorf("migrate events = %d, stats migrations = %d", got, want)
			}
			if got, want := kinds[telemetry.EvCollapse], ops[stats.Collapse]; got != want {
				t.Errorf("collapse events = %d, stats collapses = %d", got, want)
			}
			if got, want := kinds[telemetry.EvRelocate], ops[stats.Relocation]; got != want {
				t.Errorf("relocate events = %d, stats relocations = %d", got, want)
			}
			if got, want := kinds[telemetry.EvFrameFlush], ops[stats.Replacement]; got != want {
				t.Errorf("frame-flush events = %d, stats replacements = %d", got, want)
			}
		})
	}
}

// TestSchedulerDispatchCounter pins the engine-level dispatch counter:
// one scheduling decision per trace op plus the retire sweeps.
func TestSchedulerDispatchCounter(t *testing.T) {
	tr := tinyTrace(1<<16, map[int][]trace.Op{
		0: {rd(0), rd(1), wr(2)},
		4: {rd(3)},
	})
	m := run(t, CCNUMA(), tr)
	// Every trace op is dispatched once, and each of the 32 CPUs is
	// dispatched once more to be retired.
	want := int64(tr.Ops()) + 32
	if got := m.sched.Dispatches(); got != want {
		t.Errorf("dispatches = %d, want %d", got, want)
	}
}
