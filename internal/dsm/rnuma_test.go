package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/memory"
	"repro/internal/stats"
)

func TestRelocationFiresOnStreaming(t *testing.T) {
	sim := runSynthetic(t, RNUMA(), apps.SynStream, 256, 8)
	if sim.PageOpsByKind(stats.Relocation) == 0 {
		t.Fatal("streaming refetches triggered no relocations")
	}
	if sim.PageOpsByKind(stats.Replacement) != 0 {
		t.Error("page cache replaced pages although the footprint fits")
	}
	var hits int64
	for i := range sim.Nodes {
		hits += sim.Nodes[i].PageCacheHits
	}
	if hits == 0 {
		t.Error("no page cache hits after relocation")
	}
}

func TestRelocationBeatsCCNUMAOnStreaming(t *testing.T) {
	// The footprint exceeds the block cache but fits the page cache:
	// the regime where R-NUMA wins.
	rn := runSynthetic(t, RNUMA(), apps.SynStream, 256, 8)
	cc := runSynthetic(t, CCNUMA(), apps.SynStream, 256, 8)
	if rn.ExecCycles >= cc.ExecCycles {
		t.Errorf("R-NUMA (%d) not faster than CC-NUMA (%d) on streaming reuse",
			rn.ExecCycles, cc.ExecCycles)
	}
	if rn.RemoteMissesByClass(stats.CapacityConflict) >= cc.RemoteMissesByClass(stats.CapacityConflict) {
		t.Errorf("R-NUMA capacity misses %d not below CC-NUMA %d",
			rn.RemoteMissesByClass(stats.CapacityConflict),
			cc.RemoteMissesByClass(stats.CapacityConflict))
	}
}

func TestPageCacheReplacementUnderPressure(t *testing.T) {
	// SynThrash streams a region four times the per-node quota; with a
	// small page cache the frames must recycle.
	spec := RNUMA()
	spec.PageCacheBytes = 64 * config.PageBytes
	sim := runSynthetic(t, spec, apps.SynThrash, 256, 4)
	if sim.PageOpsByKind(stats.Replacement) == 0 {
		t.Error("full page cache never replaced a page")
	}
	// The unbounded variant must not replace and must run at least as
	// fast.
	inf := runSynthetic(t, RNUMAInf(), apps.SynThrash, 256, 4)
	if inf.PageOpsByKind(stats.Replacement) != 0 {
		t.Error("infinite page cache replaced pages")
	}
	if inf.ExecCycles > sim.ExecCycles {
		t.Errorf("infinite page cache slower than finite: %d > %d",
			inf.ExecCycles, sim.ExecCycles)
	}
}

func TestRefetchCounterOnlyCountsCapacityMisses(t *testing.T) {
	m := mk(t, RNUMA())
	// Home page 0 at node 0; node 1 reads a block, is invalidated by a
	// node-2 write, and reads again: a coherence refetch that must NOT
	// advance the relocation counter.
	c4, c8 := m.sched.CPUByID(4), m.sched.CPUByID(8)
	m.pt.FirstTouch(0, 0)
	m.mapped[0][0], m.mapped[1][0], m.mapped[2][0] = true, true, true
	m.pt.Entry(0).Mode[1] = memory.ModeCCNUMA
	m.pt.Entry(0).Mode[2] = memory.ModeCCNUMA

	m.access(c4, 0, false)
	m.access(c8, 0, true) // invalidates node 1
	m.access(c4, 0, false)
	if got := m.RefetchCounter(1, 0); got != 0 {
		t.Errorf("refetch counter = %d after coherence miss, want 0", got)
	}

	// Now evict by conflict: same L1 set, different block.
	sets := config.L1Bytes / config.BlockBytes
	conflict := memory.Block(sets) // maps to set 0 like block 0
	// keep it on a node-0-homed page too
	m.pt.FirstTouch(conflict.Page(), 0)
	m.access(c4, conflict, false)
	m.access(c4, 0, false) // capacity refetch
	if got := m.RefetchCounter(1, 0); got != 1 {
		t.Errorf("refetch counter = %d after capacity refetch, want 1", got)
	}
}

func TestRelocationDelayBlocksEarlySwitch(t *testing.T) {
	delayed := RNUMAHalfMigRep(1 << 30) // effectively infinite delay
	sim := runSynthetic(t, delayed, apps.SynStream, 256, 8)
	if got := sim.PageOpsByKind(stats.Relocation); got != 0 {
		t.Errorf("delayed system relocated %d pages", got)
	}
	undelayed := RNUMAHalf()
	sim2 := runSynthetic(t, undelayed, apps.SynStream, 256, 8)
	if sim2.PageOpsByKind(stats.Relocation) == 0 {
		t.Error("undelayed system did not relocate")
	}
}

func TestSCOMAWritesStayLocal(t *testing.T) {
	m := mk(t, RNUMA())
	c4 := m.sched.CPUByID(4)
	m.pt.FirstTouch(0, 0)
	m.mapped[0][0], m.mapped[1][0] = true, true
	m.pt.Entry(0).Mode[1] = memory.ModeCCNUMA
	// Force a relocation of page 0 at node 1.
	m.ref[1][0] = int32(m.th.RNUMAThreshold)
	m.relocate(c4, 1, 0)
	if m.PageMode(1, 0) != memory.ModeSCOMA {
		t.Fatalf("page mode = %v, want scoma", m.PageMode(1, 0))
	}
	// A write fills the frame; a later read must be a page-cache hit
	// with no new remote traffic.
	m.access(c4, 0, true)
	before := m.st.Nodes[1].RemoteMisses
	// evict from L1 via a conflicting block on another page homed at 1
	sets := config.L1Bytes / config.BlockBytes
	conflict := memory.Block(sets)
	m.pt.FirstTouch(conflict.Page(), 1)
	m.access(c4, conflict, false)
	m.access(c4, 0, false)
	after := m.st.Nodes[1].RemoteMisses
	if before != after {
		t.Errorf("S-COMA refetch went remote: %v -> %v", before, after)
	}
	if m.st.Nodes[1].PageCacheHits == 0 {
		t.Error("no page cache hit recorded")
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

func TestFrameFlushWritesDirtyHome(t *testing.T) {
	m := mk(t, RNUMA())
	c4 := m.sched.CPUByID(4)
	m.pt.FirstTouch(0, 0)
	m.mapped[0][0], m.mapped[1][0] = true, true
	m.pt.Entry(0).Mode[1] = memory.ModeCCNUMA
	m.ref[1][0] = int32(m.th.RNUMAThreshold)
	m.relocate(c4, 1, 0)
	m.access(c4, 0, true) // dirty block in the frame
	fr := m.pc[1].Entry(0)
	if fr == nil || fr.Dirty == 0 {
		t.Fatalf("frame not dirty after write: %+v", fr)
	}
	flushed := m.flushFrame(m.beginPageOp(c4, 1), 1, fr)
	if flushed == 0 {
		t.Error("flush found no valid blocks")
	}
	if fr.Valid != 0 || fr.Dirty != 0 {
		t.Error("frame tags survive flush")
	}
	if m.nodeHolds(1, 0) {
		t.Error("node still holds the block after frame flush")
	}
	if err := m.dir.Check(); err != nil {
		t.Error(err)
	}
}

func TestRNUMAInfNeverReplaces(t *testing.T) {
	sim := runSynthetic(t, RNUMAInf(), apps.SynThrash, 512, 3)
	if sim.PageOpsByKind(stats.Replacement) != 0 {
		t.Error("R-NUMA-Inf replaced pages")
	}
}

func TestHalfCacheReplacesMoreThanFull(t *testing.T) {
	full := runSynthetic(t, RNUMA(), apps.SynThrash, 768, 4)
	half := runSynthetic(t, RNUMAHalf(), apps.SynThrash, 768, 4)
	if half.PageOpsByKind(stats.Replacement) < full.PageOpsByKind(stats.Replacement) {
		t.Errorf("half cache replaced less (%d) than full cache (%d)",
			half.PageOpsByKind(stats.Replacement), full.PageOpsByKind(stats.Replacement))
	}
}

// TestFrameEvictionFlushesAtEventTime pins the ISSUE 2 flushFrame fix:
// a dirty S-COMA frame evicted at a late simulated time must charge the
// NI, the fabric and the home controller at the current clock, not at
// time 0 (which used to inject the writeback traffic into the simulated
// past, invisible to any time-windowed view and free of queuing). It
// also pins the companion eviction fix: the victim's mapping clears, so
// the node re-faults on its next touch exactly like the static S-COMA
// eviction path.
func TestFrameEvictionFlushesAtEventTime(t *testing.T) {
	spec := RNUMA()
	spec.PageCacheBytes = config.PageBytes // one frame: next relocation evicts
	m := mk(t, spec)
	c4 := m.sched.CPUByID(4)
	m.pt.FirstTouch(0, 0)
	m.pt.FirstTouch(1, 0)
	m.mapped[0][0], m.mapped[0][1] = true, true
	m.mapped[1][0], m.mapped[1][1] = true, true
	m.pt.Entry(0).Mode[1] = memory.ModeCCNUMA
	m.pt.Entry(1).Mode[1] = memory.ModeCCNUMA
	m.EnableAudit()

	// Relocate page 0 into node 1's single frame and dirty it.
	m.ref[1][0] = int32(m.th.RNUMAThreshold)
	m.relocate(c4, 1, 0)
	if m.PageMode(1, 0) != memory.ModeSCOMA {
		t.Fatalf("setup: page 0 mode = %v, want scoma", m.PageMode(1, 0))
	}
	m.access(c4, 0, true)
	if fr := m.pc[1].Entry(0); fr == nil || fr.Dirty == 0 {
		t.Fatalf("setup: frame not dirty")
	}

	// Jump far forward and relocate page 1: the eviction's dirty flush
	// must be injected at the current event time, not at 0.
	const late = int64(1) << 20
	c4.Clock = late
	m.fabric.SetAuditFloor(late)
	m.ref[1][1] = int32(m.th.RNUMAThreshold)
	m.relocate(c4, 1, 1)

	if got := m.fabric.Violations(); len(got) != 0 {
		t.Errorf("flush injected in the simulated past: %v", got)
	}
	if got := m.AuditViolations(); len(got) != 0 {
		t.Errorf("machine audit violations: %v", got)
	}
	// The NI carried the writeback at the eviction's event time.
	if got := m.ni[1].Peek(); got <= late {
		t.Errorf("NI free at %d, want occupied past the eviction time %d", got, late)
	}
	// The remapped victim faults on its next touch.
	if m.Mapped(1, 0) {
		t.Error("victim page still mapped after frame eviction")
	}
	if m.PageMode(1, 0) != memory.ModeCCNUMA {
		t.Errorf("victim mode = %v, want ccnuma", m.PageMode(1, 0))
	}
	faults := m.st.Nodes[1].PageFaults
	m.access(c4, 0, false)
	if got := m.st.Nodes[1].PageFaults; got != faults+1 {
		t.Errorf("page faults = %d after touching evicted page, want %d", got, faults+1)
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

// TestStaticAndReactiveEvictionAgree checks the two eviction paths
// (reactive relocation and static S-COMA placement) share one helper:
// both clear the victim's mapping, downgrade it to CC-NUMA mode, and
// count a replacement.
func TestStaticAndReactiveEvictionAgree(t *testing.T) {
	for _, static := range []bool{false, true} {
		spec := RNUMA()
		spec.PageCacheBytes = config.PageBytes
		spec.AlwaysSCOMA = static
		m := mk(t, spec)
		c4 := m.sched.CPUByID(4)
		m.pt.FirstTouch(0, 0)
		m.pt.FirstTouch(1, 0)
		m.mapped[0][0], m.mapped[0][1] = true, true
		m.mapped[1][0], m.mapped[1][1] = true, true
		m.pt.Entry(0).Mode[1] = memory.ModeCCNUMA
		m.pt.Entry(1).Mode[1] = memory.ModeCCNUMA
		if static {
			m.mapSCOMA(c4, 1, 0)
			m.mapSCOMA(c4, 1, 1) // evicts page 0
		} else {
			m.ref[1][0] = int32(m.th.RNUMAThreshold)
			m.relocate(c4, 1, 0)
			m.ref[1][1] = int32(m.th.RNUMAThreshold)
			m.relocate(c4, 1, 1) // evicts page 0
		}
		if m.Mapped(1, 0) {
			t.Errorf("static=%v: victim still mapped after eviction", static)
		}
		if m.PageMode(1, 0) != memory.ModeCCNUMA {
			t.Errorf("static=%v: victim mode = %v, want ccnuma", static, m.PageMode(1, 0))
		}
		if got := m.st.Nodes[1].PageOps[stats.Replacement]; got != 1 {
			t.Errorf("static=%v: replacements = %d, want 1", static, got)
		}
	}
}
