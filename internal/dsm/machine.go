package dsm

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/engine/pdes"
	"repro/internal/interconnect"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Message sizes in bytes for traffic accounting.
const (
	msgHeaderBytes = 8
	msgBlockBytes  = msgHeaderBytes + config.BlockBytes
)

// node flag bits, per node per block.
const (
	flagEverCached  = 1 << 0 // node has cached the block at least once
	flagDepartInval = 1 << 1 // last departure was an invalidation
)

// mrCounter is the per-page home-side migration/replication counter bank.
type mrCounter struct {
	read  []int32
	write []int32
	// homeUse counts the home node's own references to the page (its
	// local misses, observed by the memory controller); it weighs
	// against migration but never against replication, since it
	// reflects no remote traffic.
	homeUse    int32
	sinceReset int32
	// noRepl blocks replication until the next counter reset: set when
	// a write collapse proves the page is not read-only, it prevents
	// replicate/collapse thrashing on data with phased read/write
	// behaviour.
	noRepl bool
}

// Machine is one simulated DSM cluster executing one trace.
type Machine struct {
	spec Spec
	cl   config.Cluster
	tm   config.Timing
	th   config.Thresholds

	// pol is the decision layer (see Policy): the machine calls it at
	// the fault-path seams, and it calls back into the machine's page
	// operation mechanisms.
	pol Policy

	numBlocks uint64
	numPages  uint64

	sched   *engine.Scheduler
	barrier *engine.Barrier
	locks   map[uint64]*engine.Lock
	lockOwn map[uint64]int // last node to hold the lock

	// cpuNode maps CPU id to node, replacing a division on every
	// dispatched op.
	cpuNode []int32

	bus  []*engine.Resource // per node memory bus
	ni   []*engine.Resource // per node network interface
	home []*engine.Resource // per node home protocol controller

	// fabric is the interconnect model: every protocol message is
	// routed over it, charging per-link byte counters and (on finite-
	// bandwidth fabrics) per-link occupancy. The default ideal crossbar
	// reproduces the flat network-latency model exactly.
	fabric *interconnect.Fabric

	pt  *memory.PageTable
	dir *directory.Directory

	l1 []*cache.L1         // per CPU
	bc []*cache.BlockCache // per node, nil if absent
	pc []*cache.PageCache  // per node, nil if absent

	l1count [][]uint8 // [node][block] count of on-node L1 copies
	flags   [][]uint8 // [node][block] classification flags
	mapped  [][]bool  // [node][page] node has a valid mapping

	pageBusy       []int64 // [page] time until which a page op blocks access
	parallelPlaced []bool  // [page] first-touch placement consumed post-Phase
	pageMissTotal  []int64 // [page] lifetime remote misses (for RelocDelay)

	mig []*mrCounter // [page] home-side counters, lazily built
	ref [][]int32    // [node][page] R-NUMA refetch counters

	// fixed latency components derived from the timing model; see
	// deriveFixed.
	localFixed  int64
	remoteFixed int64

	phaseDone bool

	// opScratch is the reusable page-operation carrier handed out by
	// beginPageOp: page operations never overlap (each runs to
	// completion inside the access that triggered it), so one scratch
	// object per machine removes the per-operation allocation.
	opScratch pageOp

	// Audit mode (see EnableAudit): the machine checks event-time
	// discipline as it runs — scheduler dispatch order, the page-busy
	// horizon, and (through the fabric's own audit mode) message
	// injection times — and accumulates violations for the end-of-run
	// internal/audit checks instead of panicking mid-simulation.
	auditing     bool
	lastDispatch int64
	violations   stats.ViolationLog

	// tel, when non-nil, receives time-resolved telemetry (windowed
	// series and the page-operation timeline) as the trace executes.
	// Telemetry is observational: it changes no simulated behaviour,
	// and the nil default costs one nil check per hook.
	tel *telemetry.Collector

	// shex and shards are non-nil only while ExecuteSharded runs: the
	// shard partition (per-shard schedulers over node-aligned CPU
	// ranges) and the scan/streak state of the sharded engine. The
	// sequential path never consults them beyond one nil check in
	// schedFor/unpark.
	shex   *shardExec
	shards []*machineShard

	// pdesStats records the last sharded run's coordinator counters
	// (rounds, parallel commits, serial steps); zero after a sequential
	// run.
	pdesStats pdes.Stats

	st *stats.Sim
}

// NewMachine builds a machine for a trace with the given shared
// footprint.
func NewMachine(spec Spec, cl config.Cluster, tm config.Timing, th config.Thresholds, footprintBytes uint64, app string) (*Machine, error) {
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	numPages := (footprintBytes + config.PageBytes - 1) / config.PageBytes
	if numPages == 0 {
		numPages = 1
	}
	numBlocks := numPages * config.BlocksPerPage

	m := &Machine{
		spec:      spec,
		cl:        cl,
		tm:        tm,
		th:        th,
		numBlocks: numBlocks,
		numPages:  numPages,
		locks:     make(map[uint64]*engine.Lock),
		lockOwn:   make(map[uint64]int),
		pt:        memory.NewPageTable(cl.Nodes),
		dir:       directory.New(numBlocks, cl.Nodes),
		st:        stats.New(spec.Name, app, cl.Nodes),
	}
	m.pt.Presize(int(numPages))
	m.sched = engine.NewScheduler(cl.TotalCPUs())
	m.barrier = engine.NewBarrier(cl.TotalCPUs(), tm.LocalMiss)
	m.cpuNode = make([]int32, cl.TotalCPUs())
	for i := range m.cpuNode {
		m.cpuNode[i] = int32(i / cl.CPUsPerNode)
	}
	fab, err := interconnect.New(cl.Net, cl.Nodes, tm)
	if err != nil {
		return nil, err
	}
	m.fabric = fab

	m.bus = engine.NewResourceBank("bus", cl.Nodes)
	m.ni = engine.NewResourceBank("ni", cl.Nodes)
	m.home = engine.NewResourceBank("home", cl.Nodes)
	m.l1count = make([][]uint8, cl.Nodes)
	m.flags = make([][]uint8, cl.Nodes)
	m.mapped = make([][]bool, cl.Nodes)
	m.ref = make([][]int32, cl.Nodes)
	// The per-node state tables share one backing array per table, so a
	// machine costs a handful of allocations instead of several per node.
	nb, np := int(numBlocks), int(numPages)
	l1flat := make([]uint8, cl.Nodes*nb)
	flagflat := make([]uint8, cl.Nodes*nb)
	mapflat := make([]bool, cl.Nodes*np)
	var refflat []int32
	if spec.RNUMA {
		refflat = make([]int32, cl.Nodes*np)
	}
	for n := 0; n < cl.Nodes; n++ {
		m.l1count[n] = l1flat[n*nb : (n+1)*nb : (n+1)*nb]
		m.flags[n] = flagflat[n*nb : (n+1)*nb : (n+1)*nb]
		m.mapped[n] = mapflat[n*np : (n+1)*np : (n+1)*np]
		if spec.RNUMA {
			m.ref[n] = refflat[n*np : (n+1)*np : (n+1)*np]
		}
	}
	m.pageBusy = make([]int64, numPages)
	m.parallelPlaced = make([]bool, numPages)
	m.pageMissTotal = make([]int64, numPages)
	if spec.MigRep() {
		m.mig = make([]*mrCounter, numPages)
	}

	m.l1 = make([]*cache.L1, cl.TotalCPUs())
	for i := range m.l1 {
		m.l1[i] = cache.NewL1(config.L1Bytes)
	}
	if spec.InfiniteBlockCache {
		m.bc = make([]*cache.BlockCache, cl.Nodes)
		for n := range m.bc {
			m.bc[n] = cache.NewInfiniteBlockCacheSized(nb)
		}
	} else if spec.BlockCacheBytes > 0 {
		m.bc = make([]*cache.BlockCache, cl.Nodes)
		for n := range m.bc {
			m.bc[n] = cache.NewBlockCache(spec.BlockCacheBytes, config.BlockCacheWays)
		}
	}
	if spec.RNUMA {
		m.pc = make([]*cache.PageCache, cl.Nodes)
		for n := range m.pc {
			m.pc[n] = cache.NewPageCacheSized(spec.PageCacheBytes, np)
		}
	}
	newPolicy := spec.NewPolicy
	if newPolicy == nil {
		newPolicy = newSpecPolicy
	}
	m.pol = newPolicy(spec)
	m.pol.Attach(m)
	m.deriveFixed()
	return m, nil
}

// Policy returns the machine's attached decision layer.
func (m *Machine) Policy() Policy { return m.pol }

// deriveFixed splits the Table 3 end-to-end latencies into the fixed
// component charged on top of the modeled resource occupancies, so that
// an uncontended access costs exactly the Table 3 number.
func (m *Machine) deriveFixed() {
	t := m.tm
	m.localFixed = t.LocalMiss - t.BusOccupancy
	if m.localFixed < 0 {
		m.localFixed = 0
	}
	unloaded := 2*t.BusOccupancy + 2*t.NIOccupancy + t.HomeOccupancy + 2*t.NetworkLatency
	m.remoteFixed = t.RemoteMiss - unloaded
	if m.remoteFixed < 0 {
		m.remoteFixed = 0
	}
}

// Stats returns the machine's statistics sink.
func (m *Machine) Stats() *stats.Sim { return m.st }

// EnableAudit switches the machine (and its fabric) into audit mode:
// event-time discipline is checked on every dispatched event, fabric
// injection and page-busy update, and violations accumulate for
// AuditViolations / internal/audit.Check. Auditing changes no simulated
// behaviour: an audited run produces byte-identical statistics.
func (m *Machine) EnableAudit() {
	m.auditing = true
	m.fabric.EnableAudit()
}

// AuditViolations returns the event-time violations the machine itself
// detected (scheduler dispatch order, page-busy regressions); fabric
// injection violations are reported by Fabric().Violations().
func (m *Machine) AuditViolations() []string { return m.violations.All() }

// AttachTelemetry binds a telemetry collector to the machine (and its
// fabric): windowed series — page ops by kind, misses by class,
// per-node traffic, per-link fabric bytes, dispatched ops — and, when
// the collector records a timeline, the discrete page-operation events,
// all keyed by simulated time. Telemetry changes no simulated
// behaviour: an instrumented run produces byte-identical statistics,
// and without a collector every hook reduces to a nil check.
func (m *Machine) AttachTelemetry(c *telemetry.Collector) {
	if c == nil {
		return
	}
	links := m.fabric.Topology().Links()
	names := make([]string, len(links))
	for i, l := range links {
		names[i] = l.Name
	}
	c.Bind(m.cl.Nodes, names)
	m.fabric.SetObserver(c)
	m.tel = c
}

// Telemetry returns the attached collector (nil when telemetry is off).
func (m *Machine) Telemetry() *telemetry.Collector { return m.tel }

// setPageBusy extends page p's busy horizon to t. Page operations only
// ever push the horizon forward — every accessor waits it out before
// starting a new operation — so a regression means an operation
// completed in the simulated past and is flagged under audit.
func (m *Machine) setPageBusy(p memory.Page, t int64) {
	if t < m.pageBusy[p] {
		if m.auditing {
			m.violations.Addf("dsm: pageBusy[%d] regressed from %d to %d", p, m.pageBusy[p], t)
		}
		return
	}
	m.pageBusy[p] = t
}

// Fabric returns the interconnect model the machine routes protocol
// messages over.
func (m *Machine) Fabric() *interconnect.Fabric { return m.fabric }

// nodeOf returns the node a CPU belongs to.
func (m *Machine) nodeOf(cpu int) int { return int(m.cpuNode[cpu]) }

// cpusOf returns the CPU id range [lo, hi) of a node.
func (m *Machine) cpusOf(node int) (lo, hi int) {
	return node * m.cl.CPUsPerNode, (node + 1) * m.cl.CPUsPerNode
}

// migCounter returns the page's counter bank, creating it on first use.
func (m *Machine) migCounter(p memory.Page) *mrCounter {
	c := m.mig[p]
	if c == nil {
		n := m.cl.Nodes
		rw := make([]int32, 2*n)
		c = &mrCounter{read: rw[:n:n], write: rw[n:]}
		m.mig[p] = c
	}
	return c
}

// reset zeroes a counter bank and lifts any replication block.
func (c *mrCounter) reset() {
	for i := range c.read {
		c.read[i] = 0
		c.write[i] = 0
	}
	c.homeUse = 0
	c.sinceReset = 0
	c.noRepl = false
}

// total returns read+write misses recorded for a node.
func (c *mrCounter) total(node int) int32 { return c.read[node] + c.write[node] }

// anyWrites reports whether any node recorded a write miss since reset.
func (c *mrCounter) anyWrites() bool {
	for _, w := range c.write {
		if w != 0 {
			return true
		}
	}
	return false
}

// invalidateOnNode removes every copy of block b held on node n (L1s,
// block cache, and S-COMA frame tags). byInval marks the departure as a
// coherence invalidation; otherwise it is recorded as an eviction, which
// makes the node's next miss classify as capacity/conflict. It reports
// whether any copy existed and whether any copy was dirty (the caller
// owns writeback accounting).
func (m *Machine) invalidateOnNode(n int, b memory.Block, byInval bool) (present, dirty bool) {
	if m.l1count[n][b] > 0 {
		lo, hi := m.cpusOf(n)
		for c := lo; c < hi; c++ {
			if p, d := m.l1[c].Invalidate(b); p {
				present = true
				dirty = dirty || d
				m.l1count[n][b]--
			}
		}
	}
	if m.bc != nil {
		if p, d := m.bc[n].Invalidate(b); p {
			present = true
			dirty = dirty || d
		}
	}
	if m.pc != nil {
		pg := b.Page()
		if e := m.pc[n].Entry(pg); e != nil {
			bit := uint64(1) << uint(b.Index())
			if e.Valid&bit != 0 {
				present = true
				dirty = dirty || e.Dirty&bit != 0
				e.Valid &^= bit
				e.Dirty &^= bit
			}
		}
	}
	if present {
		if byInval {
			m.flags[n][b] |= flagDepartInval
		} else {
			m.flags[n][b] &^= flagDepartInval
		}
	}
	return present, dirty
}

// downgradeOnNode demotes every copy of block b on node n to the clean
// Shared state, reporting whether any copy was dirty (data must be
// written back to home by the caller).
func (m *Machine) downgradeOnNode(n int, b memory.Block) (wasDirty bool) {
	if m.l1count[n][b] > 0 {
		lo, hi := m.cpusOf(n)
		for c := lo; c < hi; c++ {
			if m.l1[c].Lookup(b) == cache.Modified {
				m.l1[c].SetState(b, cache.Shared)
				wasDirty = true
			}
		}
	}
	if m.bc != nil {
		if m.bc[n].Probe(b) == cache.Modified {
			m.bc[n].SetState(b, cache.Shared)
			wasDirty = true
		}
	}
	if m.pc != nil {
		if e := m.pc[n].Entry(b.Page()); e != nil {
			bit := uint64(1) << uint(b.Index())
			if e.Dirty&bit != 0 {
				e.Dirty &^= bit
				wasDirty = true
			}
		}
	}
	return wasDirty
}

// nodeHolds reports whether node n currently caches block b anywhere.
func (m *Machine) nodeHolds(n int, b memory.Block) bool {
	if m.l1count[n][b] > 0 {
		return true
	}
	if m.bc != nil && m.bc[n].Probe(b) != cache.Invalid {
		return true
	}
	if m.pc != nil {
		if e := m.pc[n].Entry(b.Page()); e != nil && e.Valid&(1<<uint(b.Index())) != 0 {
			return true
		}
	}
	return false
}

// markCached records that node n now caches block b.
func (m *Machine) markCached(n int, b memory.Block) {
	m.flags[n][b] |= flagEverCached
	m.flags[n][b] &^= flagDepartInval
}

// classify determines the miss class for node n fetching block b, based
// on the node's history flags. Must be called before markCached.
func (m *Machine) classify(n int, b memory.Block) stats.MissClass {
	f := m.flags[n][b]
	if f&flagEverCached == 0 {
		return stats.Cold
	}
	if f&flagDepartInval != 0 {
		return stats.Coherence
	}
	return stats.CapacityConflict
}

// Verify runs consistency checks over the machine state: the directory
// invariants, and agreement between the directory sharer sets and the
// actual cache contents (every cached copy must be covered by the
// conservative sharer set; every dirty copy must be the registered
// owner's).
func (m *Machine) Verify() error {
	if err := m.dir.Check(); err != nil {
		return err
	}
	for n := 0; n < m.cl.Nodes; n++ {
		lo, hi := m.cpusOf(n)
		for c := lo; c < hi; c++ {
			// sample the L1 contents through its sets
			for b := memory.Block(0); uint64(b) < m.numBlocks; b++ {
				st := m.l1[c].Lookup(b)
				if st == cache.Invalid {
					continue
				}
				e := m.dir.Entry(b)
				if e.Sharers&(1<<uint(n)) == 0 {
					return fmt.Errorf("dsm: cpu %d caches block %d but node %d not in sharers", c, b, n)
				}
				if st == cache.Modified && (e.State != directory.ModifiedState || int(e.Owner) != n) {
					return fmt.Errorf("dsm: cpu %d holds block %d dirty but directory says %v owner %d",
						c, b, e.State, e.Owner)
				}
			}
		}
	}
	return nil
}

// LockStats exposes per-lock acquisition counts for tests and reports.
func (m *Machine) LockStats() map[uint64]int64 {
	out := make(map[uint64]int64, len(m.locks))
	//lint:unordered building a map from a map; callers order the result
	for id, l := range m.locks {
		out[id] = l.Acquisitions()
	}
	return out
}
