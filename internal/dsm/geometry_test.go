package dsm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
)

// TestAlternateClusterGeometries runs a workload on machine shapes other
// than the paper's 8x4 — the simulator must not bake in the default
// geometry anywhere.
func TestAlternateClusterGeometries(t *testing.T) {
	shapes := []config.Cluster{
		{Nodes: 4, CPUsPerNode: 8},
		{Nodes: 16, CPUsPerNode: 2},
		{Nodes: 2, CPUsPerNode: 4},
		{Nodes: 1, CPUsPerNode: 4}, // a single SMP: no remote traffic at all
	}
	tm, th := config.Default(), config.DefaultThresholds()
	for _, cl := range shapes {
		tr, err := apps.GenerateSynthetic(apps.SynWriteShared,
			apps.SyntheticParams{CPUs: cl.TotalCPUs(), KBPerNode: 64, Iters: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []Spec{CCNUMA(), MigRep(), RNUMA()} {
			m, err := NewMachine(spec, cl, tm, th, tr.Footprint, tr.Name)
			if err != nil {
				t.Fatalf("%dx%d %s: %v", cl.Nodes, cl.CPUsPerNode, spec.Name, err)
			}
			if err := m.Execute(tr); err != nil {
				t.Fatalf("%dx%d %s: %v", cl.Nodes, cl.CPUsPerNode, spec.Name, err)
			}
			if err := m.Verify(); err != nil {
				t.Errorf("%dx%d %s: %v", cl.Nodes, cl.CPUsPerNode, spec.Name, err)
			}
			if cl.Nodes == 1 && m.Stats().TotalRemoteMisses() != 0 {
				t.Errorf("single-node cluster produced %d remote misses",
					m.Stats().TotalRemoteMisses())
			}
		}
	}
}

// TestGeometryDeterminism: alternate shapes replay deterministically
// too.
func TestGeometryDeterminism(t *testing.T) {
	cl := config.Cluster{Nodes: 4, CPUsPerNode: 8}
	tr, err := apps.GenerateSynthetic(apps.SynWriteShared,
		apps.SyntheticParams{CPUs: cl.TotalCPUs(), KBPerNode: 64, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(tr, RNUMA(), cl, config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, RNUMA(), cl, config.Default(), config.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecCycles != b.ExecCycles || a.TotalTrafficBytes() != b.TotalTrafficBytes() {
		t.Error("nondeterministic replay on 4x8 cluster")
	}
}
