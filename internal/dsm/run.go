package dsm

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// RunOptions configures a Run beyond the machine parameters.
type RunOptions struct {
	// Audit enables the machine's self-auditing mode: event-time
	// discipline is enforced while the trace executes and the
	// internal/audit conservation checks run over the final state; any
	// violation fails the run with a descriptive error. Auditing does
	// not change simulated behaviour.
	Audit bool

	// Telemetry, when non-nil, attaches a collector that records
	// time-resolved series (and optionally the page-operation timeline)
	// as the trace executes. Collection is observational: the simulated
	// statistics are byte-identical with or without it.
	Telemetry *telemetry.Collector

	// Shards > 1 selects the sharded conservative-PDES engine (see
	// ExecuteSharded), which produces byte-identical statistics to the
	// sequential engine. Shards must evenly partition the cluster's
	// nodes. A run with Telemetry attached always uses the sequential
	// engine: the collector is unsynchronized by design, and telemetry
	// runs exist to be compared against plain runs anyway.
	Shards int
}

// Run executes a trace on a freshly built machine and returns the
// collected statistics.
func Run(tr *trace.Trace, spec Spec, cl config.Cluster, tm config.Timing, th config.Thresholds) (*stats.Sim, error) {
	return RunWithOptions(tr, spec, cl, tm, th, RunOptions{})
}

// RunWithOptions is Run with explicit RunOptions.
func RunWithOptions(tr *trace.Trace, spec Spec, cl config.Cluster, tm config.Timing, th config.Thresholds, o RunOptions) (*stats.Sim, error) {
	m, err := NewMachine(spec, cl, tm, th, tr.Footprint, tr.Name)
	if err != nil {
		return nil, err
	}
	if o.Audit {
		m.EnableAudit()
	}
	if o.Telemetry != nil {
		m.AttachTelemetry(o.Telemetry)
	}
	if o.Shards > 1 && o.Telemetry == nil {
		err = m.ExecuteSharded(tr, o.Shards)
	} else {
		err = m.Execute(tr)
	}
	if err != nil {
		return nil, err
	}
	if o.Audit {
		if err := audit.Check(m); err != nil {
			return nil, fmt.Errorf("dsm: %s on %s: %w", tr.Name, spec.Name, err)
		}
	}
	return m.Stats(), nil
}

// Execute replays the trace to completion on the machine.
//
// The dispatch loop uses the scheduler's in-place cycle (Peek/Requeue/
// Park/Retire): the earliest CPU stays in the heap while its op runs and
// a single sift restores order afterwards, instead of a full pop and
// push per trace op. Dispatch order is identical either way — the heap
// always surfaces the unique (Clock, ID) minimum.
//
// Replay streams each CPU's three trace columns (kind, gap, arg)
// directly: one byte-wide kind load steers the dispatch switch and the
// gap and arg columns are touched at their natural widths, instead of
// striding an array of padded 16-byte Op structs.
func (m *Machine) Execute(tr *trace.Trace) error {
	if tr.NumCPUs() != m.cl.TotalCPUs() {
		return fmt.Errorf("dsm: trace has %d cpus, machine has %d", tr.NumCPUs(), m.cl.TotalCPUs())
	}
	pos := make([]int, tr.NumCPUs())
	sched := m.sched

	for !sched.Done() {
		c := sched.Peek()
		if c == nil {
			return fmt.Errorf("dsm: deadlock: no runnable cpu (%s)", tr.Name)
		}
		ops := &tr.CPUs[c.ID]
		i := pos[c.ID]
		if i >= len(ops.Kinds) {
			sched.Retire(c)
			continue
		}
		pos[c.ID]++
		if err := m.dispatch(c, sched, ops.Kinds[i], ops.Gaps[i], ops.Args[i]); err != nil {
			return err
		}
	}
	m.st.ExecCycles = sched.MaxClock()
	m.st.Net = m.fabric.Snapshot()
	return nil
}

// dispatch executes one already-peeked trace op on CPU c: the audit
// pre-checks, the gap advance, and the op itself. sched must be the
// scheduler that owns c — the machine's global one in a sequential run,
// c's shard's in a sharded run; CPUs the op releases (barrier waiters,
// lock grants) are requeued through m.unpark, which routes each to its
// own scheduler. The sharded engine calls dispatch only from the serial
// phase, with every shard worker parked, so the op may touch any
// machine state.
//
//repro:hotpath
func (m *Machine) dispatch(c *engine.CPU, sched *engine.Scheduler, kind trace.Kind, gap uint32, arg uint64) error {
	if m.auditing {
		// The scheduler dispatches events in nondecreasing time
		// order; the dispatched clock (plus any trace gap) is the
		// floor below which no message may enter the fabric.
		if c.Clock < m.lastDispatch {
			m.violations.Addf("dsm: cpu %d dispatched at %d after event time %d",
				c.ID, c.Clock, m.lastDispatch)
		}
		m.lastDispatch = c.Clock
	}
	c.Clock += int64(gap)
	if m.auditing {
		m.fabric.SetAuditFloor(c.Clock)
	}
	if m.tel != nil {
		m.tel.Dispatch(c.Clock)
	}

	switch kind {
	case trace.Read:
		m.access(c, memory.Block(arg), false)
		sched.Requeue(c)
	case trace.Write:
		m.access(c, memory.Block(arg), true)
		sched.Requeue(c)
	case trace.Barrier:
		arrive := c.Clock
		release, waiters, ok := m.barrier.Arrive(c)
		if !ok {
			sched.Park(c)
			return nil
		}
		n := m.nodeOf(c.ID)
		m.st.Nodes[n].SyncCycles += c.Clock - arrive
		for _, w := range waiters {
			wn := m.nodeOf(w.ID)
			m.st.Nodes[wn].SyncCycles += release - w.Clock
			m.unpark(w, release)
		}
		sched.Requeue(c)
	case trace.Lock:
		l := m.lock(arg)
		before := c.Clock
		if !l.Acquire(c) {
			sched.Park(c)
			return nil
		}
		m.chargeLock(c, arg, before)
		sched.Requeue(c)
	case trace.Unlock:
		l := m.lock(arg)
		m.lockOwn[arg] = m.nodeOf(c.ID)
		if next := l.Release(c.Clock); next != nil {
			// Charge the new holder before requeueing it: the
			// scheduler heap is keyed by clock, so the clock must
			// reach its final value before Unblock pushes the CPU.
			// (Charging after the push silently corrupted the heap
			// and dispatched CPUs out of simulated-time order.)
			granted := c.Clock
			if granted > next.Clock {
				next.Clock = granted
			}
			m.chargeLock(next, arg, granted)
			m.unpark(next, next.Clock)
		}
		sched.Requeue(c)
	case trace.Phase:
		if !m.phaseDone {
			m.phaseDone = true
			// The paper's user-invoked directive starts page
			// monitoring at the beginning of the parallel phase:
			// discard reference counts from initialization.
			for _, cnt := range m.mig {
				if cnt != nil {
					cnt.reset()
				}
			}
		}
		sched.Requeue(c)
	case trace.Pad:
		sched.Requeue(c)
	default:
		return unknownOp(kind)
	}
	return nil
}

// unknownOp formats the corrupt-trace error out of line, keeping the
// formatting machinery off the dispatch hot path.
func unknownOp(kind trace.Kind) error {
	return fmt.Errorf("dsm: unknown op kind %v", kind)
}

// unpark returns a previously parked CPU to its owning scheduler's heap
// at time at. In a sharded run the CPU may belong to a different shard
// than the event releasing it (a cross-shard barrier release or lock
// grant), and its scan streak — stale the moment its clock moved — is
// invalidated.
//
//repro:hotpath
func (m *Machine) unpark(w *engine.CPU, at int64) {
	m.schedFor(w.ID).Unblock(w, at)
	if m.shex != nil {
		m.shex.markCPU(w.ID)
	}
}

// lock returns the engine lock for a trace lock id, creating it lazily.
//
//repro:hotpath
func (m *Machine) lock(id uint64) *engine.Lock {
	l := m.locks[id]
	if l == nil {
		l = engine.NewLock()
		m.locks[id] = l
	}
	return l
}

// chargeLock accounts the cost of a successful lock acquisition: the
// wait (if the lock was contended) counts as synchronization time, and
// the acquisition itself costs a local or remote memory transaction on
// the lock word depending on where it was last held.
//
//repro:hotpath
func (m *Machine) chargeLock(c *engine.CPU, id uint64, requested int64) {
	n := m.nodeOf(c.ID)
	ns := &m.st.Nodes[n]
	if c.Clock > requested {
		ns.SyncCycles += c.Clock - requested
	}
	last, seen := m.lockOwn[id]
	var lat int64
	if !seen || last == n {
		lat = m.tm.LocalMiss
	} else {
		// The lock word moves from its last holder's node; on multi-hop
		// fabrics the transfer pays the extra hops like any other
		// remote transaction.
		lat = m.tm.RemoteMiss + m.forwardExtra(n, last)
		ns.TrafficBytes += msgHeaderBytes + msgBlockBytes
		if tl := m.tel; tl != nil {
			tl.Traffic(n, msgHeaderBytes+msgBlockBytes, c.Clock)
		}
		m.fabric.Deliver(n, last, msgHeaderBytes, c.Clock)
		m.fabric.Deliver(last, n, msgBlockBytes, c.Clock+m.wireLatency(n, last))
	}
	c.Clock += lat
	ns.SyncCycles += lat
	m.lockOwn[id] = n
}
