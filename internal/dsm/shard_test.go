package dsm

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/trace"
)

// runEngine executes tr on a fresh machine with the given shard count
// (0 = sequential), auditing enabled, and returns the machine.
func runEngine(t *testing.T, spec Spec, tr *trace.Trace, shards int) *Machine {
	t.Helper()
	m, err := NewMachine(spec, config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableAudit()
	if shards > 1 {
		err = m.ExecuteSharded(tr, shards)
	} else {
		err = m.Execute(tr)
	}
	if err != nil {
		t.Fatalf("%s shards=%d: %v", spec.Name, shards, err)
	}
	if v := m.AuditViolations(); len(v) > 0 {
		t.Fatalf("%s shards=%d: audit violations: %v", spec.Name, shards, v)
	}
	if v := m.Fabric().Violations(); len(v) > 0 {
		t.Fatalf("%s shards=%d: fabric violations: %v", spec.Name, shards, v)
	}
	return m
}

// TestShardedMatchesSequential is the core equivalence claim of the
// sharded engine: for every system class and a mix of applications, the
// sharded run's complete statistics equal the sequential run's exactly
// — not approximately — for every shard count that partitions the
// cluster.
func TestShardedMatchesSequential(t *testing.T) {
	cl := config.DefaultCluster()
	specs := []Spec{CCNUMA(), MigRep(), RNUMA()}
	var traces []*trace.Trace
	for _, app := range apps.Paper() {
		tr, err := app.Generate(apps.Params{CPUs: cl.TotalCPUs(), Scale: 16})
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	var committed int64
	for _, spec := range specs {
		for _, tr := range traces {
			seq := runEngine(t, spec, tr, 0)
			for _, shards := range []int{2, 4, 8} {
				par := runEngine(t, spec, tr, shards)
				if !reflect.DeepEqual(seq.Stats(), par.Stats()) {
					t.Errorf("%s on %s: shards=%d statistics diverge from sequential",
						spec.Name, tr.Name, shards)
				}
				// Every commit and every serial step is exactly one
				// scheduler dispatch, so the coordinator's totals must
				// equal the sequential engine's dispatch count.
				pst := par.PDESStats()
				if seqd := seq.sched.Dispatches(); seqd != pst.Committed+pst.Serial {
					t.Errorf("%s on %s: shards=%d dispatched %d events, sequential %d",
						spec.Name, tr.Name, shards, pst.Committed+pst.Serial, seqd)
				}
				committed += pst.Committed
			}
		}
	}
	if committed == 0 {
		t.Error("no events ever committed in parallel; the sharded engine degenerated to serial")
	}
}

// TestShardedSynchronizationHeavy drives the serial-dominated paths:
// cross-shard barriers, contended locks crossing shard boundaries, and
// the phase flip, all with zero-gap collisions.
func TestShardedSynchronizationHeavy(t *testing.T) {
	cl := config.DefaultCluster()
	n := cl.TotalCPUs()
	tr := &trace.Trace{Name: "syncheavy", CPUs: make([]trace.Stream, n), Footprint: 1 << 20}
	for cpu := 0; cpu < n; cpu++ {
		ops := []trace.Op{
			wr(uint64(cpu * config.BlocksPerPage)),
			{Kind: trace.Barrier, Arg: 0},
			{Kind: trace.Phase},
			{Kind: trace.Lock, Arg: 0},
			{Kind: trace.Pad, Gap: 10},
			{Kind: trace.Unlock, Arg: 0},
			rd(uint64(cpu * config.BlocksPerPage)),
			rd(uint64(((cpu + 7) % n) * config.BlocksPerPage)),
			{Kind: trace.Barrier, Arg: 1},
			rd(uint64(cpu * config.BlocksPerPage)),
		}
		tr.CPUs[cpu] = trace.StreamOf(ops...)
	}
	for _, spec := range []Spec{CCNUMA(), MigRep()} {
		seq := runEngine(t, spec, tr, 0)
		for _, shards := range []int{2, 8} {
			par := runEngine(t, spec, tr, shards)
			if !reflect.DeepEqual(seq.Stats(), par.Stats()) {
				t.Errorf("%s: shards=%d statistics diverge on sync-heavy trace", spec.Name, shards)
			}
		}
	}
}

// TestShardedRejectsBadPartition pins the shard-count validation.
func TestShardedRejectsBadPartition(t *testing.T) {
	tr := tinyTrace(1<<16, map[int][]trace.Op{0: {rd(0)}})
	m, err := NewMachine(CCNUMA(), config.DefaultCluster(), config.Default(),
		config.DefaultThresholds(), tr.Footprint, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ExecuteSharded(tr, 3); err == nil {
		t.Fatal("3 shards over 8 nodes accepted")
	}
}
