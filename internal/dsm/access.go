package dsm

import (
	"math/bits"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// localAccess models an L1 miss satisfied on the node: a bus transaction
// (with queuing) followed by the fixed local-memory/SRAM service time. It
// returns the completion time.
//
//repro:hotpath
func (m *Machine) localAccess(now int64, n int) int64 {
	t := m.bus[n].Acquire(now, m.tm.BusOccupancy)
	return t + m.localFixed
}

// forwardExtra returns the distance-dependent latency of a forwarded
// request leg a->b and its return b->a beyond the flat DirtyRemoteExtra
// the timing model charges; zero on the crossbar.
//
//repro:hotpath
func (m *Machine) forwardExtra(a, b int) int64 {
	return m.fabric.ExtraHopLatency(a, b) + m.fabric.ExtraHopLatency(b, a)
}

// wireLatency returns the full fabric latency of one a->b traversal
// (one hop on the crossbar, matching the flat model's NetworkLatency).
// It is used to back-date events on the far side of a completed round
// trip, e.g. when the dirty owner's NI was busy.
//
//repro:hotpath
func (m *Machine) wireLatency(a, b int) int64 {
	if a == b {
		return 0
	}
	return m.fabric.HopLatency() + m.fabric.ExtraHopLatency(a, b)
}

// ackWaveLatency returns the latency the invalidation ack wave adds to
// a directory round trip: the flat one-hop charge of the original
// model, plus the farthest sharer's extra hops on multi-hop fabrics.
//
//repro:hotpath
func (m *Machine) ackWaveLatency(h int, mask uint64) int64 {
	return m.fabric.HopLatency() + m.ackWaveExtra(h, mask)
}

// ackWaveExtra returns the additional latency of an invalidation ack
// wave on multi-hop fabrics: the wave completes when the ack of the
// farthest sharer in mask returns to home h. Zero on the crossbar,
// where the flat one-network-latency charge already covers the wave.
//
//repro:hotpath
func (m *Machine) ackWaveExtra(h int, mask uint64) int64 {
	var max int64
	for ; mask != 0; mask &= mask - 1 {
		s := bits.TrailingZeros64(mask)
		if x := m.forwardExtra(h, s); x > max {
			max = x
		}
	}
	return max
}

// roundTrip models a protocol round trip from node n to home h: local
// bus, outbound NI, fabric traversal, home controller (plus extra cycles
// for 3-hop forwarding or invalidation gathering), fabric traversal
// back, inbound NI, and the fill delivery on the local bus. The request
// and response sizes are charged to the links of the two traversals.
// When h == n the network legs vanish but the directory/controller work
// remains, and any message bytes are accounted as node-local.
//
//repro:hotpath
func (m *Machine) roundTrip(now int64, n, h int, extra, reqBytes, respBytes int64) int64 {
	t := m.bus[n].Acquire(now, m.tm.BusOccupancy)
	if h != n {
		t = m.ni[n].Acquire(t, m.tm.NIOccupancy)
		t = m.fabric.Traverse(n, h, reqBytes, t)
	} else if reqBytes+respBytes > 0 {
		m.fabric.Deliver(n, n, reqBytes+respBytes, t)
	}
	t = m.home[h].Acquire(t, m.tm.HomeOccupancy)
	t += m.remoteFixed + extra
	if h != n {
		t = m.fabric.Traverse(h, n, respBytes, t)
		t = m.ni[n].Acquire(t, m.tm.NIOccupancy)
	}
	t = m.bus[n].Acquire(t, m.tm.BusOccupancy)
	return t
}

// access executes one Read/Write trace op for CPU c, advancing its clock
// by the full memory-system latency.
//
//repro:hotpath
func (m *Machine) access(c *engine.CPU, b memory.Block, write bool) {
	n := m.nodeOf(c.ID)
	p := b.Page()
	e := m.pt.Entry(p)
	ns := &m.st.Nodes[n]

	// First-touch placement. Before the parallel phase, pages are homed
	// at the first toucher (the initializing processor); the user-level
	// directive at the start of the parallel phase re-homes each page to
	// its first post-phase toucher, for free, as the paper's policy
	// does.
	if !e.Touched {
		m.pt.FirstTouch(p, n)
		m.mapped[n][p] = true
		m.parallelPlaced[p] = m.phaseDone
	} else if m.phaseDone && !m.parallelPlaced[p] {
		m.parallelPlaced[p] = true
		if e.Home != n && !e.Replicated {
			m.pt.SetHome(p, n)
			m.mapped[n][p] = true
		}
	}

	// Wait out any page operation in flight on this page.
	if t := m.pageBusy[p]; c.Clock < t {
		ns.SyncCycles += t - c.Clock
		c.Clock = t
	}

	// Soft page fault: first access by this node, or a mapping dropped
	// by a migration/collapse (lazy TLB invalidation via poison bits).
	if e.Home != n && !m.mapped[n][p] {
		m.mapped[n][p] = true
		ns.PageFaults++
		faultStart := c.Clock
		// The fault traps, consults the home's mapper, and the reply
		// returns over the fabric.
		end := m.fabric.Traverse(n, e.Home, msgHeaderBytes, c.Clock+m.tm.SoftTrap)
		var copyCost int64
		copied := false
		if e.Replicated && m.spec.Replication {
			// An unmapped fault on a replicated page fetches a full
			// read-only copy into local memory.
			copyCost = m.tm.CopyCost(config.BlocksPerPage)
			m.fabric.Deliver(e.Home, n, int64(config.BlocksPerPage)*msgBlockBytes, end)
			e.Mode[n] = memory.ModeReplica
			ns.PageOps[stats.Replication]++
			ns.TrafficBytes += int64(config.BlocksPerPage) * msgBlockBytes
			if tl := m.tel; tl != nil {
				tl.PageOp(stats.Replication, end)
				tl.Traffic(n, int64(config.BlocksPerPage)*msgBlockBytes, end)
			}
			copied = true
		} else if e.Mode[n] == memory.ModeUnmapped {
			e.Mode[n] = memory.ModeCCNUMA
		}
		end = m.fabric.Traverse(e.Home, n, msgHeaderBytes, end)
		lat := end - c.Clock + copyCost
		ns.TrafficBytes += 2 * msgHeaderBytes
		c.Clock += lat
		ns.PageOpCycles += lat
		if tl := m.tel; tl != nil {
			tl.Traffic(n, 2*msgHeaderBytes, end)
			if copied {
				tl.Event(telemetry.EvFaultCopy, uint64(p), e.Home, n, faultStart, c.Clock)
			}
		}
		// Static-placement policies (AlwaysSCOMA) act on the fresh
		// mapping.
		m.pol.OnPageMapped(c, n, p)
	}

	// A write to a replicated page takes a protection fault and forces
	// the home to collapse all replicas back to one read-write page.
	if write && e.Replicated {
		m.collapse(c, n, p)
	}

	l1 := m.l1[c.ID]
	switch l1.Lookup(b) {
	case cache.Modified:
		return // hit with write permission
	case cache.Shared:
		if !write {
			return // read hit
		}
		m.upgrade(c, n, b)
	default:
		m.fill(c, n, b, write)
	}
}

// upgrade obtains write permission for a block the CPU already caches in
// the Shared state.
//
//repro:hotpath
func (m *Machine) upgrade(c *engine.CPU, n int, b memory.Block) {
	ns := &m.st.Nodes[n]
	de := m.dir.Entry(b)
	p := b.Page()
	h := m.pt.Entry(p).Home
	start := c.Clock

	remote := de.Sharers &^ (1 << uint(n))
	remoteUpgrade := false
	if remote != 0 {
		// Remote upgrade through the home directory; invalidations to
		// the sharers overlap, one ack wave adds a network latency
		// (plus the farthest sharer's extra hops on multi-hop fabrics).
		end := m.roundTrip(start, n, h, m.ackWaveLatency(h, remote),
			msgHeaderBytes, msgHeaderBytes)
		ns.Upgrades++
		ns.TrafficBytes += 2 * msgHeaderBytes
		if tl := m.tel; tl != nil {
			tl.Traffic(n, 2*msgHeaderBytes, end)
		}
		m.invalidateSharers(n, h, b, remote, end)
		ns.StallCycles += end - c.Clock
		c.Clock = end
		remoteUpgrade = true
	} else if m.l1count[n][b] > 1 {
		// Node-local upgrade: one bus transaction invalidates siblings.
		end := m.bus[n].Acquire(start, m.tm.BusOccupancy)
		ns.StallCycles += end - c.Clock
		c.Clock = end
	}
	// Invalidate sibling L1 copies on this node (the upgrading CPU's own
	// copy accounts for one of the node's counted copies).
	if m.l1count[n][b] > 1 {
		lo, hi := m.cpusOf(n)
		for i := lo; i < hi; i++ {
			if i == c.ID {
				continue
			}
			if present, _ := m.l1[i].Invalidate(b); present {
				m.l1count[n][b]--
			}
		}
	}
	m.dir.SetOwner(b, n)
	m.l1[c.ID].SetState(b, cache.Modified)
	if m.bc != nil && m.pt.Entry(p).Home != n {
		m.bc[n].SetState(b, cache.Modified)
	}
	if m.pc != nil && m.pt.Entry(p).Home != n {
		if pe := m.pc[n].Entry(p); pe != nil && pe.Valid&(1<<uint(b.Index())) != 0 {
			pe.Dirty |= 1 << uint(b.Index())
		}
	}
	// The policy hook runs after the upgrade's state changes: a page
	// operation it triggers may gather this very page, including the
	// copy just upgraded.
	if remoteUpgrade {
		m.pol.OnRemoteUpgrade(c, n, p)
	}
}

// invalidateSharers delivers invalidations for block b from home h to
// every node in mask (except requester n), charging their NIs at time t
// and accounting traffic to the requester. The invalidation and ack ride
// the h<->s links; dirty data accompanies the ack back to home memory.
//
//repro:hotpath
func (m *Machine) invalidateSharers(n, h int, b memory.Block, mask uint64, t int64) {
	ns := &m.st.Nodes[n]
	for mask &^= 1 << uint(n); mask != 0; mask &= mask - 1 {
		s := bits.TrailingZeros64(mask)
		m.ni[s].Acquire(t, m.tm.NIOccupancy)
		present, dirty := m.invalidateOnNode(s, b, true)
		m.fabric.Deliver(h, s, msgHeaderBytes, t)
		ackBytes := int64(msgHeaderBytes)
		ns.TrafficBytes += 2 * msgHeaderBytes // inval + ack
		if present && dirty {
			ackBytes += msgBlockBytes - msgHeaderBytes
			ns.TrafficBytes += msgBlockBytes - msgHeaderBytes
		}
		if tl := m.tel; tl != nil {
			tl.Traffic(n, msgHeaderBytes+ackBytes, t)
		}
		// The ack leaves after the invalidation has crossed to s.
		m.fabric.Deliver(s, h, ackBytes, t+m.wireLatency(h, s))
	}
}

// fill services an L1 miss for CPU c on node n.
//
//repro:hotpath
func (m *Machine) fill(c *engine.CPU, n int, b memory.Block, write bool) {
	p := b.Page()
	e := m.pt.Entry(p)
	h := e.Home
	de := m.dir.Entry(b)
	ns := &m.st.Nodes[n]
	start := c.Clock

	cls := m.classify(n, b)
	remote := de.Sharers &^ (1 << uint(n))
	// A write fill can complete locally only if no other node holds a
	// copy; otherwise exclusivity must come from the home.
	localOK := !write || remote == 0

	// 1. Another L1 on this node holds the block.
	if m.l1count[n][b] > 0 && localOK {
		end := m.localAccess(start, n)
		ns.LocalMisses[cls]++
		if tl := m.tel; tl != nil {
			tl.Miss(cls, false, end)
		}
		m.advance(c, ns, end)
		m.completeFill(c, n, b, write)
		return
	}

	// 2. The S-COMA page cache holds the block.
	if m.pc != nil && localOK && h != n {
		if pe := m.pc[n].Touch(p); pe != nil && pe.Valid&(1<<uint(b.Index())) != 0 {
			end := m.localAccess(start, n)
			ns.LocalMisses[cls]++
			ns.PageCacheHits++
			if tl := m.tel; tl != nil {
				tl.Miss(cls, false, end)
			}
			if write {
				pe.Dirty |= 1 << uint(b.Index())
			}
			m.advance(c, ns, end)
			m.completeFill(c, n, b, write)
			return
		}
	}

	// 3. The page is homed here. The home's own misses feed the page's
	// home-use counter (the memory controller observes them), so
	// migration can weigh the home's use against a remote requester's;
	// they never count as remote read/write sharing.
	if h == n {
		m.pol.OnHomeMiss(c, n, p, write)
		if owner, dirty := m.dir.IsDirtyRemote(b, n); dirty {
			// 3-hop fetch from the remote owner: the forward request
			// travels home->owner, the data and ack return owner->home.
			end := m.roundTrip(start, n, h, m.tm.DirtyRemoteExtra+m.forwardExtra(n, owner), 0, 0)
			back := end - m.wireLatency(owner, n)
			m.ni[owner].Acquire(back, m.tm.NIOccupancy)
			// The forward leaves once the home has seen the request.
			m.fabric.Deliver(h, owner, msgHeaderBytes, back-m.wireLatency(h, owner))
			m.fabric.Deliver(owner, h, msgHeaderBytes+msgBlockBytes, back)
			ns.RemoteMisses[cls]++
			ns.TrafficBytes += 2*msgHeaderBytes + msgBlockBytes
			if tl := m.tel; tl != nil {
				tl.Miss(cls, true, end)
				tl.Traffic(n, 2*msgHeaderBytes+msgBlockBytes, end)
			}
			m.retrieveDirty(n, owner, b, write)
			m.advance(c, ns, end)
			m.completeFill(c, n, b, write)
			return
		}
		if localOK {
			end := m.localAccess(start, n)
			ns.LocalMisses[cls]++
			if tl := m.tel; tl != nil {
				tl.Miss(cls, false, end)
			}
			m.advance(c, ns, end)
			m.completeFill(c, n, b, write)
			return
		}
		// A write to a home block shared remotely: invalidation round;
		// data comes from local memory on the same transaction.
		end := m.roundTrip(start, n, h, m.ackWaveLatency(h, remote), 0, 0)
		ns.Upgrades++
		ns.LocalMisses[cls]++
		if tl := m.tel; tl != nil {
			tl.Miss(cls, false, end)
		}
		m.invalidateSharers(n, h, b, remote, end)
		m.advance(c, ns, end)
		m.completeFill(c, n, b, write)
		return
	}

	// 4. A local read-only replica serves reads from local memory.
	if e.Mode[n] == memory.ModeReplica && !write {
		end := m.localAccess(start, n)
		ns.LocalMisses[cls]++
		if tl := m.tel; tl != nil {
			tl.Miss(cls, false, end)
		}
		m.advance(c, ns, end)
		m.completeFill(c, n, b, write)
		return
	}

	// 5. The block cache.
	if m.bc != nil {
		st := m.bc[n].Lookup(b)
		if st == cache.Modified || (st == cache.Shared && localOK) {
			end := m.localAccess(start, n)
			ns.LocalMisses[cls]++
			ns.BlockCacheHits++
			if tl := m.tel; tl != nil {
				tl.Miss(cls, false, end)
			}
			m.advance(c, ns, end)
			m.completeFill(c, n, b, write)
			return
		}
		if st == cache.Shared {
			// Data is local but exclusivity is not: remote upgrade.
			end := m.roundTrip(start, n, h, m.ackWaveLatency(h, remote),
				msgHeaderBytes, msgHeaderBytes)
			ns.Upgrades++
			ns.BlockCacheHits++
			ns.TrafficBytes += 2 * msgHeaderBytes
			if tl := m.tel; tl != nil {
				tl.Traffic(n, 2*msgHeaderBytes, end)
			}
			m.invalidateSharers(n, h, b, remote, end)
			m.advance(c, ns, end)
			m.pol.OnRemoteUpgrade(c, n, p)
			m.completeFill(c, n, b, write)
			return
		}
	}

	// 6. Remote fetch from the home.
	extra := int64(0)
	owner, dirty := m.dir.IsDirtyRemote(b, n)
	if dirty && owner != h {
		// 3-hop: the home forwards the request to the dirty owner.
		extra += m.tm.DirtyRemoteExtra + m.forwardExtra(h, owner)
	}
	if write && remote != 0 {
		extra += m.ackWaveLatency(h, remote) // inval ack wave
	}
	end := m.roundTrip(start, n, h, extra, msgHeaderBytes, msgBlockBytes)
	if dirty {
		if owner != h {
			back := end - m.wireLatency(owner, h)
			m.ni[owner].Acquire(back, m.tm.NIOccupancy)
			// The forward leaves once the home has seen the request.
			m.fabric.Deliver(h, owner, msgHeaderBytes, back-m.wireLatency(h, owner))
			m.fabric.Deliver(owner, h, msgHeaderBytes, back)
			ns.TrafficBytes += 2 * msgHeaderBytes // forward + ack
			if tl := m.tel; tl != nil {
				tl.Traffic(n, 2*msgHeaderBytes, end)
			}
		}
		m.retrieveDirty(n, owner, b, write)
	}
	ns.RemoteMisses[cls]++
	ns.TrafficBytes += msgHeaderBytes + msgBlockBytes
	if tl := m.tel; tl != nil {
		tl.Miss(cls, true, end)
		tl.Traffic(n, msgHeaderBytes+msgBlockBytes, end)
	}
	m.pageMissTotal[p]++
	if write && remote != 0 {
		m.invalidateSharers(n, h, b, remote, end)
	}
	m.advance(c, ns, end)

	// Policy hook: home-side migration/replication counters and
	// cacher-side R-NUMA refetch counters. Page operations the policy
	// triggers run after the fill completes and are charged to this
	// CPU.
	m.pol.OnRemoteMiss(c, n, p, cls, write)
	m.completeFill(c, n, b, write)
}

// advance moves the CPU clock to end, accounting the stall.
//
//repro:hotpath
func (m *Machine) advance(c *engine.CPU, ns *stats.Node, end int64) {
	if end > c.Clock {
		ns.StallCycles += end - c.Clock
		c.Clock = end
	}
}

// retrieveDirty pulls the dirty copy of b away from owner: on a read the
// owner downgrades to Shared and memory is updated; on a write the
// owner's copies are invalidated.
//
//repro:hotpath
func (m *Machine) retrieveDirty(n, owner int, b memory.Block, write bool) {
	if write {
		m.invalidateOnNode(owner, b, true)
	} else {
		m.downgradeOnNode(owner, b)
		m.dir.WriteBack(b, owner)
		m.dir.AddSharer(b, owner)
	}
}

// completeFill performs the directory update and cache installation
// common to every fill path.
//
//repro:hotpath
func (m *Machine) completeFill(c *engine.CPU, n int, b memory.Block, write bool) {
	if write {
		inv := m.dir.SetOwner(b, n)
		for mask := inv &^ (1 << uint(n)); mask != 0; mask &= mask - 1 {
			m.invalidateOnNode(bits.TrailingZeros64(mask), b, true)
		}
		// Intra-node: sibling L1s lose their copies (the filling CPU does
		// not hold the block yet, so any counted copy is a sibling's).
		if m.l1count[n][b] > 0 {
			lo, hi := m.cpusOf(n)
			for i := lo; i < hi; i++ {
				if i == c.ID {
					continue
				}
				if present, _ := m.l1[i].Invalidate(b); present {
					m.l1count[n][b]--
				}
			}
		}
	} else {
		// An intra-node read of a block this node owns dirty must not
		// downgrade the directory: the data is still dirty on the node
		// (the sibling cache supplies it MOESI-style).
		de := m.dir.Entry(b)
		if !(de.State == directory.ModifiedState && int(de.Owner) == n) {
			m.dir.AddSharer(b, n)
		}
	}
	m.install(c, n, b, write)
}

// install places the block into the CPU's L1 (and the node's block cache
// or S-COMA frame when applicable), handling displaced victims.
//
//repro:hotpath
func (m *Machine) install(c *engine.CPU, n int, b memory.Block, write bool) {
	st := cache.Shared
	if write {
		st = cache.Modified
	}
	p := b.Page()
	e := m.pt.Entry(p)
	now := c.Clock

	// S-COMA frame: record block presence.
	if m.pc != nil && e.Home != n {
		if pe := m.pc[n].Entry(p); pe != nil {
			bit := uint64(1) << uint(b.Index())
			pe.Valid |= bit
			if write {
				pe.Dirty |= bit
			}
		}
	}

	// Block cache: remote pages only, maintaining inclusion.
	if m.bc != nil && e.Home != n && e.Mode[n] != memory.ModeReplica {
		v := m.bc[n].Insert(b, st)
		if v.Valid {
			m.evictFromBlockCache(n, v, now)
		}
	}

	v := m.l1[c.ID].Insert(b, st)
	m.l1count[n][b]++
	m.markCached(n, b)
	if v.Valid {
		m.evictFromL1(n, v, now)
	}
}

// evictFromL1 handles a victim displaced from a processor cache.
//
//repro:hotpath
func (m *Machine) evictFromL1(n int, v cache.Victim, now int64) {
	b := v.Block
	if m.l1count[n][b] > 0 {
		m.l1count[n][b]--
	}
	p := b.Page()
	e := m.pt.Entry(p)
	if v.Dirty {
		inPC := false
		if m.pc != nil && e.Home != n {
			if pe := m.pc[n].Entry(p); pe != nil && pe.Valid&(1<<uint(b.Index())) != 0 {
				pe.Dirty |= 1 << uint(b.Index())
				inPC = true
			}
		}
		switch {
		case inPC:
			// Dirty data lands in the S-COMA frame; no traffic.
		case m.bc != nil && e.Home != n && e.Mode[n] != memory.ModeReplica &&
			m.bc[n].Probe(b) != cache.Invalid:
			// Dirty data folds into the inclusive block cache.
			m.bc[n].SetState(b, cache.Modified)
		case e.Home == n:
			// Writeback to local memory over the bus.
			m.dir.WriteBack(b, n)
		default:
			m.writebackRemote(n, e.Home, b, now)
		}
	}
	if m.nodeHolds(n, b) {
		// Sibling caches still hold a (now clean) copy: the writeback
		// above must not deregister the node.
		if v.Dirty {
			m.dir.AddSharer(b, n)
		}
	} else {
		// Final departure by eviction. A silently dropped clean copy
		// leaves the directory conservative; dirty departures were
		// written back above.
		m.flags[n][b] &^= flagDepartInval
	}
}

// evictFromBlockCache handles a victim displaced from the block cache,
// enforcing inclusion over the node's L1s.
//
//repro:hotpath
func (m *Machine) evictFromBlockCache(n int, v cache.Victim, now int64) {
	b := v.Block
	dirty := v.Dirty
	if m.l1count[n][b] > 0 {
		lo, hi := m.cpusOf(n)
		for c := lo; c < hi; c++ {
			if present, d := m.l1[c].Invalidate(b); present {
				m.l1count[n][b]--
				dirty = dirty || d
			}
		}
	}
	if dirty {
		m.writebackRemote(n, m.pt.Entry(b.Page()).Home, b, now)
	}
	m.flags[n][b] &^= flagDepartInval // capacity departure
}
