// Package dsm implements the simulated DSM cluster machines the paper
// compares: CC-NUMA with a finite or infinite (perfect) block cache,
// CC-NUMA with page migration and/or replication (MigRep), R-NUMA with a
// finite, halved or infinite S-COMA page cache, and the R-NUMA+MigRep
// integration.
//
// A single Machine executes a dependence-preserving application trace
// under a configurable timing model, applying the per-system policy
// described by a Spec. Every protocol message — fills, invalidations,
// writebacks, page moves and replica grants — is routed over the
// internal/interconnect fabric selected by the cluster's Net
// configuration, charging per-link traffic counters and, on multi-hop
// or bandwidth-limited fabrics, hop latency and link queuing.
//
// Page operations run through a small pageop layer that carries each
// operation's explicit event time, so their cost, traffic and
// serialization accounting cannot drift apart; a machine in audit mode
// (EnableAudit, or RunOptions.Audit) checks event-time discipline as it
// runs and the internal/audit conservation checks afterwards.
package dsm

import "repro/internal/config"

// Spec selects the remote-caching hardware and page-relocation policies
// of one simulated system.
type Spec struct {
	// Name labels the system in reports ("CC-NUMA", "R-NUMA", ...).
	Name string

	// BlockCacheBytes sizes the per-node CC-NUMA block cache. Zero
	// means no block cache (R-NUMA systems omit it).
	BlockCacheBytes int

	// InfiniteBlockCache builds the perfect CC-NUMA baseline.
	InfiniteBlockCache bool

	// PageCacheBytes sizes the per-node S-COMA page cache; meaningful
	// only when RNUMA is set. Zero with RNUMA set means unbounded.
	PageCacheBytes int

	// RNUMA enables reactive page relocation into the page cache.
	RNUMA bool

	// Migration enables home-driven page migration.
	Migration bool

	// Replication enables home-driven page replication.
	Replication bool

	// RelocDelayMisses, when non-zero, forbids R-NUMA relocation of a
	// page until it has accumulated this many remote misses, giving
	// migration/replication first shot at it (Section 6.4).
	RelocDelayMisses int

	// AlwaysSCOMA statically maps every remote page into the page cache
	// on first touch instead of reacting to refetch counters — the
	// S3.mp/ASCOMA-style policy the paper's related work contrasts
	// R-NUMA against. Requires RNUMA.
	AlwaysSCOMA bool
}

// HasBlockCache reports whether the system includes a block cache.
func (s Spec) HasBlockCache() bool {
	return s.InfiniteBlockCache || s.BlockCacheBytes > 0
}

// MigRep reports whether either page migration or replication is on.
func (s Spec) MigRep() bool { return s.Migration || s.Replication }

// PerfectCCNUMA is the normalization baseline: CC-NUMA with an infinite
// block cache.
func PerfectCCNUMA() Spec {
	return Spec{Name: "Perfect", InfiniteBlockCache: true}
}

// CCNUMA is the base system: a 64-KB 4-way inclusive block cache.
func CCNUMA() Spec {
	return Spec{Name: "CC-NUMA", BlockCacheBytes: config.BlockCacheBytes}
}

// Rep is CC-NUMA with page replication only.
func Rep() Spec {
	s := CCNUMA()
	s.Name = "Rep"
	s.Replication = true
	return s
}

// Mig is CC-NUMA with page migration only.
func Mig() Spec {
	s := CCNUMA()
	s.Name = "Mig"
	s.Migration = true
	return s
}

// MigRep is CC-NUMA with both page migration and replication.
func MigRep() Spec {
	s := CCNUMA()
	s.Name = "MigRep"
	s.Migration = true
	s.Replication = true
	return s
}

// RNUMA is the base R-NUMA system: no block cache, a 2.4-MB page cache.
func RNUMA() Spec {
	return Spec{Name: "R-NUMA", RNUMA: true, PageCacheBytes: config.PageCacheBytes}
}

// RNUMAInf is R-NUMA with an unbounded page cache.
func RNUMAInf() Spec {
	return Spec{Name: "R-NUMA-Inf", RNUMA: true}
}

// RNUMAHalf is R-NUMA with half the base page cache (1.2 MB).
func RNUMAHalf() Spec {
	return Spec{Name: "R-NUMA-1/2", RNUMA: true, PageCacheBytes: config.PageCacheBytes / 2}
}

// RNUMAHalfMigRep integrates page migration/replication with the halved
// R-NUMA, delaying relocation per Section 6.4.
func RNUMAHalfMigRep(delayMisses int) Spec {
	s := RNUMAHalf()
	s.Name = "R-NUMA-1/2+MigRep"
	s.Migration = true
	s.Replication = true
	s.RelocDelayMisses = delayMisses
	return s
}

// SCOMA is the static fine-grain caching ablation: every remote page is
// placed in the page cache on first touch, with no reactive selection.
// It shows why R-NUMA's hybrid beats an S-COMA-only design under page
// cache pressure (the trade-off the original R-NUMA paper established
// and this paper's related-work section revisits via S3.mp and ASCOMA).
func SCOMA() Spec {
	return Spec{
		Name:           "S-COMA",
		RNUMA:          true,
		PageCacheBytes: config.PageCacheBytes,
		AlwaysSCOMA:    true,
	}
}

// AllBaseSystems returns the systems of Figure 5 in presentation order.
func AllBaseSystems() []Spec {
	return []Spec{CCNUMA(), Rep(), Mig(), MigRep(), RNUMA(), RNUMAInf()}
}
