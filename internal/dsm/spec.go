// Package dsm implements the simulated DSM cluster machines the paper
// compares: CC-NUMA with a finite or infinite (perfect) block cache,
// CC-NUMA with page migration and/or replication (MigRep), R-NUMA with a
// finite, halved or infinite S-COMA page cache, and the R-NUMA+MigRep
// integration.
//
// A memory system is described in three layers:
//
//   - Spec is the hardware configuration: cache sizes, which counter
//     banks exist, which policy family is wired in. Spec.Validate
//     rejects contradictory configurations at construction time.
//   - Policy is the decision layer: the hooks (OnRemoteMiss,
//     OnRemoteUpgrade, OnHomeMiss, OnPageMapped, ChooseVictim) the
//     machine calls at the seams where the paper's systems differ.
//     Spec.NewPolicy installs a custom Policy; nil derives the default
//     composition (MigRep thresholds, R-NUMA refetch selection, static
//     S-COMA placement) from the Spec's flags.
//   - The registry (Register / Lookup / Systems) maps stable system
//     names — "ccnuma", "migrep", "rnuma-half-migrep", ... — to Spec
//     constructors, mirroring how internal/apps registers workloads.
//     CLIs and the harness resolve systems exclusively by these names,
//     so a new system (see ContentionMigRep) plugs in end to end
//     without touching the fault-handling core.
//
// A single Machine executes a dependence-preserving application trace
// under a configurable timing model, applying the Spec's hardware and
// the Policy's decisions. Every protocol message — fills,
// invalidations, writebacks, page moves and replica grants — is routed
// over the internal/interconnect fabric selected by the cluster's Net
// configuration, charging per-link traffic counters and, on multi-hop
// or bandwidth-limited fabrics, hop latency and link queuing.
//
// Page operations run through a small pageop layer that carries each
// operation's explicit event time, so their cost, traffic and
// serialization accounting cannot drift apart; a machine in audit mode
// (EnableAudit, or RunOptions.Audit) checks event-time discipline as it
// runs and the internal/audit conservation checks afterwards.
//
// Execution has two engines. Machine.Execute replays the trace on one
// clock-keyed event heap. Machine.ExecuteSharded (RunOptions.Shards >
// 1) partitions the cluster's nodes across goroutine-owned shards
// under the internal/engine/pdes conservative coordinator: each round,
// shards commit in parallel only the ops a read-only scan proves
// shard-local (sure L1 hits, pads, post-flip phase markers, retires)
// below a global horizon, and everything else — misses, page
// operations, barriers, locks — executes serially in exact global
// (Clock, CPU-ID) order through the same dispatch path. The two
// engines produce byte-identical statistics by construction; see
// shard.go for the soundness argument and the //repro:shardlocal
// static check that guards it.
package dsm

import (
	"fmt"

	"repro/internal/config"
)

// Spec selects the remote-caching hardware and page-relocation policies
// of one simulated system.
type Spec struct {
	// Name labels the system in reports ("CC-NUMA", "R-NUMA", ...).
	Name string

	// BlockCacheBytes sizes the per-node CC-NUMA block cache. Zero
	// means no block cache (R-NUMA systems omit it).
	BlockCacheBytes int

	// InfiniteBlockCache builds the perfect CC-NUMA baseline.
	InfiniteBlockCache bool

	// PageCacheBytes sizes the per-node S-COMA page cache; meaningful
	// only when RNUMA is set. Zero with RNUMA set means unbounded.
	PageCacheBytes int

	// RNUMA enables reactive page relocation into the page cache.
	RNUMA bool

	// Migration enables home-driven page migration.
	Migration bool

	// Replication enables home-driven page replication.
	Replication bool

	// RelocDelayMisses, when non-zero, forbids R-NUMA relocation of a
	// page until it has accumulated this many remote misses, giving
	// migration/replication first shot at it (Section 6.4).
	RelocDelayMisses int

	// AlwaysSCOMA statically maps every remote page into the page cache
	// on first touch instead of reacting to refetch counters — the
	// S3.mp/ASCOMA-style policy the paper's related work contrasts
	// R-NUMA against. Requires RNUMA.
	AlwaysSCOMA bool

	// NewPolicy, when non-nil, builds the machine's decision layer
	// instead of the default Spec-derived composition. It is how a
	// registered system installs a custom Policy (see
	// ContentionMigRep) without any change to the protocol core.
	NewPolicy func(Spec) Policy
}

// Validate rejects contradictory or meaningless configurations before
// a Machine is built from them. NewMachine calls it, so a bad Spec
// fails loudly instead of silently simulating something else.
func (s Spec) Validate() error {
	if s.BlockCacheBytes < 0 {
		return fmt.Errorf("dsm: spec %q: negative block cache size %d", s.Name, s.BlockCacheBytes)
	}
	if s.PageCacheBytes < 0 {
		return fmt.Errorf("dsm: spec %q: negative page cache size %d", s.Name, s.PageCacheBytes)
	}
	if s.PageCacheBytes > 0 && !s.RNUMA {
		return fmt.Errorf("dsm: spec %q: PageCacheBytes set without RNUMA (no S-COMA hardware to use it)", s.Name)
	}
	if s.AlwaysSCOMA && !s.RNUMA {
		return fmt.Errorf("dsm: spec %q: AlwaysSCOMA requires RNUMA (the page cache it maps into)", s.Name)
	}
	if s.RelocDelayMisses < 0 {
		return fmt.Errorf("dsm: spec %q: negative relocation delay %d", s.Name, s.RelocDelayMisses)
	}
	if s.RelocDelayMisses > 0 && !s.RNUMA {
		return fmt.Errorf("dsm: spec %q: RelocDelayMisses delays R-NUMA relocation but RNUMA is off", s.Name)
	}
	if s.RelocDelayMisses > 0 && !s.MigRep() {
		return fmt.Errorf("dsm: spec %q: RelocDelayMisses gives migration/replication first shot at a page, but neither is enabled", s.Name)
	}
	return nil
}

// HasBlockCache reports whether the system includes a block cache.
func (s Spec) HasBlockCache() bool {
	return s.InfiniteBlockCache || s.BlockCacheBytes > 0
}

// MigRep reports whether either page migration or replication is on.
func (s Spec) MigRep() bool { return s.Migration || s.Replication }

// PerfectCCNUMA is the normalization baseline: CC-NUMA with an infinite
// block cache.
func PerfectCCNUMA() Spec {
	return Spec{Name: "Perfect", InfiniteBlockCache: true}
}

// CCNUMA is the base system: a 64-KB 4-way inclusive block cache.
func CCNUMA() Spec {
	return Spec{Name: "CC-NUMA", BlockCacheBytes: config.BlockCacheBytes}
}

// Rep is CC-NUMA with page replication only.
func Rep() Spec {
	s := CCNUMA()
	s.Name = "Rep"
	s.Replication = true
	return s
}

// Mig is CC-NUMA with page migration only.
func Mig() Spec {
	s := CCNUMA()
	s.Name = "Mig"
	s.Migration = true
	return s
}

// MigRep is CC-NUMA with both page migration and replication.
func MigRep() Spec {
	s := CCNUMA()
	s.Name = "MigRep"
	s.Migration = true
	s.Replication = true
	return s
}

// RNUMA is the base R-NUMA system: no block cache, a 2.4-MB page cache.
func RNUMA() Spec {
	return Spec{Name: "R-NUMA", RNUMA: true, PageCacheBytes: config.PageCacheBytes}
}

// RNUMAInf is R-NUMA with an unbounded page cache.
func RNUMAInf() Spec {
	return Spec{Name: "R-NUMA-Inf", RNUMA: true}
}

// RNUMAHalf is R-NUMA with half the base page cache (1.2 MB).
func RNUMAHalf() Spec {
	return Spec{Name: "R-NUMA-1/2", RNUMA: true, PageCacheBytes: config.PageCacheBytes / 2}
}

// RNUMAHalfMigRep integrates page migration/replication with the halved
// R-NUMA, delaying relocation per Section 6.4.
func RNUMAHalfMigRep(delayMisses int) Spec {
	s := RNUMAHalf()
	s.Name = "R-NUMA-1/2+MigRep"
	s.Migration = true
	s.Replication = true
	s.RelocDelayMisses = delayMisses
	return s
}

// SCOMA is the static fine-grain caching ablation: every remote page is
// placed in the page cache on first touch, with no reactive selection.
// It shows why R-NUMA's hybrid beats an S-COMA-only design under page
// cache pressure (the trade-off the original R-NUMA paper established
// and this paper's related-work section revisits via S3.mp and ASCOMA).
func SCOMA() Spec {
	return Spec{
		Name:           "S-COMA",
		RNUMA:          true,
		PageCacheBytes: config.PageCacheBytes,
		AlwaysSCOMA:    true,
	}
}

// AllBaseSystems returns the systems of Figure 5 in presentation order.
func AllBaseSystems() []Spec {
	return []Spec{CCNUMA(), Rep(), Mig(), MigRep(), RNUMA(), RNUMAInf()}
}
