// Package config holds every architectural and protocol parameter of the
// simulated DSM cluster: cluster geometry, cache organization, the timing
// model of Table 3 of the paper, and the migration/replication and R-NUMA
// thresholds used across the experiments.
//
// All latencies and occupancies are expressed in 600-MHz processor cycles.
package config

import "fmt"

// Cluster geometry. These match the methodology section of the paper:
// eight 4-way SMP nodes, 64-byte coherence blocks and 4-KB pages.
const (
	DefaultNodes       = 8
	DefaultCPUsPerNode = 4

	BlockBytes = 64
	PageBytes  = 4096
	// BlocksPerPage is the number of coherence blocks in one page.
	BlocksPerPage = PageBytes / BlockBytes

	// BlockShift and PageShift convert byte addresses to block and page
	// numbers.
	BlockShift = 6
	PageShift  = 12
)

// Cache geometry defaults.
const (
	// L1Bytes is the per-processor cache size. The paper conservatively
	// assumes 16-KB direct-mapped processor caches to compensate for the
	// scaled-down SPLASH-2 data sets.
	L1Bytes = 16 * 1024

	// BlockCacheBytes is the per-node CC-NUMA block (cluster) cache,
	// sized to the sum of the four processor caches so that inclusion is
	// benign.
	BlockCacheBytes = 4 * L1Bytes

	// BlockCacheWays is the block-cache associativity. A modest
	// associativity mitigates inclusion-induced L1 invalidations, which
	// is the stated intent of sizing the cache to the sum of the L1s.
	BlockCacheWays = 4

	// PageCacheBytes is the S-COMA page cache of the base R-NUMA system:
	// a factor of 40 larger than the block cache, trading cheap DRAM for
	// SRAM as in the paper (2.4 MB).
	PageCacheBytes = 40 * BlockCacheBytes
)

// Timing is the full timing model. The zero value is not useful; use
// Default, Slow, or a modified copy.
type Timing struct {
	// NetworkLatency is the one-way point-to-point network latency.
	NetworkLatency int64

	// LocalMiss is the latency of an L1 miss satisfied on the node: by
	// local memory, by another processor cache, by the block cache, or
	// by the S-COMA page cache.
	LocalMiss int64

	// RemoteMiss is the round-trip latency of a clean 2-hop remote miss,
	// excluding queuing delays, which the engine adds at the bus and the
	// network interfaces.
	RemoteMiss int64

	// DirtyRemoteExtra is added when the home must forward the request
	// to a third-party owner (3-hop miss).
	DirtyRemoteExtra int64

	// SoftTrap is the cost of entering the operating system: page
	// faults, R-NUMA relocation interrupts, migration/replication traps.
	SoftTrap int64

	// TLBShootdown is the cost of invalidating the TLBs on one node.
	TLBShootdown int64

	// PageOpBase and PageOpPerBlock give the page allocation/replacement
	// and R-NUMA relocation cost: base (trap + unmap) plus a per-flushed-
	// block term. With 64 blocks this spans the paper's 3000~11500 range.
	PageOpBase     int64
	PageOpPerBlock int64

	// GatherBase and GatherPerBlock give the page invalidation and data
	// gathering cost of migration/replication (3000~11500).
	GatherBase     int64
	GatherPerBlock int64

	// CopyBase and CopyPerBlock give the page copy cost (8000~21800).
	CopyBase     int64
	CopyPerBlock int64

	// BusOccupancy is how long one block transaction holds the
	// split-transaction memory bus (100 MHz, 6:1 clock ratio).
	BusOccupancy int64

	// NIOccupancy is how long one message holds a network interface.
	NIOccupancy int64

	// HomeOccupancy is how long the home cluster device is busy per
	// protocol request (directory access and DRAM read).
	HomeOccupancy int64
}

// Thresholds gathers the page-selection policy parameters.
type Thresholds struct {
	// MigRepThreshold is the per-page miss-counter threshold that
	// triggers a migration or replication at the home.
	MigRepThreshold int

	// MigRepResetInterval is the per-page miss count after which the
	// page's counters are cleared.
	MigRepResetInterval int

	// RNUMAThreshold is the per-page refetch-counter threshold after
	// which a cacher relocates the page into its page cache.
	RNUMAThreshold int

	// RNUMADelayMisses, when non-zero, delays R-NUMA relocation of a
	// page until the page has seen this many misses. It implements the
	// R-NUMA+MigRep integration policy of Section 6.4 (32000).
	RNUMADelayMisses int
}

// Default returns the base (fast hardware support) timing model of
// Table 3.
func Default() Timing {
	return Timing{
		NetworkLatency:   80,
		LocalMiss:        104,
		RemoteMiss:       418,
		DirtyRemoteExtra: 160,
		SoftTrap:         3000,
		TLBShootdown:     300,
		PageOpBase:       3000,
		PageOpPerBlock:   128, // 3000 + 300 + 64*128 ≈ 11500 upper bound
		GatherBase:       3000,
		GatherPerBlock:   128,
		CopyBase:         8000,
		CopyPerBlock:     215, // 8000 + 64*215 ≈ 21800 upper bound
		BusOccupancy:     24,
		NIOccupancy:      20,
		HomeOccupancy:    30,
	}
}

// Slow returns the slow page-operation model of Section 6.2: soft traps
// and TLB shootdowns cost ten times more, and each page copy pays an
// additional 6000-cycle penalty. Block-level timing is unchanged.
func Slow() Timing {
	t := Default()
	t.SoftTrap = 30000
	t.TLBShootdown = 3000
	t.CopyBase += 6000
	return t
}

// ScaleNetwork returns a copy of t with the network latency and the
// remote-miss round trip scaled by factor, holding local latency fixed.
// factor=4 yields the remote:local ratio of 16 studied in Section 6.3.
func (t Timing) ScaleNetwork(factor int64) Timing {
	s := t
	s.NetworkLatency *= factor
	// The round trip contains two network traversals; the remainder is
	// node-local overhead that does not scale with the wire.
	fixed := t.RemoteMiss - 2*t.NetworkLatency
	s.RemoteMiss = fixed + 2*s.NetworkLatency
	s.DirtyRemoteExtra = t.DirtyRemoteExtra * factor
	return s
}

// PaperThresholds returns the paper's fast-system policy parameters: a
// migration/replication threshold of 800 misses with a 32000-miss reset
// interval, and an R-NUMA switching threshold of 32 misses. These were
// tuned for full-size SPLASH-2 runs that incur roughly eight times more
// misses per page than our scaled inputs.
func PaperThresholds() Thresholds {
	return Thresholds{
		MigRepThreshold:     800,
		MigRepResetInterval: 32000,
		RNUMAThreshold:      32,
	}
}

// DefaultThresholds returns the policy parameters used by the
// experiments: the paper's migration/replication threshold and reset
// interval scaled by the same ~8x factor as the application inputs (the
// paper notes the values were "selected so as to optimize performance
// over all benchmarks", i.e. they are workload-scale-dependent), and the
// paper's R-NUMA threshold of 32 misses, which is already small relative
// to per-page miss counts and needs no rescaling.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MigRepThreshold:     100,
		MigRepResetInterval: 4000,
		RNUMAThreshold:      32,
	}
}

// SlowThresholds returns the slow-system policy parameters of Section
// 6.2 — the paper raises the migration/replication threshold by 1.5x
// (800 to 1200) and doubles the R-NUMA threshold (32 to 64) to keep page
// operation frequency from thrashing; we apply the same ratios to the
// scaled defaults.
func SlowThresholds() Thresholds {
	t := DefaultThresholds()
	t.MigRepThreshold = t.MigRepThreshold * 3 / 2
	t.RNUMAThreshold *= 2
	return t
}

// Interconnect topology names accepted by Network.Topology.
const (
	TopoCrossbar = "crossbar"
	TopoRing     = "ring"
	TopoMesh     = "mesh"
	TopoFatTree  = "fattree"
)

// DefaultFatTreeArity is the number of nodes per leaf switch when
// Network.FatTreeArity is zero, shared by Validate and the fabric
// constructor so they accept exactly the same configurations.
const DefaultFatTreeArity = 4

// Network selects and parameterizes the interconnect fabric model built
// by internal/interconnect. The zero value is the ideal crossbar with
// the flat Table 3 network latency and infinite link bandwidth, which
// reproduces the paper's original single-latency network exactly.
type Network struct {
	// Topology names the fabric graph: TopoCrossbar (every node pair
	// one dedicated hop), TopoRing (bidirectional ring, shortest-path
	// routing), TopoMesh (2D mesh, dimension-order routing) or
	// TopoFatTree (two-level tree, up-down routing). Empty selects the
	// crossbar.
	Topology string

	// HopLatency is the per-hop wire-plus-switch latency in cycles.
	// Zero uses Timing.NetworkLatency, so that the one-hop crossbar
	// matches the flat model and multi-hop fabrics pay proportionally
	// more per traversal.
	HopLatency int64

	// LinkBytesPerCycle models finite link bandwidth: a message of B
	// bytes occupies every link on its route for ceil(B /
	// LinkBytesPerCycle) cycles, with FIFO queuing per link. Zero means
	// infinite bandwidth (contentionless links).
	LinkBytesPerCycle int64

	// MeshWidth is the mesh column count; zero picks the most nearly
	// square factorization of the node count.
	MeshWidth int

	// FatTreeArity is the number of nodes per leaf switch; zero means 4
	// (one leaf per SMP pair of the paper's 8-node cluster would be 2;
	// 4 gives two leaves under one root).
	FatTreeArity int
}

// Kind returns the effective topology name, resolving the empty default
// to the crossbar.
func (n Network) Kind() string {
	if n.Topology == "" {
		return TopoCrossbar
	}
	return n.Topology
}

// Validate reports whether the network parameters are usable for a
// cluster of the given node count.
func (n Network) Validate(nodes int) error {
	switch n.Kind() {
	case TopoCrossbar, TopoRing:
	case TopoMesh:
		if w := n.MeshWidth; w != 0 {
			if w < 1 || nodes%w != 0 {
				return fmt.Errorf("config: mesh width %d does not tile %d nodes", w, nodes)
			}
		}
	case TopoFatTree:
		a := n.FatTreeArity
		if a == 0 {
			a = DefaultFatTreeArity
		}
		if a < 1 || nodes%a != 0 {
			return fmt.Errorf("config: fat-tree arity %d does not divide %d nodes", a, nodes)
		}
	default:
		return fmt.Errorf("config: unknown topology %q", n.Topology)
	}
	if n.HopLatency < 0 || n.LinkBytesPerCycle < 0 {
		return fmt.Errorf("config: negative network parameter")
	}
	return nil
}

// Cluster describes the simulated machine shape.
type Cluster struct {
	Nodes       int
	CPUsPerNode int

	// Net selects the interconnect fabric; the zero value is the ideal
	// crossbar of the original paper.
	Net Network
}

// DefaultCluster returns the 8×4 cluster of the paper.
func DefaultCluster() Cluster {
	return Cluster{Nodes: DefaultNodes, CPUsPerNode: DefaultCPUsPerNode}
}

// TotalCPUs returns the number of processors in the cluster.
func (c Cluster) TotalCPUs() int { return c.Nodes * c.CPUsPerNode }

// Validate reports whether the cluster shape is usable.
func (c Cluster) Validate() error {
	if c.Nodes <= 0 || c.CPUsPerNode <= 0 {
		return fmt.Errorf("config: invalid cluster %dx%d", c.Nodes, c.CPUsPerNode)
	}
	if c.Nodes > 64 {
		return fmt.Errorf("config: node count %d exceeds the 64-node sharer-set limit", c.Nodes)
	}
	return c.Net.Validate(c.Nodes)
}

// PageOpCost returns the cost of a page allocation/replacement or R-NUMA
// relocation that flushed the given number of blocks, including the soft
// trap and the local TLB shootdown.
func (t Timing) PageOpCost(flushedBlocks int) int64 {
	return t.PageOpBase + t.TLBShootdown + int64(flushedBlocks)*t.PageOpPerBlock
}

// GatherCost returns the page invalidation and data gathering cost of a
// migration/replication over the given number of flushed blocks. The
// base system has hardware page-flush support, so cachers do not trap.
func (t Timing) GatherCost(flushedBlocks int) int64 {
	return t.GatherBase + t.TLBShootdown + int64(flushedBlocks)*t.GatherPerBlock
}

// CopyCost returns the page copy cost over the given number of moved
// blocks.
func (t Timing) CopyCost(movedBlocks int) int64 {
	return t.CopyBase + int64(movedBlocks)*t.CopyPerBlock
}
