package config

import "testing"

func TestDefaultMatchesTable3(t *testing.T) {
	tm := Default()
	if tm.NetworkLatency != 80 {
		t.Errorf("network latency = %d, want 80", tm.NetworkLatency)
	}
	if tm.LocalMiss != 104 {
		t.Errorf("local miss = %d, want 104", tm.LocalMiss)
	}
	if tm.RemoteMiss != 418 {
		t.Errorf("remote miss = %d, want 418", tm.RemoteMiss)
	}
	if tm.SoftTrap != 3000 {
		t.Errorf("soft trap = %d, want 3000", tm.SoftTrap)
	}
	if tm.TLBShootdown != 300 {
		t.Errorf("TLB shootdown = %d, want 300", tm.TLBShootdown)
	}
}

func TestPageOpCostRange(t *testing.T) {
	tm := Default()
	lo := tm.PageOpCost(0)
	hi := tm.PageOpCost(BlocksPerPage)
	// Table 3: allocation/replacement or relocation spans 3000~11500.
	if lo < 3000 || lo > 4000 {
		t.Errorf("min page op cost = %d, want ~3000", lo)
	}
	if hi < 11000 || hi > 12000 {
		t.Errorf("max page op cost = %d, want ~11500", hi)
	}
}

func TestGatherCostRange(t *testing.T) {
	tm := Default()
	if got := tm.GatherCost(0); got < 3000 || got > 4000 {
		t.Errorf("min gather = %d, want ~3000", got)
	}
	if got := tm.GatherCost(BlocksPerPage); got < 11000 || got > 12000 {
		t.Errorf("max gather = %d, want ~11500", got)
	}
}

func TestCopyCostRange(t *testing.T) {
	tm := Default()
	if got := tm.CopyCost(0); got != 8000 {
		t.Errorf("min copy = %d, want 8000", got)
	}
	if got := tm.CopyCost(BlocksPerPage); got < 21000 || got > 22000 {
		t.Errorf("max copy = %d, want ~21800", got)
	}
}

func TestCostsMonotonicInBlocks(t *testing.T) {
	tm := Default()
	for b := 1; b <= BlocksPerPage; b++ {
		if tm.PageOpCost(b) <= tm.PageOpCost(b-1) {
			t.Fatalf("PageOpCost not increasing at %d blocks", b)
		}
		if tm.CopyCost(b) <= tm.CopyCost(b-1) {
			t.Fatalf("CopyCost not increasing at %d blocks", b)
		}
	}
}

func TestSlowScalesTraps(t *testing.T) {
	fast, slow := Default(), Slow()
	if slow.SoftTrap != 10*fast.SoftTrap {
		t.Errorf("slow trap = %d, want %d", slow.SoftTrap, 10*fast.SoftTrap)
	}
	if slow.TLBShootdown != 10*fast.TLBShootdown {
		t.Errorf("slow TLB = %d, want %d", slow.TLBShootdown, 10*fast.TLBShootdown)
	}
	if slow.CopyBase != fast.CopyBase+6000 {
		t.Errorf("slow copy base = %d, want %d", slow.CopyBase, fast.CopyBase+6000)
	}
	// Block-level timing is unchanged.
	if slow.RemoteMiss != fast.RemoteMiss || slow.LocalMiss != fast.LocalMiss {
		t.Error("slow system must not change block timing")
	}
}

func TestScaleNetwork(t *testing.T) {
	tm := Default().ScaleNetwork(4)
	if tm.NetworkLatency != 320 {
		t.Errorf("scaled latency = %d, want 320", tm.NetworkLatency)
	}
	// The remote round trip contains exactly two wire traversals.
	want := Default().RemoteMiss - 2*80 + 2*320
	if tm.RemoteMiss != want {
		t.Errorf("scaled remote miss = %d, want %d", tm.RemoteMiss, want)
	}
	if tm.LocalMiss != Default().LocalMiss {
		t.Error("network scaling must not change local latency")
	}
}

func TestScaleNetworkIdentity(t *testing.T) {
	if got := Default().ScaleNetwork(1); got != Default() {
		t.Errorf("ScaleNetwork(1) changed the model: %+v", got)
	}
}

func TestThresholdRatios(t *testing.T) {
	d, s, p := DefaultThresholds(), SlowThresholds(), PaperThresholds()
	// The paper raises MigRep by 1.5x and doubles R-NUMA when slow.
	if s.MigRepThreshold*2 != d.MigRepThreshold*3 {
		t.Errorf("slow MigRep threshold %d is not 1.5x of %d", s.MigRepThreshold, d.MigRepThreshold)
	}
	if s.RNUMAThreshold != 2*d.RNUMAThreshold {
		t.Errorf("slow R-NUMA threshold %d is not 2x of %d", s.RNUMAThreshold, d.RNUMAThreshold)
	}
	if p.MigRepThreshold != 800 || p.MigRepResetInterval != 32000 || p.RNUMAThreshold != 32 {
		t.Errorf("paper thresholds changed: %+v", p)
	}
}

func TestClusterValidate(t *testing.T) {
	if err := DefaultCluster().Validate(); err != nil {
		t.Fatalf("default cluster invalid: %v", err)
	}
	bad := []Cluster{
		{Nodes: 0, CPUsPerNode: 4},
		{Nodes: 8, CPUsPerNode: 0},
		{Nodes: -1, CPUsPerNode: 4},
		{Nodes: 65, CPUsPerNode: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("cluster %+v validated but should not", c)
		}
	}
	if got := DefaultCluster().TotalCPUs(); got != 32 {
		t.Errorf("total cpus = %d, want 32", got)
	}
}

func TestNetworkValidate(t *testing.T) {
	if got := (Network{}).Kind(); got != TopoCrossbar {
		t.Errorf("zero network kind = %q, want crossbar", got)
	}
	good := []Network{
		{},
		{Topology: TopoRing, LinkBytesPerCycle: 8},
		{Topology: TopoMesh, MeshWidth: 4},
		{Topology: TopoFatTree, FatTreeArity: 4},
	}
	for _, n := range good {
		if err := n.Validate(8); err != nil {
			t.Errorf("network %+v rejected: %v", n, err)
		}
	}
	bad := []Network{
		{Topology: "torus"},
		{Topology: TopoMesh, MeshWidth: 3},
		{Topology: TopoFatTree, FatTreeArity: 5},
		{HopLatency: -1},
	}
	for _, n := range bad {
		if err := n.Validate(8); err == nil {
			t.Errorf("network %+v validated but should not", n)
		}
	}
	// The implicit default arity (4) must be validated too: what
	// Validate blesses, the fabric constructor must accept.
	if err := (Network{Topology: TopoFatTree}).Validate(6); err == nil {
		t.Error("fat-tree with default arity over 6 nodes validated")
	}
	cl := DefaultCluster()
	cl.Net.Topology = "torus"
	if err := cl.Validate(); err == nil {
		t.Error("cluster with unknown topology validated")
	}
}

func TestGeometryConstants(t *testing.T) {
	if BlocksPerPage != 64 {
		t.Errorf("blocks per page = %d, want 64", BlocksPerPage)
	}
	if 1<<BlockShift != BlockBytes {
		t.Error("block shift inconsistent with block size")
	}
	if 1<<PageShift != PageBytes {
		t.Error("page shift inconsistent with page size")
	}
	if BlockCacheBytes != 4*L1Bytes {
		t.Error("block cache must equal the sum of the four L1s")
	}
	if PageCacheBytes != 40*BlockCacheBytes {
		t.Error("page cache must be 40x the block cache")
	}
}
