// Package repro is a reproduction of Lai & Falsafi, "Comparing the
// Effectiveness of Fine-Grain Memory Caching against Page
// Migration/Replication in Reducing Traffic in DSM Clusters" (SPAA
// 2000): a simulated cluster of eight 4-way SMPs with CC-NUMA,
// CC-NUMA+MigRep and R-NUMA memory systems, seven SPLASH-2-style
// shared-memory applications, and a harness regenerating every table and
// figure of the paper's evaluation.
//
// See README.md for the layout, cmd/experiments for the reproduction
// driver, and bench_test.go (this directory) for per-figure benchmarks.
package repro
