// Package repro is a reproduction of Lai & Falsafi, "Comparing the
// Effectiveness of Fine-Grain Memory Caching against Page
// Migration/Replication in Reducing Traffic in DSM Clusters" (SPAA
// 2000): a simulated cluster of eight 4-way SMPs with CC-NUMA,
// CC-NUMA+MigRep and R-NUMA memory systems, seven SPLASH-2-style
// shared-memory applications, and a harness regenerating every table and
// figure of the paper's evaluation.
//
// Beyond the paper, internal/interconnect models the cluster fabric as
// an explicit graph with pluggable topologies (ideal crossbar, ring, 2D
// mesh, fat-tree), deterministic routing, per-link byte counters and
// optional finite link bandwidth; every protocol message the machines
// exchange is routed over it. The default ideal crossbar reproduces the
// paper's flat network-latency model exactly, while the harness's
// topology-sweep experiment (cmd/experiments -experiment toposweep)
// re-runs the Figure 5 comparison across fabrics and reports maximum
// per-link and bisection traffic — where migration/replication's bulk
// 4-KB page moves congest links that fine-grain 64-byte caching does
// not.
//
// The simulator audits itself. Every page operation and asynchronous
// writeback carries an explicit event time, and audit mode — on by
// default in cmd/experiments and cmd/dsmsim (-audit=false disables),
// always on in the harness tests — enforces event-time discipline while
// a machine runs (no fabric injection in the simulated past, no
// page-busy regression, in-order dispatch) and runs the internal/audit
// conservation checks over every finished run: summed per-node traffic
// counters must equal the fabric's per-pair injected bytes, per-link
// bytes must equal the hop-weighted pair totals, and the directory must
// agree with the caches. A protocol path that skews the paper's traffic
// tables therefore fails loudly instead of silently.
//
// See README.md for the layout, cmd/experiments for the reproduction
// driver, and bench_test.go (this directory) for per-figure benchmarks.
package repro
