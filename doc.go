// Package repro is a reproduction of Lai & Falsafi, "Comparing the
// Effectiveness of Fine-Grain Memory Caching against Page
// Migration/Replication in Reducing Traffic in DSM Clusters" (SPAA
// 2000): a simulated cluster of eight 4-way SMPs with CC-NUMA,
// CC-NUMA+MigRep and R-NUMA memory systems, seven SPLASH-2-style
// shared-memory applications, and a harness regenerating every table and
// figure of the paper's evaluation.
//
// # Memory systems are pluggable policies
//
// The paper's whole contribution is a comparison across memory-system
// policies, so the policy layer is a first-class API. A system is
// described in three layers (internal/dsm): a Spec carries the
// hardware configuration and is validated at construction; a Policy
// supplies the decision hooks the fault paths call (remote-miss
// handling, relocation decisions, page-cache eviction choice,
// per-interval counter maintenance); and a package-level registry
// (dsm.Register / dsm.Lookup / dsm.Systems) maps stable names —
// "ccnuma", "migrep", "rnuma-half-migrep", ... — to Spec constructors,
// mirroring how internal/apps registers workloads. Every CLI and the
// harness resolve systems only by these names, so a new policy plugs
// in end to end without touching the protocol core; the
// contention-aware "migrep-contend" (defer page moves while their
// route is the fabric's hot spot) is registered exactly this way.
//
// # Experiments return structured results
//
// internal/harness runs each experiment (fig5, table4, fig6, fig7,
// fig8, toposweep) over any registered system set (Options.Systems)
// and returns a structured Result: one Record per (application,
// system, fabric) run with normalized time, miss and page-operation
// breakdowns, traffic, and interconnect hot-link/bisection statistics.
// Rendering is separate from running — WriteText reproduces the
// paper-style tables (locked byte-for-byte by golden tests), WriteCSV
// and WriteJSON emit the flat records.
//
// # Beyond the paper
//
// internal/interconnect models the cluster fabric as an explicit graph
// with pluggable topologies (ideal crossbar, ring, 2D mesh, fat-tree),
// deterministic routing, per-link byte counters and optional finite
// link bandwidth; every protocol message the machines exchange is
// routed over it. The default ideal crossbar reproduces the paper's
// flat network-latency model exactly, while the topology-sweep
// experiment (cmd/experiments -experiment toposweep) re-runs the
// Figure 5 comparison across fabrics and reports maximum per-link and
// bisection traffic — where migration/replication's bulk 4-KB page
// moves congest links that fine-grain 64-byte caching does not.
//
// internal/telemetry adds time-resolved observability on top of the
// end-of-run statistics: windowed series keyed by simulated time (page
// operations by kind, misses by class, per-node traffic, per-link
// fabric bytes, dispatches), a timeline of discrete page operations
// exportable as Chrome trace-event JSON (loadable in Perfetto) and
// CSV, and run manifests that pin each result to its exact inputs —
// content-addressed trace hashes, systems, fabric, scale, seed, wall
// time and build metadata. Collection is strictly observational
// (byte-identical statistics with it on or off, a tested invariant)
// and opt-in per run: -telemetry/-timeline/-window/-progress on both
// CLIs, Options.Telemetry in the harness, RunOptions.Telemetry at the
// dsm layer. Every windowed series sums exactly to its aggregate
// counter, so the time-resolved view never disagrees with the tables.
//
// The simulator audits itself. Every page operation and asynchronous
// writeback carries an explicit event time, and audit mode — on by
// default in cmd/experiments and cmd/dsmsim (-audit=false disables),
// always on in the harness tests — enforces event-time discipline while
// a machine runs (no fabric injection in the simulated past, no
// page-busy regression, in-order dispatch) and runs the internal/audit
// conservation checks over every finished run: summed per-node traffic
// counters must equal the fabric's per-pair injected bytes, per-link
// bytes must equal the hop-weighted pair totals, and the directory must
// agree with the caches. A protocol path that skews the paper's traffic
// tables therefore fails loudly instead of silently.
//
// internal/serve turns the simulator into a service: cmd/dsmserve
// answers capacity-planning queries (experiment, apps, systems,
// fabric, scale, seed) over HTTP/JSON with the exact Record documents
// cmd/experiments -json emits — byte-identical, a tested invariant —
// from a three-layer stack built for concurrent traffic: responses
// memoized content-addressed (the trace store's cache-key discipline
// applied to whole results, in a bounded LRU over an optional
// CRC-framed on-disk store), identical concurrent cold queries
// coalesced into a single flight so a thundering herd runs one
// simulation, and cold work bounded by a worker pool that sheds
// overload with 429 + Retry-After and drains cleanly on SIGTERM.
// cmd/dsmload (internal/serve/loadtest) load-tests a running server
// with thousands of concurrent mixed hot/cold queries and reports
// QPS, latency percentiles and per-layer hit counts; the bench
// suite's ServeLoad case commits those numbers to the BENCH_*.json
// trajectory.
//
// What the run-time audits enforce dynamically, internal/lint enforces
// statically: repolint (cmd/repolint, also runnable as a go vet
// -vettool and inside go test via the root lint_test.go) is a
// go/analysis-style suite that rejects nondeterministic map iteration
// in the core, wall-clock and global-randomness reads in simulation
// packages, literal-0 event times on fabric and page-op seams, and
// allocating constructs in functions annotated //repro:hotpath, and
// requires every telemetry hook in the core to sit behind a nil guard.
// The invariants the golden files, the content-addressed trace store
// and the benchmark guards test by example are thus also checked at
// compile time, on every path.
//
// See README.md for a quickstart, cmd/experiments for the reproduction
// driver, and bench_test.go (this directory) for per-figure benchmarks.
package repro
