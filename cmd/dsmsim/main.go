// Command dsmsim runs one application on one or more simulated DSM
// systems and prints the collected statistics.
//
// Usage:
//
//	dsmsim -app lu -system rnuma [-scale 4] [-slow] [-netscale 4] [-audit=false]
//	dsmsim -app lu -systems ccnuma,migrep,migrep-contend -normalize
//	dsmsim -app radix -tracestore .tracestore   # reuse traces across runs
//	dsmsim -app migratory -system migrep -telemetry out/ -timeline
//	dsmsim -list
//
// Systems resolve through the dsm registry (see -list for names):
// perfect, ccnuma, rep, mig, migrep, rnuma, rnuma-inf, rnuma-half,
// rnuma-half-migrep, scoma, migrep-contend, and anything registered
// since.
//
// -tracestore names a directory of the content-addressed on-disk trace
// store (internal/trace/store): the workload is loaded from disk when
// present and saved after generation otherwise. It defaults to off so
// generation timings stay cold.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		appName  = flag.String("app", "lu", "application (see -list)")
		system   = flag.String("system", "ccnuma", "system to simulate (see -list)")
		systems  = flag.String("systems", "", "comma-separated systems to simulate in sequence (overrides -system)")
		scale    = flag.Int("scale", 1, "problem-size divisor (1 = full size)")
		slow     = flag.Bool("slow", false, "use slow page-operation support")
		netScale = flag.Int64("netscale", 1, "network latency multiplier")
		audit    = flag.Bool("audit", true, "run with event-time and traffic-conservation audits (internal/audit)")
		shards   = flag.Int("shards", 0, "run on the sharded conservative-PDES engine with this many node-partition shards (0/1 = sequential; must evenly divide the cluster's nodes; results are byte-identical)")
		baseline = flag.Bool("normalize", false, "also run perfect CC-NUMA and print normalized time")
		perNode  = flag.Bool("pernode", false, "print the per-node statistics table")
		list     = flag.Bool("list", false, "list applications and systems, then exit")
		tsDir    = flag.String("tracestore", "", "directory of the on-disk trace store (empty = off; generation timings stay cold)")
		telDir   = flag.String("telemetry", "", "collect time-resolved telemetry and write windowed-series CSVs and a run manifest into this directory")
		timeline = flag.Bool("timeline", false, "with -telemetry, also record the page-operation timeline (Chrome trace JSON + CSV)")
		window   = flag.Int64("window", 0, "telemetry window width in simulated cycles (0 = default, 2^20)")
		progress = flag.Bool("progress", false, "log per-run completion with wall time to stderr")
	)
	flag.Parse()

	if *list {
		fmt.Println("applications:")
		for _, i := range apps.All() {
			fmt.Printf("  %-10s %s (default input: %s)\n", i.Name, i.Description, i.Input)
		}
		fmt.Println("systems:")
		for _, s := range dsm.Systems() {
			fmt.Printf("  %-18s %s\n", s.Name, s.Description)
		}
		return
	}

	tm, th := config.Default(), config.DefaultThresholds()
	if *slow {
		tm, th = config.Slow(), config.SlowThresholds()
	}
	if *netScale > 1 {
		tm = tm.ScaleNetwork(*netScale)
	}
	cl := config.DefaultCluster()

	app, err := apps.ByName(*appName)
	if err != nil {
		fail(err)
	}
	names := []string{*system}
	if *systems != "" {
		names = strings.Split(*systems, ",")
	}
	specs, err := dsm.ResolveSpecs(names, th)
	if err != nil {
		fail(err)
	}

	params := apps.Params{CPUs: cl.TotalCPUs(), Scale: *scale}
	var ts *store.Store // nil disables persistence
	if *tsDir != "" {
		if ts, err = store.Open(*tsDir); err != nil {
			fail(err)
		}
	}
	key := store.Key{App: app.Name, CPUs: params.CPUs, Scale: params.Scale, Seed: params.Seed}
	tr, hit, err := ts.LoadOrGenerate(key,
		func() (*trace.Trace, error) { return app.Generate(params) })
	if err != nil {
		fail(err)
	}
	src := "generated"
	if hit {
		src = "loaded from " + *tsDir
	}
	fmt.Printf("trace: %d ops, %.2f MB shared footprint, %d barriers, %d locks (%s)\n",
		tr.Ops(), float64(tr.Footprint)/(1<<20), tr.Barriers, tr.Locks, src)

	// The normalization baseline is system-independent: run it once.
	var base *stats.Sim
	if *baseline {
		base, err = dsm.RunWithOptions(tr, dsm.PerfectCCNUMA(), cl, config.Default(), th, dsm.RunOptions{Audit: *audit, Shards: *shards})
		if err != nil {
			fail(err)
		}
	}

	start := time.Now()
	for _, spec := range specs {
		ro := dsm.RunOptions{Audit: *audit, Shards: *shards}
		var col *telemetry.Collector
		if *telDir != "" {
			col = telemetry.New(telemetry.Config{Window: *window, Timeline: *timeline})
			ro.Telemetry = col
		}
		runStart := time.Now()
		sim, err := dsm.RunWithOptions(tr, spec, cl, tm, th, ro)
		if err != nil {
			fail(err)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "# run %s/%s done in %.2fs\n",
				app.Name, spec.Name, time.Since(runStart).Seconds())
		}
		fmt.Print(sim.Summary())
		if *perNode {
			fmt.Print(sim.PerNodeReport())
		}
		if base != nil {
			fmt.Printf("  normalized:     %.3f vs perfect CC-NUMA (%d cycles)\n",
				sim.Normalized(base), base.ExecCycles)
		}
		if col != nil {
			if err := writeTelemetry(*telDir, app.Name, spec.Name, col); err != nil {
				fail(err)
			}
		}
	}
	if *telDir != "" {
		man := telemetry.NewManifestAt(time.Now())
		man.App = app.Name
		man.Systems = names
		man.Fabric = cl.Net.Kind()
		man.Scale = *scale
		man.Seed = params.Seed
		man.Traces = []telemetry.TraceRef{{
			App: key.App, CPUs: key.CPUs, Scale: key.Scale, Seed: key.Seed, Hash: key.Filename(),
		}}
		man.WindowCycles = *window
		if man.WindowCycles <= 0 {
			man.WindowCycles = telemetry.DefaultWindow
		}
		man.Timeline = *timeline
		if *shards > 1 {
			man.Shards = *shards
		}
		man.WallSeconds = time.Since(start).Seconds()
		path := filepath.Join(*telDir, "dsmsim_"+app.Name+".manifest.json")
		if err := man.WriteFile(path); err != nil {
			fail(err)
		}
	}
}

// writeTelemetry renders one run's collector into dir as
// dsmsim_<app>_<system>.windows.csv plus, when the timeline was
// recorded, .timeline.json (Chrome trace event format) and
// .timeline.csv.
func writeTelemetry(dir, app, system string, col *telemetry.Collector) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stem := filepath.Join(dir, "dsmsim_"+app+"_"+system)
	write := func(path string, render func(w *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(stem+".windows.csv", func(f *os.File) error { return col.WriteWindowsCSV(f) }); err != nil {
		return err
	}
	if !col.TimelineEnabled() {
		return nil
	}
	if err := write(stem+".timeline.json", func(f *os.File) error { return col.WriteChromeTrace(f) }); err != nil {
		return err
	}
	return write(stem+".timeline.csv", func(f *os.File) error { return col.WriteTimelineCSV(f) })
}
