// Command dsmsim runs one application on one simulated DSM system and
// prints the collected statistics.
//
// Usage:
//
//	dsmsim -app lu -system rnuma [-scale 4] [-slow] [-netscale 4] [-audit=false]
//
// Systems: perfect, ccnuma, rep, mig, migrep, rnuma, rnuma-inf,
// rnuma-half, rnuma-half-migrep, scoma.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
)

func systemByName(name string, th config.Thresholds) (dsm.Spec, error) {
	switch strings.ToLower(name) {
	case "perfect":
		return dsm.PerfectCCNUMA(), nil
	case "ccnuma":
		return dsm.CCNUMA(), nil
	case "rep":
		return dsm.Rep(), nil
	case "mig":
		return dsm.Mig(), nil
	case "migrep":
		return dsm.MigRep(), nil
	case "rnuma":
		return dsm.RNUMA(), nil
	case "rnuma-inf":
		return dsm.RNUMAInf(), nil
	case "rnuma-half":
		return dsm.RNUMAHalf(), nil
	case "rnuma-half-migrep":
		return dsm.RNUMAHalfMigRep(th.MigRepResetInterval), nil
	case "scoma":
		return dsm.SCOMA(), nil
	default:
		return dsm.Spec{}, fmt.Errorf("unknown system %q", name)
	}
}

func main() {
	var (
		appName  = flag.String("app", "lu", "application (see -list)")
		system   = flag.String("system", "ccnuma", "system to simulate")
		scale    = flag.Int("scale", 1, "problem-size divisor (1 = full size)")
		slow     = flag.Bool("slow", false, "use slow page-operation support")
		netScale = flag.Int64("netscale", 1, "network latency multiplier")
		audit    = flag.Bool("audit", true, "run with event-time and traffic-conservation audits (internal/audit)")
		baseline = flag.Bool("normalize", false, "also run perfect CC-NUMA and print normalized time")
		perNode  = flag.Bool("pernode", false, "print the per-node statistics table")
		list     = flag.Bool("list", false, "list applications and exit")
	)
	flag.Parse()

	if *list {
		for _, i := range apps.All() {
			fmt.Printf("%-10s %s (default input: %s)\n", i.Name, i.Description, i.Input)
		}
		return
	}

	tm, th := config.Default(), config.DefaultThresholds()
	if *slow {
		tm, th = config.Slow(), config.SlowThresholds()
	}
	if *netScale > 1 {
		tm = tm.ScaleNetwork(*netScale)
	}
	cl := config.DefaultCluster()

	app, err := apps.ByName(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec, err := systemByName(*system, th)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tr, err := app.Generate(apps.Params{CPUs: cl.TotalCPUs(), Scale: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trace: %d ops, %.2f MB shared footprint, %d barriers, %d locks\n",
		tr.Ops(), float64(tr.Footprint)/(1<<20), tr.Barriers, tr.Locks)

	sim, err := dsm.RunWithOptions(tr, spec, cl, tm, th, dsm.RunOptions{Audit: *audit})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(sim.Summary())
	if *perNode {
		fmt.Print(sim.PerNodeReport())
	}

	if *baseline {
		base, err := dsm.RunWithOptions(tr, dsm.PerfectCCNUMA(), cl, config.Default(), th, dsm.RunOptions{Audit: *audit})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  normalized:     %.3f vs perfect CC-NUMA (%d cycles)\n",
			sim.Normalized(base), base.ExecCycles)
	}
}
