// Command dsmsim runs one application on one or more simulated DSM
// systems and prints the collected statistics.
//
// Usage:
//
//	dsmsim -app lu -system rnuma [-scale 4] [-slow] [-netscale 4] [-audit=false]
//	dsmsim -app lu -systems ccnuma,migrep,migrep-contend -normalize
//	dsmsim -app radix -tracestore .tracestore   # reuse traces across runs
//	dsmsim -list
//
// Systems resolve through the dsm registry (see -list for names):
// perfect, ccnuma, rep, mig, migrep, rnuma, rnuma-inf, rnuma-half,
// rnuma-half-migrep, scoma, migrep-contend, and anything registered
// since.
//
// -tracestore names a directory of the content-addressed on-disk trace
// store (internal/trace/store): the workload is loaded from disk when
// present and saved after generation otherwise. It defaults to off so
// generation timings stay cold.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/trace/store"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		appName  = flag.String("app", "lu", "application (see -list)")
		system   = flag.String("system", "ccnuma", "system to simulate (see -list)")
		systems  = flag.String("systems", "", "comma-separated systems to simulate in sequence (overrides -system)")
		scale    = flag.Int("scale", 1, "problem-size divisor (1 = full size)")
		slow     = flag.Bool("slow", false, "use slow page-operation support")
		netScale = flag.Int64("netscale", 1, "network latency multiplier")
		audit    = flag.Bool("audit", true, "run with event-time and traffic-conservation audits (internal/audit)")
		baseline = flag.Bool("normalize", false, "also run perfect CC-NUMA and print normalized time")
		perNode  = flag.Bool("pernode", false, "print the per-node statistics table")
		list     = flag.Bool("list", false, "list applications and systems, then exit")
		tsDir    = flag.String("tracestore", "", "directory of the on-disk trace store (empty = off; generation timings stay cold)")
	)
	flag.Parse()

	if *list {
		fmt.Println("applications:")
		for _, i := range apps.All() {
			fmt.Printf("  %-10s %s (default input: %s)\n", i.Name, i.Description, i.Input)
		}
		fmt.Println("systems:")
		for _, s := range dsm.Systems() {
			fmt.Printf("  %-18s %s\n", s.Name, s.Description)
		}
		return
	}

	tm, th := config.Default(), config.DefaultThresholds()
	if *slow {
		tm, th = config.Slow(), config.SlowThresholds()
	}
	if *netScale > 1 {
		tm = tm.ScaleNetwork(*netScale)
	}
	cl := config.DefaultCluster()

	app, err := apps.ByName(*appName)
	if err != nil {
		fail(err)
	}
	names := []string{*system}
	if *systems != "" {
		names = strings.Split(*systems, ",")
	}
	specs, err := dsm.ResolveSpecs(names, th)
	if err != nil {
		fail(err)
	}

	params := apps.Params{CPUs: cl.TotalCPUs(), Scale: *scale}
	var ts *store.Store // nil disables persistence
	if *tsDir != "" {
		if ts, err = store.Open(*tsDir); err != nil {
			fail(err)
		}
	}
	tr, hit, err := ts.LoadOrGenerate(
		store.Key{App: app.Name, CPUs: params.CPUs, Scale: params.Scale, Seed: params.Seed},
		func() (*trace.Trace, error) { return app.Generate(params) })
	if err != nil {
		fail(err)
	}
	src := "generated"
	if hit {
		src = "loaded from " + *tsDir
	}
	fmt.Printf("trace: %d ops, %.2f MB shared footprint, %d barriers, %d locks (%s)\n",
		tr.Ops(), float64(tr.Footprint)/(1<<20), tr.Barriers, tr.Locks, src)

	// The normalization baseline is system-independent: run it once.
	var base *stats.Sim
	if *baseline {
		base, err = dsm.RunWithOptions(tr, dsm.PerfectCCNUMA(), cl, config.Default(), th, dsm.RunOptions{Audit: *audit})
		if err != nil {
			fail(err)
		}
	}

	for _, spec := range specs {
		sim, err := dsm.RunWithOptions(tr, spec, cl, tm, th, dsm.RunOptions{Audit: *audit})
		if err != nil {
			fail(err)
		}
		fmt.Print(sim.Summary())
		if *perNode {
			fmt.Print(sim.PerNodeReport())
		}
		if base != nil {
			fmt.Printf("  normalized:     %.3f vs perfect CC-NUMA (%d cycles)\n",
				sim.Normalized(base), base.ExecCycles)
		}
	}
}
