// Command repolint runs the repository's analyzer suite (internal/lint)
// over Go packages: determinism (mapiter, walltime), event-time
// discipline (eventtime), hot-path hygiene (hotalloc) and the telemetry
// nil-guard contract (nilhook).
//
// Standalone, from the module root:
//
//	go run ./cmd/repolint ./...
//
// Exit status is 0 when the tree is clean, 2 when any analyzer reports
// a finding, and 1 on a load or typecheck error.
//
// The command also speaks enough of the vet driver protocol to run
// under the go command:
//
//	go build -o /tmp/repolint ./cmd/repolint
//	go vet -vettool=/tmp/repolint ./...
//
// In that mode the go command invokes the tool once per package with a
// .cfg file describing the unit (sources, import map, export data) and
// the tool analyzes just that package, so findings are incremental and
// cached like any other vet run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("repolint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (vet driver protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON (vet driver protocol)")
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *versionFlag != "" {
		// The go command hashes this line into its action cache key.
		fmt.Printf("repolint version %s\n", version())
		return 0
	}
	if *printFlags {
		// No analyzer takes flags; the driver expects a JSON array.
		fmt.Println("[]")
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0])
	}
	return runStandalone(rest)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: repolint [packages]\n\nAnalyzers:\n")
	for _, a := range lint.Suite() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
}

// version derives a stable version string from the suite composition,
// so adding an analyzer invalidates the go command's vet cache.
func version() string {
	names := make([]string, 0, len(lint.Suite()))
	for _, a := range lint.Suite() {
		names = append(names, a.Name)
	}
	return "1-" + strings.Join(names, "+")
}

// runStandalone loads the given package patterns (default ./...) from
// the current directory and applies the full suite.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, diags, err := lint.Run(".", lint.Suite(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", relPos(pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// relPos renders a position with a working-directory-relative filename
// when possible.
func relPos(pos token.Position) string {
	name := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d", name, pos.Line, pos.Column)
}

// vetConfig is the per-package unit description the go command hands a
// vettool (the fields this tool consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package a vet .cfg file describes.
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The suite has no cross-package facts, so the vetx output is an
	// empty placeholder — but the driver requires the file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The invariants govern shipped simulator code. Tests construct
	// collectors directly, replay at t=0 and range maps in assertions,
	// so the test-augmented units the go command also hands a vettool
	// are not analyzed — matching the standalone runner, which loads
	// only non-test files. The plain unit of each package is always a
	// separate invocation, so every shipped file is still covered.
	if isTestUnit(&cfg) {
		return 0
	}
	pkg, err := loadUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var diags []lint.Diagnostic
	for _, a := range lint.Suite() {
		pass := &lint.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d lint.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// isTestUnit reports whether the unit is a test variant: a package
// augmented with its _test.go files, an external _test package, or a
// generated test main.
func isTestUnit(cfg *vetConfig) bool {
	if strings.Contains(cfg.ImportPath, " [") ||
		strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return true
	}
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadUnit parses and typechecks the unit's sources, resolving imports
// through the export files the go command already built.
func loadUnit(cfg *vetConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("repolint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("repolint: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("repolint: typechecking %s: %v", cfg.ImportPath, err)
	}
	return &lint.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
