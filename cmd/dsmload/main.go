// Command dsmload load-tests a running dsmserve: it issues a pool of
// distinct queries from many concurrent clients — first arrivals are
// cold, repeats are hot, concurrent identical colds coalesce — and
// prints a JSON report with QPS, latency percentiles and per-layer
// counts (internal/serve/loadtest).
//
// Usage:
//
//	dsmserve -addr :8080 &
//	dsmload -url http://localhost:8080 -n 2000 -c 1000 -distinct 8
//
// The query pool is -distinct copies of the same experiment that
// differ only in seed (1..distinct), so the hot/cold mix is controlled
// by -n / -distinct. The command exits nonzero if any request fails
// outright; 429 responses are counted as rejected, not errors, since
// shedding load is the server behaving as designed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/serve/loadtest"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		requests    = flag.Int("n", 2000, "total requests to issue")
		concurrency = flag.Int("c", 1000, "concurrent in-flight requests")
		distinct    = flag.Int("distinct", 8, "distinct queries in the pool (seeds 1..distinct)")
		experiment  = flag.String("experiment", "fig5", "experiment each query runs")
		appsFlag    = flag.String("apps", "radix", "comma-separated app subset")
		systemsFlag = flag.String("systems", "ccnuma", "comma-separated system subset")
		scale       = flag.Int("scale", 64, "problem-size divisor")
		out         = flag.String("o", "", "write the JSON report to this file (default stdout)")
	)
	flag.Parse()

	if *distinct < 1 {
		return fmt.Errorf("dsmload: -distinct must be >= 1")
	}
	var queries []harness.Query
	for seed := 1; seed <= *distinct; seed++ {
		q := harness.Query{
			Experiment: *experiment,
			Apps:       strings.Split(*appsFlag, ","),
			Systems:    strings.Split(*systemsFlag, ","),
			Scale:      *scale,
			Seed:       uint64(seed),
		}.Normalize()
		if err := q.Validate(); err != nil {
			return fmt.Errorf("dsmload: %w", err)
		}
		queries = append(queries, q)
	}

	report, err := loadtest.Run(context.Background(), loadtest.Options{
		BaseURL:     *url,
		Queries:     queries,
		Requests:    *requests,
		Concurrency: *concurrency,
	})
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(buf)
	}
	if report.Errors > 0 {
		return fmt.Errorf("dsmload: %d of %d requests failed", report.Errors, report.Requests)
	}
	return nil
}
