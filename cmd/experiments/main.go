// Command experiments regenerates the paper's tables and figures, plus
// the topology-sweep extension.
//
// Usage:
//
//	experiments                       # run everything at full scale
//	experiments -experiment fig5      # one experiment
//	experiments -experiment toposweep # Figure 5 across interconnect fabrics
//	experiments -scale 4 -parallel 8  # smaller inputs, concurrent runs
//	experiments -experiment params    # print the encoded Tables 2 and 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/harness"
)

func printParams() {
	fmt.Println("Table 2: applications and input parameters")
	for _, i := range apps.Paper() {
		fmt.Printf("  %-10s %-48s %s\n", i.Name, i.Description, i.Input)
	}
	fmt.Println()
	fmt.Println("Table 3: base system cost assumptions (600 MHz processor cycles)")
	t := config.Default()
	rows := [][2]string{
		{"network latency", fmt.Sprint(t.NetworkLatency)},
		{"local miss latency", fmt.Sprint(t.LocalMiss)},
		{"round-trip remote miss latency", fmt.Sprint(t.RemoteMiss)},
		{"soft trap", fmt.Sprint(t.SoftTrap)},
		{"TLB shootdown", fmt.Sprint(t.TLBShootdown)},
		{"alloc/replacement or R-NUMA relocation", fmt.Sprintf("%d~%d", t.PageOpCost(0), t.PageOpCost(config.BlocksPerPage))},
		{"page invalidation and data gathering", fmt.Sprintf("%d~%d", t.GatherCost(0), t.GatherCost(config.BlocksPerPage))},
		{"page copying", fmt.Sprintf("%d~%d", t.CopyCost(0), t.CopyCost(config.BlocksPerPage))},
	}
	for _, r := range rows {
		fmt.Printf("  %-42s %s\n", r[0], r[1])
	}
	fmt.Println()
	fmt.Println("Thresholds: MigRep 800 misses (reset 32000), R-NUMA 32 misses;")
	fmt.Println("slow systems: 1200 and 64.")
}

func main() {
	var (
		exp      = flag.String("experiment", "all", "experiment: fig5, table4, fig6, fig7, fig8, toposweep, params, all")
		scale    = flag.Int("scale", 1, "problem-size divisor (1 = full size)")
		appsFlag = flag.String("apps", "", "comma-separated app subset (default: the paper's seven)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations per app (0 = serial)")
		verbose  = flag.Bool("verbose", false, "print per-run progress")
		audit    = flag.Bool("audit", true, "run every simulation with event-time and traffic-conservation audits (internal/audit)")
		csvPath  = flag.String("csv", "", "also append machine-readable rows to this file")
	)
	flag.Parse()

	if *exp == "params" {
		printParams()
		return
	}

	o := harness.Options{
		Scale:    *scale,
		Parallel: *parallel,
		Verbose:  *verbose,
		Audit:    *audit,
		Out:      os.Stdout,
	}
	if *appsFlag != "" {
		o.Apps = strings.Split(*appsFlag, ",")
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	names := harness.Experiments()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, n := range names {
		r, err := harness.RunByName(n, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if csvFile != nil {
			if err := r.WriteCSV(csvFile); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Println()
	}
}
