// Command experiments regenerates the paper's tables and figures, plus
// the topology-sweep extension.
//
// Usage:
//
//	experiments                             # run everything at full scale
//	experiments -experiment fig5            # one experiment
//	experiments -experiment fig5 -systems ccnuma,migrep-contend,rnuma
//	experiments -experiment toposweep       # Figure 5 across interconnect fabrics
//	experiments -experiment scalesweep -scales 8,16,32,64   # Figure 5 across problem scales
//	experiments -scale 4 -parallel 8        # smaller inputs, concurrent runs
//	experiments -json results.json -csv results.csv
//	experiments -tracestore .tracestore     # persist generated traces on disk
//	experiments -experiment params          # print the encoded Tables 2 and 3
//	experiments -list-systems               # print the memory-system registry
//	experiments -cpuprofile cpu.out -memprofile mem.out   # ad-hoc profiling
//	experiments -telemetry out/ -timeline   # windowed series + Perfetto timelines
//	experiments -progress                   # per-run completion lines on stderr
//
// Systems resolve through the dsm registry, so -systems accepts any
// registered name — including systems that postdate the paper, such as
// the contention-aware "migrep-contend".
//
// -tracestore names a directory for the content-addressed on-disk
// trace store (internal/trace/store): generated workloads are written
// there and later runs materialize them from disk instead of
// regenerating. It defaults to off so cold-generation timings stay
// measurable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/dsm"
	"repro/internal/harness"
	"repro/internal/trace/store"
)

func printParams() {
	fmt.Println("Table 2: applications and input parameters")
	for _, i := range apps.Paper() {
		fmt.Printf("  %-10s %-48s %s\n", i.Name, i.Description, i.Input)
	}
	fmt.Println()
	fmt.Println("Table 3: base system cost assumptions (600 MHz processor cycles)")
	t := config.Default()
	rows := [][2]string{
		{"network latency", fmt.Sprint(t.NetworkLatency)},
		{"local miss latency", fmt.Sprint(t.LocalMiss)},
		{"round-trip remote miss latency", fmt.Sprint(t.RemoteMiss)},
		{"soft trap", fmt.Sprint(t.SoftTrap)},
		{"TLB shootdown", fmt.Sprint(t.TLBShootdown)},
		{"alloc/replacement or R-NUMA relocation", fmt.Sprintf("%d~%d", t.PageOpCost(0), t.PageOpCost(config.BlocksPerPage))},
		{"page invalidation and data gathering", fmt.Sprintf("%d~%d", t.GatherCost(0), t.GatherCost(config.BlocksPerPage))},
		{"page copying", fmt.Sprintf("%d~%d", t.CopyCost(0), t.CopyCost(config.BlocksPerPage))},
	}
	for _, r := range rows {
		fmt.Printf("  %-42s %s\n", r[0], r[1])
	}
	fmt.Println()
	fmt.Println("Thresholds: MigRep 800 misses (reset 32000), R-NUMA 32 misses;")
	fmt.Println("slow systems: 1200 and 64.")
}

func printSystems() {
	fmt.Println("registered memory systems (dsm registry):")
	for _, s := range dsm.Systems() {
		fmt.Printf("  %-18s %s\n", s.Name, s.Description)
	}
}

// main delegates to run so that run's defers — in particular stopping
// and flushing the profiles — execute on every exit path, including
// errors. os.Exit lives only here.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp         = flag.String("experiment", "all", "experiment: fig5, table4, fig6, fig7, fig8, toposweep, scalesweep, params, all")
		scale       = flag.Int("scale", 1, "problem-size divisor (1 = full size)")
		seed        = flag.Uint64("seed", 0, "workload-generator seed (0 = the paper's inputs)")
		fabric      = flag.String("fabric", "", "interconnect override for every run: crossbar, ring, mesh, fattree (empty = experiment default)")
		scalesFlag  = flag.String("scales", "", "comma-separated scale ladder for -experiment scalesweep (default 8,16,32,64)")
		appsFlag    = flag.String("apps", "", "comma-separated app subset (default: the paper's seven)")
		systemsFlag = flag.String("systems", "", "comma-separated system override from the dsm registry (see -list-systems)")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations per app (0 = serial)")
		shards      = flag.Int("shards", 0, "run every simulation on the sharded conservative-PDES engine with this many node-partition shards (0/1 = sequential; must evenly divide the cluster's nodes; results are byte-identical)")
		verbose     = flag.Bool("verbose", false, "print per-run progress")
		audit       = flag.Bool("audit", true, "run every simulation with event-time and traffic-conservation audits (internal/audit)")
		csvPath     = flag.String("csv", "", "also write machine-readable CSV rows to this file")
		jsonPath    = flag.String("json", "", "also write the structured records as JSON to this file")
		listSystems = flag.Bool("list-systems", false, "list the registered memory systems and exit")
		traceStore  = flag.String("tracestore", "", "directory of the on-disk trace store (empty = off; generation timings stay cold)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
		telemetry   = flag.String("telemetry", "", "collect time-resolved telemetry and write windowed-series CSVs and a run manifest into this directory")
		timeline    = flag.Bool("timeline", false, "with -telemetry, also record per-run page-operation timelines (Chrome trace JSON + CSV)")
		window      = flag.Int64("window", 0, "telemetry window width in simulated cycles (0 = default, 2^20)")
		progress    = flag.Bool("progress", false, "log per-run completion with wall time to stderr")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Registered after the CPU-profile defers, so the heap snapshot
		// is taken (and the file written) before StopCPUProfile flushes;
		// a failure here must not lose the run's results, so it only
		// warns.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	if *listSystems {
		printSystems()
		return nil
	}
	if *exp == "params" {
		printParams()
		return nil
	}

	// The in-memory cache always shares each workload across
	// experiments; -tracestore adds the persistent tier underneath it.
	traces := harness.NewTraceCache()
	if *traceStore != "" {
		st, err := store.Open(*traceStore)
		if err != nil {
			return err
		}
		traces = harness.NewTraceCacheWithStore(st)
	}
	o := harness.Options{
		Scale:    *scale,
		Seed:     *seed,
		Fabric:   *fabric,
		Parallel: *parallel,
		Shards:   *shards,
		Verbose:  *verbose,
		Audit:    *audit,
		Traces:   traces,
		Out:      os.Stdout,
	}
	if *telemetry != "" {
		o.Telemetry = &harness.TelemetryOptions{Window: *window, Timeline: *timeline}
	}
	if *progress {
		o.Progress = os.Stderr
	}
	if *appsFlag != "" {
		o.Apps = strings.Split(*appsFlag, ",")
	}
	if *systemsFlag != "" {
		o.Systems = strings.Split(*systemsFlag, ",")
	}
	if *scalesFlag != "" {
		for _, f := range strings.Split(*scalesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return fmt.Errorf("experiments: bad -scales entry %q: %w", f, err)
			}
			o.Scales = append(o.Scales, n)
		}
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := harness.WriteCSVHeader(f); err != nil {
			return err
		}
		csvFile = f
	}

	names := harness.Experiments()
	if *exp != "all" {
		names = []string{*exp}
	}
	var records []harness.Record
	for _, n := range names {
		expStart := time.Now()
		r, err := harness.RunByName(n, o)
		if err != nil {
			return err
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "# experiment %s done in %.2fs\n", n, time.Since(expStart).Seconds())
		}
		if *telemetry != "" {
			if err := r.WriteTelemetry(*telemetry, time.Since(expStart)); err != nil {
				return err
			}
		}
		if csvFile != nil {
			if err := r.WriteCSVRows(csvFile); err != nil {
				return err
			}
		}
		if *jsonPath != "" {
			records = append(records, r.Records()...)
		}
		fmt.Println()
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *progress {
		s := traces.Stats()
		fmt.Fprintf(os.Stderr, "# tracecache: %d hits, %d coalesced, %d disk hits, %d generated\n",
			s.Hits, s.Coalesced, s.DiskHits, s.Generated)
	}
	return nil
}
