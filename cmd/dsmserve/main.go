// Command dsmserve runs the simulation query server: a long-lived
// process answering capacity-planning queries over HTTP/JSON with the
// exact Record documents cmd/experiments -json emits, memoized
// content-addressed in memory and (optionally) on disk, with
// single-flight coalescing and bounded-queue backpressure
// (internal/serve).
//
// Usage:
//
//	dsmserve -addr :8080 -resultstore .resultstore -tracestore .tracestore
//	curl 'http://localhost:8080/query?experiment=fig5&apps=radix&scale=64'
//	curl -d '{"experiment":"fig5","apps":["radix"],"scale":64}' http://localhost:8080/query
//	curl http://localhost:8080/statusz
//
// Endpoints:
//
//	/query    GET (URL parameters) or POST (JSON body); responds with
//	          the Record array, an X-Dsm-Cache header naming the layer
//	          that answered (hit, disk, miss, coalesced), 429 +
//	          Retry-After under backpressure
//	/statusz  JSON counters: per-layer query counts, pool and cache
//	          occupancy, trace-cache statistics
//	/healthz  liveness probe
//
// The first SIGINT/SIGTERM drains gracefully: the listener stops
// accepting, in-flight requests and accepted simulations finish, then
// the process exits 0. A second signal aborts running simulations.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/harness"
	"repro/internal/serve"
	"repro/internal/trace/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		resultStore = flag.String("resultstore", "", "directory of the on-disk result store (empty = memory only)")
		traceStore  = flag.String("tracestore", "", "directory of the on-disk trace store (empty = in-memory trace cache only)")
		cacheSize   = flag.Int("cache", 128, "in-memory result LRU capacity (entries)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "cold-path simulation workers")
		queue       = flag.Int("queue", 0, "cold-path queue depth before 429 (0 = 4x workers)")
		parallel    = flag.Int("parallel", 1, "per-simulation harness workers")
	)
	flag.Parse()

	cfg := serve.Config{
		CacheEntries: *cacheSize,
		Workers:      *workers,
		QueueDepth:   *queue,
		Parallel:     *parallel,
	}
	if *resultStore != "" {
		rs, err := serve.OpenResultStore(*resultStore)
		if err != nil {
			return err
		}
		cfg.Store = rs
	}
	if *traceStore != "" {
		st, err := store.Open(*traceStore)
		if err != nil {
			return err
		}
		cfg.Traces = harness.NewTraceCacheWithStore(st)
	}
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	fmt.Fprintf(os.Stderr, "dsmserve: listening on %s\n", ln.Addr())

	// Graceful drain: the first signal stops the listener and waits for
	// in-flight requests and accepted simulations; a second signal
	// aborts the simulations so a stuck drain still terminates.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case err := <-done:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dsmserve: %s; draining\n", s)
		go func() {
			s := <-sig
			fmt.Fprintf(os.Stderr, "dsmserve: %s again; aborting simulations\n", s)
			srv.Abort()
		}()
		if err := httpSrv.Shutdown(context.Background()); err != nil {
			return err
		}
		srv.Drain()
		fmt.Fprintln(os.Stderr, "dsmserve: drained")
		return nil
	}
}
