// Command benchreport runs the simulator's hot-path benchmark suite
// (internal/bench) and writes the results as a machine-readable JSON
// report — the perf trajectory file committed at the repo root as
// BENCH_<pr>.json, which the allocation-regression guard in
// bench_guard_test.go checks future changes against.
//
// Usage:
//
//	benchreport                         # full suite -> BENCH.json
//	benchreport -o BENCH_4.json         # choose the output file
//	benchreport -benchtime 2s           # longer runs, steadier numbers
//	benchreport -benchtime 3x -micro    # quick pass, no macrobenchmark
//
// Each entry carries ns/op, bytes/op and allocs/op; benchmarks that
// report a sim-cycles metric additionally get sim_cycles_per_sec, the
// simulated-cycles-per-wall-second throughput headline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/telemetry"
)

// Report is the emitted JSON document. The run-environment fields
// (Go version, OS/arch, CPU budget, commit) make a committed baseline
// interpretable later: a regression against numbers from a different
// machine or build is a different conversation than one from the same.
type Report struct {
	Schema     string  `json:"schema"`
	Created    string  `json:"created"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Commit     string  `json:"commit,omitempty"`
	Benchtime  string  `json:"benchtime"`
	Results    []Entry `json:"results"`
}

// Entry is one benchmark's outcome.
type Entry struct {
	Name        string `json:"name"`
	Guarded     bool   `json:"guarded"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`

	// Metrics carries the benchmark's custom units (trace-ops,
	// sim-cycles, norm-<system>...).
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// SimCyclesPerSec is derived from the sim-cycles metric: how many
	// simulated cycles one wall-clock second buys.
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	var (
		out       = flag.String("o", "BENCH.json", "output file")
		benchtime = flag.String("benchtime", "1s", "per-benchmark budget (duration or Nx iterations)")
		microOnly = flag.Bool("micro", false, "skip the full-sweep macrobenchmark")
		verbose   = flag.Bool("v", true, "print results as they complete")
	)
	// testing.Benchmark reads the frameworks's -test.* flags; register
	// them so the benchtime budget can be set programmatically.
	testing.Init()
	flag.Parse()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fail(fmt.Errorf("benchreport: bad -benchtime: %w", err))
	}

	rep := Report{
		Schema:     "repro-bench-report/v1",
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     telemetry.BuildCommit(),
		Benchtime:  *benchtime,
	}

	for _, c := range bench.Cases() {
		if c.Macro && *microOnly {
			continue
		}
		r := testing.Benchmark(c.Bench)
		if r.N == 0 {
			// testing.Benchmark swallows b.Fatal and returns a zero
			// result; writing it would publish bogus numbers (or, on a
			// baseline regeneration, commit zero-alloc guards that every
			// later run trips over).
			fail(fmt.Errorf("benchreport: benchmark %s failed (zero iterations); not writing a report", c.Name))
		}
		e := Entry{
			Name:        c.Name,
			Guarded:     c.Guarded,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		if cyc, ok := r.Extra["sim-cycles"]; ok && r.NsPerOp() > 0 {
			e.SimCyclesPerSec = cyc * 1e9 / float64(r.NsPerOp())
		}
		if *verbose {
			fmt.Printf("%-22s %12d ns/op %8d B/op %6d allocs/op", c.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
			if e.SimCyclesPerSec > 0 {
				fmt.Printf("  %.3g sim-cycles/s", e.SimCyclesPerSec)
			}
			fmt.Println()
		}
		rep.Results = append(rep.Results, e)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fail(err)
	}
	if *verbose {
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Results))
	}
}
