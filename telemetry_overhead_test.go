package repro

import (
	"io"
	"testing"
	"time"

	"repro/internal/harness"
)

// TestTelemetryOverheadBudget pins the observability cost ceiling: the
// Figure 5 sweep with time-resolved telemetry fully on (windowed series
// plus the event timeline) must run within 10% of the telemetry-off
// wall time. Each variant gets the minimum of several alternating
// iterations over a shared trace cache, so the comparison measures the
// simulator, not generation or a one-off scheduling hiccup; a small
// absolute allowance keeps the threshold meaningful if the sweep ever
// gets very fast.
func TestTelemetryOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping wall-time budget in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping wall-time budget under the race detector")
	}

	traces := harness.NewTraceCache()
	sweep := func(tel *harness.TelemetryOptions) time.Duration {
		start := time.Now()
		if _, err := harness.Fig5(harness.Options{
			Scale: 8, Parallel: 4, Traces: traces, Out: io.Discard, Telemetry: tel,
		}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	sweep(nil) // warm the trace cache outside the measured iterations

	const iters = 4
	timeline := &harness.TelemetryOptions{Timeline: true}
	off, on := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < iters; i++ {
		if d := sweep(nil); d < off {
			off = d
		}
		if d := sweep(timeline); d < on {
			on = d
		}
	}

	limit := off + off/10 + 50*time.Millisecond
	t.Logf("fig5 sweep: telemetry off %v, on %v (limit %v)", off, on, limit)
	if on > limit {
		t.Errorf("telemetry-on sweep took %v, budget is %v (off %v + 10%%): collection left the nil-check fast path",
			on, limit, off)
	}
}
